//! Integration: preference learning across crates — the GP stack
//! (eva-gp, eva-prefgp) must recover Eq. 13-style utilities well enough
//! to rank real outcome vectors from the workload layer.

use pamo::core::benefit::{TruePreference, TruePreferenceOracle};
use pamo::core::{build_pool, decode_joint, OutcomeNormalizer};
use pamo::prefgp::{elicit_preferences, ElicitConfig};
use pamo::prelude::*;
use pamo::stats::rng::seeded;
use rand::Rng;

/// Build normalized outcome candidates from feasible pool configs.
fn outcome_candidates(scenario: &Scenario, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let normalizer = OutcomeNormalizer::for_scenario(scenario);
    let mut rng = seeded(seed);
    let pool = build_pool(scenario, n, &mut rng);
    pool.iter()
        .filter_map(|x| {
            scenario
                .evaluate(&decode_joint(scenario, x))
                .ok()
                .map(|so| normalizer.normalize(&so.outcome))
        })
        .collect()
}

#[test]
fn elicited_model_ranks_real_outcomes() {
    let scenario = Scenario::uniform(5, 3, 20e6, 303);
    let pref = TruePreference::new(&scenario, [1.0, 2.5, 0.5, 1.0, 1.5]);
    let candidates = outcome_candidates(&scenario, 40, 1);
    assert!(candidates.len() >= 10);

    let mut oracle = TruePreferenceOracle::new(&pref);
    let mut cfg = ElicitConfig::for_dim(5);
    cfg.n_comparisons = 18; // the paper's "accurate enough" budget
    let (model, data) = elicit_preferences(&mut oracle, &candidates, &cfg, &mut seeded(2)).unwrap();
    assert_eq!(data.len(), 18);

    // Pairwise accuracy on held-out *real* outcome pairs.
    let mut rng = seeded(3);
    let mut correct = 0;
    let trials = 200;
    for _ in 0..trials {
        let a = &candidates[rng.gen_range(0..candidates.len())];
        let b = &candidates[rng.gen_range(0..candidates.len())];
        if a == b {
            correct += 1; // trivially consistent
            continue;
        }
        let (ua, _) = model.predict_utility(a);
        let (ub, _) = model.predict_utility(b);
        let truth = pref.benefit_of_normalized(a) > pref.benefit_of_normalized(b);
        if (ua > ub) == truth {
            correct += 1;
        }
    }
    let acc = correct as f64 / trials as f64;
    assert!(acc > 0.8, "pairwise accuracy on real outcomes: {acc}");
}

#[test]
fn more_comparisons_help_on_real_outcomes() {
    let scenario = Scenario::uniform(4, 3, 20e6, 404);
    let pref = TruePreference::new(&scenario, [0.5, 3.0, 0.5, 0.5, 2.0]);
    let candidates = outcome_candidates(&scenario, 30, 4);

    let eval = |v: usize, seed: u64| -> f64 {
        let mut oracle = TruePreferenceOracle::new(&pref);
        let mut cfg = ElicitConfig::for_dim(5);
        cfg.n_comparisons = v;
        let (model, _) =
            elicit_preferences(&mut oracle, &candidates, &cfg, &mut seeded(seed)).unwrap();
        let mut rng = seeded(seed + 1000);
        let trials = 150;
        let mut correct = 0;
        for _ in 0..trials {
            let a: Vec<f64> = (0..5).map(|_| rng.gen()).collect();
            let b: Vec<f64> = (0..5).map(|_| rng.gen()).collect();
            let (ua, _) = model.predict_utility(&a);
            let (ub, _) = model.predict_utility(&b);
            if (ua > ub) == (pref.benefit_of_normalized(&a) > pref.benefit_of_normalized(&b)) {
                correct += 1;
            }
        }
        correct as f64 / trials as f64
    };

    // Average two seeds to damp variance, compare 3 vs 24 comparisons.
    let small = (eval(3, 10) + eval(3, 20)) / 2.0;
    let large = (eval(24, 10) + eval(24, 20)) / 2.0;
    assert!(
        large >= small - 0.02,
        "accuracy regressed with more data: {small} -> {large}"
    );
    assert!(large > 0.75, "24-comparison accuracy too low: {large}");
}

#[test]
fn normalizer_and_benefit_are_consistent_across_crates() {
    let scenario = Scenario::uniform(4, 3, 20e6, 505);
    let pref = TruePreference::uniform(&scenario);
    let normalizer = OutcomeNormalizer::for_scenario(&scenario);
    let configs = vec![VideoConfig::new(600.0, 5.0); 4];
    let outcome = scenario.evaluate(&configs).unwrap().outcome;
    // benefit() and benefit_of_normalized(normalize()) agree.
    let direct = pref.benefit(&outcome);
    let via_norm = pref.benefit_of_normalized(&normalizer.normalize(&outcome));
    assert!((direct - via_norm).abs() < 1e-12);
}
