//! Cross-crate integration: the scheduling theory (eva-sched) must hold
//! empirically in the simulator (eva-sim) on realistic workloads
//! (eva-workload) — the paper's Theorem 1/2/3 chain, end to end.

use pamo::prelude::*;
use pamo::sched::const2_zero_jitter_ok;
use pamo::stats::rng::seeded;
use proptest::prelude::*;
use rand::Rng;

/// Random feasible-ish joint configuration on a scenario.
fn random_configs(scenario: &Scenario, seed: u64) -> Vec<VideoConfig> {
    let mut rng = seeded(seed);
    let space = scenario.config_space();
    (0..scenario.n_videos())
        .map(|_| {
            // Stay in the lower half of the grid so most draws schedule.
            let r = space.resolutions()[rng.gen_range(0..5)];
            let s = space.frame_rates()[rng.gen_range(0..5)];
            VideoConfig::new(r, s)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE invariant: whenever Algorithm 1 accepts a configuration, the
    /// discrete-event simulator measures exactly zero delay jitter under
    /// the Theorem-1 offsets.
    #[test]
    fn algorithm1_schedules_measure_zero_jitter(seed in 0u64..500, n_videos in 3usize..7) {
        let scenario = Scenario::uniform(n_videos, 4, 20e6, seed);
        let configs = random_configs(&scenario, seed ^ 0xbeef);
        if let Ok(assignment) = scenario.schedule(&configs) {
            // Per-server Const2 holds...
            for server in 0..scenario.n_servers() {
                let members: Vec<StreamTiming> = assignment
                    .streams_on(server)
                    .into_iter()
                    .map(|i| assignment.streams[i])
                    .collect();
                prop_assert!(const2_zero_jitter_ok(&members));
            }
            // ...and the DES confirms it empirically.
            let sim = simulate_scenario(
                &scenario, &configs, &assignment, PhasePolicy::ZeroJitter, 15.0,
            );
            prop_assert_eq!(sim.report.max_jitter_s, 0.0);
            // Measured latency agrees with the Eq. 5 analytic model.
            let rel = (sim.measured_mean_latency_s - sim.analytic_mean_latency_s).abs()
                / sim.analytic_mean_latency_s.max(1e-9);
            prop_assert!(rel < 0.02, "measured {} vs analytic {}",
                sim.measured_mean_latency_s, sim.analytic_mean_latency_s);
        }
    }
}

#[test]
fn naive_phasing_never_beats_zero_jitter() {
    for seed in 0..5u64 {
        let scenario = Scenario::uniform(5, 3, 20e6, seed);
        let configs = random_configs(&scenario, seed);
        let Ok(assignment) = scenario.schedule(&configs) else {
            continue;
        };
        let zj = simulate_scenario(
            &scenario,
            &configs,
            &assignment,
            PhasePolicy::ZeroJitter,
            15.0,
        );
        let naive = simulate_scenario(&scenario, &configs, &assignment, PhasePolicy::AllZero, 15.0);
        assert!(
            naive.measured_mean_latency_s >= zj.measured_mean_latency_s - 1e-9,
            "seed {seed}: naive {} < zero-jitter {}",
            naive.measured_mean_latency_s,
            zj.measured_mean_latency_s
        );
        assert!(naive.report.max_jitter_s >= zj.report.max_jitter_s);
    }
}

#[test]
fn splitting_makes_high_rate_fleets_schedulable() {
    // A single camera demanding more than one server's worth of compute
    // becomes schedulable (across servers) only because of splitting.
    let scenario = Scenario::uniform(1, 4, 20e6, 3);
    // ~0.07 s/frame at 1080p at 30 fps: util ≈ 2.1 -> 3 substreams.
    let configs = vec![VideoConfig::new(1080.0, 30.0)];
    let assignment = scenario.schedule(&configs).expect("split makes it fit");
    assert!(
        assignment.streams.len() >= 3,
        "expected ≥3 substreams, got {}",
        assignment.streams.len()
    );
    let sim = simulate_scenario(
        &scenario,
        &configs,
        &assignment,
        PhasePolicy::ZeroJitter,
        10.0,
    );
    assert_eq!(sim.report.max_jitter_s, 0.0);
}

#[test]
fn scheduling_is_deterministic_across_calls() {
    let scenario = Scenario::uniform(6, 4, 20e6, 9);
    let configs = random_configs(&scenario, 42);
    let a = scenario.schedule(&configs);
    let b = scenario.schedule(&configs);
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x.server_of, y.server_of);
            assert_eq!(x.total_comm_latency, y.total_comm_latency);
        }
        (Err(_), Err(_)) => {}
        _ => panic!("nondeterministic feasibility"),
    }
}
