//! End-to-end integration: PaMO against the baselines on small
//! scenarios — the Fig. 6/7 comparison in miniature.

use pamo::baselines::measure_decision;
use pamo::bo::{AcqKind, BoConfig};
use pamo::core::{PamoConfig, PreferenceSource};
use pamo::prelude::*;
use pamo::stats::rng::seeded;

fn tiny_pamo(preference: PreferenceSource) -> Pamo {
    Pamo::new(PamoConfig {
        bo: BoConfig {
            n_init: 5,
            batch: 2,
            mc_samples: 16,
            max_iters: 5,
            delta: 0.01,
            kind: AcqKind::QNei,
        },
        pool_size: 30,
        profiling_per_camera: 25,
        profile_noise: 0.02,
        n_comparisons: 10,
        elicit_candidates: 20,
        preference,
    })
}

#[test]
fn pamo_plus_beats_or_matches_baselines() {
    let mut wins = 0;
    let trials = 3;
    for seed in 0..trials {
        let scenario = Scenario::uniform(5, 3, 20e6, 100 + seed);
        let pref = TruePreference::uniform(&scenario);

        let u_jcab = pref.benefit(&measure_decision(
            &scenario,
            &Jcab::default().decide(&scenario),
        ));
        let u_fact = pref.benefit(&measure_decision(
            &scenario,
            &Fact::default().decide(&scenario),
        ));
        let plus = tiny_pamo(PreferenceSource::Oracle)
            .decide(&scenario, &pref, &mut seeded(seed))
            .unwrap();

        if plus.true_benefit >= u_jcab && plus.true_benefit >= u_fact {
            wins += 1;
        }
    }
    // With tiny budgets allow one unlucky trial, but not a majority.
    assert!(wins >= trials - 1, "PaMO+ won only {wins}/{trials} trials");
}

#[test]
fn learned_preference_tracks_oracle() {
    let scenario = Scenario::uniform(4, 3, 20e6, 55);
    // A sharply skewed preference: latency is everything.
    let pref = TruePreference::new(&scenario, [3.2, 1.0, 1.0, 1.0, 1.0]);
    let plus = tiny_pamo(PreferenceSource::Oracle)
        .decide(&scenario, &pref, &mut seeded(1))
        .unwrap();
    let learned = tiny_pamo(PreferenceSource::Learned)
        .decide(&scenario, &pref, &mut seeded(1))
        .unwrap();
    // Gap bounded by a fraction of the benefit scale Σw = 7.2.
    let gap = plus.true_benefit - learned.true_benefit;
    assert!(
        gap < 0.25 * 7.2,
        "learned preference too far from oracle: gap {gap}"
    );
}

#[test]
fn all_methods_produce_valid_decisions() {
    let scenario = Scenario::uniform(5, 4, 20e6, 77);
    let pref = TruePreference::uniform(&scenario);

    let jcab = Jcab::default().decide(&scenario);
    let fact = Fact::default().decide(&scenario);
    for (name, d) in [("jcab", &jcab), ("fact", &fact)] {
        assert_eq!(d.configs.len(), 5, "{name}");
        assert!(d.server_of.iter().all(|&s| s < 4), "{name}");
        let out = measure_decision(&scenario, d);
        assert!(out.accuracy > 0.0 && out.accuracy <= 1.0, "{name}");
        assert!(out.latency_s > 0.0, "{name}");
    }

    let pamo = tiny_pamo(PreferenceSource::Oracle)
        .decide(&scenario, &pref, &mut seeded(5))
        .unwrap();
    assert!(scenario.schedule(&pamo.configs).is_ok());
    assert!(pamo.bo.best_trace.len() >= 2);
    // The trace never decreases (best-so-far).
    assert!(pamo.bo.best_trace.windows(2).all(|w| w[1] >= w[0] - 1e-12));
}

#[test]
fn acquisition_variants_all_work_end_to_end() {
    let scenario = Scenario::uniform(4, 3, 20e6, 88);
    let pref = TruePreference::uniform(&scenario);
    let floor = pref.benefit(
        &scenario
            .evaluate(&[VideoConfig::new(360.0, 1.0); 4])
            .unwrap()
            .outcome,
    );
    for kind in [
        AcqKind::QNei,
        AcqKind::QEi,
        AcqKind::QUcb { beta: 2.0 },
        AcqKind::QSr,
    ] {
        let mut cfg = PamoConfig {
            preference: PreferenceSource::Oracle,
            ..PamoConfig::default()
        };
        cfg.bo = BoConfig {
            n_init: 4,
            batch: 2,
            mc_samples: 16,
            max_iters: 3,
            delta: 0.01,
            kind,
        };
        cfg.pool_size = 20;
        cfg.profiling_per_camera = 20;
        let d = Pamo::new(cfg)
            .decide(&scenario, &pref, &mut seeded(3))
            .unwrap();
        assert!(
            d.true_benefit >= floor - 1e-9,
            "{kind:?} under floor: {} vs {floor}",
            d.true_benefit
        );
    }
}
