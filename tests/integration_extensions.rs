//! Integration tests for the extension features: virtualization,
//! drift + online adaptation, and the shared-uplink tandem model.

use pamo::core::{run_online, PamoConfig, PreferenceSource};
use pamo::prelude::*;
use pamo::sim::des::{simulate, SimConfig, SimStream};
use pamo::sim::tandem::simulate_shared_uplink;
use pamo::stats::rng::seeded;
use pamo::workload::clip::clip_set;
use pamo::workload::{DriftingScenario, PhysicalServer, Virtualization};

fn tiny_cfg() -> PamoConfig {
    let mut cfg = PamoConfig::default();
    cfg.bo.max_iters = 3;
    cfg.bo.mc_samples = 16;
    cfg.pool_size = 20;
    cfg.profiling_per_camera = 20;
    cfg.preference = PreferenceSource::Oracle;
    cfg
}

#[test]
fn virtualized_cluster_schedules_zero_jitter_end_to_end() {
    let servers = vec![
        PhysicalServer::new("small", 1.0, 12e6),
        PhysicalServer::new("big", 2.0, 40e6),
    ];
    let v = Virtualization::new(&servers);
    assert_eq!(v.n_vms(), 3);
    let scenario = v.to_scenario(clip_set(4, 9), ConfigSpace::default());
    let pref = TruePreference::uniform(&scenario);
    let decision = Pamo::new(tiny_cfg())
        .decide(&scenario, &pref, &mut seeded(1))
        .unwrap();
    let assignment = scenario.schedule(&decision.configs).unwrap();
    // Verify zero jitter on the VM-level schedule...
    let sim = simulate_scenario(
        &scenario,
        &decision.configs,
        &assignment,
        PhasePolicy::ZeroJitter,
        15.0,
    );
    assert_eq!(sim.report.max_jitter_s, 0.0);
    // ...and that the placement maps onto real hardware.
    let hw = v.map_placement(&assignment.server_of);
    assert!(hw.iter().all(|&p| p < servers.len()));
}

#[test]
fn online_loop_survives_aggressive_drift() {
    let base = Scenario::uniform(4, 3, 20e6, 71);
    let mut drifting = DriftingScenario::new(&base, 0.25);
    let run = run_online(&mut drifting, &tiny_cfg(), [1.0; 5], 5, &mut seeded(2));
    assert_eq!(run.epochs.len(), 5);
    // Every epoch's fresh decision is feasible (run_online would panic
    // otherwise); benefits stay on the meaningful scale.
    for e in &run.epochs {
        assert!(e.online_benefit > -5.0 && e.online_benefit <= 0.0);
    }
}

#[test]
fn tandem_and_dedicated_agree_without_sharing() {
    // One stream per server: shared-uplink serialization cannot occur,
    // so both simulators must report identical means.
    let streams: Vec<SimStream> = (0..3)
        .map(|i| SimStream {
            id: StreamId::source(i),
            period: 100_000,
            proc: 20_000,
            trans: 7_000,
            server: i,
            phase: 0,
        })
        .collect();
    let cfg = SimConfig {
        horizon: 10_000_000,
        warmup: 1_000_000,
        deadline: 0,
    };
    let dedicated = simulate(&streams, 3, &cfg);
    let shared = simulate_shared_uplink(&streams, 3, &cfg);
    for (d, s) in dedicated.streams.iter().zip(&shared.streams) {
        assert!((d.latency.mean() - s.latency.mean()).abs() < 1e-9);
    }
    assert_eq!(shared.max_jitter_s, 0.0);
}

#[test]
fn deadline_accounting_flows_through_sim_config() {
    let stream = SimStream {
        id: StreamId::source(0),
        period: 100_000,
        proc: 30_000,
        trans: 0,
        server: 0,
        phase: 0,
    };
    let cfg = SimConfig {
        horizon: 5_000_000,
        warmup: 1_000_000,
        deadline: 25_000, // tighter than the 30ms processing time
    };
    let report = simulate(&[stream], 1, &cfg);
    assert_eq!(report.streams[0].deadline_misses, report.streams[0].frames);
}
