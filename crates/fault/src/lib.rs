//! Fault injection for the EVA testbed: seeded failure processes and the
//! policies the scheduler uses to survive them.
//!
//! The paper's zero-jitter guarantee (Theorems 1-3) and the online BO
//! loop both assume every server and camera stays up for the whole
//! horizon. Real edge clusters do not cooperate: servers crash and
//! reboot, cameras drop off their radio and rejoin, links lose frames,
//! and co-tenant interference turns a server into a straggler. This
//! crate supplies deterministic, seeded models of those four failure
//! modes — mirroring `eva-net`'s Gilbert-Elliott machinery — plus the
//! retry policy that bounds how long a lost frame is chased:
//!
//! * [`process`] — the fault processes: two-state up/down Markov chains
//!   with exponential dwells ([`AvailabilityModel`] → materialized
//!   [`AvailabilityTrace`]), transient slowdowns ([`SlowdownModel`] →
//!   [`SlowdownTrace`]), and per-frame Bernoulli loss ([`LossProcess`]),
//! * [`plan`] — [`FaultPlan`]: the per-server / per-camera bundle a
//!   scenario carries, with [`RetryPolicy`] (bounded retries,
//!   exponential backoff) governing lost-frame retransmission,
//! * [`chaos`] — [`ChaosSpec`]: one seeded composition of churn storms
//!   × link collapse × crash bursts × control-plane stragglers, the
//!   overload experiments' single reproducible knob.
//!
//! Everything is deterministic given its seed: the same plan always
//! injects the same faults, so fault-tolerance experiments replay
//! exactly and the zero-rate plan is observationally (bit-)identical to
//! no plan at all.

pub mod chaos;
pub mod plan;
pub mod process;

pub use chaos::{ChaosSpec, ChaosWindow, ChurnStorm, ControlStragglers, CrashBursts, LinkCollapse};
pub use plan::{CameraFaults, FaultPlan, RetryPolicy, ServerFaults};
pub use process::{
    AvailabilityModel, AvailabilityTrace, LossProcess, SlowdownModel, SlowdownTrace,
};
