//! The fault processes: seeded up/down Markov chains, transient
//! slowdowns, and per-frame loss.
//!
//! All processes are deterministic given their parameters and seed, and
//! materialize into piecewise-constant traces over a simulation horizon
//! — the same shape as `eva-net`'s `LinkTrace`, so the DES samples them
//! the same way. Queries past the horizon hold the last value (the
//! process is frozen, not undefined).

use eva_sched::{Ticks, TICKS_PER_SEC};

/// Convert seconds to ticks (rounded, floored at 0).
pub fn secs_to_ticks(secs: f64) -> Ticks {
    (secs * TICKS_PER_SEC as f64).round().max(0.0) as Ticks
}

/// A two-state up/down Markov chain with exponential dwells — the
/// classic crash/recovery model. `mttf_s` is the mean up-dwell (mean
/// time to failure), `mttr_s` the mean down-dwell (mean time to
/// repair). Used both for server crash/recovery and camera
/// dropout/rejoin.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityModel {
    /// Mean up dwell (seconds); `f64::INFINITY` = never fails.
    pub mttf_s: f64,
    /// Mean down dwell (seconds).
    pub mttr_s: f64,
    /// Seed for the dwell draws.
    pub seed: u64,
}

impl AvailabilityModel {
    /// A resource that never fails.
    pub fn always_up() -> Self {
        AvailabilityModel {
            mttf_s: f64::INFINITY,
            mttr_s: 1.0,
            seed: 0,
        }
    }

    /// Crash/recovery with the given MTTF / MTTR (seconds).
    pub fn crash_recovery(mttf_s: f64, mttr_s: f64, seed: u64) -> Self {
        assert!(
            mttf_s > 0.0 && mttr_s > 0.0,
            "AvailabilityModel: non-positive dwell"
        );
        AvailabilityModel {
            mttf_s,
            mttr_s,
            seed,
        }
    }

    /// True when this model can never produce a down interval.
    pub fn is_always_up(&self) -> bool {
        !self.mttf_s.is_finite()
    }

    /// Long-run availability `MTTF / (MTTF + MTTR)`.
    pub fn availability(&self) -> f64 {
        if self.is_always_up() {
            1.0
        } else {
            self.mttf_s / (self.mttf_s + self.mttr_s)
        }
    }

    /// Materialize the chain over `[0, horizon)` ticks. The resource
    /// starts up (epoch 0 always sees a healthy fleet; the first
    /// failure arrives after an exponential MTTF dwell).
    pub fn materialize(&self, horizon: Ticks) -> AvailabilityTrace {
        assert!(horizon > 0, "AvailabilityModel: empty horizon");
        let mut toggles = Vec::new();
        if !self.is_always_up() {
            let mut rng = SplitMix::new(self.seed);
            let mut t: Ticks = 0;
            let mut up = true;
            loop {
                let mean = if up { self.mttf_s } else { self.mttr_s };
                t += secs_to_ticks(rng.exp(mean)).max(1);
                if t >= horizon {
                    break;
                }
                toggles.push(t);
                up = !up;
            }
        }
        AvailabilityTrace { toggles, horizon }
    }
}

/// A materialized up/down trajectory: the resource starts up at `t = 0`
/// and flips state at each toggle instant.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityTrace {
    /// State-flip instants, strictly increasing. Even index = goes
    /// down, odd index = comes back up.
    toggles: Vec<Ticks>,
    horizon: Ticks,
}

impl AvailabilityTrace {
    /// A trace with no failures over any horizon.
    pub fn perfect(horizon: Ticks) -> Self {
        AvailabilityTrace {
            toggles: Vec::new(),
            horizon,
        }
    }

    /// A trace with explicit state-flip instants (even index = failure,
    /// odd = recovery) — lets tests and benches place outages exactly.
    pub fn from_toggles(toggles: Vec<Ticks>, horizon: Ticks) -> Self {
        assert!(
            toggles.windows(2).all(|w| w[0] < w[1]),
            "AvailabilityTrace: toggles must be strictly increasing"
        );
        AvailabilityTrace { toggles, horizon }
    }

    /// Is the resource up at time `t`?
    pub fn is_up(&self, t: Ticks) -> bool {
        // Number of toggles at or before t; even = up.
        let flips = self.toggles.partition_point(|&x| x <= t);
        flips % 2 == 0
    }

    /// Is the resource up for the *whole* closed interval `[a, b]`?
    /// Models "every heartbeat in the window was answered".
    pub fn is_up_throughout(&self, a: Ticks, b: Ticks) -> bool {
        debug_assert!(a <= b, "is_up_throughout: reversed interval");
        if !self.is_up(a) {
            return false;
        }
        // Up at a, and no toggle lands inside (a, b].
        let next = self.toggles.partition_point(|&x| x <= a);
        self.toggles.get(next).is_none_or(|&x| x > b)
    }

    /// Earliest time `>= t` at which the resource is up.
    pub fn next_up_at(&self, t: Ticks) -> Ticks {
        if self.is_up(t) {
            return t;
        }
        let flips = self.toggles.partition_point(|&x| x <= t);
        // flips is odd (down); the next toggle brings it back up. A
        // trace that ends down stays down: report past-horizon.
        self.toggles
            .get(flips)
            .copied()
            .unwrap_or(self.horizon.max(t) + 1)
    }

    /// Fraction of the interval `[a, b)` the resource spent up
    /// (1.0 for an empty interval).
    pub fn up_fraction(&self, a: Ticks, b: Ticks) -> f64 {
        if b <= a {
            return 1.0;
        }
        let mut up_ticks: Ticks = 0;
        let mut t = a;
        while t < b {
            let flips = self.toggles.partition_point(|&x| x <= t);
            let seg_end = self.toggles.get(flips).copied().unwrap_or(b).min(b);
            if flips % 2 == 0 {
                up_ticks += seg_end - t;
            }
            t = seg_end;
        }
        up_ticks as f64 / (b - a) as f64
    }

    /// The state-flip instants (even index = failure, odd = recovery).
    pub fn toggles(&self) -> &[Ticks] {
        &self.toggles
    }

    /// The horizon the trace was materialized for.
    pub fn horizon(&self) -> Ticks {
        self.horizon
    }
}

/// Transient server slowdown (straggler) process: a two-state Markov
/// chain toggling between nominal speed and a service-time inflation
/// `factor > 1`, with exponential dwells.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownModel {
    /// Service-time multiplier while straggling (`>= 1`).
    pub factor: f64,
    /// Mean dwell at nominal speed (seconds); `INFINITY` = never slow.
    pub mean_normal_s: f64,
    /// Mean dwell in the slow state (seconds).
    pub mean_slow_s: f64,
    /// Seed for the dwell draws.
    pub seed: u64,
}

impl SlowdownModel {
    /// A server that never straggles.
    pub fn none() -> Self {
        SlowdownModel {
            factor: 1.0,
            mean_normal_s: f64::INFINITY,
            mean_slow_s: 1.0,
            seed: 0,
        }
    }

    /// Straggler bursts inflating service time by `factor`.
    pub fn bursts(factor: f64, mean_normal_s: f64, mean_slow_s: f64, seed: u64) -> Self {
        assert!(factor >= 1.0, "SlowdownModel: factor < 1");
        assert!(
            mean_normal_s > 0.0 && mean_slow_s > 0.0,
            "SlowdownModel: non-positive dwell"
        );
        SlowdownModel {
            factor,
            mean_normal_s,
            mean_slow_s,
            seed,
        }
    }

    /// True when the process never leaves nominal speed.
    pub fn is_none(&self) -> bool {
        self.factor <= 1.0 || !self.mean_normal_s.is_finite()
    }

    /// Materialize over `[0, horizon)` (starts at nominal speed).
    pub fn materialize(&self, horizon: Ticks) -> SlowdownTrace {
        assert!(horizon > 0, "SlowdownModel: empty horizon");
        let mut toggles = Vec::new();
        if !self.is_none() {
            let mut rng = SplitMix::new(self.seed ^ 0x5351_4C4F_5744_4F57);
            let mut t: Ticks = 0;
            let mut slow = false;
            loop {
                let mean = if slow {
                    self.mean_slow_s
                } else {
                    self.mean_normal_s
                };
                t += secs_to_ticks(rng.exp(mean)).max(1);
                if t >= horizon {
                    break;
                }
                toggles.push(t);
                slow = !slow;
            }
        }
        SlowdownTrace {
            toggles,
            factor: self.factor.max(1.0),
        }
    }
}

/// A materialized slowdown trajectory: `factor_at(t)` is 1.0 at nominal
/// speed and `factor` while straggling.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownTrace {
    /// State-flip instants (even index = slow begins, odd = ends).
    toggles: Vec<Ticks>,
    factor: f64,
}

impl SlowdownTrace {
    /// A trace that never straggles.
    pub fn nominal() -> Self {
        SlowdownTrace {
            toggles: Vec::new(),
            factor: 1.0,
        }
    }

    /// A trace with explicit state-flip instants (even index = slow
    /// begins, odd = ends) — lets tests place straggler bursts exactly.
    pub fn from_toggles(toggles: Vec<Ticks>, factor: f64) -> Self {
        assert!(factor >= 1.0, "SlowdownTrace: factor < 1");
        assert!(
            toggles.windows(2).all(|w| w[0] < w[1]),
            "SlowdownTrace: toggles must be strictly increasing"
        );
        SlowdownTrace { toggles, factor }
    }

    /// Service-time multiplier at time `t` (`>= 1`).
    pub fn factor_at(&self, t: Ticks) -> f64 {
        let flips = self.toggles.partition_point(|&x| x <= t);
        if flips % 2 == 0 {
            1.0
        } else {
            self.factor
        }
    }

    /// Next state-flip strictly after `t` (`None` once the trace is in
    /// its final state).
    pub fn next_toggle_after(&self, t: Ticks) -> Option<Ticks> {
        let idx = self.toggles.partition_point(|&x| x <= t);
        self.toggles.get(idx).copied()
    }

    /// The straggler inflation factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }
}

/// Per-frame Bernoulli loss, deterministic in `(stream, frame,
/// attempt)`: the same plan always loses the same transmissions, so
/// retry behaviour replays exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossProcess {
    /// Loss probability per transmission attempt, in `[0, 1)`.
    pub p: f64,
    /// Seed mixed into every draw.
    pub seed: u64,
}

impl LossProcess {
    /// A loss-free link.
    pub fn none() -> Self {
        LossProcess { p: 0.0, seed: 0 }
    }

    /// Independent per-attempt loss with probability `p`.
    pub fn bernoulli(p: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "LossProcess: p outside [0, 1)");
        LossProcess { p, seed }
    }

    /// Is attempt `attempt` of frame `frame` of stream `stream` lost?
    pub fn is_lost(&self, stream: usize, frame: u64, attempt: u32) -> bool {
        if self.p <= 0.0 {
            return false;
        }
        let mut h = SplitMix::new(
            self.seed
                ^ (stream as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ frame.wrapping_mul(0xBF58_476D_1CE4_E5B9)
                ^ (attempt as u64).wrapping_mul(0x94D0_49BB_1331_11EB),
        );
        h.next_f64() < self.p
    }
}

/// Internal deterministic generator (splitmix64) — keeps `eva-fault`
/// dependency-free and fault schedules reproducible across platforms.
#[derive(Debug, Clone)]
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix {
            state: seed ^ 0x6661_756C_7473_2121,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` (53-bit mantissa).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential with the given mean (inverse CDF).
    fn exp(&mut self, mean: f64) -> f64 {
        if !mean.is_finite() {
            return f64::INFINITY;
        }
        -mean * (1.0 - self.next_f64()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HORIZON: Ticks = 600 * TICKS_PER_SEC;

    #[test]
    fn always_up_has_no_toggles() {
        let t = AvailabilityModel::always_up().materialize(HORIZON);
        assert!(t.toggles().is_empty());
        assert!(t.is_up(0));
        assert!(t.is_up(HORIZON - 1));
        assert!(t.is_up_throughout(0, HORIZON));
        assert_eq!(t.up_fraction(0, HORIZON), 1.0);
        assert_eq!(t.next_up_at(12345), 12345);
    }

    #[test]
    fn traces_are_deterministic_and_seed_sensitive() {
        let m = AvailabilityModel::crash_recovery(30.0, 10.0, 7);
        assert_eq!(m.materialize(HORIZON), m.materialize(HORIZON));
        let other = AvailabilityModel::crash_recovery(30.0, 10.0, 8);
        assert_ne!(m.materialize(HORIZON), other.materialize(HORIZON));
    }

    #[test]
    fn crash_recovery_alternates_and_matches_long_run_availability() {
        let m = AvailabilityModel::crash_recovery(30.0, 10.0, 3);
        let t = m.materialize(3600 * TICKS_PER_SEC);
        assert!(t.toggles().len() > 10, "too few events");
        // Starts up; alternates down/up.
        assert!(t.is_up(0));
        assert!(!t.is_up(t.toggles()[0]));
        assert!(t.is_up(t.toggles()[1]));
        let frac = t.up_fraction(0, 3600 * TICKS_PER_SEC);
        let nominal = m.availability();
        assert!(
            (frac - nominal).abs() < 0.1,
            "empirical {frac} vs nominal {nominal}"
        );
    }

    #[test]
    fn next_up_at_jumps_to_recovery() {
        let m = AvailabilityModel::crash_recovery(5.0, 5.0, 11);
        let t = m.materialize(HORIZON);
        let down_at = t.toggles()[0];
        let up_at = t.toggles()[1];
        assert_eq!(t.next_up_at(down_at), up_at);
        assert_eq!(t.next_up_at(up_at), up_at);
    }

    #[test]
    fn is_up_throughout_detects_flaps() {
        let m = AvailabilityModel::crash_recovery(5.0, 2.0, 13);
        let t = m.materialize(HORIZON);
        let fail = t.toggles()[0];
        let recover = t.toggles()[1];
        // A window straddling the outage is not continuously up even if
        // both endpoints are.
        assert!(t.is_up(fail - 1));
        assert!(t.is_up(recover));
        assert!(!t.is_up_throughout(fail - 1, recover));
        assert!(t.is_up_throughout(0, fail - 1));
    }

    #[test]
    fn up_fraction_partial_interval() {
        // Hand-built trace: down during [10, 30) of [0, 40).
        let t = AvailabilityTrace {
            toggles: vec![10, 30],
            horizon: 40,
        };
        assert_eq!(t.up_fraction(0, 40), 0.5);
        assert_eq!(t.up_fraction(10, 30), 0.0);
        assert_eq!(t.up_fraction(0, 10), 1.0);
        assert_eq!(t.up_fraction(20, 35), 1.0 / 3.0);
    }

    #[test]
    fn slowdown_none_is_nominal_everywhere() {
        let t = SlowdownModel::none().materialize(HORIZON);
        assert_eq!(t.factor_at(0), 1.0);
        assert_eq!(t.factor_at(HORIZON), 1.0);
        assert_eq!(t.next_toggle_after(0), None);
    }

    #[test]
    fn slowdown_bursts_alternate() {
        let m = SlowdownModel::bursts(3.0, 10.0, 5.0, 21);
        let t = m.materialize(HORIZON);
        assert!(t.next_toggle_after(0).is_some());
        let first = t.next_toggle_after(0).unwrap();
        assert_eq!(t.factor_at(first - 1), 1.0);
        assert_eq!(t.factor_at(first), 3.0);
    }

    #[test]
    fn loss_zero_never_loses() {
        let l = LossProcess::none();
        for k in 0..1000u64 {
            assert!(!l.is_lost(0, k, 0));
        }
    }

    #[test]
    fn loss_rate_matches_probability() {
        let l = LossProcess::bernoulli(0.3, 99);
        let lost = (0..10_000u64).filter(|&k| l.is_lost(1, k, 0)).count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn loss_is_deterministic_but_attempt_sensitive() {
        let l = LossProcess::bernoulli(0.5, 5);
        assert_eq!(l.is_lost(2, 17, 0), l.is_lost(2, 17, 0));
        // Across many frames, attempt 0 and 1 must disagree somewhere
        // (retries re-roll the dice).
        assert!((0..200u64).any(|k| l.is_lost(2, k, 0) != l.is_lost(2, k, 1)));
    }
}
