//! Composed chaos: one seeded spec that stacks churn storms × link
//! collapse × crash bursts × control-plane stragglers.
//!
//! A [`ChaosSpec`] is the overload experiment's single source of
//! truth: every ingredient derives its own decorrelated sub-seed from
//! the spec seed, so one `u64` reproduces the whole composed storm.
//! The spec deliberately speaks in plain numbers — rates, dwells,
//! factors — rather than serving-layer types: `eva-fault` sits below
//! `eva-serve` in the layering, so the serving loop (or the
//! `ext_overload` experiment) composes [`ChurnStorm`] into its own
//! arrival model while this crate materializes the parts it owns
//! (crash [`FaultPlan`]s and seeded time windows for link collapse /
//! control stragglers).
//!
//! Windows reuse the two-state exponential-dwell machinery of
//! [`SlowdownModel`], so they inherit its determinism guarantees.

use eva_sched::{Ticks, TICKS_PER_SEC};

use crate::plan::FaultPlan;
use crate::process::{secs_to_ticks, SlowdownModel};

/// MMPP churn-storm parameters (composed into the serving layer's
/// arrival model by the caller): a calm regime and a storm regime with
/// exponential regime dwells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnStorm {
    /// Arrival rate in the calm regime (tenants/s).
    pub calm_rate_hz: f64,
    /// Arrival rate in the storm regime (tenants/s).
    pub storm_rate_hz: f64,
    /// Mean dwell in each regime, `[calm, storm]` seconds.
    pub mean_dwell_s: [f64; 2],
    /// Mean tenant hold time (seconds).
    pub mean_hold_s: f64,
}

/// Server crash-burst parameters (exponential MTTF/MTTR per server).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashBursts {
    /// Mean time to failure per server (seconds).
    pub mttf_s: f64,
    /// Mean time to recovery per server (seconds).
    pub mttr_s: f64,
}

/// Link-collapse parameters: seeded windows during which every uplink
/// is scaled by `factor` (< 1 collapses capacity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCollapse {
    /// Uplink multiplier while collapsed (0 < factor ≤ 1).
    pub factor: f64,
    /// Mean dwell at full capacity (seconds).
    pub mean_normal_s: f64,
    /// Mean dwell collapsed (seconds).
    pub mean_collapsed_s: f64,
}

/// Control-plane straggler parameters: seeded windows during which the
/// controller's decision budget is divided by `factor` (the control
/// plane itself runs slow, so it affords less work per window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlStragglers {
    /// Budget divisor while straggling (≥ 1).
    pub factor: f64,
    /// Mean dwell at nominal controller speed (seconds).
    pub mean_normal_s: f64,
    /// Mean dwell straggling (seconds).
    pub mean_slow_s: f64,
}

/// A `[t0_s, t1_s)` window carrying a multiplier (link factor or
/// straggler divisor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosWindow {
    /// Window start (seconds).
    pub t0_s: f64,
    /// Window end (seconds).
    pub t1_s: f64,
    /// The window's multiplier.
    pub factor: f64,
}

/// Seeded composition of the four chaos ingredients. Any subset may be
/// active; an all-`None` spec is inert (its fault plan is zero-rate
/// and both window sets are empty).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChaosSpec {
    /// Master seed; each ingredient decorrelates its own sub-seed.
    pub seed: u64,
    /// Tenant churn storm (composed by the serving layer).
    pub churn_storm: Option<ChurnStorm>,
    /// Server crash bursts.
    pub crash_bursts: Option<CrashBursts>,
    /// Uplink collapse windows.
    pub link_collapse: Option<LinkCollapse>,
    /// Control-plane straggler windows.
    pub stragglers: Option<ControlStragglers>,
}

impl ChaosSpec {
    /// An inert spec (no chaos, any seed).
    pub fn none(seed: u64) -> Self {
        ChaosSpec {
            seed,
            ..ChaosSpec::default()
        }
    }

    /// Sub-seed for ingredient `k` (decorrelated by the usual odd
    /// multiplicative constant).
    fn sub_seed(&self, k: u64) -> u64 {
        self.seed ^ (k + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// The churn sub-seed (for the serving layer's arrival trace).
    pub fn churn_seed(&self) -> u64 {
        self.sub_seed(0)
    }

    /// The crash-burst [`FaultPlan`] for an `n_servers` × `n_cameras`
    /// system (zero-rate when `crash_bursts` is `None`).
    pub fn fault_plan(&self, n_servers: usize, n_cameras: usize) -> FaultPlan {
        let plan = FaultPlan::none(n_servers, n_cameras);
        match self.crash_bursts {
            Some(c) => plan.with_server_crashes(c.mttf_s, c.mttr_s, self.sub_seed(1)),
            None => plan,
        }
    }

    /// The seeded link-collapse windows over `[0, horizon_s)`, each
    /// carrying the collapse factor. Empty when `link_collapse` is
    /// `None`.
    pub fn link_windows(&self, horizon_s: f64) -> Vec<ChaosWindow> {
        match self.link_collapse {
            Some(l) => windows(
                l.mean_normal_s,
                l.mean_collapsed_s,
                self.sub_seed(2),
                horizon_s,
                l.factor,
            ),
            None => Vec::new(),
        }
    }

    /// The seeded control-straggler windows over `[0, horizon_s)`,
    /// each carrying the budget divisor. Empty when `stragglers` is
    /// `None`.
    pub fn straggler_windows(&self, horizon_s: f64) -> Vec<ChaosWindow> {
        match self.stragglers {
            Some(s) => windows(
                s.mean_normal_s,
                s.mean_slow_s,
                self.sub_seed(3),
                horizon_s,
                s.factor,
            ),
            None => Vec::new(),
        }
    }

    /// Whether the spec injects anything at all.
    pub fn is_inert(&self) -> bool {
        self.churn_storm.is_none()
            && self.crash_bursts.is_none()
            && self.link_collapse.is_none()
            && self.stragglers.is_none()
    }
}

/// Alternating normal/active windows from the two-state
/// exponential-dwell process (normal first), as `[t0, t1)` seconds.
fn windows(
    mean_normal_s: f64,
    mean_active_s: f64,
    seed: u64,
    horizon_s: f64,
    factor: f64,
) -> Vec<ChaosWindow> {
    let horizon: Ticks = secs_to_ticks(horizon_s).max(1);
    // The factor handed to the model is irrelevant (we only read the
    // toggles); 2.0 satisfies its `factor >= 1` contract.
    let trace = SlowdownModel::bursts(2.0, mean_normal_s, mean_active_s, seed).materialize(horizon);
    let toggles = trace_toggles(&trace, horizon);
    toggles
        .chunks(2)
        .map(|w| ChaosWindow {
            t0_s: w[0] as f64 / TICKS_PER_SEC as f64,
            t1_s: w
                .get(1)
                .map_or(horizon_s, |&t| t as f64 / TICKS_PER_SEC as f64),
            factor,
        })
        .collect()
}

/// Extract the flip instants of a materialized slowdown trace by
/// walking [`next_toggle_after`](crate::process::SlowdownTrace::next_toggle_after).
fn trace_toggles(trace: &crate::process::SlowdownTrace, horizon: Ticks) -> Vec<Ticks> {
    let mut out = Vec::new();
    let mut t: Ticks = 0;
    if trace.factor_at(0) > 1.0 {
        out.push(0);
    }
    while let Some(next) = trace.next_toggle_after(t) {
        if next >= horizon {
            break;
        }
        out.push(next);
        t = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_spec(seed: u64) -> ChaosSpec {
        ChaosSpec {
            seed,
            churn_storm: Some(ChurnStorm {
                calm_rate_hz: 0.01,
                storm_rate_hz: 0.5,
                mean_dwell_s: [60.0, 15.0],
                mean_hold_s: 45.0,
            }),
            crash_bursts: Some(CrashBursts {
                mttf_s: 90.0,
                mttr_s: 20.0,
            }),
            link_collapse: Some(LinkCollapse {
                factor: 0.4,
                mean_normal_s: 50.0,
                mean_collapsed_s: 12.0,
            }),
            stragglers: Some(ControlStragglers {
                factor: 4.0,
                mean_normal_s: 40.0,
                mean_slow_s: 20.0,
            }),
        }
    }

    #[test]
    fn inert_spec_produces_nothing() {
        let spec = ChaosSpec::none(7);
        assert!(spec.is_inert());
        assert!(spec.fault_plan(4, 8).is_zero());
        assert!(spec.link_windows(600.0).is_empty());
        assert!(spec.straggler_windows(600.0).is_empty());
    }

    #[test]
    fn composition_is_deterministic_per_seed() {
        let a = full_spec(42);
        let b = full_spec(42);
        assert_eq!(a.link_windows(600.0), b.link_windows(600.0));
        assert_eq!(a.straggler_windows(600.0), b.straggler_windows(600.0));
        assert_eq!(
            a.fault_plan(4, 8).server_availability(600 * TICKS_PER_SEC),
            b.fault_plan(4, 8).server_availability(600 * TICKS_PER_SEC)
        );
        let c = full_spec(43);
        assert_ne!(a.link_windows(3600.0), c.link_windows(3600.0));
    }

    #[test]
    fn ingredients_are_decorrelated() {
        // Same dwells for link collapse and stragglers: different
        // sub-seeds must still give different flip schedules.
        let spec = ChaosSpec {
            seed: 42,
            link_collapse: Some(LinkCollapse {
                factor: 0.5,
                mean_normal_s: 50.0,
                mean_collapsed_s: 12.0,
            }),
            stragglers: Some(ControlStragglers {
                factor: 2.0,
                mean_normal_s: 50.0,
                mean_slow_s: 12.0,
            }),
            ..ChaosSpec::default()
        };
        let links: Vec<(f64, f64)> = spec
            .link_windows(3600.0)
            .iter()
            .map(|w| (w.t0_s, w.t1_s))
            .collect();
        let slow: Vec<(f64, f64)> = spec
            .straggler_windows(3600.0)
            .iter()
            .map(|w| (w.t0_s, w.t1_s))
            .collect();
        assert_ne!(links, slow);
    }

    #[test]
    fn windows_are_ordered_and_within_horizon() {
        let spec = full_spec(9);
        let h = 1800.0;
        for w in spec
            .link_windows(h)
            .iter()
            .chain(&spec.straggler_windows(h))
        {
            assert!(w.t0_s < w.t1_s, "{w:?}");
            assert!(w.t0_s >= 0.0 && w.t1_s <= h + 1e-9, "{w:?}");
        }
        let lw = spec.link_windows(h);
        for pair in lw.windows(2) {
            assert!(pair[0].t1_s <= pair[1].t0_s, "overlapping windows");
        }
        assert!(!lw.is_empty(), "dwells this short must produce windows");
    }

    #[test]
    fn window_factors_carry_through() {
        let spec = full_spec(5);
        assert!(spec.link_windows(600.0).iter().all(|w| w.factor == 0.4));
        assert!(spec
            .straggler_windows(600.0)
            .iter()
            .all(|w| w.factor == 4.0));
    }
}
