//! [`FaultPlan`]: the bundle of fault processes a scenario carries, plus
//! the [`RetryPolicy`] governing lost-frame retransmission.
//!
//! A plan is pure description — nothing is materialized until the DES
//! (or the online loop) asks for traces over a concrete horizon. The
//! zero plan ([`FaultPlan::none`]) materializes to perfect traces and
//! is the observational identity: simulations and online runs carrying
//! it must be bit-identical to runs carrying no plan at all.

use crate::process::{
    AvailabilityModel, AvailabilityTrace, LossProcess, SlowdownModel, SlowdownTrace,
};
use eva_sched::{Ticks, TICKS_PER_SEC};

/// Fault processes attached to one server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerFaults {
    /// Crash/recovery chain (up/down).
    pub availability: AvailabilityModel,
    /// Transient slowdown (straggler) chain.
    pub slowdown: SlowdownModel,
}

impl ServerFaults {
    /// A server that never crashes and never straggles.
    pub fn none() -> Self {
        ServerFaults {
            availability: AvailabilityModel::always_up(),
            slowdown: SlowdownModel::none(),
        }
    }

    /// True when neither process can fire.
    pub fn is_zero(&self) -> bool {
        self.availability.is_always_up() && self.slowdown.is_none()
    }
}

/// Fault processes attached to one camera (and its uplink).
#[derive(Debug, Clone, PartialEq)]
pub struct CameraFaults {
    /// Dropout/rejoin chain — frames captured while the camera is down
    /// simply never exist.
    pub availability: AvailabilityModel,
    /// Per-transmission frame loss on the camera's uplink.
    pub loss: LossProcess,
}

impl CameraFaults {
    /// A camera that never drops out on a loss-free uplink.
    pub fn none() -> Self {
        CameraFaults {
            availability: AvailabilityModel::always_up(),
            loss: LossProcess::none(),
        }
    }

    /// True when neither process can fire.
    pub fn is_zero(&self) -> bool {
        self.availability.is_always_up() && self.loss.p <= 0.0
    }
}

/// Bounded retransmission with exponential backoff: attempt `k`
/// (0-based) of a lost frame waits `base_backoff * 2^(k-1)` before
/// being resent, up to `max_retries` resends, after which the frame
/// counts as dropped — never stuck.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Resend attempts after the initial transmission (0 = no retry).
    pub max_retries: u32,
    /// Backoff before the first resend (seconds).
    pub base_backoff_s: f64,
}

impl RetryPolicy {
    /// The default policy: three resends, 20 ms initial backoff.
    pub fn standard() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_s: 0.020,
        }
    }

    /// No retransmission: a lost frame is immediately dropped.
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff_s: 0.0,
        }
    }

    /// Backoff (ticks) before resend attempt `attempt` (1-based; the
    /// initial send is attempt 0 and has no backoff). Doubles each
    /// retry: base, 2*base, 4*base, ...
    pub fn backoff_ticks(&self, attempt: u32) -> Ticks {
        if attempt == 0 {
            return 0;
        }
        let scaled = self.base_backoff_s * f64::powi(2.0, attempt as i32 - 1);
        (scaled * TICKS_PER_SEC as f64).round().max(0.0) as Ticks
    }
}

/// The full fault description for a scenario: one [`ServerFaults`] per
/// server, one [`CameraFaults`] per camera, and the retry policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Per-server fault processes (length = number of servers).
    pub servers: Vec<ServerFaults>,
    /// Per-camera fault processes (length = number of cameras).
    pub cameras: Vec<CameraFaults>,
    /// Lost-frame retransmission policy.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// The zero plan: nothing ever fails. Observationally identical to
    /// carrying no plan at all.
    pub fn none(n_servers: usize, n_cameras: usize) -> Self {
        FaultPlan {
            servers: vec![ServerFaults::none(); n_servers],
            cameras: vec![CameraFaults::none(); n_cameras],
            retry: RetryPolicy::standard(),
        }
    }

    /// Identical crash/recovery chains on every server (seeds are
    /// decorrelated per server).
    pub fn with_server_crashes(mut self, mttf_s: f64, mttr_s: f64, seed: u64) -> Self {
        for (i, s) in self.servers.iter_mut().enumerate() {
            s.availability = AvailabilityModel::crash_recovery(
                mttf_s,
                mttr_s,
                seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)),
            );
        }
        self
    }

    /// Straggler bursts on every server (seeds decorrelated).
    pub fn with_server_stragglers(
        mut self,
        factor: f64,
        mean_normal_s: f64,
        mean_slow_s: f64,
        seed: u64,
    ) -> Self {
        for (i, s) in self.servers.iter_mut().enumerate() {
            s.slowdown = SlowdownModel::bursts(
                factor,
                mean_normal_s,
                mean_slow_s,
                seed.wrapping_add(0xBF58_476D_1CE4_E5B9u64.wrapping_mul(i as u64 + 1)),
            );
        }
        self
    }

    /// Dropout/rejoin chains on every camera (seeds decorrelated).
    pub fn with_camera_dropout(mut self, mttf_s: f64, mttr_s: f64, seed: u64) -> Self {
        for (i, c) in self.cameras.iter_mut().enumerate() {
            c.availability = AvailabilityModel::crash_recovery(
                mttf_s,
                mttr_s,
                seed.wrapping_add(0x94D0_49BB_1331_11EBu64.wrapping_mul(i as u64 + 1)),
            );
        }
        self
    }

    /// Bernoulli per-frame loss on every camera uplink (seeds
    /// decorrelated via the stream index inside [`LossProcess`]).
    pub fn with_frame_loss(mut self, p: f64, seed: u64) -> Self {
        for c in self.cameras.iter_mut() {
            c.loss = LossProcess::bernoulli(p, seed);
        }
        self
    }

    /// Replace the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// True when no process anywhere can fire — the plan is the
    /// observational identity.
    pub fn is_zero(&self) -> bool {
        self.servers.iter().all(ServerFaults::is_zero)
            && self.cameras.iter().all(CameraFaults::is_zero)
    }

    /// Materialize every server availability trace over `horizon`.
    pub fn server_availability(&self, horizon: Ticks) -> Vec<AvailabilityTrace> {
        self.servers
            .iter()
            .map(|s| s.availability.materialize(horizon))
            .collect()
    }

    /// Materialize every server slowdown trace over `horizon`.
    pub fn server_slowdown(&self, horizon: Ticks) -> Vec<SlowdownTrace> {
        self.servers
            .iter()
            .map(|s| s.slowdown.materialize(horizon))
            .collect()
    }

    /// Materialize every camera availability trace over `horizon`.
    pub fn camera_availability(&self, horizon: Ticks) -> Vec<AvailabilityTrace> {
        self.cameras
            .iter()
            .map(|c| c.availability.materialize(horizon))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_is_zero() {
        let p = FaultPlan::none(4, 8);
        assert!(p.is_zero());
        assert_eq!(p.servers.len(), 4);
        assert_eq!(p.cameras.len(), 8);
    }

    #[test]
    fn builders_clear_zero_flag() {
        assert!(!FaultPlan::none(2, 2)
            .with_server_crashes(60.0, 10.0, 1)
            .is_zero());
        assert!(!FaultPlan::none(2, 2)
            .with_server_stragglers(2.0, 30.0, 5.0, 1)
            .is_zero());
        assert!(!FaultPlan::none(2, 2)
            .with_camera_dropout(120.0, 15.0, 1)
            .is_zero());
        assert!(!FaultPlan::none(2, 2).with_frame_loss(0.05, 1).is_zero());
    }

    #[test]
    fn per_server_seeds_are_decorrelated() {
        let p = FaultPlan::none(3, 0).with_server_crashes(30.0, 10.0, 42);
        let horizon = 600 * TICKS_PER_SEC;
        let traces = p.server_availability(horizon);
        assert_ne!(traces[0], traces[1]);
        assert_ne!(traces[1], traces[2]);
    }

    #[test]
    fn backoff_doubles() {
        let r = RetryPolicy {
            max_retries: 4,
            base_backoff_s: 0.010,
        };
        assert_eq!(r.backoff_ticks(0), 0);
        let b1 = r.backoff_ticks(1);
        assert!(b1 > 0);
        assert_eq!(r.backoff_ticks(2), 2 * b1);
        assert_eq!(r.backoff_ticks(3), 4 * b1);
    }

    #[test]
    fn no_retry_policy() {
        let r = RetryPolicy::no_retry();
        assert_eq!(r.max_retries, 0);
        assert_eq!(r.backoff_ticks(1), 0);
    }
}
