//! Pairwise-comparison preference learning with Gaussian processes.
//!
//! Implements Sec. 4.2 of the PaMO paper:
//!
//! * [`dataset`] — the preference set `P_V = {y⁽¹⁾ ≻ y⁽²⁾}` over distinct
//!   outcome vectors, plus the decision-maker oracle abstraction,
//! * [`model`] — the Chu & Ghahramani (ICML'05) preference GP: probit
//!   pairwise likelihood (paper Eq. 9), Laplace approximation via damped
//!   Newton, predictive posterior over latent utilities `g(y)`,
//! * [`eubo`] — the Expected Utility of the Best Option acquisition
//!   (paper Eq. 11, Lin et al. AISTATS'22) that picks the next
//!   comparison pair, and the full preference-elicitation loop
//!   (Algorithm 2, lines 6-11).

pub mod dataset;
pub mod eubo;
pub mod model;
pub mod select;

pub use dataset::{Comparison, DecisionMaker, FunctionOracle, NoisyOracle, PreferenceDataset};
pub use eubo::{elicit_preferences, eubo_pair_value, ElicitConfig};
pub use model::{PrefError, PreferenceModel};
pub use select::{default_grid, fit_selected, loco_accuracy, PrefHyper};
