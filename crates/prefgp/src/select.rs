//! Hyperparameter selection for the preference GP.
//!
//! The preference model has two knobs the paper never discusses how to
//! set: the kernel lengthscale over outcome space and the probit noise
//! `λ`. With only a handful of comparisons, marginal likelihood is
//! unreliable; leave-one-comparison-out (LOCO) prediction accuracy is
//! the natural small-data criterion: refit on `V−1` comparisons,
//! predict the held-out one, count hits. `V ≤ ~30` keeps the `V` refits
//! per candidate trivially cheap.

use eva_gp::{Kernel, KernelType};

use crate::dataset::{Comparison, PreferenceDataset};
use crate::model::{PrefError, PreferenceModel};

/// A candidate hyperparameter setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefHyper {
    /// Isotropic RBF lengthscale over the normalized outcome cube.
    pub lengthscale: f64,
    /// Probit noise scale `λ`.
    pub lambda: f64,
}

/// The default candidate grid: lengthscales spanning "local" to
/// "near-linear" utilities, two noise levels.
pub fn default_grid() -> Vec<PrefHyper> {
    let mut grid = Vec::new();
    for &lengthscale in &[0.3, 0.5, 0.8, 1.5] {
        for &lambda in &[0.05, 0.15] {
            grid.push(PrefHyper {
                lengthscale,
                lambda,
            });
        }
    }
    grid
}

/// Leave-one-comparison-out accuracy of a hyperparameter setting.
/// Comparisons whose held-out refit fails (degenerate data) count as
/// misses.
pub fn loco_accuracy(data: &PreferenceDataset, hyper: PrefHyper) -> f64 {
    let v = data.len();
    assert!(v >= 2, "loco_accuracy: need at least two comparisons");
    let dim = data.items()[0].len();
    let mut hits = 0usize;
    for held_out in 0..v {
        let mut train = PreferenceDataset::new();
        for (i, cmp) in data.comparisons().iter().enumerate() {
            if i == held_out {
                continue;
            }
            train.add(&data.items()[cmp.winner], &data.items()[cmp.loser]);
        }
        let kernel = Kernel::isotropic(KernelType::Rbf, dim, hyper.lengthscale, 1.0);
        let Ok(model) = PreferenceModel::fit(&train, kernel, hyper.lambda) else {
            continue;
        };
        let Comparison { winner, loser } = data.comparisons()[held_out];
        if model.prob_prefers(&data.items()[winner], &data.items()[loser]) > 0.5 {
            hits += 1;
        }
    }
    hits as f64 / v as f64
}

/// Pick the grid setting with the best LOCO accuracy (first on ties)
/// and fit the final model on all comparisons with it.
pub fn fit_selected(
    data: &PreferenceDataset,
    grid: &[PrefHyper],
) -> Result<(PreferenceModel, PrefHyper, f64), PrefError> {
    if data.is_empty() {
        return Err(PrefError::Empty);
    }
    assert!(!grid.is_empty(), "fit_selected: empty grid");
    let dim = data.items()[0].len();
    let mut best: Option<(PrefHyper, f64)> = None;
    for &hyper in grid {
        let acc = if data.len() >= 2 {
            loco_accuracy(data, hyper)
        } else {
            0.5 // single comparison: no held-out signal
        };
        if best.is_none_or(|(_, b)| acc > b) {
            best = Some((hyper, acc));
        }
    }
    let Some((hyper, acc)) = best else {
        return Err(PrefError::Empty);
    };
    let kernel = Kernel::isotropic(KernelType::Rbf, dim, hyper.lengthscale, 1.0);
    let model = PreferenceModel::fit(data, kernel, hyper.lambda)?;
    Ok((model, hyper, acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::FunctionOracle;
    use eva_stats::rng::seeded;
    use rand::Rng;

    fn linear_dataset(n: usize, seed: u64) -> PreferenceDataset {
        let mut rng = seeded(seed);
        let mut data = PreferenceDataset::new();
        let mut oracle = FunctionOracle::new(|y: &[f64]| -(y[0] + 2.0 * y[1]));
        for _ in 0..n {
            let a: Vec<f64> = vec![rng.gen(), rng.gen()];
            let b: Vec<f64> = vec![rng.gen(), rng.gen()];
            data.query(&mut oracle, &a, &b);
        }
        data
    }

    #[test]
    fn loco_accuracy_in_unit_interval() {
        let data = linear_dataset(12, 1);
        for hyper in default_grid() {
            let acc = loco_accuracy(&data, hyper);
            assert!((0.0..=1.0).contains(&acc), "{hyper:?}: {acc}");
        }
    }

    #[test]
    fn consistent_data_scores_high() {
        // A linear utility is easy: the best grid setting should
        // predict held-out comparisons well.
        let data = linear_dataset(20, 2);
        let (_, hyper, acc) = fit_selected(&data, &default_grid()).unwrap();
        assert!(acc > 0.7, "best {hyper:?} only reached {acc}");
    }

    #[test]
    fn random_noise_scores_near_chance() {
        // Comparisons answered by a coin flip: LOCO accuracy should
        // hover around 0.5 for every setting.
        let mut rng = seeded(3);
        let mut data = PreferenceDataset::new();
        for _ in 0..16 {
            let a: Vec<f64> = vec![rng.gen(), rng.gen()];
            let b: Vec<f64> = vec![rng.gen(), rng.gen()];
            if rng.gen::<bool>() {
                data.add(&a, &b);
            } else {
                data.add(&b, &a);
            }
        }
        let (_, _, acc) = fit_selected(&data, &default_grid()).unwrap();
        assert!(acc < 0.85, "noise data scored suspiciously high: {acc}");
    }

    #[test]
    fn selection_beats_worst_grid_point() {
        let data = linear_dataset(18, 4);
        let grid = default_grid();
        let accs: Vec<f64> = grid.iter().map(|&h| loco_accuracy(&data, h)).collect();
        let worst = accs.iter().cloned().fold(f64::INFINITY, f64::min);
        let (_, _, best) = fit_selected(&data, &grid).unwrap();
        assert!(best >= worst);
    }

    #[test]
    fn empty_dataset_rejected() {
        let data = PreferenceDataset::new();
        assert!(fit_selected(&data, &default_grid()).is_err());
    }
}
