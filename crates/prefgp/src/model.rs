//! The Chu & Ghahramani preference GP with Laplace approximation.
//!
//! Latent utilities `g` over the distinct compared items get a GP prior
//! `g ~ N(0, K)`; each comparison contributes the probit likelihood of
//! paper Eq. 9, `p(y⁽¹⁾ ≻ y⁽²⁾ | g) = Φ((g₁ - g₂)/(√2 λ))`. The
//! posterior mode `ĝ` is found by damped Newton iterations and the
//! posterior is approximated as `N(ĝ, (K⁻¹ + Λ)⁻¹)` with `Λ` the
//! likelihood curvature (Laplace).

use eva_gp::Kernel;
use eva_linalg::{vecops, Cholesky, Mat};
use eva_stats::norm_cdf;

use crate::dataset::PreferenceDataset;

/// Errors from preference-model fitting or prediction.
#[derive(Debug, Clone)]
pub enum PrefError {
    /// Not enough data to fit (no comparisons).
    Empty,
    /// Dimension mismatch between items and kernel.
    BadDim { item_dim: usize, kernel_dim: usize },
    /// Newton iterations failed to converge.
    NoConvergence { iterations: usize },
    /// Underlying linear-algebra failure.
    Linalg(eva_linalg::LinalgError),
}

impl std::fmt::Display for PrefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefError::Empty => write!(f, "no comparisons to fit"),
            PrefError::BadDim {
                item_dim,
                kernel_dim,
            } => write!(f, "item dim {item_dim} != kernel dim {kernel_dim}"),
            PrefError::NoConvergence { iterations } => {
                write!(f, "Laplace Newton failed to converge in {iterations} iters")
            }
            PrefError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for PrefError {}

impl From<eva_linalg::LinalgError> for PrefError {
    fn from(e: eva_linalg::LinalgError) -> Self {
        PrefError::Linalg(e)
    }
}

/// Maximum Newton iterations for the Laplace mode search.
const MAX_NEWTON: usize = 100;
/// Convergence threshold on the gradient inf-norm.
const GRAD_TOL: f64 = 1e-8;

/// A fitted preference model: latent utility posterior `g | P_V`.
#[derive(Debug, Clone)]
pub struct PreferenceModel {
    items: Vec<Vec<f64>>,
    kernel: Kernel,
    lambda: f64,
    /// MAP latent utilities at the items.
    g_map: Vec<f64>,
    /// Cholesky of `K + jitter`.
    k_chol: Cholesky,
    /// `K⁻¹ ĝ` — predictive mean weights.
    alpha: Vec<f64>,
    /// Posterior covariance at the items, `(K⁻¹ + Λ)⁻¹`.
    sigma: Mat,
}

impl PreferenceModel {
    /// Fit by Laplace approximation. `lambda` is the comparison-noise
    /// scale of Eq. 9 (must be positive; it also regularizes the probit
    /// slope for deterministic decision makers).
    pub fn fit(data: &PreferenceDataset, kernel: Kernel, lambda: f64) -> Result<Self, PrefError> {
        if data.is_empty() {
            return Err(PrefError::Empty);
        }
        assert!(lambda > 0.0, "PreferenceModel: lambda must be positive");
        let items = data.items().to_vec();
        let item_dim = items[0].len();
        if item_dim != kernel.dim() {
            return Err(PrefError::BadDim {
                item_dim,
                kernel_dim: kernel.dim(),
            });
        }
        let n = items.len();
        let mut k = kernel.matrix(&items);
        k.add_diag(1e-8 * kernel.signal_var());
        let k_chol = Cholesky::decompose_jittered(&k)?;
        let c = std::f64::consts::SQRT_2 * lambda;

        // Damped Newton on the log posterior.
        let mut g = vec![0.0; n];
        let mut log_post = log_posterior(&g, data, &k_chol, c)?;
        let mut converged = false;
        for _ in 0..MAX_NEWTON {
            let (grad_lik, lambda_mat) = likelihood_derivatives(&g, data, n, c);
            // grad = grad_lik - K⁻¹ g
            let kinv_g = k_chol.solve(&g)?;
            let grad = vecops::sub(&grad_lik, &kinv_g);
            let gnorm = grad.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            if gnorm < GRAD_TOL {
                converged = true;
                break;
            }
            // H = Λ + K⁻¹ (SPD); solve H Δ = grad.
            let kinv = k_chol.inverse()?;
            let mut h = lambda_mat.add(&kinv)?;
            h.symmetrize();
            let h_chol = Cholesky::decompose_jittered(&h)?;
            let delta = h_chol.solve(&grad)?;
            // Backtracking line search.
            let mut step = 1.0;
            let mut improved = false;
            for _ in 0..30 {
                let trial: Vec<f64> = g
                    .iter()
                    .zip(&delta)
                    .map(|(&gi, &di)| gi + step * di)
                    .collect();
                let lp = log_posterior(&trial, data, &k_chol, c)?;
                if lp > log_post {
                    g = trial;
                    log_post = lp;
                    improved = true;
                    break;
                }
                step *= 0.5;
            }
            if !improved {
                // Gradient is small enough that no step helps: accept.
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(PrefError::NoConvergence {
                iterations: MAX_NEWTON,
            });
        }

        // Posterior covariance Σ = (K⁻¹ + Λ)⁻¹ at the mode.
        let (_, lambda_mat) = likelihood_derivatives(&g, data, n, c);
        let kinv = k_chol.inverse()?;
        let mut h = lambda_mat.add(&kinv)?;
        h.symmetrize();
        let sigma = Cholesky::decompose_jittered(&h)?.inverse()?;
        let alpha = k_chol.solve(&g)?;

        Ok(PreferenceModel {
            items,
            kernel,
            lambda,
            g_map: g,
            k_chol,
            alpha,
            sigma,
        })
    }

    /// Comparison-noise scale `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// MAP latent utilities at the training items.
    pub fn map_utilities(&self) -> &[f64] {
        &self.g_map
    }

    /// The distinct items the model was trained on.
    pub fn items(&self) -> &[Vec<f64>] {
        &self.items
    }

    /// Posterior mean and variance of the latent utility at `y`.
    ///
    /// A single-point posterior cannot fail after a successful fit; in
    /// the impossible event that it does, fall back to the prior
    /// (mean 0, full kernel variance).
    pub fn predict_utility(&self, y: &[f64]) -> (f64, f64) {
        match self.posterior_joint(std::slice::from_ref(&y.to_vec())) {
            Ok((mean, cov)) => (mean[0], cov[(0, 0)].max(0.0)),
            Err(_) => (0.0, self.kernel.eval(y, y).max(0.0)),
        }
    }

    /// Joint posterior (mean, covariance) of the latent utility at a set
    /// of query outcome vectors.
    pub fn posterior_joint(&self, ys: &[Vec<f64>]) -> Result<(Vec<f64>, Mat), PrefError> {
        let kxq = self.kernel.cross_matrix(&self.items, ys); // n x q
        let mean: Vec<f64> = (0..ys.len())
            .map(|j| vecops::dot(&kxq.col(j), &self.alpha))
            .collect();
        // cov = K** − K*ᵀK⁻¹K* + K*ᵀK⁻¹ Σ K⁻¹K*
        let kqq = self.kernel.matrix(ys);
        let w = self.k_chol.solve_mat(&kxq)?; // K⁻¹ K*, n x q
        let reduction = kxq.transpose().matmul(&w)?;
        let middle = w.transpose().matmul(&self.sigma.matmul(&w)?)?;
        let mut cov = kqq.sub(&reduction)?.add(&middle)?;
        cov.symmetrize();
        for i in 0..cov.rows() {
            if cov[(i, i)] < 0.0 {
                cov[(i, i)] = 0.0;
            }
        }
        Ok((mean, cov))
    }

    /// Probability that `a ≻ b` under the posterior (integrating both
    /// the latent uncertainty and the probit response noise).
    pub fn prob_prefers(&self, a: &[f64], b: &[f64]) -> f64 {
        // A failed posterior (impossible after a successful fit) means
        // total ignorance: 50/50.
        let Ok((mean, cov)) = self.posterior_joint(&[a.to_vec(), b.to_vec()]) else {
            return 0.5;
        };
        let mu = mean[0] - mean[1];
        let var = (cov[(0, 0)] + cov[(1, 1)] - 2.0 * cov[(0, 1)]).max(0.0);
        let c = std::f64::consts::SQRT_2 * self.lambda;
        norm_cdf(mu / (var + c * c).sqrt())
    }
}

/// Log posterior (up to a constant): Σ log Φ(u_v) − ½ gᵀK⁻¹g.
fn log_posterior(
    g: &[f64],
    data: &PreferenceDataset,
    k_chol: &Cholesky,
    c: f64,
) -> Result<f64, PrefError> {
    let mut ll = 0.0;
    for cmp in data.comparisons() {
        let u = (g[cmp.winner] - g[cmp.loser]) / c;
        ll += eva_stats::normal::log_norm_cdf(u);
    }
    let quad = k_chol.quad_form(g)?;
    Ok(ll - 0.5 * quad)
}

/// Gradient of the log likelihood w.r.t. `g`, and the curvature matrix
/// `Λ = −∇² log lik` (PSD).
fn likelihood_derivatives(
    g: &[f64],
    data: &PreferenceDataset,
    n: usize,
    c: f64,
) -> (Vec<f64>, Mat) {
    let mut grad = vec![0.0; n];
    let mut lam = Mat::zeros(n, n);
    for cmp in data.comparisons() {
        let (a, b) = (cmp.winner, cmp.loser);
        let u = (g[a] - g[b]) / c;
        // v = φ/Φ (inverse Mills), w = v (u + v) > 0.
        let v = eva_stats::normal::mills_ratio_inv(u);
        let w = v * (u + v);
        grad[a] += v / c;
        grad[b] -= v / c;
        let wcc = w / (c * c);
        lam[(a, a)] += wcc;
        lam[(b, b)] += wcc;
        lam[(a, b)] -= wcc;
        lam[(b, a)] -= wcc;
    }
    (grad, lam)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::FunctionOracle;
    use eva_gp::KernelType;
    use eva_stats::rng::seeded;
    use rand::Rng;

    fn default_kernel(dim: usize) -> Kernel {
        Kernel::isotropic(KernelType::Rbf, dim, 0.5, 1.0)
    }

    /// Build a dataset of `n` random comparisons in [0,1]^dim, answered
    /// by the given utility.
    fn random_dataset(
        utility: impl Fn(&[f64]) -> f64 + Copy,
        dim: usize,
        n: usize,
        seed: u64,
    ) -> PreferenceDataset {
        let mut rng = seeded(seed);
        let mut data = PreferenceDataset::new();
        let mut oracle = FunctionOracle::new(utility);
        for _ in 0..n {
            let a: Vec<f64> = (0..dim).map(|_| rng.gen()).collect();
            let b: Vec<f64> = (0..dim).map(|_| rng.gen()).collect();
            data.query(&mut oracle, &a, &b);
        }
        data
    }

    #[test]
    fn map_utilities_respect_observed_order() {
        let data = random_dataset(|y| -y[0], 1, 15, 1);
        let model = PreferenceModel::fit(&data, default_kernel(1), 0.1).unwrap();
        // Every training comparison should be reproduced at the mode.
        for cmp in data.comparisons() {
            assert!(
                model.map_utilities()[cmp.winner] > model.map_utilities()[cmp.loser],
                "MAP order violates training comparison {cmp:?}"
            );
        }
    }

    #[test]
    fn predicts_held_out_comparisons_linear_utility() {
        let utility = |y: &[f64]| -(y[0] + 2.0 * y[1]);
        let data = random_dataset(utility, 2, 40, 2);
        let model = PreferenceModel::fit(&data, default_kernel(2), 0.1).unwrap();
        let mut rng = seeded(3);
        let mut correct = 0;
        let trials = 200;
        for _ in 0..trials {
            let a: Vec<f64> = vec![rng.gen(), rng.gen()];
            let b: Vec<f64> = vec![rng.gen(), rng.gen()];
            let (ua, _) = model.predict_utility(&a);
            let (ub, _) = model.predict_utility(&b);
            if (ua > ub) == (utility(&a) > utility(&b)) {
                correct += 1;
            }
        }
        let acc = correct as f64 / trials as f64;
        assert!(acc > 0.85, "held-out accuracy {acc}");
    }

    #[test]
    fn accuracy_improves_with_more_comparisons() {
        // The Fig. 9 mechanism in miniature.
        let utility = |y: &[f64]| -(0.5 * y[0] + 1.5 * y[1] + y[2]);
        let eval = |n: usize| -> f64 {
            let data = random_dataset(utility, 3, n, 4);
            let model = PreferenceModel::fit(&data, default_kernel(3), 0.1).unwrap();
            let mut rng = seeded(5);
            let trials = 300;
            let mut correct = 0;
            for _ in 0..trials {
                let a: Vec<f64> = (0..3).map(|_| rng.gen()).collect();
                let b: Vec<f64> = (0..3).map(|_| rng.gen()).collect();
                let (ua, _) = model.predict_utility(&a);
                let (ub, _) = model.predict_utility(&b);
                if (ua > ub) == (utility(&a) > utility(&b)) {
                    correct += 1;
                }
            }
            correct as f64 / trials as f64
        };
        let acc_small = eval(3);
        let acc_large = eval(30);
        assert!(
            acc_large > acc_small,
            "no improvement: {acc_small} -> {acc_large}"
        );
        assert!(acc_large > 0.85, "large-sample accuracy {acc_large}");
    }

    #[test]
    fn posterior_variance_shrinks_near_observed_items() {
        let data = random_dataset(|y| -y[0], 1, 25, 6);
        let model = PreferenceModel::fit(&data, default_kernel(1), 0.1).unwrap();
        let seen = data.items()[0].clone();
        let (_, var_seen) = model.predict_utility(&seen);
        let (_, var_far) = model.predict_utility(&[50.0]);
        assert!(var_far > var_seen, "{var_far} vs {var_seen}");
    }

    #[test]
    fn prob_prefers_is_calibrated_in_direction() {
        let data = random_dataset(|y| -y[0], 1, 30, 7);
        let model = PreferenceModel::fit(&data, default_kernel(1), 0.1).unwrap();
        let p_good = model.prob_prefers(&[0.1], &[0.9]);
        let p_bad = model.prob_prefers(&[0.9], &[0.1]);
        assert!(p_good > 0.7, "p_good = {p_good}");
        assert!((p_good + p_bad - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset_rejected() {
        let data = PreferenceDataset::new();
        assert!(matches!(
            PreferenceModel::fit(&data, default_kernel(1), 0.1),
            Err(PrefError::Empty)
        ));
    }

    #[test]
    fn dim_mismatch_rejected() {
        let mut data = PreferenceDataset::new();
        data.add(&[0.0, 1.0], &[1.0, 0.0]);
        assert!(matches!(
            PreferenceModel::fit(&data, default_kernel(3), 0.1),
            Err(PrefError::BadDim { .. })
        ));
    }

    #[test]
    fn single_comparison_fits() {
        let mut data = PreferenceDataset::new();
        data.add(&[0.0], &[1.0]);
        let model = PreferenceModel::fit(&data, default_kernel(1), 0.1).unwrap();
        let (u0, _) = model.predict_utility(&[0.0]);
        let (u1, _) = model.predict_utility(&[1.0]);
        assert!(u0 > u1);
    }

    #[test]
    fn contradictory_comparisons_average_out() {
        // a ≻ b and b ≻ a: utilities should stay close to each other.
        let mut data = PreferenceDataset::new();
        data.add(&[0.0], &[1.0]);
        data.add(&[1.0], &[0.0]);
        let model = PreferenceModel::fit(&data, default_kernel(1), 0.1).unwrap();
        let g = model.map_utilities();
        assert!((g[0] - g[1]).abs() < 0.2, "{g:?}");
    }
}
