//! The preference dataset and decision-maker oracles.

use rand::Rng;

/// One answered comparison: the decision maker preferred
/// `items[winner]` over `items[loser]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comparison {
    /// Index of the preferred outcome vector.
    pub winner: usize,
    /// Index of the rejected outcome vector.
    pub loser: usize,
}

/// A growing set of distinct outcome vectors plus the comparisons
/// collected over them. Items are deduplicated by L∞ tolerance so
/// repeated queries at the same outcome share a latent utility.
#[derive(Debug, Clone, Default)]
pub struct PreferenceDataset {
    items: Vec<Vec<f64>>,
    comparisons: Vec<Comparison>,
}

/// Items closer than this in L∞ are considered identical.
const DEDUP_TOL: f64 = 1e-9;

impl PreferenceDataset {
    /// Empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// The distinct outcome vectors seen so far.
    pub fn items(&self) -> &[Vec<f64>] {
        &self.items
    }

    /// The comparisons collected so far.
    pub fn comparisons(&self) -> &[Comparison] {
        &self.comparisons
    }

    /// Number of comparisons (`V` in the paper).
    pub fn len(&self) -> usize {
        self.comparisons.len()
    }

    /// True when no comparisons have been recorded.
    pub fn is_empty(&self) -> bool {
        self.comparisons.is_empty()
    }

    /// Intern an outcome vector, returning its item index.
    pub fn intern(&mut self, y: &[f64]) -> usize {
        if let Some(i) = self.find(y) {
            return i;
        }
        self.items.push(y.to_vec());
        self.items.len() - 1
    }

    fn find(&self, y: &[f64]) -> Option<usize> {
        self.items.iter().position(|it| {
            it.len() == y.len() && it.iter().zip(y).all(|(&a, &b)| (a - b).abs() <= DEDUP_TOL)
        })
    }

    /// Record that the decision maker preferred `preferred` over `other`.
    pub fn add(&mut self, preferred: &[f64], other: &[f64]) {
        let w = self.intern(preferred);
        let l = self.intern(other);
        assert_ne!(w, l, "PreferenceDataset::add: item compared to itself");
        self.comparisons.push(Comparison {
            winner: w,
            loser: l,
        });
    }

    /// Ask `oracle` to compare `a` and `b`, record the answer.
    pub fn query<D: DecisionMaker + ?Sized>(&mut self, oracle: &mut D, a: &[f64], b: &[f64]) {
        if oracle.prefers(a, b) {
            self.add(a, b);
        } else {
            self.add(b, a);
        }
    }
}

/// The decision maker of Sec. 4.2: answers "which outcome do you
/// prefer?" queries. In the paper's evaluation this is the hidden true
/// preference function (Eq. 13); in a deployment it is a human.
pub trait DecisionMaker {
    /// True iff `a` is preferred to `b`.
    fn prefers(&mut self, a: &[f64], b: &[f64]) -> bool;
}

/// Deterministic oracle wrapping a hidden utility function.
pub struct FunctionOracle<F: Fn(&[f64]) -> f64> {
    utility: F,
}

impl<F: Fn(&[f64]) -> f64> FunctionOracle<F> {
    /// Wrap a utility function (higher = preferred).
    pub fn new(utility: F) -> Self {
        FunctionOracle { utility }
    }
}

impl<F: Fn(&[f64]) -> f64> DecisionMaker for FunctionOracle<F> {
    fn prefers(&mut self, a: &[f64], b: &[f64]) -> bool {
        (self.utility)(a) >= (self.utility)(b)
    }
}

/// Probit-noisy oracle: answers correctly with probability
/// `Φ(|u(a)-u(b)| / (√2 λ))` — the generative model behind Eq. 9.
pub struct NoisyOracle<F: Fn(&[f64]) -> f64, R: Rng> {
    utility: F,
    lambda: f64,
    rng: R,
}

impl<F: Fn(&[f64]) -> f64, R: Rng> NoisyOracle<F, R> {
    /// Wrap a utility with comparison noise `lambda` (0 = deterministic).
    pub fn new(utility: F, lambda: f64, rng: R) -> Self {
        assert!(lambda >= 0.0, "NoisyOracle: negative lambda");
        NoisyOracle {
            utility,
            lambda,
            rng,
        }
    }
}

impl<F: Fn(&[f64]) -> f64, R: Rng> DecisionMaker for NoisyOracle<F, R> {
    fn prefers(&mut self, a: &[f64], b: &[f64]) -> bool {
        let diff = (self.utility)(a) - (self.utility)(b);
        if self.lambda == 0.0 {
            return diff >= 0.0;
        }
        // P(a ≻ b) = Φ(diff / (√2 λ)); sample the probit response.
        let p = eva_stats::norm_cdf(diff / (std::f64::consts::SQRT_2 * self.lambda));
        self.rng.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_stats::rng::seeded;

    #[test]
    fn intern_deduplicates() {
        let mut d = PreferenceDataset::new();
        let a = d.intern(&[1.0, 2.0]);
        let b = d.intern(&[1.0, 2.0 + 1e-12]);
        let c = d.intern(&[1.0, 3.0]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(d.items().len(), 2);
    }

    #[test]
    fn add_records_direction() {
        let mut d = PreferenceDataset::new();
        d.add(&[1.0], &[0.0]);
        assert_eq!(d.len(), 1);
        let cmp = d.comparisons()[0];
        assert_eq!(d.items()[cmp.winner], vec![1.0]);
        assert_eq!(d.items()[cmp.loser], vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "compared to itself")]
    fn self_comparison_rejected() {
        let mut d = PreferenceDataset::new();
        d.add(&[1.0], &[1.0]);
    }

    #[test]
    fn function_oracle_is_consistent() {
        let mut o = FunctionOracle::new(|y: &[f64]| -y[0]);
        assert!(o.prefers(&[1.0], &[2.0]));
        assert!(!o.prefers(&[3.0], &[2.0]));
    }

    #[test]
    fn query_routes_through_oracle() {
        let mut d = PreferenceDataset::new();
        let mut o = FunctionOracle::new(|y: &[f64]| y[0]);
        d.query(&mut o, &[0.0], &[5.0]);
        let cmp = d.comparisons()[0];
        assert_eq!(d.items()[cmp.winner], vec![5.0]);
    }

    #[test]
    fn noisy_oracle_error_rate_matches_probit() {
        // utility gap 1.0, λ = 1.0: P(correct) = Φ(1/√2) ≈ 0.760.
        let mut o = NoisyOracle::new(|y: &[f64]| y[0], 1.0, seeded(5));
        let n = 20_000;
        let correct = (0..n).filter(|_| o.prefers(&[1.0], &[0.0])).count() as f64 / n as f64;
        let want = eva_stats::norm_cdf(1.0 / std::f64::consts::SQRT_2);
        assert!((correct - want).abs() < 0.01, "{correct} vs {want}");
    }

    #[test]
    fn zero_lambda_oracle_is_deterministic() {
        let mut o = NoisyOracle::new(|y: &[f64]| y[0], 0.0, seeded(6));
        for _ in 0..100 {
            assert!(o.prefers(&[1.0], &[0.0]));
        }
    }
}
