//! EUBO pair selection and the preference-elicitation loop.
//!
//! Paper Eq. 11: `EUBO(y₁, y₂) = E_V[max(g(y₁), g(y₂))]`, the Expected
//! Utility of the Best Option (Lin et al., AISTATS'22) — an analytically
//! tractable stand-in for the one-step benefit gain of Eq. 10. For a
//! bivariate normal posterior the expectation has the closed form
//! `μ₁Φ(δ/s) + μ₂Φ(−δ/s) + s·φ(δ/s)` with `δ = μ₁−μ₂`,
//! `s² = σ₁² + σ₂² − 2σ₁₂`.

use eva_gp::Kernel;
use eva_stats::{norm_cdf, norm_pdf};
use rand::Rng;

use crate::dataset::{DecisionMaker, PreferenceDataset};
use crate::model::{PrefError, PreferenceModel};

/// Closed-form `E[max(g(y1), g(y2))]` under the model posterior.
///
/// A two-point posterior cannot fail on a fitted model; should the
/// numerics misbehave anyway, the pair scores `-inf` and is never
/// selected.
pub fn eubo_pair_value(model: &PreferenceModel, y1: &[f64], y2: &[f64]) -> f64 {
    let Ok((mean, cov)) = model.posterior_joint(&[y1.to_vec(), y2.to_vec()]) else {
        return f64::NEG_INFINITY;
    };
    e_max_bivariate(mean[0], mean[1], cov[(0, 0)], cov[(1, 1)], cov[(0, 1)])
}

/// `E[max(X, Y)]` for jointly normal `X ~ N(μ1, σ1²)`, `Y ~ N(μ2, σ2²)`
/// with covariance `σ12` (Clark 1961).
pub fn e_max_bivariate(mu1: f64, mu2: f64, var1: f64, var2: f64, cov12: f64) -> f64 {
    let s2 = (var1 + var2 - 2.0 * cov12).max(0.0);
    if s2 < 1e-18 {
        return mu1.max(mu2);
    }
    let s = s2.sqrt();
    let d = (mu1 - mu2) / s;
    mu1 * norm_cdf(d) + mu2 * norm_cdf(-d) + s * norm_pdf(d)
}

/// Configuration of the elicitation loop.
#[derive(Debug, Clone)]
pub struct ElicitConfig {
    /// Number of comparisons to collect (`V` in Algorithm 2).
    pub n_comparisons: usize,
    /// Candidate pairs scored by EUBO per round (sampled from the
    /// candidate pool).
    pub pairs_per_round: usize,
    /// Kernel for the preference GP over (normalized) outcome space.
    pub kernel: Kernel,
    /// Probit noise scale `λ` of Eq. 9.
    pub lambda: f64,
}

impl ElicitConfig {
    /// Sensible defaults for a `dim`-dimensional normalized outcome space.
    pub fn for_dim(dim: usize) -> Self {
        ElicitConfig {
            n_comparisons: 18,
            pairs_per_round: 64,
            kernel: Kernel::isotropic(eva_gp::KernelType::Rbf, dim, 0.5, 1.0),
            lambda: 0.1,
        }
    }
}

/// Run the preference-elicitation loop of Algorithm 2 (lines 6-11):
/// repeatedly pick the EUBO-maximal pair from `candidates`, ask the
/// decision maker, and refit. Returns the final model and the dataset.
///
/// The first comparison pairs the two most distant candidates (EUBO is
/// undefined before any data exists).
pub fn elicit_preferences<D: DecisionMaker + ?Sized, R: Rng + ?Sized>(
    oracle: &mut D,
    candidates: &[Vec<f64>],
    config: &ElicitConfig,
    rng: &mut R,
) -> Result<(PreferenceModel, PreferenceDataset), PrefError> {
    assert!(
        candidates.len() >= 2,
        "elicit_preferences: need at least two candidate outcomes"
    );
    let mut data = PreferenceDataset::new();

    // Bootstrap: most-distant pair spans the outcome space best.
    let (i0, j0) = most_distant_pair(candidates);
    data.query(oracle, &candidates[i0], &candidates[j0]);
    let mut model = PreferenceModel::fit(&data, config.kernel.clone(), config.lambda)?;

    while data.len() < config.n_comparisons {
        // Score a random subset of pairs by EUBO; take the best.
        let mut best: Option<((usize, usize), f64)> = None;
        for _ in 0..config.pairs_per_round {
            let i = rng.gen_range(0..candidates.len());
            let mut j = rng.gen_range(0..candidates.len());
            if i == j {
                j = (j + 1) % candidates.len();
            }
            let v = eubo_pair_value(&model, &candidates[i], &candidates[j]);
            if best.is_none_or(|(_, bv)| v > bv) {
                best = Some(((i, j), v));
            }
        }
        // No scorable pair (pairs_per_round = 0 or every posterior
        // failed): stop asking rather than loop forever.
        let Some(((i, j), _)) = best else {
            break;
        };
        data.query(oracle, &candidates[i], &candidates[j]);
        model = PreferenceModel::fit(&data, config.kernel.clone(), config.lambda)?;
    }
    Ok((model, data))
}

fn most_distant_pair(candidates: &[Vec<f64>]) -> (usize, usize) {
    let mut best = (0, 1);
    let mut best_d = -1.0;
    for i in 0..candidates.len() {
        for j in (i + 1)..candidates.len() {
            let d = eva_linalg::vecops::sq_dist(&candidates[i], &candidates[j]);
            if d > best_d {
                best_d = d;
                best = (i, j);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::FunctionOracle;
    use eva_gp::KernelType;
    use eva_stats::rng::seeded;

    #[test]
    fn e_max_degenerate_cases() {
        // Perfectly correlated equal-variance: max = the larger mean.
        assert_eq!(e_max_bivariate(1.0, 0.0, 0.5, 0.5, 0.5), 1.0);
        // Symmetric independent standard normals: E[max] = 1/√π.
        let want = 1.0 / std::f64::consts::PI.sqrt();
        assert!((e_max_bivariate(0.0, 0.0, 1.0, 1.0, 0.0) - want).abs() < 1e-9);
    }

    #[test]
    fn e_max_dominates_means() {
        // E[max] >= max of means, always.
        for (m1, m2) in [(0.0, 0.0), (1.0, -1.0), (-2.0, 3.0)] {
            let v = e_max_bivariate(m1, m2, 1.0, 2.0, 0.3);
            assert!(v >= m1.max(m2) - 1e-12);
        }
    }

    #[test]
    fn elicitation_recovers_linear_preference() {
        let utility = |y: &[f64]| -(y[0] + 3.0 * y[1]);
        let mut oracle = FunctionOracle::new(utility);
        let mut rng = seeded(11);
        // Candidate outcomes: a grid in [0,1]².
        let candidates: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i % 5) as f64 / 4.0, (i / 5) as f64 / 4.0])
            .collect();
        let config = ElicitConfig::for_dim(2);
        let (model, data) =
            elicit_preferences(&mut oracle, &candidates, &config, &mut rng).unwrap();
        assert_eq!(data.len(), config.n_comparisons);
        // Held-out pairwise accuracy.
        let mut correct = 0;
        let trials = 200;
        let mut trng = seeded(12);
        for _ in 0..trials {
            use rand::Rng as _;
            let a: Vec<f64> = vec![trng.gen(), trng.gen()];
            let b: Vec<f64> = vec![trng.gen(), trng.gen()];
            let (ua, _) = model.predict_utility(&a);
            let (ub, _) = model.predict_utility(&b);
            if (ua > ub) == (utility(&a) > utility(&b)) {
                correct += 1;
            }
        }
        let acc = correct as f64 / trials as f64;
        assert!(acc > 0.8, "elicited model accuracy {acc}");
    }

    #[test]
    fn eubo_prefers_informative_over_settled_pairs() {
        // After observing a ≻ b strongly, comparing (a, b) again has
        // lower EUBO than comparing two *unexplored* distant points with
        // large posterior uncertainty... EUBO favors high mean + high
        // uncertainty; at minimum it must be finite and ordered sanely.
        let mut data = PreferenceDataset::new();
        data.add(&[0.0, 0.0], &[1.0, 1.0]);
        data.add(&[0.0, 0.0], &[1.0, 0.0]);
        let kernel = Kernel::isotropic(KernelType::Rbf, 2, 0.5, 1.0);
        let model = PreferenceModel::fit(&data, kernel, 0.1).unwrap();
        let settled = eubo_pair_value(&model, &[1.0, 1.0], &[1.0, 0.99]);
        let informative = eubo_pair_value(&model, &[0.0, 0.0], &[0.0, 1.0]);
        assert!(
            informative > settled,
            "informative {informative} vs settled {settled}"
        );
    }

    #[test]
    fn most_distant_pair_found() {
        let cands = vec![vec![0.0, 0.0], vec![0.1, 0.1], vec![1.0, 1.0]];
        assert_eq!(most_distant_pair(&cands), (0, 2));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_tiny_candidate_sets() {
        let mut oracle = FunctionOracle::new(|y: &[f64]| y[0]);
        let _ = elicit_preferences(
            &mut oracle,
            &[vec![0.0]],
            &ElicitConfig::for_dim(1),
            &mut seeded(0),
        );
    }
}
