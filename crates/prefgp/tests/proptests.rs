//! Property tests for preference learning.

use eva_gp::{Kernel, KernelType};
use eva_prefgp::{FunctionOracle, PreferenceDataset, PreferenceModel};
use eva_stats::rng::seeded;
use proptest::prelude::*;
use rand::Rng;

/// Random linear utilities over [0,1]²; weights bounded away from zero
/// so comparisons are informative.
fn weights_strategy() -> impl Strategy<Value = (f64, f64)> {
    (0.3f64..3.0, 0.3f64..3.0)
}

fn build_dataset(w: (f64, f64), n: usize, seed: u64) -> PreferenceDataset {
    let mut rng = seeded(seed);
    let mut data = PreferenceDataset::new();
    let mut oracle = FunctionOracle::new(move |y: &[f64]| -(w.0 * y[0] + w.1 * y[1]));
    for _ in 0..n {
        let a: Vec<f64> = vec![rng.gen(), rng.gen()];
        let b: Vec<f64> = vec![rng.gen(), rng.gen()];
        data.query(&mut oracle, &a, &b);
    }
    data
}

fn fit(data: &PreferenceDataset) -> PreferenceModel {
    let kernel = Kernel::isotropic(KernelType::Rbf, 2, 0.5, 1.0);
    PreferenceModel::fit(data, kernel, 0.1).expect("Laplace fit")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The MAP utilities always reproduce every *consistent* training
    /// comparison's order.
    #[test]
    fn map_respects_training_data(w in weights_strategy(), seed in 0u64..500) {
        let data = build_dataset(w, 12, seed);
        let model = fit(&data);
        for cmp in data.comparisons() {
            let gw = model.map_utilities()[cmp.winner];
            let gl = model.map_utilities()[cmp.loser];
            prop_assert!(gw > gl - 1e-6, "winner {gw} vs loser {gl}");
        }
    }

    /// prob_prefers is a proper complement: P(a ≻ b) + P(b ≻ a) = 1.
    #[test]
    fn preference_probability_is_complementary(w in weights_strategy(), seed in 0u64..500) {
        let data = build_dataset(w, 8, seed);
        let model = fit(&data);
        let mut rng = seeded(seed ^ 0xf00d);
        for _ in 0..10 {
            let a: Vec<f64> = vec![rng.gen(), rng.gen()];
            let b: Vec<f64> = vec![rng.gen(), rng.gen()];
            let pab = model.prob_prefers(&a, &b);
            let pba = model.prob_prefers(&b, &a);
            prop_assert!((pab + pba - 1.0).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&pab));
        }
    }

    /// Posterior utility variance is nonnegative and finite everywhere.
    #[test]
    fn utility_variance_is_sane(w in weights_strategy(), seed in 0u64..500,
                                qx in 0.0f64..1.0, qy in 0.0f64..1.0) {
        let data = build_dataset(w, 10, seed);
        let model = fit(&data);
        let (mu, var) = model.predict_utility(&[qx, qy]);
        prop_assert!(mu.is_finite());
        prop_assert!(var.is_finite() && var >= 0.0);
    }

    /// Preference learning is label-scale free: the oracle's utility
    /// can be rescaled arbitrarily without changing the comparisons,
    /// hence the fitted model.
    #[test]
    fn invariant_to_utility_scaling(w in weights_strategy(), seed in 0u64..200,
                                    scale in 0.1f64..10.0) {
        let data1 = build_dataset(w, 10, seed);
        let data2 = build_dataset((w.0 * scale, w.1 * scale), 10, seed);
        // Same seed + same *ordering* utility => identical datasets.
        prop_assert_eq!(data1.comparisons(), data2.comparisons());
        prop_assert_eq!(data1.items(), data2.items());
    }
}
