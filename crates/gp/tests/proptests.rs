//! Property tests for GP regression invariants.

use eva_gp::{GpModel, Kernel, KernelType};
use proptest::prelude::*;

/// A 1-D dataset of distinct inputs with bounded targets.
fn dataset_strategy() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    proptest::collection::vec(-1.0f64..1.0, 4..12).prop_map(|targets| {
        let xs: Vec<Vec<f64>> = (0..targets.len())
            .map(|i| vec![i as f64 / targets.len() as f64])
            .collect();
        (xs, targets)
    })
}

fn model(xs: Vec<Vec<f64>>, ys: Vec<f64>, family: KernelType) -> GpModel {
    let kernel = Kernel::isotropic(family, 1, 0.4, 1.0);
    GpModel::new(kernel, 1e-3, xs, ys).expect("valid GP data")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Posterior variance is nonnegative everywhere and bounded by the
    /// prior variance (plus round-off).
    #[test]
    fn variance_bounds((xs, ys) in dataset_strategy(), q in -0.5f64..1.5) {
        let m = model(xs, ys, KernelType::Matern52);
        let (_, var) = m.predict(&[q]);
        prop_assert!(var >= 0.0);
        let prior_var = m.kernel().signal_var();
        // Original-units prior variance: signal_var × y_std².
        let y = m.train_y();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let y_var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / y.len() as f64;
        let bound = prior_var * y_var.max(1.0) + 1e-6;
        prop_assert!(var <= bound, "var {var} > bound {bound}");
    }

    /// Adding an observation never increases posterior variance at the
    /// observed location (information monotonicity).
    #[test]
    fn conditioning_shrinks_variance((xs, ys) in dataset_strategy(), q in 0.0f64..1.0) {
        let m = model(xs, ys, KernelType::Rbf);
        let (mu, var_before) = m.predict(&[q]);
        let m2 = m.with_added(&[vec![q]], &[mu]).expect("conditioning");
        let (_, var_after) = m2.predict(&[q]);
        prop_assert!(var_after <= var_before + 1e-9,
            "variance grew: {var_before} -> {var_after}");
    }

    /// Predictions are invariant to permuting the training set.
    #[test]
    fn permutation_invariance((xs, ys) in dataset_strategy(), q in 0.0f64..1.0) {
        let m1 = model(xs.clone(), ys.clone(), KernelType::Matern32);
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.reverse();
        let xs2: Vec<Vec<f64>> = idx.iter().map(|&i| xs[i].clone()).collect();
        let ys2: Vec<f64> = idx.iter().map(|&i| ys[i]).collect();
        let m2 = model(xs2, ys2, KernelType::Matern32);
        let (a, va) = m1.predict(&[q]);
        let (b, vb) = m2.predict(&[q]);
        prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        prop_assert!((va - vb).abs() < 1e-6);
    }

    /// Affine target transforms propagate exactly:
    /// fit(a*y + b) predicts a*fit(y) + b.
    #[test]
    fn affine_equivariance((xs, ys) in dataset_strategy(),
                           a in 0.5f64..3.0, b in -2.0f64..2.0,
                           q in 0.0f64..1.0) {
        let m1 = model(xs.clone(), ys.clone(), KernelType::Rbf);
        let ys2: Vec<f64> = ys.iter().map(|&v| a * v + b).collect();
        let m2 = model(xs, ys2, KernelType::Rbf);
        let (mu1, var1) = m1.predict(&[q]);
        let (mu2, var2) = m2.predict(&[q]);
        prop_assert!((mu2 - (a * mu1 + b)).abs() < 1e-6,
            "{mu2} vs {}", a * mu1 + b);
        prop_assert!((var2 - a * a * var1).abs() < 1e-6 * a * a + 1e-9);
    }

    /// Incremental conditioning (Cholesky extension, frozen
    /// standardization) is equivalent to the from-scratch rebuild:
    /// same predictions, same variances, same marginal likelihood,
    /// to 1e-8, across random datasets, update batches and families.
    #[test]
    fn condition_equals_rebuild((xs, ys) in dataset_strategy(),
                                new_ys in proptest::collection::vec(-1.0f64..1.0, 1..4),
                                q in -0.25f64..1.25) {
        for family in [KernelType::Rbf, KernelType::Matern32, KernelType::Matern52] {
            let m = model(xs.clone(), ys.clone(), family);
            // New inputs interleave with (but do not duplicate) training inputs.
            let new_xs: Vec<Vec<f64>> = (0..new_ys.len())
                .map(|i| vec![(i as f64 + 0.37) / new_ys.len() as f64])
                .collect();
            let fast = m.condition(&new_xs, &new_ys).expect("condition");
            let slow = m.with_added(&new_xs, &new_ys).expect("rebuild");
            let (mf, vf) = fast.predict(&[q]);
            let (ms, vs) = slow.predict(&[q]);
            prop_assert!((mf - ms).abs() < 1e-8, "{family:?}: mean {mf} vs {ms}");
            prop_assert!((vf - vs).abs() < 1e-8, "{family:?}: var {vf} vs {vs}");
            prop_assert!(
                (fast.log_marginal_likelihood() - slow.log_marginal_likelihood()).abs() < 1e-8);
            prop_assert_eq!(fast.observation_noise(), slow.observation_noise());
        }
    }

    /// Conditioning one observation at a time agrees with conditioning
    /// the whole batch at once.
    #[test]
    fn condition_is_batch_associative((xs, ys) in dataset_strategy()) {
        let m = model(xs, ys, KernelType::Matern52);
        let new_xs = vec![vec![0.21], vec![0.77]];
        let new_ys = vec![0.4, -0.6];
        let batch = m.condition(&new_xs, &new_ys).expect("batch");
        let seq = m
            .condition(&new_xs[..1], &new_ys[..1]).expect("step 1")
            .condition(&new_xs[1..], &new_ys[1..]).expect("step 2");
        for q in [0.05f64, 0.5, 0.95] {
            let (mb, vb) = batch.predict(&[q]);
            let (ms, vs) = seq.predict(&[q]);
            prop_assert!((mb - ms).abs() < 1e-8);
            prop_assert!((vb - vs).abs() < 1e-8);
        }
    }

    /// The joint posterior diagonal equals pointwise predictions.
    #[test]
    fn joint_matches_marginals((xs, ys) in dataset_strategy()) {
        let m = model(xs, ys, KernelType::Matern52);
        let queries = vec![vec![0.1], vec![0.5], vec![0.9]];
        let post = m.posterior(&queries).expect("posterior");
        for (j, q) in queries.iter().enumerate() {
            let (mu, var) = m.predict(q);
            prop_assert!((post.mean[j] - mu).abs() < 1e-8);
            prop_assert!((post.cov[(j, j)] - var).abs() < 1e-7);
        }
    }
}
