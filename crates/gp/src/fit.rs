//! Marginal-likelihood hyperparameter fitting.
//!
//! We optimize log-lengthscales, log-signal-variance and log-noise over
//! box bounds with multi-start Nelder-Mead. Inputs are expected to be
//! normalized to roughly unit scale (the workload layer normalizes
//! configuration knobs to \[0,1\]); the default bounds reflect that.

use eva_linalg::{vecops, Cholesky, Mat};
use eva_obs::{span, NoopRecorder, Phase, Recorder};
use eva_opt::{multi_start, NelderMeadOptions};
use rand::Rng;

use crate::kernel::base_correlation;
use crate::model::standardization_of;
use crate::{GpModel, Kernel, KernelType, Result};

/// Configuration for [`fit_gp`].
#[derive(Debug, Clone)]
pub struct FitConfig {
    /// Kernel family to fit.
    pub family: KernelType,
    /// Use one lengthscale per input dimension (ARD) or a shared one.
    pub ard: bool,
    /// Bounds on lengthscales (natural scale).
    pub lengthscale_bounds: (f64, f64),
    /// Bounds on signal variance (natural scale, standardized targets).
    pub signal_bounds: (f64, f64),
    /// Bounds on noise variance (natural scale, standardized targets).
    pub noise_bounds: (f64, f64),
    /// Random restarts for the hyperparameter search.
    pub restarts: usize,
    /// Max objective evaluations per local search.
    pub max_evals: usize,
    /// Warm-start log-parameter vector from a previous fit (see
    /// [`theta_of`]). When set (and the right length for the data), it
    /// replaces the cold default start *and* one random restart is
    /// dropped — the warm seed is already a near-optimum, so the search
    /// both starts closer and does less exploration.
    pub warm_start: Option<Vec<f64>>,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            family: KernelType::Matern52,
            ard: true,
            lengthscale_bounds: (5e-3, 20.0),
            signal_bounds: (1e-3, 50.0),
            noise_bounds: (1e-6, 1.0),
            restarts: 4,
            max_evals: 200,
            warm_start: None,
        }
    }
}

/// The log-parameter vector `[ln ls_1 .. ln ls_d, ln signal, ln noise]`
/// of a fitted model — the shape [`fit_gp`] optimizes over with
/// `ard: true`, and the shape [`FitConfig::warm_start`] expects.
pub fn theta_of(model: &GpModel) -> Vec<f64> {
    let k = model.kernel();
    let mut theta: Vec<f64> = k.lengthscales().iter().map(|&l| l.ln()).collect();
    theta.push(k.signal_var().ln());
    theta.push(model.noise_var().ln());
    theta
}

/// Log-marginal-likelihood evaluator with per-fit caching.
///
/// The Nelder-Mead objective is called hundreds of times per fit with
/// the *same* data and only the hyperparameters changing. Everything
/// theta-independent is computed once here: the per-dimension squared
/// coordinate differences (so each evaluation assembles `K` with one
/// multiply-add per dimension per pair instead of re-walking the input
/// vectors) and the standardized target vector.
struct LmlEvaluator {
    family: KernelType,
    ard: bool,
    n_ls: usize,
    /// Per-dimension matrices of squared coordinate differences.
    sq_diff: Vec<Mat>,
    /// Standardized targets.
    z: Vec<f64>,
}

impl LmlEvaluator {
    fn new(x: &[Vec<f64>], y: &[f64], family: KernelType, ard: bool, n_ls: usize) -> Self {
        let n = x.len();
        let dim = x.first().map(|p| p.len()).unwrap_or(0);
        let mut sq_diff: Vec<Mat> = (0..dim).map(|_| Mat::zeros(n, n)).collect();
        for (d, m) in sq_diff.iter_mut().enumerate() {
            for i in 0..n {
                for j in 0..i {
                    let diff = x[i][d] - x[j][d];
                    let v = diff * diff;
                    m[(i, j)] = v;
                    m[(j, i)] = v;
                }
            }
        }
        let (y_mean, y_std) = standardization_of(y);
        let z: Vec<f64> = y.iter().map(|&v| (v - y_mean) / y_std).collect();
        LmlEvaluator {
            family,
            ard,
            n_ls,
            sq_diff,
            z,
        }
    }

    /// Negative log marginal likelihood at `theta`; `+inf` when the
    /// kernel matrix is not factorizable at these hyperparameters.
    fn nll(&self, theta: &[f64]) -> f64 {
        let n = self.z.len();
        let dim = self.sq_diff.len();
        let inv_ls_sq: Vec<f64> = if self.ard {
            theta[..self.n_ls]
                .iter()
                .map(|&t| (-2.0 * t).exp())
                .collect()
        } else {
            vec![(-2.0 * theta[0]).exp(); dim]
        };
        let signal = theta[self.n_ls].exp();
        let noise = theta[self.n_ls + 1].exp();
        if !signal.is_finite() || !noise.is_finite() || noise <= 0.0 {
            return f64::INFINITY;
        }
        let mut k = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..i {
                let mut r2 = 0.0;
                for (d, inv) in inv_ls_sq.iter().enumerate() {
                    r2 += self.sq_diff[d][(i, j)] * inv;
                }
                let v = signal * base_correlation(self.family, r2);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
            k[(i, i)] = signal + noise;
        }
        let chol = match Cholesky::decompose_jittered(&k) {
            Ok(c) => c,
            Err(_) => return f64::INFINITY,
        };
        let alpha = match chol.solve(&self.z) {
            Ok(a) => a,
            Err(_) => return f64::INFINITY,
        };
        let data_fit = vecops::dot(&self.z, &alpha);
        0.5 * data_fit + 0.5 * chol.log_det() + 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln()
    }
}

/// Fit a GP to `(x, y)` by maximizing log marginal likelihood.
///
/// Returns the best model found; hyperparameter search failures on
/// individual candidates (non-PSD kernels at extreme hyperparameters)
/// are treated as `-inf` likelihood rather than hard errors.
pub fn fit_gp<R: Rng + ?Sized>(
    x: &[Vec<f64>],
    y: &[f64],
    config: &FitConfig,
    rng: &mut R,
) -> Result<GpModel> {
    fit_gp_recorded(x, y, config, rng, &NoopRecorder)
}

/// [`fit_gp`] with telemetry: the whole fit runs under a
/// [`Phase::GpFit`] span, and the solver's evaluation count and the
/// Cholesky dimension are observed on `rec`. With a
/// [`NoopRecorder`] this is bit-identical to [`fit_gp`] (which
/// delegates here).
pub fn fit_gp_recorded<R: Rng + ?Sized>(
    x: &[Vec<f64>],
    y: &[f64],
    config: &FitConfig,
    rng: &mut R,
    rec: &dyn Recorder,
) -> Result<GpModel> {
    let _fit_span = span(rec, Phase::GpFit);
    let dim = x.first().map(|p| p.len()).unwrap_or(0);
    let n_ls = if config.ard { dim.max(1) } else { 1 };

    // Parameter vector: [log ls_1.. log ls_k, log signal, log noise].
    let mut bounds = Vec::with_capacity(n_ls + 2);
    for _ in 0..n_ls {
        bounds.push((
            config.lengthscale_bounds.0.ln(),
            config.lengthscale_bounds.1.ln(),
        ));
    }
    bounds.push((config.signal_bounds.0.ln(), config.signal_bounds.1.ln()));
    bounds.push((config.noise_bounds.0.ln(), config.noise_bounds.1.ln()));

    let build = |theta: &[f64]| -> Result<GpModel> {
        let ls: Vec<f64> = if config.ard {
            theta[..n_ls].iter().map(|&t| t.exp()).collect()
        } else {
            vec![theta[0].exp(); dim.max(1)]
        };
        let signal = theta[n_ls].exp();
        let noise = theta[n_ls + 1].exp();
        let kernel = Kernel::new(config.family, ls, signal);
        GpModel::new(kernel, noise, x.to_vec(), y.to_vec())
    };

    let evaluator = LmlEvaluator::new(x, y, config.family, config.ard, n_ls);
    let objective = |theta: &[f64]| -> f64 { evaluator.nll(theta) };

    // Warm seed from a previous fit (clamped into bounds), or the cold
    // default start: unit lengthscales / unit signal / modest noise.
    let warm = config
        .warm_start
        .as_deref()
        .filter(|w| w.len() == n_ls + 2 && w.iter().all(|v| v.is_finite()));
    let (x0, restarts) = match warm {
        Some(w) => {
            let clamped: Vec<f64> = w
                .iter()
                .zip(&bounds)
                .map(|(&v, &(lo, hi))| v.clamp(lo, hi))
                .collect();
            (clamped, config.restarts.saturating_sub(1))
        }
        None => {
            let mut x0 = vec![0.0f64; n_ls + 2];
            x0[n_ls] = 0.0; // log signal = 0
            x0[n_ls + 1] = (0.01f64).ln();
            (x0, config.restarts)
        }
    };
    // Looser tolerances than the solver default: the objective lives in
    // log-parameter space, where an x-diameter of 1e-3 means every
    // hyperparameter is pinned to ~0.1 % — far below any effect on
    // predictions. The solver needs both spreads under tolerance, and
    // flat ARD plateaus shrink the simplex one halving per contraction,
    // so tolerances of 1e-9 just burn the whole eval budget on polish.
    let opts = NelderMeadOptions {
        max_evals: config.max_evals,
        f_tol: 1e-6,
        x_tol: 1e-3,
        ..Default::default()
    };
    let best = multi_start(objective, &x0, &bounds, restarts, &opts, rng);
    if rec.enabled() {
        rec.add("gp.fits", 1);
        if warm.is_some() {
            rec.add("gp.fit.warm_starts", 1);
        }
        rec.observe("gp.fit.solver_evals", best.evals as f64);
        rec.observe("gp.cholesky.dim", x.len() as f64);
    }
    build(&best.x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_stats::metrics::r_squared;
    use eva_stats::rng::seeded;

    /// Fit quality on a smooth 1-D function.
    #[test]
    fn fit_recovers_smooth_function() {
        let mut rng = seeded(21);
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|p| (6.0 * p[0]).sin() + 0.01 * eva_stats::rng::standard_normal(&mut rng))
            .collect();
        let model = fit_gp(&x, &y, &FitConfig::default(), &mut rng).unwrap();
        let test_x: Vec<Vec<f64>> = (0..20).map(|i| vec![(i as f64 + 0.5) / 20.0]).collect();
        let truth: Vec<f64> = test_x.iter().map(|p| (6.0 * p[0]).sin()).collect();
        let pred: Vec<f64> = test_x.iter().map(|p| model.predict_mean(p)).collect();
        let r2 = r_squared(&truth, &pred);
        assert!(r2 > 0.99, "R² = {r2}");
    }

    /// ARD: an irrelevant dimension should get a long lengthscale.
    #[test]
    fn ard_suppresses_irrelevant_dimension() {
        let mut rng = seeded(22);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let a = (i % 10) as f64 / 10.0;
            let b = (i / 10) as f64 / 6.0;
            x.push(vec![a, b]);
            y.push((6.0 * a).sin()); // depends only on dim 0
        }
        let model = fit_gp(&x, &y, &FitConfig::default(), &mut rng).unwrap();
        let ls = model.kernel().lengthscales();
        assert!(
            ls[1] > 2.0 * ls[0],
            "expected dim-1 lengthscale to dominate: {ls:?}"
        );
    }

    /// Noisy data should be assigned a larger noise variance than clean data.
    #[test]
    fn noise_estimate_tracks_actual_noise() {
        let mut rng = seeded(23);
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 50.0]).collect();
        let clean: Vec<f64> = x.iter().map(|p| (4.0 * p[0]).cos()).collect();
        let noisy: Vec<f64> = clean
            .iter()
            .map(|&v| v + 0.4 * eva_stats::rng::standard_normal(&mut rng))
            .collect();
        let cfg = FitConfig::default();
        let m_clean = fit_gp(&x, &clean, &cfg, &mut rng).unwrap();
        let m_noisy = fit_gp(&x, &noisy, &cfg, &mut rng).unwrap();
        assert!(
            m_noisy.noise_var() > 5.0 * m_clean.noise_var(),
            "noisy {} vs clean {}",
            m_noisy.noise_var(),
            m_clean.noise_var()
        );
    }

    #[test]
    fn non_ard_shares_lengthscale() {
        let mut rng = seeded(24);
        let x: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i % 5) as f64 / 5.0, (i / 5) as f64 / 5.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|p| p[0] + p[1]).collect();
        let cfg = FitConfig {
            ard: false,
            restarts: 2,
            ..Default::default()
        };
        let model = fit_gp(&x, &y, &cfg, &mut rng).unwrap();
        let ls = model.kernel().lengthscales();
        assert_eq!(ls[0], ls[1]);
    }

    #[test]
    fn theta_of_matches_fitted_hyperparameters() {
        let mut rng = seeded(26);
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64 / 20.0, (i % 4) as f64 / 4.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|p| (5.0 * p[0]).sin() + p[1]).collect();
        let m = fit_gp(&x, &y, &FitConfig::default(), &mut rng).unwrap();
        let theta = theta_of(&m);
        assert_eq!(theta.len(), 2 + 2); // 2 ARD lengthscales + signal + noise
        for (t, &l) in theta.iter().zip(m.kernel().lengthscales()) {
            assert!((t.exp() - l).abs() < 1e-12);
        }
        assert!((theta[2].exp() - m.kernel().signal_var()).abs() < 1e-12);
        assert!((theta[3].exp() - m.noise_var()).abs() < 1e-12);
    }

    #[test]
    fn warm_start_preserves_fit_quality() {
        let mut rng = seeded(27);
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (6.0 * p[0]).sin()).collect();
        let cold = fit_gp(&x, &y, &FitConfig::default(), &mut rng).unwrap();
        // Re-fit the same data seeded from the cold optimum, one restart
        // fewer — the warm fit must land at (or above) the same LML
        // basin, not degrade.
        let warm_cfg = FitConfig {
            warm_start: Some(theta_of(&cold)),
            ..Default::default()
        };
        let warm = fit_gp(&x, &y, &warm_cfg, &mut rng).unwrap();
        assert!(
            warm.log_marginal_likelihood() >= cold.log_marginal_likelihood() - 1e-6,
            "warm {} vs cold {}",
            warm.log_marginal_likelihood(),
            cold.log_marginal_likelihood()
        );
    }

    #[test]
    fn warm_start_with_wrong_shape_is_ignored() {
        let mut rng = seeded(28);
        let x: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64 / 15.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| p[0] * p[0]).collect();
        let cfg = FitConfig {
            warm_start: Some(vec![0.0; 7]), // wrong length for 1-D ARD
            ..Default::default()
        };
        let m = fit_gp(&x, &y, &cfg, &mut rng).unwrap();
        assert!(m.log_marginal_likelihood().is_finite());
    }

    #[test]
    fn fit_quality_improves_with_more_data() {
        // The Fig. 8 mechanism in miniature: R² rises with training size.
        let f = |p: &[f64]| (3.0 * p[0]).sin() * (2.0 * p[1]).cos();
        let test_x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 6) as f64 / 6.0 + 0.05, (i / 6) as f64 / 5.0 + 0.05])
            .collect();
        let truth: Vec<f64> = test_x.iter().map(|p| f(p)).collect();
        let mut r2s = Vec::new();
        for &n in &[10usize, 80] {
            let mut rng = seeded(25);
            let pts = eva_stats::design::latin_hypercube(&mut rng, n, 2);
            let y: Vec<f64> = pts.iter().map(|p| f(p)).collect();
            let cfg = FitConfig {
                restarts: 2,
                ..Default::default()
            };
            let model = fit_gp(&pts, &y, &cfg, &mut rng).unwrap();
            let pred: Vec<f64> = test_x.iter().map(|p| model.predict_mean(p)).collect();
            r2s.push(r_squared(&truth, &pred));
        }
        assert!(r2s[1] > r2s[0], "R² did not improve: {r2s:?}");
        assert!(r2s[1] > 0.95, "large-sample fit poor: {r2s:?}");
    }
}
