//! Marginal-likelihood hyperparameter fitting.
//!
//! We optimize log-lengthscales, log-signal-variance and log-noise over
//! box bounds with multi-start Nelder-Mead. Inputs are expected to be
//! normalized to roughly unit scale (the workload layer normalizes
//! configuration knobs to \[0,1\]); the default bounds reflect that.

use eva_obs::{span, NoopRecorder, Phase, Recorder};
use eva_opt::{multi_start, NelderMeadOptions};
use rand::Rng;

use crate::{GpModel, Kernel, KernelType, Result};

/// Configuration for [`fit_gp`].
#[derive(Debug, Clone)]
pub struct FitConfig {
    /// Kernel family to fit.
    pub family: KernelType,
    /// Use one lengthscale per input dimension (ARD) or a shared one.
    pub ard: bool,
    /// Bounds on lengthscales (natural scale).
    pub lengthscale_bounds: (f64, f64),
    /// Bounds on signal variance (natural scale, standardized targets).
    pub signal_bounds: (f64, f64),
    /// Bounds on noise variance (natural scale, standardized targets).
    pub noise_bounds: (f64, f64),
    /// Random restarts for the hyperparameter search.
    pub restarts: usize,
    /// Max objective evaluations per local search.
    pub max_evals: usize,
}

impl Default for FitConfig {
    fn default() -> Self {
        FitConfig {
            family: KernelType::Matern52,
            ard: true,
            lengthscale_bounds: (5e-3, 20.0),
            signal_bounds: (1e-3, 50.0),
            noise_bounds: (1e-6, 1.0),
            restarts: 4,
            max_evals: 200,
        }
    }
}

/// Fit a GP to `(x, y)` by maximizing log marginal likelihood.
///
/// Returns the best model found; hyperparameter search failures on
/// individual candidates (non-PSD kernels at extreme hyperparameters)
/// are treated as `-inf` likelihood rather than hard errors.
pub fn fit_gp<R: Rng + ?Sized>(
    x: &[Vec<f64>],
    y: &[f64],
    config: &FitConfig,
    rng: &mut R,
) -> Result<GpModel> {
    fit_gp_recorded(x, y, config, rng, &NoopRecorder)
}

/// [`fit_gp`] with telemetry: the whole fit runs under a
/// [`Phase::GpFit`] span, and the solver's evaluation count and the
/// Cholesky dimension are observed on `rec`. With a
/// [`NoopRecorder`] this is bit-identical to [`fit_gp`] (which
/// delegates here).
pub fn fit_gp_recorded<R: Rng + ?Sized>(
    x: &[Vec<f64>],
    y: &[f64],
    config: &FitConfig,
    rng: &mut R,
    rec: &dyn Recorder,
) -> Result<GpModel> {
    let _fit_span = span(rec, Phase::GpFit);
    let dim = x.first().map(|p| p.len()).unwrap_or(0);
    let n_ls = if config.ard { dim.max(1) } else { 1 };

    // Parameter vector: [log ls_1.. log ls_k, log signal, log noise].
    let mut bounds = Vec::with_capacity(n_ls + 2);
    for _ in 0..n_ls {
        bounds.push((
            config.lengthscale_bounds.0.ln(),
            config.lengthscale_bounds.1.ln(),
        ));
    }
    bounds.push((config.signal_bounds.0.ln(), config.signal_bounds.1.ln()));
    bounds.push((config.noise_bounds.0.ln(), config.noise_bounds.1.ln()));

    let build = |theta: &[f64]| -> Result<GpModel> {
        let ls: Vec<f64> = if config.ard {
            theta[..n_ls].iter().map(|&t| t.exp()).collect()
        } else {
            vec![theta[0].exp(); dim.max(1)]
        };
        let signal = theta[n_ls].exp();
        let noise = theta[n_ls + 1].exp();
        let kernel = Kernel::new(config.family, ls, signal);
        GpModel::new(kernel, noise, x.to_vec(), y.to_vec())
    };

    let objective = |theta: &[f64]| -> f64 {
        match build(theta) {
            Ok(m) => -m.log_marginal_likelihood(),
            Err(_) => f64::INFINITY,
        }
    };

    // Start from unit lengthscales / unit signal / modest noise.
    let mut x0 = vec![0.0f64; n_ls + 2];
    x0[n_ls] = 0.0; // log signal = 0
    x0[n_ls + 1] = (0.01f64).ln();
    let opts = NelderMeadOptions {
        max_evals: config.max_evals,
        ..Default::default()
    };
    let best = multi_start(objective, &x0, &bounds, config.restarts, &opts, rng);
    if rec.enabled() {
        rec.add("gp.fits", 1);
        rec.observe("gp.fit.solver_evals", best.evals as f64);
        rec.observe("gp.cholesky.dim", x.len() as f64);
    }
    build(&best.x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_stats::metrics::r_squared;
    use eva_stats::rng::seeded;

    /// Fit quality on a smooth 1-D function.
    #[test]
    fn fit_recovers_smooth_function() {
        let mut rng = seeded(21);
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|p| (6.0 * p[0]).sin() + 0.01 * eva_stats::rng::standard_normal(&mut rng))
            .collect();
        let model = fit_gp(&x, &y, &FitConfig::default(), &mut rng).unwrap();
        let test_x: Vec<Vec<f64>> = (0..20).map(|i| vec![(i as f64 + 0.5) / 20.0]).collect();
        let truth: Vec<f64> = test_x.iter().map(|p| (6.0 * p[0]).sin()).collect();
        let pred: Vec<f64> = test_x.iter().map(|p| model.predict_mean(p)).collect();
        let r2 = r_squared(&truth, &pred);
        assert!(r2 > 0.99, "R² = {r2}");
    }

    /// ARD: an irrelevant dimension should get a long lengthscale.
    #[test]
    fn ard_suppresses_irrelevant_dimension() {
        let mut rng = seeded(22);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let a = (i % 10) as f64 / 10.0;
            let b = (i / 10) as f64 / 6.0;
            x.push(vec![a, b]);
            y.push((6.0 * a).sin()); // depends only on dim 0
        }
        let model = fit_gp(&x, &y, &FitConfig::default(), &mut rng).unwrap();
        let ls = model.kernel().lengthscales();
        assert!(
            ls[1] > 2.0 * ls[0],
            "expected dim-1 lengthscale to dominate: {ls:?}"
        );
    }

    /// Noisy data should be assigned a larger noise variance than clean data.
    #[test]
    fn noise_estimate_tracks_actual_noise() {
        let mut rng = seeded(23);
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 50.0]).collect();
        let clean: Vec<f64> = x.iter().map(|p| (4.0 * p[0]).cos()).collect();
        let noisy: Vec<f64> = clean
            .iter()
            .map(|&v| v + 0.4 * eva_stats::rng::standard_normal(&mut rng))
            .collect();
        let cfg = FitConfig::default();
        let m_clean = fit_gp(&x, &clean, &cfg, &mut rng).unwrap();
        let m_noisy = fit_gp(&x, &noisy, &cfg, &mut rng).unwrap();
        assert!(
            m_noisy.noise_var() > 5.0 * m_clean.noise_var(),
            "noisy {} vs clean {}",
            m_noisy.noise_var(),
            m_clean.noise_var()
        );
    }

    #[test]
    fn non_ard_shares_lengthscale() {
        let mut rng = seeded(24);
        let x: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![(i % 5) as f64 / 5.0, (i / 5) as f64 / 5.0])
            .collect();
        let y: Vec<f64> = x.iter().map(|p| p[0] + p[1]).collect();
        let cfg = FitConfig {
            ard: false,
            restarts: 2,
            ..Default::default()
        };
        let model = fit_gp(&x, &y, &cfg, &mut rng).unwrap();
        let ls = model.kernel().lengthscales();
        assert_eq!(ls[0], ls[1]);
    }

    #[test]
    fn fit_quality_improves_with_more_data() {
        // The Fig. 8 mechanism in miniature: R² rises with training size.
        let f = |p: &[f64]| (3.0 * p[0]).sin() * (2.0 * p[1]).cos();
        let test_x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 6) as f64 / 6.0 + 0.05, (i / 6) as f64 / 5.0 + 0.05])
            .collect();
        let truth: Vec<f64> = test_x.iter().map(|p| f(p)).collect();
        let mut r2s = Vec::new();
        for &n in &[10usize, 80] {
            let mut rng = seeded(25);
            let pts = eva_stats::design::latin_hypercube(&mut rng, n, 2);
            let y: Vec<f64> = pts.iter().map(|p| f(p)).collect();
            let cfg = FitConfig {
                restarts: 2,
                ..Default::default()
            };
            let model = fit_gp(&pts, &y, &cfg, &mut rng).unwrap();
            let pred: Vec<f64> = test_x.iter().map(|p| model.predict_mean(p)).collect();
            r2s.push(r_squared(&truth, &pred));
        }
        assert!(r2s[1] > r2s[0], "R² did not improve: {r2s:?}");
        assert!(r2s[1] > 0.95, "large-sample fit poor: {r2s:?}");
    }
}
