//! Exact GP regression: posterior means, variances, joint covariance
//! and posterior sampling.

use eva_linalg::{vecops, Cholesky, Mat};
use rand::Rng;

use crate::{GpError, Kernel, Result};

/// An exact Gaussian-process regression model.
///
/// Targets are standardized internally (zero mean, unit variance) so the
/// hyperparameter priors/bounds in [`crate::fit`] transfer across
/// outcome scales — the five EVA objectives span six orders of magnitude
/// (seconds vs. TFLOPs).
#[derive(Debug, Clone)]
pub struct GpModel {
    kernel: Kernel,
    noise_var: f64,
    x: Vec<Vec<f64>>,
    y_raw: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    chol: Cholesky,
    /// `(K + σ² I)^{-1} z` where `z` is the standardized target vector.
    alpha: Vec<f64>,
}

/// Joint latent posterior at a set of query points.
#[derive(Debug, Clone)]
pub struct GpPosterior {
    /// Posterior mean per query point (original target units).
    pub mean: Vec<f64>,
    /// Posterior covariance (original target units squared).
    pub cov: Mat,
}

impl GpModel {
    /// Build a GP from training data. `noise_var` is the observation
    /// noise variance **in standardized target units** (the scale
    /// [`crate::fit`] optimizes on).
    pub fn new(kernel: Kernel, noise_var: f64, x: Vec<Vec<f64>>, y: Vec<f64>) -> Result<Self> {
        if x.is_empty() {
            return Err(GpError::BadData("no training points".into()));
        }
        if x.len() != y.len() {
            return Err(GpError::BadData(format!(
                "{} inputs vs {} targets",
                x.len(),
                y.len()
            )));
        }
        if x.iter().any(|p| p.len() != kernel.dim()) {
            return Err(GpError::BadData(format!(
                "input dim != kernel dim {}",
                kernel.dim()
            )));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // also rejects NaN
        if !(noise_var > 0.0) {
            return Err(GpError::BadData("noise_var must be positive".into()));
        }
        let (y_mean, y_std) = standardization_of(&y);
        Self::build(kernel, noise_var, x, y, y_mean, y_std)
    }

    /// Build a GP with an *explicitly given* target standardization
    /// instead of deriving it from `y`. This is the from-scratch
    /// reference path for conditioning with fixed hyperparameters:
    /// `noise_var` was fitted in a particular standardized scale, so
    /// updates must keep `y_mean`/`y_std` frozen or the noise silently
    /// changes meaning in original units (see [`GpModel::with_added`]).
    pub fn with_standardization(
        kernel: Kernel,
        noise_var: f64,
        x: Vec<Vec<f64>>,
        y: Vec<f64>,
        y_mean: f64,
        y_std: f64,
    ) -> Result<Self> {
        if x.is_empty() || x.len() != y.len() {
            return Err(GpError::BadData(format!(
                "{} inputs vs {} targets",
                x.len(),
                y.len()
            )));
        }
        if x.iter().any(|p| p.len() != kernel.dim()) {
            return Err(GpError::BadData(format!(
                "input dim != kernel dim {}",
                kernel.dim()
            )));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // also rejects NaN
        if !(noise_var > 0.0) {
            return Err(GpError::BadData("noise_var must be positive".into()));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(y_std > 0.0) || !y_mean.is_finite() {
            return Err(GpError::BadData(format!(
                "bad standardization: mean {y_mean}, std {y_std}"
            )));
        }
        Self::build(kernel, noise_var, x, y, y_mean, y_std)
    }

    fn build(
        kernel: Kernel,
        noise_var: f64,
        x: Vec<Vec<f64>>,
        y: Vec<f64>,
        y_mean: f64,
        y_std: f64,
    ) -> Result<Self> {
        let z: Vec<f64> = y.iter().map(|&v| (v - y_mean) / y_std).collect();
        let mut k = kernel.matrix(&x);
        k.add_diag(noise_var);
        let chol = Cholesky::decompose_jittered(&k)?;
        let alpha = chol.solve(&z)?;
        Ok(GpModel {
            kernel,
            noise_var,
            x,
            y_raw: y,
            y_mean,
            y_std,
            chol,
            alpha,
        })
    }

    /// Number of training points.
    pub fn n(&self) -> usize {
        self.x.len()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.kernel.dim()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Observation noise variance (standardized units).
    pub fn noise_var(&self) -> f64 {
        self.noise_var
    }

    /// Training inputs.
    pub fn train_x(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// Training targets (original units).
    pub fn train_y(&self) -> &[f64] {
        &self.y_raw
    }

    /// Predictive mean and *latent* variance at one point, in original
    /// target units. Add `noise_var * y_std²` for an observation.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        debug_assert_eq!(x.len(), self.dim(), "predict: dim mismatch");
        let kx: Vec<f64> = self.x.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        let mean_z = vecops::dot(&kx, &self.alpha);
        // var = k(x,x) - kx^T (K+σ²I)^{-1} kx. The factorization
        // dimension is consistent by construction; if it ever were not,
        // fall back to the (conservative) prior variance.
        let v = self.chol.quad_form(&kx).unwrap_or(0.0);
        let var_z = (self.kernel.eval(x, x) - v).max(0.0);
        (
            self.y_mean + self.y_std * mean_z,
            self.y_std * self.y_std * var_z,
        )
    }

    /// Predictive mean at one point (original units).
    pub fn predict_mean(&self, x: &[f64]) -> f64 {
        self.predict(x).0
    }

    /// Predict means and variances at many points.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Vectorized [`GpModel::predict`] over many points: builds the
    /// q×n cross-kernel matrix once (query-major, so each query's
    /// kernel row is a contiguous slice) and reuses one triangular-solve
    /// scratch buffer across queries instead of allocating per call.
    /// Per-point results are bit-identical to [`GpModel::predict`] —
    /// each row sees the same kernel evaluations (the scaled squared
    /// distance is exactly symmetric), the same dot order, and the same
    /// substitution.
    pub fn predict_many(&self, xs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        if xs.is_empty() {
            return Vec::new();
        }
        debug_assert!(
            xs.iter().all(|x| x.len() == self.dim()),
            "predict_many: dim mismatch"
        );
        let kqx = self.kernel.cross_matrix(xs, &self.x); // q x n
        let s2 = self.y_std * self.y_std;
        let mut scratch = vec![0.0; self.x.len()];
        (0..xs.len())
            .map(|j| {
                let kx = kqx.row(j);
                let mean_z = vecops::dot(kx, &self.alpha);
                let v = self.chol.quad_form_into(kx, &mut scratch).unwrap_or(0.0);
                let var_z = (self.kernel.eval(&xs[j], &xs[j]) - v).max(0.0);
                (self.y_mean + self.y_std * mean_z, s2 * var_z)
            })
            .collect()
    }

    /// A model over the *same inputs and hyperparameters* but fresh
    /// targets: reuses this model's cached Cholesky factor (the Gram
    /// matrix depends only on the inputs, kernel, and noise) and only
    /// re-solves for the weight vector. Bit-identical to
    /// `GpModel::new(kernel, noise_var, x, y)` on the same inputs, at
    /// O(n²) instead of O(n³) — the shared-profiling-design fit path
    /// builds one factor per objective and reuses it across all cameras.
    pub fn with_targets(&self, y: Vec<f64>) -> Result<GpModel> {
        if y.len() != self.x.len() {
            return Err(GpError::BadData(format!(
                "with_targets: {} targets vs {} inputs",
                y.len(),
                self.x.len()
            )));
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(GpError::BadData("with_targets: non-finite target".into()));
        }
        let (y_mean, y_std) = standardization_of(&y);
        let z: Vec<f64> = y.iter().map(|&v| (v - y_mean) / y_std).collect();
        let alpha = self.chol.solve(&z)?;
        Ok(GpModel {
            kernel: self.kernel.clone(),
            noise_var: self.noise_var,
            x: self.x.clone(),
            y_raw: y,
            y_mean,
            y_std,
            chol: self.chol.clone(),
            alpha,
        })
    }

    /// Observation-noise variance in original units.
    pub fn observation_noise(&self) -> f64 {
        self.noise_var * self.y_std * self.y_std
    }

    /// Joint latent posterior (mean vector + full covariance) at `xs`.
    pub fn posterior(&self, xs: &[Vec<f64>]) -> Result<GpPosterior> {
        if xs.is_empty() {
            return Err(GpError::BadData("posterior: empty query set".into()));
        }
        let kxq = self.kernel.cross_matrix(&self.x, xs); // n x q
        let mean: Vec<f64> = (0..xs.len())
            .map(|j| {
                let col = kxq.col(j);
                self.y_mean + self.y_std * vecops::dot(&col, &self.alpha)
            })
            .collect();
        // cov = K(Q,Q) - Kxq^T (K+σ²I)^{-1} Kxq
        let kqq = self.kernel.matrix(xs);
        let w = self.chol.solve_mat(&kxq)?; // n x q
        let reduction = kxq.transpose().matmul(&w)?; // q x q
        let mut cov = kqq.sub(&reduction)?;
        cov.symmetrize();
        // Clamp round-off negatives on the diagonal.
        for i in 0..cov.rows() {
            if cov[(i, i)] < 0.0 {
                cov[(i, i)] = 0.0;
            }
        }
        let s2 = self.y_std * self.y_std;
        Ok(GpPosterior {
            mean,
            cov: cov.scale(s2),
        })
    }

    /// Log marginal likelihood of the training data under the current
    /// hyperparameters, computed on the standardized scale (the quantity
    /// [`crate::fit`] maximizes).
    pub fn log_marginal_likelihood(&self) -> f64 {
        let n = self.n() as f64;
        let z: Vec<f64> = self
            .y_raw
            .iter()
            .map(|&v| (v - self.y_mean) / self.y_std)
            .collect();
        let data_fit = vecops::dot(&z, &self.alpha);
        -0.5 * data_fit - 0.5 * self.chol.log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }

    /// Target standardization `(y_mean, y_std)` this model predicts in.
    pub fn standardization(&self) -> (f64, f64) {
        (self.y_mean, self.y_std)
    }

    /// Condition on additional observations, keeping hyperparameters
    /// fixed (the BO inner loop re-fits hyperparameters only every few
    /// iterations; this is the cheap between-refit update).
    ///
    /// The target standardization is **frozen**: `noise_var` was fitted
    /// in the original `y_std` scale, so re-deriving the standardization
    /// from the grown target vector would silently re-scale the noise in
    /// original units. This rebuilds the factorization from scratch —
    /// it is the O(n³) reference path that [`GpModel::condition`] must
    /// match.
    pub fn with_added(&self, x_new: &[Vec<f64>], y_new: &[f64]) -> Result<GpModel> {
        if x_new.len() != y_new.len() {
            return Err(GpError::BadData("with_added: length mismatch".into()));
        }
        let mut x = self.x.clone();
        x.extend(x_new.iter().cloned());
        let mut y = self.y_raw.clone();
        y.extend_from_slice(y_new);
        GpModel::with_standardization(
            self.kernel.clone(),
            self.noise_var,
            x,
            y,
            self.y_mean,
            self.y_std,
        )
    }

    /// Incremental version of [`GpModel::with_added`]: extends the cached
    /// Cholesky factor by the `k` new rows via [`Cholesky::extend`]
    /// (O(k·n²) instead of O(n³)) and reuses the frozen standardization.
    ///
    /// Falls back to the from-scratch rebuild when the extension is not
    /// numerically positive definite (e.g. a new point that duplicates a
    /// training point while the old factor carries jitter the new block
    /// can't absorb) — correctness never depends on the fast path.
    pub fn condition(&self, x_new: &[Vec<f64>], y_new: &[f64]) -> Result<GpModel> {
        if x_new.len() != y_new.len() {
            return Err(GpError::BadData("condition: length mismatch".into()));
        }
        if x_new.is_empty() {
            return Ok(self.clone());
        }
        if x_new.iter().any(|p| p.len() != self.dim()) {
            return Err(GpError::BadData(format!(
                "condition: input dim != kernel dim {}",
                self.dim()
            )));
        }
        if y_new.iter().any(|v| !v.is_finite()) {
            return Err(GpError::BadData("condition: non-finite target".into()));
        }
        let cross = self.kernel.cross_matrix(&self.x, x_new); // n x k
        let mut corner = self.kernel.matrix(x_new); // k x k
        corner.add_diag(self.noise_var);
        let chol = match self.chol.extend(&cross, &corner) {
            Ok(c) => c,
            Err(_) => return self.with_added(x_new, y_new),
        };
        let mut x = self.x.clone();
        x.extend(x_new.iter().cloned());
        let mut y = self.y_raw.clone();
        y.extend_from_slice(y_new);
        let z: Vec<f64> = y.iter().map(|&v| (v - self.y_mean) / self.y_std).collect();
        let alpha = chol.solve(&z)?;
        Ok(GpModel {
            kernel: self.kernel.clone(),
            noise_var: self.noise_var,
            x,
            y_raw: y,
            y_mean: self.y_mean,
            y_std: self.y_std,
            chol,
            alpha,
        })
    }
}

/// Standardization `(mean, std)` derived from a target vector; the std
/// falls back to 1.0 for (near-)constant targets.
pub(crate) fn standardization_of(y: &[f64]) -> (f64, f64) {
    let y_mean = vecops::mean(y);
    let centered: Vec<f64> = y.iter().map(|&v| v - y_mean).collect();
    let var = vecops::dot(&centered, &centered) / y.len().max(1) as f64;
    let y_std = if var > 1e-24 { var.sqrt() } else { 1.0 };
    (y_mean, y_std)
}

impl GpPosterior {
    /// Number of query points.
    pub fn len(&self) -> usize {
        self.mean.len()
    }

    /// True when there are no query points (unreachable by construction,
    /// provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.mean.is_empty()
    }

    /// Draw `n_samples` joint samples; returns an `n_samples x q` matrix.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n_samples: usize) -> Result<Mat> {
        let q = self.len();
        let mut cov = self.cov.clone();
        // Sampling jitter: tiny relative to outcome scales, stabilizes
        // the factorization of nearly singular posteriors.
        cov.add_diag(1e-12 + 1e-9 * mean_diag(&self.cov));
        let chol = Cholesky::decompose_jittered(&cov)?;
        let mut out = Mat::zeros(n_samples, q);
        for s in 0..n_samples {
            let eps = eva_stats::rng::standard_normal_vec(rng, q);
            let correlated = chol.l().matvec(&eps)?;
            for j in 0..q {
                out[(s, j)] = self.mean[j] + correlated[j];
            }
        }
        Ok(out)
    }

    /// Draw joint samples using *given* standard-normal inputs (common
    /// random numbers for acquisition-function comparison). `eps` must be
    /// `n_samples x q`.
    pub fn sample_with(&self, eps: &Mat) -> Result<Mat> {
        let q = self.len();
        if eps.cols() != q {
            return Err(GpError::BadData(format!(
                "sample_with: eps has {} cols, posterior has {q} points",
                eps.cols()
            )));
        }
        let mut cov = self.cov.clone();
        cov.add_diag(1e-12 + 1e-9 * mean_diag(&self.cov));
        let chol = Cholesky::decompose_jittered(&cov)?;
        let mut out = Mat::zeros(eps.rows(), q);
        for s in 0..eps.rows() {
            let correlated = chol.l().matvec(eps.row(s))?;
            for j in 0..q {
                out[(s, j)] = self.mean[j] + correlated[j];
            }
        }
        Ok(out)
    }
}

fn mean_diag(m: &Mat) -> f64 {
    let n = m.rows().max(1);
    (0..m.rows()).map(|i| m[(i, i)].abs()).sum::<f64>() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelType;
    use eva_stats::rng::seeded;

    fn toy_model() -> GpModel {
        let x: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 * 0.4]).collect();
        let y: Vec<f64> = x.iter().map(|p| (p[0] * 2.0).sin() * 3.0 + 5.0).collect();
        let kernel = Kernel::isotropic(KernelType::Matern52, 1, 0.6, 1.0);
        GpModel::new(kernel, 1e-4, x, y).unwrap()
    }

    #[test]
    fn interpolates_training_points_with_small_noise() {
        let m = toy_model();
        for (xi, &yi) in m.train_x().to_vec().iter().zip(m.train_y().to_vec().iter()) {
            let (mean, var) = m.predict(xi);
            assert!((mean - yi).abs() < 0.05, "mean {mean} vs {yi}");
            assert!(var < 0.05, "var {var}");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let m = toy_model();
        let (_, var_near) = m.predict(&[1.0]);
        let (_, var_far) = m.predict(&[10.0]);
        assert!(var_far > var_near * 10.0, "{var_far} vs {var_near}");
        // Far from data, mean reverts toward the target mean.
        let (mean_far, _) = m.predict(&[100.0]);
        let avg = eva_linalg::vecops::mean(m.train_y());
        assert!((mean_far - avg).abs() < 0.3);
    }

    #[test]
    fn posterior_diag_matches_pointwise_variance() {
        let m = toy_model();
        let qs: Vec<Vec<f64>> = vec![vec![0.3], vec![1.7], vec![5.0]];
        let post = m.posterior(&qs).unwrap();
        for (j, q) in qs.iter().enumerate() {
            let (mean, var) = m.predict(q);
            assert!((post.mean[j] - mean).abs() < 1e-9);
            assert!((post.cov[(j, j)] - var).abs() < 1e-8);
        }
    }

    #[test]
    fn posterior_samples_match_moments() {
        let m = toy_model();
        let qs: Vec<Vec<f64>> = vec![vec![0.5], vec![2.5]];
        let post = m.posterior(&qs).unwrap();
        let samples = post.sample(&mut seeded(3), 20_000).unwrap();
        for j in 0..2 {
            let col: Vec<f64> = (0..samples.rows()).map(|s| samples[(s, j)]).collect();
            let mean = eva_linalg::vecops::mean(&col);
            let var = col.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            assert!((mean - post.mean[j]).abs() < 0.05, "mean j={j}");
            assert!(
                (var - post.cov[(j, j)]).abs() < 0.1 * post.cov[(j, j)].max(0.01),
                "var j={j}: {var} vs {}",
                post.cov[(j, j)]
            );
        }
    }

    #[test]
    fn sample_with_is_deterministic_given_eps() {
        let m = toy_model();
        let qs: Vec<Vec<f64>> = vec![vec![0.5], vec![2.5]];
        let post = m.posterior(&qs).unwrap();
        let eps = Mat::from_rows(&[&[0.3, -1.2], &[0.0, 0.7]]);
        let a = post.sample_with(&eps).unwrap();
        let b = post.sample_with(&eps).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-15);
    }

    #[test]
    fn standardization_is_scale_invariant() {
        // Fitting y and 1000*y + 7 must give identical standardized
        // structure -> R² of predictions identical.
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.3]).collect();
        let y1: Vec<f64> = x.iter().map(|p| p[0].cos()).collect();
        let y2: Vec<f64> = y1.iter().map(|&v| 1000.0 * v + 7.0).collect();
        let kernel = Kernel::isotropic(KernelType::Rbf, 1, 0.8, 1.0);
        let m1 = GpModel::new(kernel.clone(), 1e-4, x.clone(), y1).unwrap();
        let m2 = GpModel::new(kernel, 1e-4, x, y2).unwrap();
        let q = vec![1.25];
        let (a, va) = m1.predict(&q);
        let (b, vb) = m2.predict(&q);
        assert!((b - (1000.0 * a + 7.0)).abs() < 1e-6);
        assert!((vb - 1e6 * va).abs() < 1e-3);
    }

    #[test]
    fn observation_noise_is_pinned_across_updates() {
        // Regression: with_added used to re-standardize targets on every
        // update, so noise_var (fitted in the old standardized units)
        // silently drifted in original units as y_std moved. Feed updates
        // whose targets massively widen the spread and pin the noise.
        let m = toy_model();
        let pinned = m.observation_noise();
        let (mean0, std0) = m.standardization();
        let m2 = m.with_added(&[vec![4.1]], &[250.0]).unwrap();
        let m3 = m2.with_added(&[vec![4.3]], &[-300.0]).unwrap();
        assert_eq!(m3.observation_noise(), pinned);
        assert_eq!(m3.standardization(), (mean0, std0));
        let m4 = m
            .condition(&[vec![4.1], vec![4.3]], &[250.0, -300.0])
            .unwrap();
        assert_eq!(m4.observation_noise(), pinned);
    }

    #[test]
    fn condition_matches_from_scratch_rebuild() {
        let m = toy_model();
        let x_new = vec![vec![0.9], vec![2.1], vec![3.3]];
        let y_new = vec![4.2, 6.8, 5.1];
        let fast = m.condition(&x_new, &y_new).unwrap();
        let slow = m.with_added(&x_new, &y_new).unwrap();
        for q in [vec![0.0], vec![1.5], vec![2.9], vec![8.0]] {
            let (mf, vf) = fast.predict(&q);
            let (ms, vs) = slow.predict(&q);
            assert!((mf - ms).abs() < 1e-8, "mean {mf} vs {ms} at {q:?}");
            assert!((vf - vs).abs() < 1e-8, "var {vf} vs {vs} at {q:?}");
        }
        assert!((fast.log_marginal_likelihood() - slow.log_marginal_likelihood()).abs() < 1e-8);
    }

    #[test]
    fn condition_falls_back_on_degenerate_updates() {
        // Conditioning on an exact duplicate of a training point is the
        // worst case for the Schur complement; the result must still be
        // usable (fast path or fallback, transparently).
        let m = toy_model();
        let dup = m.train_x()[3].clone();
        let m2 = m
            .condition(std::slice::from_ref(&dup), &[m.train_y()[3]])
            .unwrap();
        let (mean, var) = m2.predict(&dup);
        assert!(mean.is_finite() && var.is_finite());
        assert!(var >= 0.0);
    }

    #[test]
    fn condition_rejects_bad_inputs() {
        let m = toy_model();
        assert!(m.condition(&[vec![1.0]], &[1.0, 2.0]).is_err());
        assert!(m.condition(&[vec![1.0, 2.0]], &[1.0]).is_err());
        assert!(m.condition(&[vec![1.0]], &[f64::NAN]).is_err());
        // Empty update is the identity.
        let same = m.condition(&[], &[]).unwrap();
        assert_eq!(same.n(), m.n());
    }

    #[test]
    fn with_added_shrinks_uncertainty() {
        let m = toy_model();
        let q = vec![5.0];
        let (_, var_before) = m.predict(&q);
        let m2 = m.with_added(std::slice::from_ref(&q), &[4.0]).unwrap();
        let (mean_after, var_after) = m2.predict(&q);
        assert!(var_after < var_before / 10.0);
        assert!((mean_after - 4.0).abs() < 0.1);
    }

    #[test]
    fn predict_many_is_bit_identical_to_predict() {
        let m = toy_model();
        let qs: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64 * 0.55 - 0.4]).collect();
        let batch = m.predict_many(&qs);
        assert_eq!(batch.len(), qs.len());
        for (q, &(mean_b, var_b)) in qs.iter().zip(&batch) {
            let (mean, var) = m.predict(q);
            assert_eq!(mean.to_bits(), mean_b.to_bits(), "mean at {q:?}");
            assert_eq!(var.to_bits(), var_b.to_bits(), "var at {q:?}");
        }
        assert!(m.predict_many(&[]).is_empty());
    }

    #[test]
    fn with_targets_matches_fresh_build() {
        let m = toy_model();
        let y2: Vec<f64> = m.train_x().iter().map(|p| p[0] * 0.7 - 2.0).collect();
        let fast = m.with_targets(y2.clone()).unwrap();
        let slow = GpModel::new(
            m.kernel().clone(),
            m.noise_var(),
            m.train_x().to_vec(),
            y2.clone(),
        )
        .unwrap();
        assert_eq!(fast.standardization(), slow.standardization());
        for q in [vec![0.1], vec![1.3], vec![2.9]] {
            let (mf, vf) = fast.predict(&q);
            let (ms, vs) = slow.predict(&q);
            assert_eq!(mf.to_bits(), ms.to_bits(), "mean at {q:?}");
            assert_eq!(vf.to_bits(), vs.to_bits(), "var at {q:?}");
        }
        // Length mismatch and non-finite targets are rejected.
        assert!(m.with_targets(vec![1.0]).is_err());
        let mut bad = y2;
        bad[0] = f64::NAN;
        assert!(m.with_targets(bad).is_err());
    }

    #[test]
    fn log_marginal_likelihood_prefers_good_lengthscale() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.25]).collect();
        let y: Vec<f64> = x.iter().map(|p| p[0].sin()).collect();
        let lml = |ls: f64| {
            let kernel = Kernel::isotropic(KernelType::Rbf, 1, ls, 1.0);
            GpModel::new(kernel, 1e-4, x.clone(), y.clone())
                .unwrap()
                .log_marginal_likelihood()
        };
        // A sensible lengthscale beats badly mis-specified ones.
        assert!(lml(1.0) > lml(0.01));
        assert!(lml(1.0) > lml(100.0));
    }

    #[test]
    fn rejects_bad_inputs() {
        let kernel = Kernel::isotropic(KernelType::Rbf, 1, 1.0, 1.0);
        assert!(GpModel::new(kernel.clone(), 1e-4, vec![], vec![]).is_err());
        assert!(GpModel::new(kernel.clone(), 1e-4, vec![vec![0.0]], vec![1.0, 2.0]).is_err());
        assert!(GpModel::new(kernel.clone(), 0.0, vec![vec![0.0]], vec![1.0]).is_err());
        assert!(GpModel::new(kernel, 1e-4, vec![vec![0.0, 1.0]], vec![1.0]).is_err());
    }

    #[test]
    fn constant_targets_are_handled() {
        let x: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let y = vec![3.0; 5];
        let kernel = Kernel::isotropic(KernelType::Matern32, 1, 1.0, 1.0);
        let m = GpModel::new(kernel, 1e-4, x, y).unwrap();
        let (mean, _) = m.predict(&[2.5]);
        assert!((mean - 3.0).abs() < 1e-6);
    }
}
