//! Polynomial-regression outcome models — the *traditional* approach.
//!
//! Sec. 1: "existing EVA schedulers typically begin by modeling the
//! correlation between various QoS and resource usage metrics, and
//! scheduling variables using polynomial regression techniques". This
//! module implements that approach (multivariate polynomial features +
//! ridge-stabilized least squares via Householder QR) so the GP outcome
//! models can be ablated against it — Eq. 2-5's θ/ε forms are linear or
//! quadratic, so degree-2 polynomials are the paper-faithful contender.

use eva_linalg::{Mat, Qr};

use crate::{GpError, Result};

/// A fitted multivariate polynomial regression model.
#[derive(Debug, Clone)]
pub struct PolyModel {
    degree: usize,
    dim: usize,
    /// Coefficients, one per monomial (see [`monomials`] for ordering).
    coeffs: Vec<f64>,
}

impl PolyModel {
    /// Fit a total-degree-`degree` polynomial to `(x, y)` by least
    /// squares. A tiny ridge term keeps near-collinear feature columns
    /// (e.g. grid-sampled inputs) solvable.
    pub fn fit(x: &[Vec<f64>], y: &[f64], degree: usize) -> Result<Self> {
        if x.is_empty() || x.len() != y.len() {
            return Err(GpError::BadData("polyfit: empty or mismatched data".into()));
        }
        let dim = x[0].len();
        if x.iter().any(|p| p.len() != dim) {
            return Err(GpError::BadData("polyfit: ragged inputs".into()));
        }
        let monos = monomials(dim, degree);
        let n_features = monos.len();
        if x.len() < n_features {
            return Err(GpError::BadData(format!(
                "polyfit: {} samples < {} monomials",
                x.len(),
                n_features
            )));
        }
        // Design matrix with ridge augmentation: stack sqrt(λ) I rows.
        let lambda: f64 = 1e-8;
        let rows = x.len() + n_features;
        let mut design = Mat::zeros(rows, n_features);
        for (i, p) in x.iter().enumerate() {
            for (j, mono) in monos.iter().enumerate() {
                design[(i, j)] = eval_monomial(mono, p);
            }
        }
        for j in 0..n_features {
            design[(x.len() + j, j)] = lambda.sqrt();
        }
        let mut rhs = y.to_vec();
        rhs.extend(std::iter::repeat_n(0.0, n_features));

        let qr = Qr::decompose(&design).map_err(GpError::Linalg)?;
        let coeffs = qr.solve_least_squares(&rhs).map_err(GpError::Linalg)?;
        Ok(PolyModel {
            degree,
            dim,
            coeffs,
        })
    }

    /// Total polynomial degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Predict at a point.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "PolyModel::predict: dim mismatch");
        monomials(self.dim, self.degree)
            .iter()
            .zip(&self.coeffs)
            .map(|(mono, &c)| c * eval_monomial(mono, x))
            .sum()
    }
}

/// Exponent vectors of all monomials of total degree ≤ `degree` in
/// `dim` variables, in graded lexicographic order starting with the
/// constant term.
pub fn monomials(dim: usize, degree: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for d in 0..=degree {
        push_degree(dim, d, &mut Vec::new(), &mut out);
    }
    out
}

fn push_degree(dim: usize, remaining: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if prefix.len() == dim {
        if remaining == 0 {
            out.push(prefix.clone());
        }
        return;
    }
    if prefix.len() == dim - 1 {
        prefix.push(remaining);
        out.push(prefix.clone());
        prefix.pop();
        return;
    }
    for e in 0..=remaining {
        prefix.push(e);
        push_degree(dim, remaining - e, prefix, out);
        prefix.pop();
    }
}

fn eval_monomial(exponents: &[usize], x: &[f64]) -> f64 {
    exponents
        .iter()
        .zip(x)
        .map(|(&e, &xi)| xi.powi(e as i32))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomial_counts_match_binomial() {
        // #monomials of total degree <= d in k vars = C(k + d, d).
        assert_eq!(monomials(1, 2).len(), 3); // 1, x, x²
        assert_eq!(monomials(2, 2).len(), 6); // 1, x, y, x², xy, y²
        assert_eq!(monomials(3, 2).len(), 10);
        assert_eq!(monomials(2, 3).len(), 10);
        // Constant term first.
        assert_eq!(monomials(2, 2)[0], vec![0, 0]);
    }

    #[test]
    fn recovers_exact_quadratic() {
        // y = 3 + 2x - x² + 4xy on a grid.
        let f = |p: &[f64]| 3.0 + 2.0 * p[0] - p[0] * p[0] + 4.0 * p[0] * p[1];
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                let p = vec![i as f64 / 5.0, j as f64 / 5.0];
                y.push(f(&p));
                x.push(p);
            }
        }
        let model = PolyModel::fit(&x, &y, 2).unwrap();
        for p in [[0.15, 0.85], [0.5, 0.5], [0.95, 0.05]] {
            assert!((model.predict(&p) - f(&p)).abs() < 1e-5);
        }
    }

    #[test]
    fn degree_one_is_linear_regression() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|p| 2.0 * p[0] + 1.0).collect();
        let model = PolyModel::fit(&x, &y, 1).unwrap();
        assert!((model.predict(&[20.0]) - 41.0).abs() < 1e-6);
    }

    #[test]
    fn underfits_nonpolynomial_targets() {
        // exp(3x) on [0,1]: a quadratic cannot be exact.
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (3.0 * p[0]).exp()).collect();
        let model = PolyModel::fit(&x, &y, 2).unwrap();
        let worst = x
            .iter()
            .zip(&y)
            .map(|(p, &t)| (model.predict(p) - t).abs())
            .fold(0.0f64, f64::max);
        assert!(worst > 0.1, "quadratic unexpectedly fit exp: {worst}");
    }

    #[test]
    fn rejects_insufficient_samples() {
        let x = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let y = vec![0.0, 1.0];
        // Degree-2 in 2 vars needs >= 6 samples.
        assert!(PolyModel::fit(&x, &y, 2).is_err());
    }

    #[test]
    fn rejects_ragged_input() {
        let x = vec![vec![0.0], vec![1.0, 2.0]];
        assert!(PolyModel::fit(&x, &[0.0, 1.0], 1).is_err());
    }
}
