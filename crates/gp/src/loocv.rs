//! Leave-one-out cross-validation without refitting.
//!
//! Rasmussen & Williams (GPML, Eq. 5.10-5.12): with `α = K_y⁻¹ y` and
//! `K_y = K + σ²I`, the LOO predictive moments at training point `i`
//! are available from a single factorization:
//!
//! ```text
//! μ_{-i} = y_i − α_i / [K_y⁻¹]_ii       σ²_{-i} = 1 / [K_y⁻¹]_ii
//! ```
//!
//! The outcome-model bank uses this to report honest generalization
//! error without 5·M refits per diagnostic pass.

use eva_linalg::vecops;

use crate::model::GpModel;
use crate::Result;

/// Per-point LOO diagnostics (original target units).
#[derive(Debug, Clone)]
pub struct LooDiagnostics {
    /// LOO predictive means per training point.
    pub means: Vec<f64>,
    /// LOO predictive variances per training point (includes noise).
    pub variances: Vec<f64>,
    /// LOO residuals `y_i − μ_{-i}`.
    pub residuals: Vec<f64>,
    /// LOO log predictive density (sum over points) — the model-quality
    /// scalar to compare kernels with.
    pub log_pseudo_likelihood: f64,
}

impl LooDiagnostics {
    /// Root-mean-square LOO error.
    pub fn rmse(&self) -> f64 {
        let mse: f64 =
            self.residuals.iter().map(|r| r * r).sum::<f64>() / self.residuals.len() as f64;
        mse.sqrt()
    }

    /// Fraction of residuals within ±2 LOO standard deviations — a
    /// calibration check (≈ 0.95 for a well-calibrated model).
    pub fn coverage_2sigma(&self) -> f64 {
        let hits = self
            .residuals
            .iter()
            .zip(&self.variances)
            .filter(|(r, v)| r.abs() <= 2.0 * v.sqrt())
            .count();
        hits as f64 / self.residuals.len() as f64
    }
}

/// Compute LOO diagnostics for a fitted GP.
pub fn loo_diagnostics(model: &GpModel) -> Result<LooDiagnostics> {
    let n = model.n();
    // Work on the standardized scale, then map back.
    let y = model.train_y();
    let y_mean = vecops::mean(y);
    let centered: Vec<f64> = y.iter().map(|&v| v - y_mean).collect();
    let var = vecops::dot(&centered, &centered) / n as f64;
    let y_std = if var > 1e-24 { var.sqrt() } else { 1.0 };
    let z: Vec<f64> = centered.iter().map(|&v| v / y_std).collect();

    // Rebuild K_y and factor (the model's internal factorization is not
    // exposed; n here is small enough that one extra Cholesky is cheap).
    let mut k = model.kernel().matrix(model.train_x());
    k.add_diag(model.noise_var());
    let chol = eva_linalg::Cholesky::decompose_jittered(&k)?;
    let alpha = chol.solve(&z)?;
    let kinv = chol.inverse()?;

    let mut means = Vec::with_capacity(n);
    let mut variances = Vec::with_capacity(n);
    let mut residuals = Vec::with_capacity(n);
    let mut lpl = 0.0;
    for i in 0..n {
        let kii = kinv[(i, i)].max(1e-300);
        let mu_z = z[i] - alpha[i] / kii;
        let var_z = 1.0 / kii;
        let mu = y_mean + y_std * mu_z;
        let sigma2 = y_std * y_std * var_z;
        let r = y[i] - mu;
        means.push(mu);
        variances.push(sigma2);
        residuals.push(r);
        lpl += -0.5 * (2.0 * std::f64::consts::PI * sigma2).ln() - r * r / (2.0 * sigma2);
    }
    Ok(LooDiagnostics {
        means,
        variances,
        residuals,
        log_pseudo_likelihood: lpl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpModel, Kernel, KernelType};
    use eva_stats::rng::{seeded, standard_normal};

    fn smooth_model(n: usize, noise: f64, seed: u64) -> GpModel {
        let mut rng = seeded(seed);
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|p| (5.0 * p[0]).sin() + noise * standard_normal(&mut rng))
            .collect();
        let kernel = Kernel::isotropic(KernelType::Matern52, 1, 0.3, 1.0);
        GpModel::new(kernel, (noise * noise).max(1e-6), x, y).unwrap()
    }

    /// LOO via the Cholesky identity must match brute-force refitting.
    #[test]
    fn matches_brute_force_refit() {
        let model = smooth_model(15, 0.05, 1);
        let diag = loo_diagnostics(&model).unwrap();
        for i in 0..model.n() {
            // Refit without point i.
            let xs: Vec<Vec<f64>> = model
                .train_x()
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, x)| x.clone())
                .collect();
            let ys: Vec<f64> = model
                .train_y()
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &y)| y)
                .collect();
            let refit = GpModel::new(model.kernel().clone(), model.noise_var(), xs, ys).unwrap();
            let (mu, var) = refit.predict(&model.train_x()[i]);
            let var_with_noise = var + refit.observation_noise();
            // Standardization constants differ slightly between the full
            // and the n−1 fits, so allow a small tolerance.
            assert!(
                (diag.means[i] - mu).abs() < 0.05,
                "point {i}: {} vs {}",
                diag.means[i],
                mu
            );
            assert!(
                (diag.variances[i] - var_with_noise).abs() / var_with_noise < 0.35,
                "point {i}: {} vs {}",
                diag.variances[i],
                var_with_noise
            );
        }
    }

    #[test]
    fn loo_rmse_tracks_noise_level() {
        let clean = loo_diagnostics(&smooth_model(40, 0.01, 2)).unwrap();
        let noisy = loo_diagnostics(&smooth_model(40, 0.30, 2)).unwrap();
        assert!(
            noisy.rmse() > 3.0 * clean.rmse(),
            "clean {} vs noisy {}",
            clean.rmse(),
            noisy.rmse()
        );
    }

    #[test]
    fn calibration_coverage_is_reasonable() {
        let diag = loo_diagnostics(&smooth_model(60, 0.1, 3)).unwrap();
        let cov = diag.coverage_2sigma();
        assert!(cov > 0.80, "2σ coverage {cov}");
    }

    #[test]
    fn pseudo_likelihood_prefers_correct_noise() {
        // Same data, two models: one with roughly the right noise, one
        // wildly overconfident. LOO-LPL must prefer the former.
        let mut rng = seeded(4);
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|p| (5.0 * p[0]).sin() + 0.2 * standard_normal(&mut rng))
            .collect();
        let kernel = Kernel::isotropic(KernelType::Matern52, 1, 0.3, 1.0);
        let good = GpModel::new(kernel.clone(), 0.04, x.clone(), y.clone()).unwrap();
        let overconfident = GpModel::new(kernel, 1e-8, x, y).unwrap();
        let lpl_good = loo_diagnostics(&good).unwrap().log_pseudo_likelihood;
        let lpl_over = loo_diagnostics(&overconfident)
            .unwrap()
            .log_pseudo_likelihood;
        assert!(lpl_good > lpl_over, "{lpl_good} vs {lpl_over}");
    }
}
