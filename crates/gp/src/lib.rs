//! Gaussian-process regression, from scratch, for the PaMO reproduction.
//!
//! The paper surrogates every outcome function (latency, accuracy,
//! bandwidth, computation, energy — Sec. 3) with a GP trained on
//! profiling data (Algorithm 2, step 1) and refits it as new
//! observations arrive during Bayesian optimization. This crate provides
//! the exact-inference machinery BoTorch supplied in the original:
//!
//! * [`kernel`] — RBF and Matérn covariance functions with ARD
//!   lengthscales,
//! * [`model`] — exact GP posterior (Cholesky), predictive mean and
//!   variance, joint posteriors and posterior sampling for Monte-Carlo
//!   acquisition functions,
//! * [`fit`] — marginal-likelihood hyperparameter optimization via
//!   multi-start Nelder-Mead on log-parameters.

pub mod fit;
pub mod kernel;
pub mod loocv;
pub mod model;
pub mod poly;

pub use fit::{fit_gp, fit_gp_recorded, theta_of, FitConfig};
pub use kernel::{Kernel, KernelType};
pub use loocv::{loo_diagnostics, LooDiagnostics};
pub use model::{GpModel, GpPosterior};
pub use poly::PolyModel;

/// Errors produced by GP construction or prediction.
#[derive(Debug, Clone)]
pub enum GpError {
    /// Input/target sizes disagree or are empty.
    BadData(String),
    /// Underlying linear-algebra failure (non-PSD kernel matrix etc.).
    Linalg(eva_linalg::LinalgError),
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::BadData(msg) => write!(f, "bad GP data: {msg}"),
            GpError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for GpError {}

impl From<eva_linalg::LinalgError> for GpError {
    fn from(e: eva_linalg::LinalgError) -> Self {
        GpError::Linalg(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, GpError>;
