//! Stationary covariance functions with ARD lengthscales.

use eva_linalg::Mat;
use rayon::prelude::*;

/// Point count above which kernel-matrix assembly parallelizes by row.
const PAR_THRESHOLD: usize = 200;

/// Supported stationary kernel families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelType {
    /// Squared-exponential (infinitely smooth).
    Rbf,
    /// Matérn ν = 3/2 (once differentiable).
    Matern32,
    /// Matérn ν = 5/2 (twice differentiable; BoTorch's default, and
    /// therefore the default in this reproduction).
    Matern52,
}

/// A kernel: family + ARD lengthscales + signal variance.
///
/// `k(x, x') = signal_var * base(r)` where
/// `r² = Σ_d ((x_d - x'_d) / lengthscale_d)²`.
#[derive(Debug, Clone)]
pub struct Kernel {
    family: KernelType,
    lengthscales: Vec<f64>,
    signal_var: f64,
}

impl Kernel {
    /// Construct a kernel. Panics on non-positive hyperparameters.
    pub fn new(family: KernelType, lengthscales: Vec<f64>, signal_var: f64) -> Self {
        assert!(
            lengthscales.iter().all(|&l| l > 0.0),
            "Kernel: lengthscales must be positive, got {lengthscales:?}"
        );
        assert!(signal_var > 0.0, "Kernel: signal_var must be positive");
        Kernel {
            family,
            lengthscales,
            signal_var,
        }
    }

    /// Isotropic convenience constructor.
    pub fn isotropic(family: KernelType, dim: usize, lengthscale: f64, signal_var: f64) -> Self {
        Kernel::new(family, vec![lengthscale; dim], signal_var)
    }

    /// Kernel family.
    pub fn family(&self) -> KernelType {
        self.family
    }

    /// ARD lengthscales.
    pub fn lengthscales(&self) -> &[f64] {
        &self.lengthscales
    }

    /// Signal variance (the `k(x,x)` value).
    pub fn signal_var(&self) -> f64 {
        self.signal_var
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.lengthscales.len()
    }

    /// Scaled squared distance `Σ_d ((x_d - y_d)/l_d)²`.
    #[inline]
    fn scaled_sq_dist(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.lengthscales.len());
        debug_assert_eq!(y.len(), self.lengthscales.len());
        let mut acc = 0.0;
        for ((xd, yd), l) in x.iter().zip(y).zip(&self.lengthscales) {
            let d = (xd - yd) / l;
            acc += d * d;
        }
        acc
    }

    /// Evaluate `k(x, y)`.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        let r2 = self.scaled_sq_dist(x, y);
        self.signal_var * base_correlation(self.family, r2)
    }

    /// Symmetric kernel matrix `K(X, X)` (without noise on the diagonal).
    pub fn matrix(&self, xs: &[Vec<f64>]) -> Mat {
        let n = xs.len();
        let mut k = Mat::zeros(n, n);
        if n >= PAR_THRESHOLD {
            // Fill full rows in parallel; redundant work on the lower
            // triangle is cheaper than synchronizing a packed fill.
            k.as_mut_slice()
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row)| {
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot = self.eval(&xs[i], &xs[j]);
                    }
                });
        } else {
            for i in 0..n {
                for j in 0..=i {
                    let v = self.eval(&xs[i], &xs[j]);
                    k[(i, j)] = v;
                    k[(j, i)] = v;
                }
            }
        }
        k
    }

    /// Cross-kernel matrix `K(A, B)` of shape `|A| x |B|`.
    pub fn cross_matrix(&self, a: &[Vec<f64>], b: &[Vec<f64>]) -> Mat {
        let (m, n) = (a.len(), b.len());
        let mut k = Mat::zeros(m, n);
        if m >= PAR_THRESHOLD {
            k.as_mut_slice()
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row)| {
                    for (j, slot) in row.iter_mut().enumerate() {
                        *slot = self.eval(&a[i], &b[j]);
                    }
                });
        } else {
            for i in 0..m {
                for j in 0..n {
                    k[(i, j)] = self.eval(&a[i], &b[j]);
                }
            }
        }
        k
    }
}

/// The base correlation function `base(r²)` with `base(0) = 1`.
#[inline]
pub(crate) fn base_correlation(family: KernelType, r2: f64) -> f64 {
    match family {
        KernelType::Rbf => (-0.5 * r2).exp(),
        KernelType::Matern32 => {
            let r = r2.sqrt();
            let a = 3.0f64.sqrt() * r;
            (1.0 + a) * (-a).exp()
        }
        KernelType::Matern52 => {
            let r = r2.sqrt();
            let a = 5.0f64.sqrt() * r;
            (1.0 + a + a * a / 3.0) * (-a).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_families() -> [KernelType; 3] {
        [KernelType::Rbf, KernelType::Matern32, KernelType::Matern52]
    }

    #[test]
    fn diagonal_equals_signal_variance() {
        for fam in all_families() {
            let k = Kernel::isotropic(fam, 3, 0.7, 2.5);
            assert!((k.eval(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]) - 2.5).abs() < 1e-14);
        }
    }

    #[test]
    fn symmetry_and_positivity() {
        for fam in all_families() {
            let k = Kernel::new(fam, vec![0.5, 2.0], 1.0);
            let a = [0.1, 0.9];
            let b = [1.3, -0.4];
            assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-15);
            assert!(k.eval(&a, &b) > 0.0);
            assert!(k.eval(&a, &b) <= k.signal_var());
        }
    }

    #[test]
    fn decay_with_distance() {
        for fam in all_families() {
            let k = Kernel::isotropic(fam, 1, 1.0, 1.0);
            let near = k.eval(&[0.0], &[0.1]);
            let far = k.eval(&[0.0], &[2.0]);
            assert!(near > far, "{fam:?}");
        }
    }

    #[test]
    fn ard_lengthscales_weight_dimensions() {
        // Long lengthscale in dim 0 -> dim-0 displacement matters less.
        let k = Kernel::new(KernelType::Rbf, vec![10.0, 0.1], 1.0);
        let along_0 = k.eval(&[0.0, 0.0], &[1.0, 0.0]);
        let along_1 = k.eval(&[0.0, 0.0], &[0.0, 1.0]);
        assert!(along_0 > along_1);
    }

    #[test]
    fn rbf_known_value() {
        let k = Kernel::isotropic(KernelType::Rbf, 1, 1.0, 1.0);
        // exp(-0.5 * 4) at distance 2.
        assert!((k.eval(&[0.0], &[2.0]) - (-2.0f64).exp()).abs() < 1e-14);
    }

    #[test]
    fn matern52_known_value() {
        let k = Kernel::isotropic(KernelType::Matern52, 1, 1.0, 1.0);
        let a = 5.0f64.sqrt();
        let want = (1.0 + a + a * a / 3.0) * (-a).exp();
        assert!((k.eval(&[0.0], &[1.0]) - want).abs() < 1e-14);
    }

    #[test]
    fn matrix_is_symmetric_psd_ish() {
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()])
            .collect();
        for fam in all_families() {
            let k = Kernel::isotropic(fam, 2, 0.8, 1.3).matrix(&xs);
            for i in 0..20 {
                for j in 0..20 {
                    assert!((k[(i, j)] - k[(j, i)]).abs() < 1e-14);
                }
            }
            // Jittered Cholesky must succeed on a valid kernel matrix.
            let mut kj = k.clone();
            kj.add_diag(1e-8);
            assert!(eva_linalg::Cholesky::decompose_jittered(&kj).is_ok());
        }
    }

    #[test]
    fn parallel_matrix_matches_serial() {
        // Cross the PAR_THRESHOLD and compare against direct evaluation.
        let xs: Vec<Vec<f64>> = (0..230).map(|i| vec![i as f64 * 0.01]).collect();
        let k = Kernel::isotropic(KernelType::Matern52, 1, 0.5, 1.0);
        let m = k.matrix(&xs);
        for &(i, j) in &[(0usize, 229usize), (100, 3), (229, 229), (17, 92)] {
            assert!((m[(i, j)] - k.eval(&xs[i], &xs[j])).abs() < 1e-15);
        }
    }

    #[test]
    fn cross_matrix_shape_and_values() {
        let a: Vec<Vec<f64>> = vec![vec![0.0], vec![1.0]];
        let b: Vec<Vec<f64>> = vec![vec![0.0], vec![0.5], vec![1.0]];
        let k = Kernel::isotropic(KernelType::Rbf, 1, 1.0, 1.0);
        let c = k.cross_matrix(&a, &b);
        assert_eq!((c.rows(), c.cols()), (2, 3));
        assert!((c[(0, 0)] - 1.0).abs() < 1e-15);
        assert!((c[(1, 2)] - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_lengthscale() {
        let _ = Kernel::new(KernelType::Rbf, vec![0.0], 1.0);
    }
}
