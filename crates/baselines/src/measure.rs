//! Shared decision evaluation: what a scheduling decision *actually*
//! yields on the cluster.
//!
//! Resource aggregates (accuracy, bandwidth, computation, power) follow
//! the analytic Eq. 2-4 sums — they do not depend on placement. Latency
//! is *measured* by the discrete-event simulator under the decision's
//! own placement with *uncoordinated* stream starts (deterministic
//! pseudo-random phases — real cameras do not boot synchronized):
//! schedulers that overload a server or co-locate non-harmonic streams
//! pay the queueing and jitter penalty of Fig. 3(a)/Fig. 4, but are not
//! charged for the adversarial all-frames-at-once artifact of phase-0
//! starts. Zero-jitter placements measure exactly their analytic
//! latency (Theorem 1).

use eva_sched::{StreamId, StreamTiming, Ticks, TICKS_PER_SEC};
use eva_sim::des::{simulate, SimConfig, SimStream};
use eva_workload::{Outcome, Scenario, VideoConfig};

/// A baseline scheduler's decision: per-camera configuration plus a
/// per-camera server assignment (baselines do not split streams).
#[derive(Debug, Clone)]
pub struct Decision {
    /// One configuration per camera.
    pub configs: Vec<VideoConfig>,
    /// One server index per camera.
    pub server_of: Vec<usize>,
}

/// Default measurement horizon (simulated seconds).
pub const MEASURE_HORIZON_SECS: f64 = 12.0;

/// Evaluate a decision on the scenario: analytic resource aggregates +
/// DES-measured latency. Always succeeds (overload shows up as latency,
/// not as an error).
pub fn measure_decision(scenario: &Scenario, decision: &Decision) -> Outcome {
    let n = scenario.n_videos();
    assert_eq!(decision.configs.len(), n, "measure: configs length");
    assert_eq!(decision.server_of.len(), n, "measure: placement length");
    assert!(
        decision.server_of.iter().all(|&s| s < scenario.n_servers()),
        "measure: server index out of range"
    );

    // Analytic aggregates (Eq. 2-4).
    let mut acc = 0.0;
    let mut net = 0.0;
    let mut com = 0.0;
    let mut eng = 0.0;
    for (i, c) in decision.configs.iter().enumerate() {
        let s = scenario.surfaces(i);
        acc += s.accuracy(c);
        net += s.bandwidth_bps(c);
        com += s.compute_tflops(c);
        eng += s.power_w(c);
    }

    // Measured latency (DES with naive phases, no splitting).
    let sim_streams: Vec<SimStream> = decision
        .configs
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let surf = scenario.surfaces(i);
            let server = decision.server_of[i];
            let trans_secs = surf.bits_per_frame(c.resolution) / scenario.uplinks()[server];
            let timing = StreamTiming::from_rate(
                StreamId::source(i),
                c.fps,
                surf.proc_time_secs(c.resolution),
            );
            // Uncoordinated start: a deterministic pseudo-random phase
            // inside the stream's own period (Knuth multiplicative hash).
            let phase = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % timing.period;
            SimStream {
                id: timing.id,
                period: timing.period,
                proc: timing.proc,
                trans: (trans_secs * TICKS_PER_SEC as f64).round().max(0.0) as Ticks,
                server,
                phase,
            }
        })
        .collect();
    let cfg = SimConfig {
        horizon: (MEASURE_HORIZON_SECS * TICKS_PER_SEC as f64) as Ticks,
        warmup: TICKS_PER_SEC,
        deadline: 0,
    };
    let report = simulate(&sim_streams, scenario.n_servers(), &cfg);
    let measured: Vec<f64> = report
        .streams
        .iter()
        .filter(|s| s.frames > 0)
        .map(|s| s.latency.mean())
        .collect();
    let latency = if measured.is_empty() {
        // Total starvation (pathological overload): charge the horizon.
        MEASURE_HORIZON_SECS
    } else {
        measured.iter().sum::<f64>() / measured.len() as f64
    };

    Outcome {
        latency_s: latency,
        accuracy: acc / n as f64,
        network_bps: net,
        compute_tflops: com,
        power_w: eng,
    }
}

/// Greedy First-Fit placement by utilization (JCAB's allocator): place
/// streams in decreasing-utilization order into the first server whose
/// load stays ≤ 1; spill to the least-loaded server when none fits.
pub fn first_fit_by_utilization(utilizations: &[f64], n_servers: usize) -> Vec<usize> {
    assert!(n_servers > 0, "first_fit: no servers");
    let mut order: Vec<usize> = (0..utilizations.len()).collect();
    order.sort_by(|&a, &b| utilizations[b].total_cmp(&utilizations[a]));
    let mut load = vec![0.0f64; n_servers];
    let mut placement = vec![0usize; utilizations.len()];
    for &i in &order {
        let u = utilizations[i];
        let fit = (0..n_servers).find(|&s| load[s] + u <= 1.0 + 1e-12);
        let target = fit.unwrap_or_else(|| {
            // Spill: least-loaded server.
            (0..n_servers)
                .min_by(|&a, &b| load[a].total_cmp(&load[b]))
                .unwrap_or(0)
        });
        load[target] += u;
        placement[i] = target;
    }
    placement
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario::uniform(3, 2, 20e6, 3)
    }

    #[test]
    fn light_decision_measures_near_analytic_latency() {
        let sc = scenario();
        let configs = vec![VideoConfig::new(480.0, 5.0); 3];
        // Spread across servers: no contention.
        let decision = Decision {
            configs: configs.clone(),
            server_of: vec![0, 1, 0],
        };
        let out = measure_decision(&sc, &decision);
        let analytic: f64 = (0..3)
            .map(|i| sc.surfaces(i).e2e_latency_secs(&configs[i], 20e6))
            .sum::<f64>()
            / 3.0;
        // Streams on server 0 may collide occasionally (same phase) but
        // the load is tiny; allow a loose band.
        assert!(
            out.latency_s < analytic * 3.0,
            "{} vs {analytic}",
            out.latency_s
        );
        assert!(out.latency_s >= analytic * 0.9);
    }

    #[test]
    fn overloading_one_server_is_punished() {
        let sc = scenario();
        let configs = vec![VideoConfig::new(1440.0, 15.0); 3]; // heavy
        let all_on_one = Decision {
            configs: configs.clone(),
            server_of: vec![0, 0, 0],
        };
        let spread = Decision {
            configs,
            server_of: vec![0, 1, 0],
        };
        let bad = measure_decision(&sc, &all_on_one);
        let good = measure_decision(&sc, &spread);
        assert!(
            bad.latency_s > good.latency_s,
            "overload {} vs spread {}",
            bad.latency_s,
            good.latency_s
        );
        // Resource aggregates are placement-independent.
        assert!((bad.power_w - good.power_w).abs() < 1e-9);
        assert!((bad.accuracy - good.accuracy).abs() < 1e-12);
    }

    #[test]
    fn first_fit_respects_capacity_when_possible() {
        let placement = first_fit_by_utilization(&[0.6, 0.5, 0.4, 0.3], 2);
        let mut load = vec![0.0; 2];
        for (i, &s) in placement.iter().enumerate() {
            load[s] += [0.6, 0.5, 0.4, 0.3][i];
        }
        assert!(load.iter().all(|&l| l <= 1.0 + 1e-9), "{load:?}");
    }

    #[test]
    fn first_fit_spills_to_least_loaded() {
        // Three streams of 0.8 on two servers: one server must take two.
        let placement = first_fit_by_utilization(&[0.8, 0.8, 0.8], 2);
        let mut counts = vec![0; 2];
        for &s in &placement {
            counts[s] += 1;
        }
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2]);
    }

    #[test]
    fn first_fit_handles_empty_input() {
        assert!(first_fit_by_utilization(&[], 3).is_empty());
    }
}
