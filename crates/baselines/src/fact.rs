//! FACT: block coordinate descent on latency + accuracy.
//!
//! Liu et al. (INFOCOM'18) orchestrate mobile-AR analytics by
//! alternating two blocks until a fixed point: (1) per-stream
//! *resolution* selection minimizing `w_lct·latency + w_acc·(1−accuracy)`
//! with the allocation fixed, and (2) server allocation minimizing
//! latency with the configurations fixed. Frame rate is not a FACT knob
//! (it stays at a fixed operating point), and energy/bandwidth are not
//! modeled — the limitation the paper's Fig. 6 bars surface.

use eva_workload::{Scenario, VideoConfig};

use crate::measure::Decision;

/// FACT tuning knobs.
#[derive(Debug, Clone)]
pub struct FactConfig {
    /// Latency weight.
    pub w_lct: f64,
    /// Accuracy weight (applied to `1 − accuracy`).
    pub w_acc: f64,
    /// Fixed frame rate (fps) used for every stream; snapped to the grid.
    pub fixed_fps: f64,
    /// Maximum BCD rounds.
    pub max_rounds: usize,
    /// Per-server utilization cap enforced during allocation.
    pub util_cap: f64,
    /// Termination threshold: stop BCD once the relative improvement of
    /// the scalarized cost falls below this (0 = run to fixed point).
    /// The Fig. 10(b) sensitivity knob.
    pub delta: f64,
}

impl Default for FactConfig {
    fn default() -> Self {
        FactConfig {
            w_lct: 1.0,
            w_acc: 1.0,
            fixed_fps: 10.0,
            max_rounds: 20,
            util_cap: 1.0,
            delta: 0.0,
        }
    }
}

/// The FACT scheduler.
#[derive(Debug, Clone, Default)]
pub struct Fact {
    config: FactConfig,
}

impl Fact {
    /// With explicit tuning.
    pub fn new(config: FactConfig) -> Self {
        Fact { config }
    }

    /// Run block coordinate descent and return the decision.
    pub fn decide(&self, scenario: &Scenario) -> Decision {
        let cfg = &self.config;
        let space = scenario.config_space();
        let n = scenario.n_videos();
        let n_servers = scenario.n_servers();

        // Snap the fixed fps to the grid.
        let fps = space
            .frame_rates()
            .iter()
            .copied()
            .min_by(|a, b| {
                (a - cfg.fixed_fps)
                    .abs()
                    .total_cmp(&(b - cfg.fixed_fps).abs())
            })
            .unwrap_or(cfg.fixed_fps);

        // Start at the lowest resolution, everything on the best uplink.
        let mut resolutions: Vec<f64> = vec![space.resolutions()[0]; n];
        let best_server = eva_linalg::vecops::argmax(scenario.planning_uplinks()).unwrap_or(0);
        let mut server_of: Vec<usize> = vec![best_server; n];
        let mut prev_cost = f64::INFINITY;

        for _round in 0..cfg.max_rounds {
            let mut changed = false;

            // Block 1: per-stream resolution, allocation fixed. Latency
            // is congestion-aware — FACT models server processing
            // congestion, so the processing term is inflated by the
            // utilization the co-located streams induce (M/D/1-style
            // `p/(1−ρ)` growth; effectively infinite past saturation).
            for i in 0..n {
                let s = scenario.surfaces(i);
                let uplink = scenario.planning_uplinks()[server_of[i]];
                let other_load: f64 = (0..n)
                    .filter(|&j| j != i && server_of[j] == server_of[i])
                    .map(|j| scenario.surfaces(j).proc_time_secs(resolutions[j]) * fps)
                    .sum();
                let mut best_r = resolutions[i];
                let mut best_cost = f64::INFINITY;
                for &r in space.resolutions() {
                    let c = VideoConfig::new(r, fps);
                    let util = s.proc_time_secs(r) * fps;
                    let rho = (other_load + util).min(0.999);
                    let headroom = (1.0 - rho).max(1e-3);
                    let lat = if other_load + util >= 1.0 {
                        // Saturated: unbounded queueing in steady state.
                        1e6
                    } else {
                        s.proc_time_secs(r) / headroom + s.bits_per_frame(r) / uplink
                    };
                    let cost = cfg.w_lct * lat + cfg.w_acc * (1.0 - s.accuracy(&c));
                    if cost < best_cost {
                        best_cost = cost;
                        best_r = r;
                    }
                }
                if best_r != resolutions[i] {
                    resolutions[i] = best_r;
                    changed = true;
                }
            }

            // Block 2: allocation, resolutions fixed. Greedy in
            // decreasing-utilization order: cheapest-latency server whose
            // load stays under the cap; spill to least-loaded.
            let utils: Vec<f64> = (0..n)
                .map(|i| scenario.surfaces(i).proc_time_secs(resolutions[i]) * fps)
                .collect();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| utils[b].total_cmp(&utils[a]));
            let mut load = vec![0.0f64; n_servers];
            let mut new_alloc = vec![0usize; n];
            for &i in &order {
                let bits = scenario.surfaces(i).bits_per_frame(resolutions[i]);
                let mut target = None;
                let mut best_lat = f64::INFINITY;
                for (sv, &b) in scenario.planning_uplinks().iter().enumerate() {
                    if load[sv] + utils[i] > cfg.util_cap + 1e-12 {
                        continue;
                    }
                    let lat = bits / b;
                    if lat < best_lat {
                        best_lat = lat;
                        target = Some(sv);
                    }
                }
                let sv = target.unwrap_or_else(|| {
                    (0..n_servers)
                        .min_by(|&a, &b| load[a].total_cmp(&load[b]))
                        .unwrap_or(0)
                });
                load[sv] += utils[i];
                new_alloc[i] = sv;
            }
            if new_alloc != server_of {
                server_of = new_alloc;
                changed = true;
            }

            // δ-termination: stop once the scalarized cost stops
            // improving by more than `delta` relative (Fig. 10(b)).
            let cost: f64 = (0..n)
                .map(|i| {
                    let s = scenario.surfaces(i);
                    let c = VideoConfig::new(resolutions[i], fps);
                    cfg.w_lct * s.e2e_latency_secs(&c, scenario.planning_uplinks()[server_of[i]])
                        + cfg.w_acc * (1.0 - s.accuracy(&c))
                })
                .sum();
            let improved_enough = prev_cost - cost > cfg.delta * prev_cost.abs().max(1e-12);
            let settled = cfg.delta > 0.0 && !improved_enough;
            prev_cost = cost;

            if !changed || settled {
                break;
            }
        }

        Decision {
            configs: resolutions
                .into_iter()
                .map(|r| VideoConfig::new(r, fps))
                .collect(),
            server_of,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure_decision;

    fn scenario() -> Scenario {
        Scenario::uniform(6, 4, 20e6, 13)
    }

    #[test]
    fn decision_uses_fixed_fps() {
        let sc = scenario();
        let d = Fact::default().decide(&sc);
        assert!(d.configs.iter().all(|c| c.fps == 10.0));
        assert!(d
            .configs
            .iter()
            .all(|c| sc.config_space().resolutions().contains(&c.resolution)));
    }

    #[test]
    fn latency_weight_shrinks_latency() {
        let sc = scenario();
        let lat_heavy = Fact::new(FactConfig {
            w_lct: 10.0,
            w_acc: 0.1,
            ..Default::default()
        })
        .decide(&sc);
        let acc_heavy = Fact::new(FactConfig {
            w_lct: 0.1,
            w_acc: 10.0,
            ..Default::default()
        })
        .decide(&sc);
        let o_lat = measure_decision(&sc, &lat_heavy);
        let o_acc = measure_decision(&sc, &acc_heavy);
        assert!(o_lat.latency_s <= o_acc.latency_s + 1e-9);
        assert!(o_acc.accuracy >= o_lat.accuracy - 1e-9);
    }

    #[test]
    fn allocation_respects_cap_when_feasible() {
        let sc = scenario();
        let d = Fact::default().decide(&sc);
        let mut load = vec![0.0f64; sc.n_servers()];
        for (i, c) in d.configs.iter().enumerate() {
            load[d.server_of[i]] += sc.surfaces(i).proc_time_secs(c.resolution) * c.fps;
        }
        assert!(
            load.iter().all(|&l| l <= 1.0 + 1e-9),
            "server loads {load:?}"
        );
    }

    #[test]
    fn bcd_is_deterministic_and_terminates() {
        let sc = scenario();
        let a = Fact::default().decide(&sc);
        let b = Fact::default().decide(&sc);
        assert_eq!(a.configs, b.configs);
        assert_eq!(a.server_of, b.server_of);
    }

    #[test]
    fn heterogeneous_uplinks_steer_heavy_streams() {
        // One fast, one slow server: the scheduler should use the fast one.
        let sc = Scenario::new(
            eva_workload::clip::clip_set(2, 1),
            vec![2e6, 50e6],
            eva_workload::ConfigSpace::default(),
        );
        let d = Fact::default().decide(&sc);
        // At least one stream must land on the fast server (index 1).
        assert!(d.server_of.contains(&1), "{:?}", d.server_of);
    }
}
