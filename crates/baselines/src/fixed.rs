//! Fixed-weight scalarization baselines (Equal / ROC / Rank-Sum).
//!
//! The classical recipe the paper's introduction criticizes: pick a
//! weight vector from a textbook scheme, scalarize the normalized cost
//! vector, and optimize. We give these baselines the *same* zero-jitter
//! scheduler as PaMO (Algorithm 1) so the comparison isolates the
//! preference-modeling question, and solve the discrete configuration
//! problem with coordinate descent from several starts.

use eva_opt::{coordinate_descent, DiscreteSpace};
use eva_stats::weights;
use eva_workload::{Scenario, VideoConfig};

use crate::measure::Decision;

/// Which textbook weight scheme to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixedWeightScheme {
    /// Equal weights over the five objectives.
    Equal,
    /// Rank-Order-Centroid weights with the paper's objective order
    /// (latency, accuracy, network, computation, energy) as the ranking.
    RankOrderCentroid,
    /// Rank-Sum weights, same ranking.
    RankSum,
}

/// A fixed-weight scalarizing scheduler.
#[derive(Debug, Clone)]
pub struct FixedWeight {
    scheme: FixedWeightScheme,
    /// Coordinate-descent sweeps.
    max_sweeps: usize,
}

impl FixedWeight {
    /// Build for a scheme.
    pub fn new(scheme: FixedWeightScheme) -> Self {
        FixedWeight {
            scheme,
            max_sweeps: 6,
        }
    }

    /// The weight vector this scheme induces (length 5, sums to 1).
    pub fn weights(&self) -> Vec<f64> {
        match self.scheme {
            FixedWeightScheme::Equal => weights::equal(5),
            FixedWeightScheme::RankOrderCentroid => weights::rank_order_centroid(5),
            FixedWeightScheme::RankSum => weights::rank_sum(5),
        }
    }

    /// Decide configurations (placement delegated to Algorithm 1 inside
    /// `Scenario::evaluate`); returns the per-camera decision with the
    /// Algorithm-1 placement flattened back onto source streams.
    pub fn decide(&self, scenario: &Scenario) -> Decision {
        let space = scenario.config_space();
        let n = scenario.n_videos();
        let w = self.weights();

        // Normalization bounds over the *feasible* range: use the
        // per-objective extremes of single-stream outcomes scaled by n.
        let norm = outcome_bounds(scenario);

        // Knob space: per camera, a flat index into the config grid.
        let dspace =
            DiscreteSpace::new(vec![
                (0..space.len()).map(|i| i as f64).collect::<Vec<f64>>();
                n
            ]);

        let objective = |x: &[f64]| -> f64 {
            let configs: Vec<VideoConfig> = x.iter().map(|&i| space.at(i as usize)).collect();
            match scenario.evaluate(&configs) {
                Ok(so) => {
                    let cost = normalized_cost(&so.outcome.to_cost_vec(), &norm);
                    cost.iter().zip(&w).map(|(&c, &wi)| c * wi).sum()
                }
                Err(_) => f64::INFINITY, // infeasible for zero-jitter
            }
        };

        // Start from the cheapest config (always feasible if anything is).
        let start = vec![0usize; n];
        let (best_idx, _) = coordinate_descent(&dspace, objective, &start, self.max_sweeps);
        let configs: Vec<VideoConfig> = best_idx.iter().map(|&i| space.at(i)).collect();

        // Flatten Algorithm-1 placement to per-source servers (parts of a
        // split stream land on possibly different servers; report part 0).
        let server_of = match scenario.schedule(&configs) {
            Ok(assignment) => (0..n)
                .map(|src| {
                    assignment
                        .streams
                        .iter()
                        .position(|s| s.id.source == src)
                        .map(|idx| assignment.server_of[idx])
                        .unwrap_or(0)
                })
                .collect(),
            Err(_) => vec![0; n],
        };
        Decision { configs, server_of }
    }
}

/// Per-objective (min, max) cost bounds across single-stream extremes,
/// scaled to system level for normalization.
fn outcome_bounds(scenario: &Scenario) -> Vec<(f64, f64)> {
    let space = scenario.config_space();
    let n = scenario.n_videos() as f64;
    let mut mins = [f64::INFINITY; 5];
    let mut maxs = [f64::NEG_INFINITY; 5];
    for i in 0..scenario.n_videos() {
        for c in space.iter() {
            for &b in scenario.uplinks() {
                let cost = scenario.evaluate_stream(i, &c, b).to_cost_vec();
                for d in 0..5 {
                    mins[d] = mins[d].min(cost[d]);
                    maxs[d] = maxs[d].max(cost[d]);
                }
            }
        }
    }
    // Latency & accuracy average over streams (stay per-stream scale);
    // network/computation/energy sum over streams.
    (0..5)
        .map(|d| {
            if d == 0 || d == 1 {
                (mins[d], maxs[d])
            } else {
                (mins[d] * n, maxs[d] * n)
            }
        })
        .collect()
}

fn normalized_cost(cost: &[f64], bounds: &[(f64, f64)]) -> Vec<f64> {
    cost.iter()
        .zip(bounds)
        .map(|(&c, &(lo, hi))| {
            if hi > lo {
                ((c - lo) / (hi - lo)).clamp(0.0, 1.0)
            } else {
                0.5
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure_decision;

    fn scenario() -> Scenario {
        Scenario::uniform(4, 3, 20e6, 17)
    }

    #[test]
    fn all_schemes_produce_feasible_decisions() {
        let sc = scenario();
        for scheme in [
            FixedWeightScheme::Equal,
            FixedWeightScheme::RankOrderCentroid,
            FixedWeightScheme::RankSum,
        ] {
            let d = FixedWeight::new(scheme).decide(&sc);
            assert_eq!(d.configs.len(), 4);
            // The chosen joint config must be zero-jitter schedulable.
            assert!(sc.evaluate(&d.configs).is_ok(), "{scheme:?}");
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for scheme in [
            FixedWeightScheme::Equal,
            FixedWeightScheme::RankOrderCentroid,
            FixedWeightScheme::RankSum,
        ] {
            let w = FixedWeight::new(scheme).weights();
            assert_eq!(w.len(), 5);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn equal_scheme_improves_over_floor_config() {
        let sc = scenario();
        let d = FixedWeight::new(FixedWeightScheme::Equal).decide(&sc);
        let floor = Decision {
            configs: vec![VideoConfig::new(360.0, 1.0); 4],
            server_of: d.server_of.clone(),
        };
        let got = measure_decision(&sc, &d);
        let base = measure_decision(&sc, &floor);
        // The optimizer should at least buy some accuracy over the floor.
        assert!(got.accuracy >= base.accuracy);
    }
}
