//! Baseline EVA schedulers the paper compares against (Sec. 5.1).
//!
//! * [`jcab`] — JCAB (Zhang et al., IEEE/ACM ToN'21): Lyapunov
//!   drift-plus-penalty over a virtual energy queue chooses per-stream
//!   configurations maximizing `V·w_acc·accuracy − Q·power`; placement
//!   is First-Fit by utilization. No zero-jitter awareness.
//! * [`fact`] — FACT (Liu et al., INFOCOM'18): block coordinate descent
//!   alternating per-stream *resolution* choices (frame rate is not a
//!   FACT knob) against latency-driven server allocation, minimizing
//!   `w_lct·latency + w_acc·(1−accuracy)`. Energy and bandwidth are not
//!   modeled.
//! * [`fixed`] — classical fixed-weight scalarizers (Equal / ROC /
//!   Rank-Sum weights, Sec. 1/6) over the full outcome vector, solved by
//!   discrete coordinate descent: the "textbook" multi-objective
//!   baseline the paper argues cannot capture real pricing preference.
//! * [`measure`] — the shared decision evaluator: analytic resource
//!   aggregates plus *simulated* latency (the DES charges baselines for
//!   the queueing and jitter their placements actually cause — PaMO's
//!   zero-jitter placements measure jitter-free by Theorem 1).

pub mod fact;
pub mod fixed;
pub mod jcab;
pub mod measure;

pub use fact::{Fact, FactConfig};
pub use fixed::{FixedWeight, FixedWeightScheme};
pub use jcab::{Jcab, JcabConfig};
pub use measure::{measure_decision, Decision};
