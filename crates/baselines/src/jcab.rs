//! JCAB: Lyapunov-optimization configuration + First-Fit placement.
//!
//! Zhang et al. (IEEE/ACM ToN'21) maximize a linear weighting of
//! accuracy and energy under long-term energy budgets using
//! drift-plus-penalty: a virtual queue `Q` tracks accumulated energy
//! deficit, and each slot picks the configuration maximizing
//! `V·w_acc·accuracy − Q·power`. We reproduce that decision structure
//! per stream over our knob grid, add the capacity guard the original
//! enforces through its bandwidth-allocation subproblem, and place
//! streams with First-Fit by utilization. No zero-jitter logic — JCAB
//! predates the constraint, which is exactly the gap PaMO exploits.

use eva_workload::{Scenario, VideoConfig};

use crate::measure::{first_fit_by_utilization, Decision};

/// JCAB tuning knobs.
#[derive(Debug, Clone)]
pub struct JcabConfig {
    /// Lyapunov trade-off weight `V` (higher = favor the objective over
    /// queue stability).
    pub v: f64,
    /// Long-term energy budget per slot (W).
    pub energy_budget_w: f64,
    /// Number of drift-plus-penalty slots to iterate before freezing the
    /// decision.
    pub slots: usize,
    /// Accuracy weight in the scalarized objective.
    pub w_acc: f64,
    /// Energy weight (scales the virtual-queue price).
    pub w_eng: f64,
    /// Per-server utilization target for the capacity guard.
    pub util_target: f64,
    /// Per-frame e2e latency deadline (s): configs whose uncontended
    /// latency exceeds it are inadmissible (JCAB's delay constraint).
    pub latency_deadline_s: f64,
    /// Termination threshold: stop iterating slots once the virtual
    /// queue moves by less than `delta * energy_budget_w` (0 = run all
    /// slots). The Fig. 10(b) sensitivity knob.
    pub delta: f64,
    /// Slot duration (s) scaling the virtual-queue update — finer slots
    /// visit intermediate queue levels instead of bang-banging between
    /// the extreme configurations.
    pub slot_secs: f64,
}

impl Default for JcabConfig {
    fn default() -> Self {
        JcabConfig {
            v: 50.0,
            energy_budget_w: 60.0,
            slots: 80,
            w_acc: 1.0,
            w_eng: 1.0,
            util_target: 0.85,
            latency_deadline_s: 0.20,
            delta: 0.0,
            slot_secs: 0.1,
        }
    }
}

/// The JCAB scheduler.
#[derive(Debug, Clone, Default)]
pub struct Jcab {
    config: JcabConfig,
}

impl Jcab {
    /// With explicit tuning.
    pub fn new(config: JcabConfig) -> Self {
        Jcab { config }
    }

    /// Run the drift-plus-penalty iteration and return the decision.
    pub fn decide(&self, scenario: &Scenario) -> Decision {
        let cfg = &self.config;
        let space = scenario.config_space();
        let n = scenario.n_videos();

        let mut q = 0.0f64; // virtual energy-deficit queue
        let mut configs: Vec<VideoConfig> =
            vec![VideoConfig::new(space.resolutions()[0], space.frame_rates()[0]); n];
        // Drift-plus-penalty oscillates between rich and frugal configs
        // around the budget; the one-shot decision is the *mode* of the
        // per-slot decisions (the Lyapunov time-average behaviour).
        let mut history: Vec<Vec<VideoConfig>> = Vec::with_capacity(cfg.slots);

        for _slot in 0..cfg.slots {
            // Per-stream drift-plus-penalty argmax (decomposes per stream
            // because both accuracy and power are separable).
            let mean_uplink: f64 =
                scenario.planning_uplinks().iter().sum::<f64>() / scenario.n_servers() as f64;
            for (i, chosen) in configs.iter_mut().enumerate() {
                let s = scenario.surfaces(i);
                let mut best_score = f64::NEG_INFINITY;
                for c in space.iter() {
                    // Delay constraint: inadmissible past the deadline.
                    if s.e2e_latency_secs(&c, mean_uplink) > cfg.latency_deadline_s {
                        continue;
                    }
                    let score = cfg.v * cfg.w_acc * s.accuracy(&c) - q * cfg.w_eng * s.power_w(&c);
                    if score > best_score {
                        best_score = score;
                        *chosen = c;
                    }
                }
            }
            self.capacity_guard(scenario, &mut configs);
            let total_power: f64 = configs
                .iter()
                .enumerate()
                .map(|(i, c)| scenario.surfaces(i).power_w(c))
                .sum();
            let q_next = (q + (total_power - cfg.energy_budget_w) * cfg.slot_secs).max(0.0);
            history.push(configs.clone());
            let settled = (q_next - q).abs() < cfg.delta * cfg.energy_budget_w;
            q = q_next;
            if cfg.delta > 0.0 && settled && history.len() >= 2 {
                break;
            }
        }

        // Most frequent joint configuration across slots (latest wins ties).
        let mut best_count = 0usize;
        let mut mode_idx = history.len() - 1;
        for (i, cand) in history.iter().enumerate() {
            let count = history.iter().filter(|h| *h == cand).count();
            if count >= best_count {
                best_count = count;
                mode_idx = i;
            }
        }
        let configs = history.swap_remove(mode_idx);

        let utils: Vec<f64> = configs
            .iter()
            .enumerate()
            .map(|(i, c)| scenario.surfaces(i).proc_time_secs(c.resolution) * c.fps)
            .collect();
        // Bandwidth-aware First-Fit: JCAB's joint bandwidth allocation
        // steers traffic toward fast uplinks, so the fit order visits
        // servers by descending uplink.
        let mut server_order: Vec<usize> = (0..scenario.n_servers()).collect();
        server_order.sort_by(|&a, &b| {
            scenario.planning_uplinks()[b].total_cmp(&scenario.planning_uplinks()[a])
        });
        let permuted = first_fit_by_utilization(&utils, scenario.n_servers());
        let server_of: Vec<usize> = permuted
            .into_iter()
            .map(|slot| server_order[slot])
            .collect();
        Decision { configs, server_of }
    }

    /// Downgrade the heaviest streams until the aggregate utilization
    /// fits the cluster (emulates JCAB's admission/bandwidth coupling).
    fn capacity_guard(&self, scenario: &Scenario, configs: &mut [VideoConfig]) {
        let space = scenario.config_space();
        let budget = self.config.util_target * scenario.n_servers() as f64;
        loop {
            let utils: Vec<f64> = configs
                .iter()
                .enumerate()
                .map(|(i, c)| scenario.surfaces(i).proc_time_secs(c.resolution) * c.fps)
                .collect();
            let total: f64 = utils.iter().sum();
            // Per-stream cap: JCAB's computation constraint requires the
            // serving rate to keep up with each stream individually (a
            // stream with p·s > 1 can never drain on one server).
            let worst = eva_linalg_argmax(&utils);
            if total <= budget && utils[worst] <= self.config.util_target {
                return;
            }
            // Downgrade the heaviest stream: first reduce fps, then
            // resolution; stop if already at the floor.
            let heaviest = worst;
            let c = configs[heaviest];
            let fi = space.frame_rates().iter().position(|&f| f == c.fps);
            let ri = space.resolutions().iter().position(|&r| r == c.resolution);
            let (fi, ri) = match (fi, ri) {
                (Some(f), Some(r)) => (f, r),
                _ => return, // config off-grid: nothing principled to do
            };
            if fi > 0 {
                configs[heaviest] = VideoConfig::new(c.resolution, space.frame_rates()[fi - 1]);
            } else if ri > 0 {
                configs[heaviest] = VideoConfig::new(space.resolutions()[ri - 1], c.fps);
            } else {
                return; // floor reached everywhere relevant
            }
        }
    }
}

fn eva_linalg_argmax(v: &[f64]) -> usize {
    eva_linalg::vecops::argmax(v).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure_decision;

    fn scenario() -> Scenario {
        Scenario::uniform(6, 4, 20e6, 11)
    }

    #[test]
    fn decision_is_wellformed() {
        let sc = scenario();
        let d = Jcab::default().decide(&sc);
        assert_eq!(d.configs.len(), 6);
        assert_eq!(d.server_of.len(), 6);
        assert!(d.server_of.iter().all(|&s| s < 4));
        // Configs on the grid.
        for c in &d.configs {
            assert!(sc.config_space().resolutions().contains(&c.resolution));
            assert!(sc.config_space().frame_rates().contains(&c.fps));
        }
    }

    #[test]
    fn capacity_guard_bounds_total_utilization() {
        let sc = scenario();
        let d = Jcab::default().decide(&sc);
        let total: f64 = d
            .configs
            .iter()
            .enumerate()
            .map(|(i, c)| sc.surfaces(i).proc_time_secs(c.resolution) * c.fps)
            .sum();
        assert!(total <= 0.95 * 4.0 + 1e-9, "total util {total}");
    }

    #[test]
    fn tight_energy_budget_reduces_power() {
        let sc = scenario();
        let generous = Jcab::new(JcabConfig {
            energy_budget_w: 500.0,
            ..Default::default()
        })
        .decide(&sc);
        let strict = Jcab::new(JcabConfig {
            energy_budget_w: 10.0,
            ..Default::default()
        })
        .decide(&sc);
        let power = |d: &Decision| -> f64 {
            d.configs
                .iter()
                .enumerate()
                .map(|(i, c)| sc.surfaces(i).power_w(c))
                .sum()
        };
        assert!(
            power(&strict) < power(&generous),
            "strict {} vs generous {}",
            power(&strict),
            power(&generous)
        );
    }

    #[test]
    fn higher_accuracy_weight_raises_accuracy() {
        let sc = scenario();
        let low = Jcab::new(JcabConfig {
            w_acc: 0.05,
            energy_budget_w: 30.0,
            ..Default::default()
        })
        .decide(&sc);
        let high = Jcab::new(JcabConfig {
            w_acc: 5.0,
            energy_budget_w: 30.0,
            ..Default::default()
        })
        .decide(&sc);
        let acc = |d: &Decision| measure_decision(&sc, d).accuracy;
        assert!(acc(&high) >= acc(&low), "{} vs {}", acc(&high), acc(&low));
    }

    #[test]
    fn bonded_belief_flows_into_the_decision() {
        use eva_workload::{BondPolicy, BondedLink, LinkBundle, LinkModel};

        // The trio bundle (12/8/5 Mbps at 30/80/200 ms) stripes to an
        // effective ~10 Mbps under HoL-aware scheduling — half the
        // oracle 20 Mbps provisioned rate. JCAB consumes that belief
        // through `planning_uplinks`, so deciding on the bonded
        // scenario must equal deciding with the equivalent explicit
        // planning override, and differ from oracle where it matters.
        let frame_bits = 5e5;
        let trio = || {
            LinkBundle::new(vec![
                BondedLink::new(LinkModel::constant(12e6), 0.030),
                BondedLink::new(LinkModel::constant(8e6), 0.080),
                BondedLink::new(LinkModel::constant(5e6), 0.200),
            ])
        };
        let eff = trio().effective_rate_bps(BondPolicy::EarliestDelivery, frame_bits);
        assert!((eff - 10e6).abs() < 1e6, "trio effective rate {eff}");

        let bonded = scenario()
            .with_link_bundles(vec![trio(); 6], BondPolicy::EarliestDelivery)
            .with_bonded_planning(frame_bits, 1.0);
        assert_eq!(bonded.planning_uplinks(), &[eff; 4]);

        let explicit = scenario().with_planning_uplinks(vec![eff; 4], 1.0);
        let via_bond = Jcab::default().decide(&bonded);
        let via_override = Jcab::default().decide(&explicit);
        assert_eq!(via_bond.configs, via_override.configs);
        assert_eq!(via_bond.server_of, via_override.server_of);
    }

    #[test]
    fn decision_is_deterministic() {
        let sc = scenario();
        let a = Jcab::default().decide(&sc);
        let b = Jcab::default().decide(&sc);
        assert_eq!(a.configs, b.configs);
        assert_eq!(a.server_of, b.server_of);
    }
}
