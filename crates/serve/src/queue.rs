//! The admission retry queue with overload backpressure.
//!
//! Blocked arrivals wait here for capacity (a departure, a server
//! restore, or an epoch boundary). Pre-overload behavior is a plain
//! bounded FIFO; the overload control plane adds two shedding paths,
//! both oldest-first (FIFO order doubles as age order because entries
//! are enqueued with monotone timestamps and retries keep their
//! original enqueue time):
//!
//! * **age shedding** — [`RetryQueue::expire`] drops waiters older
//!   than `max_age_s`,
//! * **high-water shedding** — at or above the `high_water` depth the
//!   queue reports [`RetryQueue::under_pressure`] (the serving loop
//!   switches to coalesced batch repairs) and
//!   [`RetryQueue::shed_to_high_water`] drops the oldest waiters until
//!   the depth is back at the mark.
//!
//! With the [`AdmissionConfig`] defaults (`max_queue_age_s = ∞`,
//! `high_water = usize::MAX`) neither path ever fires and the queue is
//! behavior-identical to the pre-overload FIFO.

use std::collections::VecDeque;

use crate::admission::AdmissionConfig;

/// One waiting tenant and when it first queued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueEntry {
    /// Tenant id.
    pub tenant: u64,
    /// Simulation time of the *original* enqueue (retries keep it, so
    /// age measures total time waiting, not time since last retry).
    pub enqueued_at_s: f64,
}

/// Bounded FIFO retry queue with age- and depth-based shedding.
#[derive(Debug, Clone)]
pub struct RetryQueue {
    entries: VecDeque<QueueEntry>,
    capacity: usize,
    max_age_s: f64,
    high_water: usize,
    peak: usize,
    shed: u64,
}

impl RetryQueue {
    /// Build from the admission policy's queue knobs.
    pub fn new(cfg: &AdmissionConfig) -> Self {
        RetryQueue {
            entries: VecDeque::new(),
            capacity: cfg.queue_capacity,
            max_age_s: cfg.max_queue_age_s,
            high_water: cfg.high_water,
            peak: 0,
            shed: 0,
        }
    }

    /// Rebuild from checkpointed state (entries in FIFO order).
    pub fn from_parts(
        cfg: &AdmissionConfig,
        entries: Vec<QueueEntry>,
        peak: usize,
        shed: u64,
    ) -> Self {
        RetryQueue {
            entries: entries.into(),
            capacity: cfg.queue_capacity,
            max_age_s: cfg.max_queue_age_s,
            high_water: cfg.high_water,
            peak,
            shed,
        }
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Deepest the queue has ever been.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total tenants shed (age + high-water), for run accounting.
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// Whether the depth is at or above the high-water mark (the
    /// serving loop coalesces replans while this holds).
    pub fn under_pressure(&self) -> bool {
        self.entries.len() >= self.high_water
    }

    /// FIFO snapshot of the waiting entries (front = oldest).
    pub fn entries(&self) -> impl Iterator<Item = &QueueEntry> {
        self.entries.iter()
    }

    /// Enqueue a fresh arrival at `now_s`. Returns `false` (and drops
    /// nothing) when the queue is at capacity — the caller rejects.
    pub fn try_push(&mut self, tenant: u64, now_s: f64) -> bool {
        self.try_push_entry(QueueEntry {
            tenant,
            enqueued_at_s: now_s,
        })
    }

    /// Re-enqueue a previously popped entry (keeps its original
    /// enqueue time). Same capacity rule as [`try_push`].
    ///
    /// [`try_push`]: RetryQueue::try_push
    pub fn try_push_entry(&mut self, entry: QueueEntry) -> bool {
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push_back(entry);
        self.peak = self.peak.max(self.entries.len());
        true
    }

    /// Pop the oldest waiter.
    pub fn pop_front(&mut self) -> Option<QueueEntry> {
        self.entries.pop_front()
    }

    /// Put the oldest waiter back at the front (a failed retry that
    /// should keep its place in line).
    pub fn push_front(&mut self, entry: QueueEntry) {
        self.entries.push_front(entry);
        self.peak = self.peak.max(self.entries.len());
    }

    /// Remove a specific tenant (it departed while still queued).
    /// Returns whether it was present.
    pub fn remove(&mut self, tenant: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|e| e.tenant == tenant) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    /// Shed every waiter older than `max_age_s` at `now_s`, oldest
    /// first. Returns the shed entries in shed order.
    pub fn expire(&mut self, now_s: f64) -> Vec<QueueEntry> {
        let mut out = Vec::new();
        if self.max_age_s.is_infinite() {
            return out;
        }
        // FIFO order is age order: stop at the first young-enough entry.
        while let Some(&front) = self.entries.front() {
            if now_s - front.enqueued_at_s > self.max_age_s {
                self.entries.pop_front();
                self.shed += 1;
                out.push(front);
            } else {
                break;
            }
        }
        out
    }

    /// Shed the oldest waiters until the depth is back at the
    /// high-water mark. Returns the shed entries in shed order.
    pub fn shed_to_high_water(&mut self) -> Vec<QueueEntry> {
        let mut out = Vec::new();
        while self.entries.len() > self.high_water {
            if let Some(e) = self.entries.pop_front() {
                self.shed += 1;
                out.push(e);
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(capacity: usize, max_age_s: f64, high_water: usize) -> AdmissionConfig {
        AdmissionConfig {
            queue_capacity: capacity,
            max_queue_age_s: max_age_s,
            high_water,
            ..AdmissionConfig::default()
        }
    }

    #[test]
    fn capacity_is_a_hard_bound() {
        let mut q = RetryQueue::new(&cfg(2, f64::INFINITY, usize::MAX));
        assert!(q.try_push(1, 0.0));
        assert!(q.try_push(2, 1.0));
        assert!(!q.try_push(3, 2.0));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak(), 2);
    }

    #[test]
    fn expire_sheds_oldest_first_and_only_the_old() {
        let mut q = RetryQueue::new(&cfg(8, 10.0, usize::MAX));
        q.try_push(1, 0.0);
        q.try_push(2, 5.0);
        q.try_push(3, 14.0);
        let shed = q.expire(16.0); // ages 16, 11, 2
        assert_eq!(shed.iter().map(|e| e.tenant).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.shed_count(), 2);
        assert!(q.expire(16.0).is_empty());
    }

    #[test]
    fn high_water_sheds_down_to_the_mark() {
        let mut q = RetryQueue::new(&cfg(8, f64::INFINITY, 2));
        for (t, at) in [(1, 0.0), (2, 1.0), (3, 2.0), (4, 3.0)] {
            q.try_push(t, at);
        }
        assert!(q.under_pressure());
        let shed = q.shed_to_high_water();
        assert_eq!(shed.iter().map(|e| e.tenant).collect::<Vec<_>>(), [1, 2]);
        assert_eq!(q.len(), 2);
        assert!(q.under_pressure(), "at the mark still counts as pressure");
    }

    #[test]
    fn retry_keeps_original_enqueue_time() {
        let mut q = RetryQueue::new(&cfg(4, 10.0, usize::MAX));
        q.try_push(7, 0.0);
        let e = q.pop_front().unwrap();
        assert!(q.try_push_entry(e));
        let shed = q.expire(10.5);
        assert_eq!(shed.len(), 1, "age counts from the original enqueue");
    }

    #[test]
    fn default_config_never_sheds() {
        let mut q = RetryQueue::new(&AdmissionConfig::default());
        for t in 0..5 {
            q.try_push(t, t as f64);
        }
        assert!(q.expire(1e12).is_empty());
        assert!(q.shed_to_high_water().is_empty());
        assert!(!q.under_pressure());
        assert_eq!(q.shed_count(), 0);
    }

    #[test]
    fn remove_targets_the_right_tenant() {
        let mut q = RetryQueue::new(&cfg(4, f64::INFINITY, usize::MAX));
        q.try_push(1, 0.0);
        q.try_push(2, 1.0);
        q.try_push(3, 2.0);
        assert!(q.remove(2));
        assert!(!q.remove(9));
        let order: Vec<u64> = q.entries().map(|e| e.tenant).collect();
        assert_eq!(order, [1, 3]);
    }
}
