//! Seeded arrival–departure processes for continuous serving.
//!
//! A [`ChurnTrace`] is a deterministic, pre-generated list of tenant
//! arrival and departure events over a horizon. Generating the whole
//! trace up front (rather than sampling inside the serving loop) keeps
//! the serving loop's RNG stream untouched by churn — the zero-rate
//! trace is *empty*, so a zero-rate serving run consumes exactly the
//! same random numbers as a plain online run and stays bit-identical.
//!
//! Two models:
//!
//! * **Poisson**: exponential inter-arrival times at a constant rate —
//!   the classic open-arrival assumption,
//! * **MMPP(2)**: a Markov-modulated Poisson process with two states
//!   (e.g. calm / storm) whose state dwell times are exponential. This
//!   produces the bursty arrival clumps that stress admission control
//!   far harder than a rate-matched Poisson process does.
//!
//! Each arriving tenant holds the system for an exponential "hold"
//! (service) time, giving an M/G/∞-style departure stream.

use rand::Rng;

/// The arrival process shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Constant-rate Poisson arrivals.
    Poisson {
        /// Mean arrivals per second (0.0 disables churn entirely).
        rate_hz: f64,
    },
    /// Two-state Markov-modulated Poisson process. State 0 is the
    /// initial state.
    Mmpp {
        /// Per-state arrival rates (arrivals per second).
        rate_hz: [f64; 2],
        /// Per-state mean dwell times in seconds (exponential).
        mean_dwell_s: [f64; 2],
    },
}

impl ArrivalModel {
    /// True when the model can never emit an arrival.
    pub fn is_silent(&self) -> bool {
        match *self {
            ArrivalModel::Poisson { rate_hz } => rate_hz <= 0.0,
            ArrivalModel::Mmpp { rate_hz, .. } => rate_hz.iter().all(|&r| r <= 0.0),
        }
    }
}

/// Parameters of a churn trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Arrival process.
    pub model: ArrivalModel,
    /// Mean tenant hold (service) time in seconds, exponential.
    pub mean_hold_s: f64,
    /// Trace horizon in seconds; events at `t >= horizon_s` are dropped.
    pub horizon_s: f64,
    /// RNG seed — the trace is a pure function of this config.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            model: ArrivalModel::Poisson { rate_hz: 0.1 },
            mean_hold_s: 30.0,
            horizon_s: 120.0,
            seed: 0,
        }
    }
}

/// What a churn event does to the tenant set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnAction {
    /// A new tenant (camera) requests admission.
    Arrive,
    /// A previously arrived tenant leaves.
    Depart,
}

/// One timestamped churn event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Event time in seconds from the start of the run.
    pub time_s: f64,
    /// Tenant identifier — arrival order (0, 1, 2, …). A `Depart`
    /// always refers to an earlier `Arrive` with the same id.
    pub tenant: u64,
    /// Arrival or departure.
    pub action: ChurnAction,
}

/// A complete, time-ordered churn trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChurnTrace {
    events: Vec<ChurnEvent>,
    n_arrivals: u64,
}

/// Exponential draw with the given mean. `u ∈ [0, 1)` from the RNG;
/// `1 - u ∈ (0, 1]` keeps `ln` finite.
fn exp_sample<R: Rng + ?Sized>(rng: &mut R, mean_s: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() * mean_s
}

impl ChurnTrace {
    /// Generate the trace. Deterministic in `cfg`; a silent model
    /// produces an empty trace without consuming any randomness beyond
    /// the (locally seeded) generator this function owns.
    pub fn generate(cfg: &ChurnConfig) -> Self {
        assert!(cfg.mean_hold_s > 0.0, "mean_hold_s must be positive");
        assert!(cfg.horizon_s >= 0.0, "horizon_s must be non-negative");
        if cfg.model.is_silent() || cfg.horizon_s == 0.0 {
            return ChurnTrace::default();
        }
        let mut rng = eva_stats::rng::seeded(cfg.seed);
        let mut events: Vec<ChurnEvent> = Vec::new();
        let mut tenant: u64 = 0;
        let mut t = 0.0_f64;

        // Unify both models as a state machine: Poisson is an MMPP with
        // one state and an infinite dwell.
        let (rates, dwells) = match cfg.model {
            ArrivalModel::Poisson { rate_hz } => ([rate_hz, rate_hz], [f64::INFINITY; 2]),
            ArrivalModel::Mmpp {
                rate_hz,
                mean_dwell_s,
            } => {
                assert!(
                    mean_dwell_s.iter().all(|&d| d > 0.0),
                    "MMPP dwell times must be positive"
                );
                (rate_hz, mean_dwell_s)
            }
        };
        let mut state = 0usize;
        let mut switch_at = if dwells[state].is_finite() {
            exp_sample(&mut rng, dwells[state])
        } else {
            f64::INFINITY
        };

        loop {
            let rate = rates[state];
            // Competing exponentials: by memorylessness, re-drawing the
            // arrival candidate after each state switch is exact.
            let arrival_at = if rate > 0.0 {
                t + exp_sample(&mut rng, 1.0 / rate)
            } else {
                f64::INFINITY
            };
            if arrival_at.min(switch_at) >= cfg.horizon_s {
                break;
            }
            if arrival_at <= switch_at {
                events.push(ChurnEvent {
                    time_s: arrival_at,
                    tenant,
                    action: ChurnAction::Arrive,
                });
                let depart_at = arrival_at + exp_sample(&mut rng, cfg.mean_hold_s);
                if depart_at < cfg.horizon_s {
                    events.push(ChurnEvent {
                        time_s: depart_at,
                        tenant,
                        action: ChurnAction::Depart,
                    });
                }
                tenant += 1;
                t = arrival_at;
            } else {
                t = switch_at;
                state = 1 - state;
                switch_at = t + if dwells[state].is_finite() {
                    exp_sample(&mut rng, dwells[state])
                } else {
                    f64::INFINITY
                };
            }
        }

        // Departures were pushed out of order (a short-hold tenant can
        // leave before the next arrival). Stable sort on time keeps
        // same-instant events in generation order.
        events.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
        ChurnTrace {
            events,
            n_arrivals: tenant,
        }
    }

    /// All events, time-ordered.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// True when the trace contains no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of arrivals in the trace.
    pub fn n_arrivals(&self) -> u64 {
        self.n_arrivals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson(rate_hz: f64, horizon_s: f64, seed: u64) -> ChurnConfig {
        ChurnConfig {
            model: ArrivalModel::Poisson { rate_hz },
            mean_hold_s: 20.0,
            horizon_s,
            seed,
        }
    }

    #[test]
    fn trace_is_deterministic_in_seed() {
        let a = ChurnTrace::generate(&poisson(0.5, 300.0, 7));
        let b = ChurnTrace::generate(&poisson(0.5, 300.0, 7));
        assert_eq!(a, b);
        let c = ChurnTrace::generate(&poisson(0.5, 300.0, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn zero_rate_trace_is_empty() {
        let t = ChurnTrace::generate(&poisson(0.0, 1000.0, 3));
        assert!(t.is_empty());
        assert_eq!(t.n_arrivals(), 0);
        let silent_mmpp = ChurnConfig {
            model: ArrivalModel::Mmpp {
                rate_hz: [0.0, 0.0],
                mean_dwell_s: [10.0, 10.0],
            },
            ..poisson(0.0, 1000.0, 3)
        };
        assert!(ChurnTrace::generate(&silent_mmpp).is_empty());
    }

    #[test]
    fn arrival_count_tracks_rate() {
        // λ·T = 0.2 · 5000 = 1000 expected arrivals; Poisson sd ≈ 32.
        let t = ChurnTrace::generate(&poisson(0.2, 5000.0, 11));
        let n = t.n_arrivals() as f64;
        assert!((n - 1000.0).abs() < 150.0, "n = {n}");
    }

    #[test]
    fn events_are_time_ordered_and_within_horizon() {
        let t = ChurnTrace::generate(&poisson(1.0, 200.0, 5));
        for w in t.events().windows(2) {
            assert!(w[0].time_s <= w[1].time_s);
        }
        for e in t.events() {
            assert!(e.time_s >= 0.0 && e.time_s < 200.0);
        }
    }

    #[test]
    fn every_departure_follows_its_arrival() {
        let t = ChurnTrace::generate(&poisson(0.8, 400.0, 13));
        let mut arrived = std::collections::HashSet::new();
        let mut departed = std::collections::HashSet::new();
        for e in t.events() {
            match e.action {
                ChurnAction::Arrive => {
                    assert!(arrived.insert(e.tenant), "duplicate arrival {e:?}");
                }
                ChurnAction::Depart => {
                    assert!(arrived.contains(&e.tenant), "depart before arrive {e:?}");
                    assert!(departed.insert(e.tenant), "duplicate departure {e:?}");
                }
            }
        }
        assert_eq!(arrived.len() as u64, t.n_arrivals());
    }

    #[test]
    fn mmpp_is_burstier_than_rate_matched_poisson() {
        // Storm state 20× the calm rate; compare the variance of
        // per-window arrival counts (index of dispersion). Averaged over
        // seeds to keep the test robust.
        let horizon = 2000.0;
        let mut mmpp_disp = 0.0;
        let mut poisson_disp = 0.0;
        let n_seeds = 5;
        for seed in 0..n_seeds {
            let m = ChurnTrace::generate(&ChurnConfig {
                model: ArrivalModel::Mmpp {
                    rate_hz: [0.02, 0.4],
                    mean_dwell_s: [100.0, 20.0],
                },
                mean_hold_s: 20.0,
                horizon_s: horizon,
                seed,
            });
            // Rate-matched Poisson: stationary MMPP rate =
            // (0.02·100 + 0.4·20) / 120.
            let avg_rate = (0.02 * 100.0 + 0.4 * 20.0) / 120.0;
            let p = ChurnTrace::generate(&poisson(avg_rate, horizon, seed + 100));
            mmpp_disp += dispersion(&m, horizon);
            poisson_disp += dispersion(&p, horizon);
        }
        assert!(
            mmpp_disp > 1.5 * poisson_disp,
            "mmpp {mmpp_disp} vs poisson {poisson_disp}"
        );
    }

    /// Index of dispersion of arrival counts over 50 s windows.
    fn dispersion(t: &ChurnTrace, horizon: f64) -> f64 {
        let w = 50.0;
        let n_win = (horizon / w) as usize;
        let mut counts = vec![0.0_f64; n_win];
        for e in t.events() {
            if e.action == ChurnAction::Arrive {
                let i = ((e.time_s / w) as usize).min(n_win - 1);
                counts[i] += 1.0;
            }
        }
        let mean = counts.iter().sum::<f64>() / n_win as f64;
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / n_win as f64;
        if mean == 0.0 {
            0.0
        } else {
            var / mean
        }
    }
}
