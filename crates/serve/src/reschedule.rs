//! Event-driven rescheduling with incremental row repair.
//!
//! Arrival, departure, server failure and server restore are treated
//! uniformly as *replan triggers*. The [`Rescheduler`] keeps the live
//! placement as materialized zero-jitter groups (one group per server —
//! the Hungarian matching assigns distinct servers, so a "row" of the
//! assignment is exactly one group) and repairs only the rows an event
//! perturbs:
//!
//! * **departure** — drop the tenant's streams from their groups; the
//!   Theorem-3 budget only loosens, so the repaired rows stay feasible,
//! * **arrival** — pack the newcomer's (split) streams into existing
//!   groups under the Theorem-3 admission check, or open a new group on
//!   a free surviving server,
//! * **failure** — rehome the dead server's group onto a free survivor,
//!   or distribute its members into the surviving groups,
//! * **restore** — nothing to move (the placement is still feasible);
//!   the freed capacity is simply available to the next repair.
//!
//! Every repair is verified against the full zero-jitter feasibility
//! predicate before being adopted; when repair fails (or drifts from
//! the scenario's stream set), the rescheduler falls back to a full
//! survivor-restricted Algorithm 1 + Hungarian re-solve. Incremental
//! repairs skip the Hungarian step, so they trade a little
//! communication-latency optimality for reaction time — the epoch
//! boundary's full re-optimization wins it back.

use eva_obs::{span, Phase, Recorder};
use eva_sched::{
    const2_zero_jitter_ok, split_high_rate, Assignment, AuctionConfig, AuctionSolver,
    GroupingError, SparseCost, StreamId, StreamTiming, Ticks, UNASSIGNED,
};
use eva_workload::{Scenario, VideoConfig};

/// What perturbed the placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanTrigger {
    /// Camera `camera` (index in the *post-arrival* scenario) joined.
    Arrival {
        /// Index of the newcomer in the current scenario.
        camera: usize,
    },
    /// Camera `camera` (index in the *pre-departure* scenario) left;
    /// later cameras shift down by one.
    Departure {
        /// Index of the leaver in the previous scenario.
        camera: usize,
    },
    /// Server `server` went down.
    ServerFailure {
        /// Index of the failed server.
        server: usize,
    },
    /// Server `server` came back.
    ServerRestore {
        /// Index of the restored server.
        server: usize,
    },
}

impl ReplanTrigger {
    /// Stable event-kind name (used in telemetry and reports).
    pub fn kind(self) -> &'static str {
        match self {
            ReplanTrigger::Arrival { .. } => "arrival",
            ReplanTrigger::Departure { .. } => "departure",
            ReplanTrigger::ServerFailure { .. } => "failure",
            ReplanTrigger::ServerRestore { .. } => "restore",
        }
    }
}

/// How much of the assignment a replan had to re-solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanScope {
    /// Row repair succeeded; only `rows_resolved` groups were touched.
    Incremental {
        /// Number of assignment rows (groups) modified or created.
        rows_resolved: usize,
    },
    /// Full Algorithm 1 + Hungarian re-solve.
    Full,
}

/// Running totals of replan scopes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplanStats {
    /// Replans resolved by row repair.
    pub incremental: u64,
    /// Replans that needed a full re-solve.
    pub full: u64,
    /// Coalesced batch repairs (one full re-solve absorbing a burst of
    /// triggers while the retry queue is above its high-water mark).
    pub coalesced: u64,
}

/// The live placement plus the repair machinery.
#[derive(Debug, Clone, Default)]
pub struct Rescheduler {
    /// Materialized groups (post-split stream timings).
    groups: Vec<Vec<StreamTiming>>,
    /// Server hosting each group (parallel to `groups`; distinct).
    group_server: Vec<usize>,
    /// Persisted auction prices per server: the dual state that lets
    /// [`reprice`](Self::reprice) re-bid only the touched assignment
    /// rows after an incremental repair.
    prices: Vec<f64>,
    stats: ReplanStats,
}

impl Rescheduler {
    /// Start with no placement installed.
    pub fn new() -> Self {
        Rescheduler::default()
    }

    /// Adopt a full placement (e.g. the epoch boundary's optimized one).
    pub fn install(&mut self, a: &Assignment) {
        self.groups = a
            .groups
            .iter()
            .map(|g| g.iter().map(|&i| a.streams[i]).collect())
            .collect();
        self.group_server = a.group_server.clone();
    }

    /// Replan totals since construction.
    pub fn stats(&self) -> ReplanStats {
        self.stats
    }

    /// The internal placement state, for checkpointing: materialized
    /// groups, their servers, the persisted auction prices, and the
    /// replan totals.
    #[allow(clippy::type_complexity)]
    pub fn parts(&self) -> (&[Vec<StreamTiming>], &[usize], &[f64], ReplanStats) {
        (&self.groups, &self.group_server, &self.prices, self.stats)
    }

    /// Rebuild from checkpointed [`parts`](Self::parts).
    pub fn from_parts(
        groups: Vec<Vec<StreamTiming>>,
        group_server: Vec<usize>,
        prices: Vec<f64>,
        stats: ReplanStats,
    ) -> Self {
        Rescheduler {
            groups,
            group_server,
            prices,
            stats,
        }
    }

    /// React to one event. `scenario` / `configs` describe the world
    /// *after* the event (the departed camera removed, the arrived one
    /// appended); `alive` is the post-event server liveness. Attempts a
    /// row repair, verifies it against the zero-jitter predicate and
    /// the scenario's stream set, and falls back to a full
    /// survivor-restricted re-solve when repair fails. On `Err` the
    /// internal placement is left unchanged (and stale) — callers
    /// degrade exactly as they would on an epoch-boundary failure.
    pub fn replan(
        &mut self,
        scenario: &Scenario,
        configs: &[VideoConfig],
        alive: Option<&[bool]>,
        trigger: ReplanTrigger,
        rec: &dyn Recorder,
    ) -> Result<(Assignment, ReplanScope), GroupingError> {
        let _replan = span(rec, Phase::Replan);
        self.count_trigger(trigger, rec);
        if let Some(ok) = self.try_repair(scenario, configs, alive, trigger, rec) {
            return Ok(ok);
        }
        // Row repair failed or verification rejected it: the state was
        // rolled back by `try_repair`; re-solve from scratch.
        match scenario.schedule_surviving_recorded(configs, alive, rec) {
            Ok(a) => {
                self.install(&a);
                self.stats.full += 1;
                if rec.enabled() {
                    rec.add("serve.replan_full", 1);
                }
                Ok((a, ReplanScope::Full))
            }
            Err(e) => Err(e),
        }
    }

    /// [`replan`](Self::replan) without the full-re-solve fallback:
    /// the incremental row repair either succeeds or the placement is
    /// left unchanged and `None` is returned — the budgeted control
    /// plane's *repair* rung, which may not afford a full Algorithm-1
    /// pass. On `None` the caller keeps serving the stale plan.
    pub fn replan_limited(
        &mut self,
        scenario: &Scenario,
        configs: &[VideoConfig],
        alive: Option<&[bool]>,
        trigger: ReplanTrigger,
        rec: &dyn Recorder,
    ) -> Option<(Assignment, ReplanScope)> {
        let _replan = span(rec, Phase::Replan);
        self.count_trigger(trigger, rec);
        self.try_repair(scenario, configs, alive, trigger, rec)
    }

    /// One full re-solve absorbing a whole burst of `batched` pending
    /// triggers — the high-water-mark alternative to per-event replans.
    /// On `Err` the internal placement is left unchanged (stale).
    pub fn replan_coalesced(
        &mut self,
        scenario: &Scenario,
        configs: &[VideoConfig],
        alive: Option<&[bool]>,
        batched: u64,
        rec: &dyn Recorder,
    ) -> Result<Assignment, GroupingError> {
        let _replan = span(rec, Phase::Replan);
        if rec.enabled() {
            rec.add("serve.replans", 1);
            rec.add("serve.replan_coalesced", 1);
            rec.add("serve.replan_coalesced_triggers", batched);
        }
        let a = scenario.schedule_surviving_recorded(configs, alive, rec)?;
        self.install(&a);
        self.stats.coalesced += 1;
        Ok(a)
    }

    fn count_trigger(&self, trigger: ReplanTrigger, rec: &dyn Recorder) {
        if rec.enabled() {
            rec.add("serve.replans", 1);
            match trigger {
                ReplanTrigger::Arrival { .. } => rec.add("serve.replan_arrivals", 1),
                ReplanTrigger::Departure { .. } => rec.add("serve.replan_departures", 1),
                ReplanTrigger::ServerFailure { .. } => rec.add("serve.replan_failures", 1),
                ReplanTrigger::ServerRestore { .. } => rec.add("serve.replan_restores", 1),
            }
        }
    }

    /// The incremental repair path shared by [`replan`](Self::replan)
    /// and [`replan_limited`](Self::replan_limited): repair, verify,
    /// reprice. Rolls the placement back and returns `None` when the
    /// repair fails or verification rejects it.
    fn try_repair(
        &mut self,
        scenario: &Scenario,
        configs: &[VideoConfig],
        alive: Option<&[bool]>,
        trigger: ReplanTrigger,
        rec: &dyn Recorder,
    ) -> Option<(Assignment, ReplanScope)> {
        let saved = (self.groups.clone(), self.group_server.clone());
        let repaired = match trigger {
            ReplanTrigger::Arrival { camera } => self.repair_arrival(scenario, configs, camera),
            ReplanTrigger::Departure { camera } => Some(self.repair_departure(camera)),
            ReplanTrigger::ServerFailure { server } => self.repair_failure(scenario, server, alive),
            ReplanTrigger::ServerRestore { .. } => Some((0, Vec::new())),
        };
        if let Some((rows, touched)) = repaired {
            if self.verify(scenario, configs, alive) {
                if !touched.is_empty() {
                    // Auction repricing: re-bid only the rows the repair
                    // touched (costs changed), letting displacement
                    // cascades recover communication latency the greedy
                    // repair left on the table. A zero-touched repair
                    // (restore) changes nothing.
                    self.reprice(scenario, configs, alive, &touched, rec);
                    debug_assert!(self.verify(scenario, configs, alive));
                }
                self.stats.incremental += 1;
                if rec.enabled() {
                    rec.add("serve.replan_incremental", 1);
                    rec.observe("serve.replan_rows", rows as f64);
                }
                return Some((
                    self.assignment(scenario, configs),
                    ReplanScope::Incremental {
                        rows_resolved: rows,
                    },
                ));
            }
        }
        (self.groups, self.group_server) = saved;
        None
    }

    /// The newcomer's split streams, packed greedily. Returns the
    /// repaired row count plus the touched group indices.
    fn repair_arrival(
        &mut self,
        scenario: &Scenario,
        configs: &[VideoConfig],
        camera: usize,
    ) -> Option<(usize, Vec<usize>)> {
        if camera >= configs.len() {
            return None;
        }
        // The newcomer must not already be placed.
        if self.groups.iter().flatten().any(|s| s.id.source == camera) {
            return None;
        }
        let c = &configs[camera];
        let timing = StreamTiming::from_rate(
            StreamId::source(camera),
            c.fps,
            scenario.surfaces(camera).proc_time_secs(c.resolution),
        );
        let parts = split_high_rate(std::slice::from_ref(&timing));
        let uplinks = scenario.planning_uplinks();
        let mut touched: Vec<usize> = Vec::new();
        for part in parts {
            // Candidate existing groups that accept the part, best
            // (fastest planning uplink) first.
            let mut host: Option<usize> = None;
            for (g, members) in self.groups.iter().enumerate() {
                let mut trial: Vec<StreamTiming> = members.clone();
                trial.push(part);
                if theorem3_ok(&trial)
                    && host.is_none_or(|h| {
                        uplinks[self.group_server[g]] > uplinks[self.group_server[h]]
                    })
                {
                    host = Some(g);
                }
            }
            if let Some(g) = host {
                self.groups[g].push(part);
                touched.push(g);
                continue;
            }
            // No group accepts: open a new one on the fastest free
            // surviving server.
            let Some(server) = self.best_free_server(scenario, None) else {
                return None; // rolled back by the caller
            };
            self.groups.push(vec![part]);
            self.group_server.push(server);
            touched.push(self.groups.len() - 1);
        }
        touched.sort_unstable();
        touched.dedup();
        Some((touched.len(), touched))
    }

    /// Remove a departed camera's streams and renumber later sources.
    /// Returns the repaired row count (groups that lost members, as
    /// reported in [`ReplanScope`]) plus the surviving touched indices.
    fn repair_departure(&mut self, camera: usize) -> (usize, Vec<usize>) {
        let mut rows = 0usize;
        let mut touched_flag: Vec<bool> = Vec::with_capacity(self.groups.len());
        for g in &mut self.groups {
            let before = g.len();
            g.retain(|s| s.id.source != camera);
            touched_flag.push(g.len() != before);
            if g.len() != before {
                rows += 1;
            }
            for s in g.iter_mut() {
                if s.id.source > camera {
                    s.id.source -= 1;
                }
            }
        }
        // Drop emptied groups (and their server slots), remapping the
        // touched indices onto the compacted group list.
        let old_groups = std::mem::take(&mut self.groups);
        let old_servers = std::mem::take(&mut self.group_server);
        let mut touched = Vec::new();
        for ((g, flag), server) in old_groups.into_iter().zip(touched_flag).zip(old_servers) {
            if g.is_empty() {
                continue;
            }
            if flag {
                touched.push(self.groups.len());
            }
            self.groups.push(g);
            self.group_server.push(server);
        }
        (rows, touched)
    }

    /// Rehome or dissolve the failed server's group. Returns the
    /// repaired row count plus the touched group indices.
    fn repair_failure(
        &mut self,
        scenario: &Scenario,
        server: usize,
        alive: Option<&[bool]>,
    ) -> Option<(usize, Vec<usize>)> {
        let orphans: Vec<usize> = (0..self.groups.len())
            .filter(|&g| self.group_server[g] == server)
            .collect();
        if orphans.is_empty() {
            return Some((0, Vec::new()));
        }
        let mut touched = 0usize;
        let mut touched_idx: Vec<usize> = Vec::new();
        // Hungarian gives one group per server, but handle any count.
        for &g in orphans.iter().rev() {
            if let Some(free) = self.best_free_server_excluding(scenario, alive, server) {
                self.group_server[g] = free;
                touched += 1;
                touched_idx.push(g);
                continue;
            }
            // No free survivor: distribute the members into other groups.
            let members = self.groups[g].clone();
            let mut placed: Vec<(usize, StreamTiming)> = Vec::new();
            let mut ok = true;
            for &m in &members {
                let mut host: Option<usize> = None;
                for (h, hg) in self.groups.iter().enumerate() {
                    if h == g || self.group_server[h] == server {
                        continue;
                    }
                    if !is_alive(alive, self.group_server[h]) {
                        continue;
                    }
                    let mut trial: Vec<StreamTiming> = hg.clone();
                    trial.extend(placed.iter().filter(|&&(ph, _)| ph == h).map(|&(_, s)| s));
                    trial.push(m);
                    if theorem3_ok(&trial) {
                        host = Some(h);
                        break;
                    }
                }
                match host {
                    Some(h) => placed.push((h, m)),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                return None; // rolled back by the caller
            }
            for (h, s) in placed {
                self.groups[h].push(s);
                touched += 1;
                touched_idx.push(h);
            }
            self.groups.remove(g);
            self.group_server.remove(g);
            touched += 1;
            // The removal shifts every later group down by one.
            for t in &mut touched_idx {
                if *t > g {
                    *t -= 1;
                }
            }
        }
        touched_idx.sort_unstable();
        touched_idx.dedup();
        Some((touched, touched_idx))
    }

    /// Re-bid only the `touched` assignment rows through the ε-scaling
    /// auction, warm-started from the installed matching and the
    /// persisted per-server prices. Displacement cascades may move
    /// untouched groups too — that is the point: the greedy repair
    /// optimizes locally, the auction recovers global communication
    /// latency. Adopted only when the re-bid lands every group on a
    /// server; otherwise the (already verified) greedy repair stands.
    fn reprice(
        &mut self,
        scenario: &Scenario,
        configs: &[VideoConfig],
        alive: Option<&[bool]>,
        touched: &[usize],
        rec: &dyn Recorder,
    ) {
        let n_servers = scenario.n_servers();
        let uplinks = scenario.planning_uplinks();
        let mut sparse = SparseCost::new(n_servers);
        for members in &self.groups {
            let bits: f64 = members
                .iter()
                .map(|s| {
                    scenario
                        .surfaces(s.id.source)
                        .bits_per_frame(configs[s.id.source].resolution)
                })
                .sum();
            let arcs: Vec<(usize, f64)> = (0..n_servers)
                .filter(|&j| is_alive(alive, j))
                .map(|j| (j, bits / uplinks[j]))
                .collect();
            sparse.push_row(arcs);
        }
        if self.prices.len() != n_servers {
            self.prices = vec![0.0; n_servers];
        }
        let mut solver = AuctionSolver::from_matching(
            &sparse,
            &self.group_server,
            self.prices.clone(),
            &AuctionConfig::default(),
        );
        if rec.enabled() {
            rec.add("serve.reprice_runs", 1);
        }
        if solver.resolve_rows(&sparse, touched).is_err() {
            return;
        }
        let assignment = solver.assignment();
        if assignment.contains(&UNASSIGNED) {
            return;
        }
        let moves = assignment
            .iter()
            .zip(&self.group_server)
            .filter(|(a, b)| a != b)
            .count();
        if rec.enabled() && moves > 0 {
            rec.add("serve.reprice_moves", moves as u64);
        }
        self.group_server = assignment.to_vec();
        self.prices = solver.prices().to_vec();
    }

    /// Fastest (planning-uplink) surviving server hosting no group.
    fn best_free_server(&self, scenario: &Scenario, alive: Option<&[bool]>) -> Option<usize> {
        self.best_free_server_excluding(scenario, alive, usize::MAX)
    }

    fn best_free_server_excluding(
        &self,
        scenario: &Scenario,
        alive: Option<&[bool]>,
        exclude: usize,
    ) -> Option<usize> {
        let uplinks = scenario.planning_uplinks();
        (0..scenario.n_servers())
            .filter(|&j| j != exclude && is_alive(alive, j))
            .filter(|&j| !self.group_server.contains(&j))
            .max_by(|&a, &b| uplinks[a].total_cmp(&uplinks[b]))
    }

    /// Full zero-jitter validity of the current placement against the
    /// scenario's (post-split) stream set.
    fn verify(&self, scenario: &Scenario, configs: &[VideoConfig], alive: Option<&[bool]>) -> bool {
        // Servers: distinct and alive.
        let mut servers = self.group_server.clone();
        servers.sort_unstable();
        let n = servers.len();
        servers.dedup();
        if servers.len() != n {
            return false;
        }
        if !self
            .group_server
            .iter()
            .all(|&j| j < scenario.n_servers() && is_alive(alive, j))
        {
            return false;
        }
        // Every group zero-jitter feasible (Const2, not just Theorem 3 —
        // repairs only ever add under Theorem 3, but installed plans may
        // use the weaker predicate's full slack).
        if !self.groups.iter().all(|g| const2_zero_jitter_ok(g)) {
            return false;
        }
        // The placed stream multiset matches the scenario's exactly.
        let mut placed: Vec<(StreamId, Ticks, Ticks)> = self
            .groups
            .iter()
            .flatten()
            .map(|s| (s.id, s.period, s.proc))
            .collect();
        let mut expected: Vec<(StreamId, Ticks, Ticks)> =
            split_high_rate(&scenario.stream_timings(configs))
                .iter()
                .map(|s| (s.id, s.period, s.proc))
                .collect();
        placed.sort_unstable();
        expected.sort_unstable();
        placed == expected
    }

    /// Materialize the current placement as an [`Assignment`]
    /// (group-major stream order; communication latency priced on the
    /// planning uplinks, like the Hungarian objective).
    fn assignment(&self, scenario: &Scenario, configs: &[VideoConfig]) -> Assignment {
        let uplinks = scenario.planning_uplinks();
        let mut streams = Vec::new();
        let mut server_of = Vec::new();
        let mut groups = Vec::new();
        let mut total_comm_latency = 0.0;
        for (g, members) in self.groups.iter().enumerate() {
            let server = self.group_server[g];
            let mut idxs = Vec::with_capacity(members.len());
            for &s in members {
                idxs.push(streams.len());
                streams.push(s);
                server_of.push(server);
                total_comm_latency += scenario
                    .surfaces(s.id.source)
                    .bits_per_frame(configs[s.id.source].resolution)
                    / uplinks[server];
            }
            groups.push(idxs);
        }
        Assignment {
            streams,
            server_of,
            groups,
            group_server: self.group_server.clone(),
            total_comm_latency,
        }
    }
}

fn is_alive(alive: Option<&[bool]>, server: usize) -> bool {
    alive.is_none_or(|a| a.get(server).copied().unwrap_or(false))
}

/// Theorem-3 admission on a materialized group (harmonic periods and
/// `Σp ≤ T_min`) — the same union check Algorithm 1's packing uses.
fn theorem3_ok(group: &[StreamTiming]) -> bool {
    let Some(t_min) = group.iter().map(|s| s.period).min() else {
        return true;
    };
    let harmonic = group.iter().all(|s| s.period % t_min == 0);
    let total: Ticks = group.iter().map(|s| s.proc).sum();
    harmonic && total <= t_min
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_obs::NoopRecorder;

    fn scenario(n_videos: usize, n_servers: usize) -> Scenario {
        Scenario::uniform(n_videos, n_servers, 20e6, 23)
    }

    fn low(n: usize) -> Vec<VideoConfig> {
        vec![VideoConfig::new(480.0, 5.0); n]
    }

    fn installed(sc: &Scenario, configs: &[VideoConfig]) -> Rescheduler {
        let a = sc.schedule(configs).expect("base placement feasible");
        let mut r = Rescheduler::new();
        r.install(&a);
        r
    }

    #[test]
    fn departure_is_repaired_incrementally() {
        let sc5 = scenario(5, 3);
        let cfgs5 = low(5);
        let mut r = installed(&sc5, &cfgs5);
        // Camera 2 departs: post-event world has cameras 0,1,3,4 of the
        // old world renumbered to 0..4.
        let sc4 = Scenario::new(
            [0usize, 1, 3, 4]
                .iter()
                .map(|&i| sc5.clip(i).clone())
                .collect(),
            sc5.uplinks().to_vec(),
            sc5.config_space().clone(),
        );
        let (a, scope) = r
            .replan(
                &sc4,
                &low(4),
                None,
                ReplanTrigger::Departure { camera: 2 },
                &NoopRecorder,
            )
            .expect("departure repair");
        assert!(
            matches!(scope, ReplanScope::Incremental { .. }),
            "{scope:?}"
        );
        let sources: std::collections::HashSet<usize> =
            a.streams.iter().map(|s| s.id.source).collect();
        assert_eq!(sources, (0..4).collect());
        assert_eq!(r.stats().incremental, 1);
    }

    #[test]
    fn arrival_is_repaired_incrementally_with_capacity() {
        let sc3 = scenario(3, 4);
        let mut r = installed(&sc3, &low(3));
        // A fourth camera arrives (same clip family, appended).
        let mut clips: Vec<_> = (0..3).map(|i| sc3.clip(i).clone()).collect();
        clips.push(sc3.clip(0).clone());
        let sc4 = Scenario::new(clips, sc3.uplinks().to_vec(), sc3.config_space().clone());
        let (a, scope) = r
            .replan(
                &sc4,
                &low(4),
                None,
                ReplanTrigger::Arrival { camera: 3 },
                &NoopRecorder,
            )
            .expect("arrival repair");
        assert!(
            matches!(scope, ReplanScope::Incremental { .. }),
            "{scope:?}"
        );
        assert!(a.streams.iter().any(|s| s.id.source == 3));
        // Every server set stays zero-jitter feasible.
        for server in 0..sc4.n_servers() {
            let members: Vec<StreamTiming> = a
                .streams_on(server)
                .into_iter()
                .map(|i| a.streams[i])
                .collect();
            assert!(const2_zero_jitter_ok(&members));
        }
    }

    #[test]
    fn failure_rehomes_the_orphan_group() {
        let sc = scenario(3, 4);
        let cfgs = low(3);
        let mut r = installed(&sc, &cfgs);
        let a0 = sc.schedule(&cfgs).unwrap();
        let dead = a0.group_server[0];
        let mut alive = vec![true; 4];
        alive[dead] = false;
        let (a, _scope) = r
            .replan(
                &sc,
                &cfgs,
                Some(&alive),
                ReplanTrigger::ServerFailure { server: dead },
                &NoopRecorder,
            )
            .expect("failure repair");
        assert!(a.server_of.iter().all(|&s| s != dead));
    }

    #[test]
    fn restore_is_a_zero_row_replan() {
        let sc = scenario(3, 3);
        let cfgs = low(3);
        let mut r = installed(&sc, &cfgs);
        let (_, scope) = r
            .replan(
                &sc,
                &cfgs,
                None,
                ReplanTrigger::ServerRestore { server: 1 },
                &NoopRecorder,
            )
            .expect("restore");
        assert_eq!(scope, ReplanScope::Incremental { rows_resolved: 0 });
    }

    #[test]
    fn desynced_state_falls_back_to_full_resolve() {
        let sc = scenario(4, 3);
        let cfgs = low(4);
        // Never installed: internal state is empty, so any trigger's
        // verification fails and the full path runs.
        let mut r = Rescheduler::new();
        let (a, scope) = r
            .replan(
                &sc,
                &cfgs,
                None,
                ReplanTrigger::ServerRestore { server: 0 },
                &NoopRecorder,
            )
            .expect("full re-solve");
        assert_eq!(scope, ReplanScope::Full);
        assert_eq!(r.stats().full, 1);
        let sources: std::collections::HashSet<usize> =
            a.streams.iter().map(|s| s.id.source).collect();
        assert_eq!(sources.len(), 4);
    }

    #[test]
    fn infeasible_replan_reports_error_and_keeps_state() {
        // 4 heavy cameras on 1 server: nothing fits.
        let sc = Scenario::uniform(4, 1, 20e6, 9);
        let heavy = vec![VideoConfig::new(2160.0, 30.0); 4];
        let mut r = Rescheduler::new();
        let err = r.replan(
            &sc,
            &heavy,
            None,
            ReplanTrigger::ServerRestore { server: 0 },
            &NoopRecorder,
        );
        assert!(err.is_err());
    }

    #[test]
    fn incremental_assignment_matches_installed_placement() {
        let sc = scenario(4, 3);
        let cfgs = low(4);
        let a0 = sc.schedule(&cfgs).unwrap();
        let mut r = Rescheduler::new();
        r.install(&a0);
        // Restore (no-op) returns the same server sets.
        let (a1, _) = r
            .replan(
                &sc,
                &cfgs,
                None,
                ReplanTrigger::ServerRestore { server: 0 },
                &NoopRecorder,
            )
            .unwrap();
        for server in 0..sc.n_servers() {
            let set0: std::collections::BTreeSet<StreamId> = a0
                .streams_on(server)
                .into_iter()
                .map(|i| a0.streams[i].id)
                .collect();
            let set1: std::collections::BTreeSet<StreamId> = a1
                .streams_on(server)
                .into_iter()
                .map(|i| a1.streams[i].id)
                .collect();
            assert_eq!(set0, set1, "server {server}");
        }
        assert!((a1.total_comm_latency - a0.total_comm_latency).abs() < 1e-9);
    }

    #[test]
    fn reprice_improves_touched_rows_via_cascade() {
        let base = Scenario::uniform(3, 3, 20e6, 23);
        let uplinks = vec![5e6, 30e6, 15e6];
        let clips: Vec<_> = (0..3).map(|i| base.clip(i).clone()).collect();
        let sc3 = Scenario::new(clips.clone(), uplinks.clone(), base.config_space().clone());
        // Camera 0 runs heavy at a period non-harmonic with the light
        // pair, so it always forms its own group.
        let cfgs3 = vec![
            VideoConfig::new(1080.0, 7.0),
            VideoConfig::new(480.0, 5.0),
            VideoConfig::new(480.0, 5.0),
        ];
        let parts = split_high_rate(&sc3.stream_timings(&cfgs3));
        let heavy: Vec<StreamTiming> = parts.iter().copied().filter(|s| s.id.source == 0).collect();
        let light: Vec<StreamTiming> = parts.iter().copied().filter(|s| s.id.source != 0).collect();
        assert!(!heavy.is_empty() && !light.is_empty());
        // Hand-install a deliberately poor placement: the light pair on
        // the slowest server, heavy on the middle one; the fastest
        // server (30 Mbps) sits idle.
        let mut r = Rescheduler::new();
        r.groups = vec![light, heavy];
        r.group_server = vec![0, 2];
        // Camera 2 departs: the light group is the touched row.
        let sc2 = Scenario::new(clips[..2].to_vec(), uplinks, base.config_space().clone());
        let cfgs2 = cfgs3[..2].to_vec();
        let (a, scope) = r
            .replan(
                &sc2,
                &cfgs2,
                None,
                ReplanTrigger::Departure { camera: 2 },
                &NoopRecorder,
            )
            .expect("departure repair");
        assert!(matches!(scope, ReplanScope::Incremental { .. }));
        // Repricing moves the touched light group onto the idle fast
        // server; the untouched heavy group stays put. Without the
        // auction pass the light group would stay on the 5 Mbps server.
        for (g, &server) in a.group_server.iter().enumerate() {
            let source = a.streams[a.groups[g][0]].id.source;
            if source == 1 {
                assert_eq!(server, 1, "light group should move to the 30 Mbps server");
            } else {
                assert_eq!(server, 2, "heavy group stays put");
            }
        }
    }

    #[test]
    fn limited_replan_never_runs_the_full_fallback() {
        let sc = scenario(4, 3);
        let cfgs = low(4);
        // Never installed: the repair path can't verify, and without
        // the full fallback the placement must stay untouched.
        let mut r = Rescheduler::new();
        let before = (r.groups.clone(), r.group_server.clone());
        let out = r.replan_limited(
            &sc,
            &cfgs,
            None,
            ReplanTrigger::ServerRestore { server: 0 },
            &NoopRecorder,
        );
        assert!(out.is_none());
        assert_eq!((r.groups.clone(), r.group_server.clone()), before);
        assert_eq!(r.stats().full, 0);
    }

    #[test]
    fn limited_replan_repairs_when_it_can() {
        let sc5 = scenario(5, 3);
        let cfgs5 = low(5);
        let mut r = installed(&sc5, &cfgs5);
        let sc4 = Scenario::new(
            [0usize, 1, 3, 4]
                .iter()
                .map(|&i| sc5.clip(i).clone())
                .collect(),
            sc5.uplinks().to_vec(),
            sc5.config_space().clone(),
        );
        let out = r.replan_limited(
            &sc4,
            &low(4),
            None,
            ReplanTrigger::Departure { camera: 2 },
            &NoopRecorder,
        );
        assert!(matches!(out, Some((_, ReplanScope::Incremental { .. }))));
        assert_eq!(r.stats().incremental, 1);
    }

    #[test]
    fn coalesced_replan_absorbs_a_burst_in_one_resolve() {
        let sc = scenario(4, 3);
        let cfgs = low(4);
        let mut r = Rescheduler::new();
        let a = r
            .replan_coalesced(&sc, &cfgs, None, 5, &NoopRecorder)
            .expect("coalesced re-solve");
        assert_eq!(r.stats().coalesced, 1);
        assert_eq!(r.stats().full, 0);
        let sources: std::collections::HashSet<usize> =
            a.streams.iter().map(|s| s.id.source).collect();
        assert_eq!(sources.len(), 4);
    }

    #[test]
    fn parts_round_trip_preserves_placement() {
        let sc = scenario(4, 3);
        let cfgs = low(4);
        let mut r = installed(&sc, &cfgs);
        let _ = r.replan(
            &sc,
            &cfgs,
            None,
            ReplanTrigger::ServerRestore { server: 0 },
            &NoopRecorder,
        );
        let (g, s, p, st) = r.parts();
        let clone = Rescheduler::from_parts(g.to_vec(), s.to_vec(), p.to_vec(), st);
        assert_eq!(clone.groups, r.groups);
        assert_eq!(clone.group_server, r.group_server);
        assert_eq!(clone.prices, r.prices);
        assert_eq!(clone.stats(), r.stats());
    }

    #[test]
    fn trigger_kinds_are_stable() {
        assert_eq!(ReplanTrigger::Arrival { camera: 0 }.kind(), "arrival");
        assert_eq!(ReplanTrigger::Departure { camera: 0 }.kind(), "departure");
        assert_eq!(ReplanTrigger::ServerFailure { server: 0 }.kind(), "failure");
        assert_eq!(ReplanTrigger::ServerRestore { server: 0 }.kind(), "restore");
    }
}
