//! Continuous-arrival multi-tenant serving for the PaMO scheduler.
//!
//! Every other crate in this workspace replays a *fixed* scenario
//! epoch-by-epoch. Real edge deployments are not fixed: tenants
//! (cameras) arrive and depart mid-run, and the scheduler has to react
//! in milliseconds rather than at the next epoch boundary. This crate
//! supplies the three serving-layer substrates:
//!
//! * [`arrival`] — seeded Poisson / MMPP arrival–departure processes
//!   that generate a deterministic churn trace over a horizon,
//! * [`admission`] — an admission controller whose fast feasibility
//!   probe re-runs the survivor-restricted Algorithm 1 + Hungarian path
//!   for a candidate tenant and accepts only placements that keep the
//!   *incumbent* tenants' benefit above a configured floor,
//! * [`reschedule`] — an event-driven rescheduler that treats
//!   arrival / departure / server failure / server restore uniformly as
//!   replan triggers and repairs only the perturbed assignment rows
//!   (one row = one zero-jitter group), falling back to a full
//!   Algorithm-1 re-solve when row repair cannot restore feasibility —
//!   or, under a decision budget, running repair-only
//!   ([`Rescheduler::replan_limited`]) and coalesced batch repairs
//!   ([`Rescheduler::replan_coalesced`]),
//! * [`queue`] — the admission retry queue with overload backpressure:
//!   age-based shedding and a high-water mark that flips the serving
//!   loop into coalesced-repair mode.
//!
//! The serving *loop* that drives these against live PaMO decisions
//! (`run_serving`) lives in `pamo-core`, which composes this crate with
//! the BO pipeline; this crate stays below `pamo-core` in the layering
//! and is usable with any benefit function.

pub mod admission;
pub mod arrival;
pub mod queue;
pub mod reschedule;

pub use admission::{
    subset_outcome, AdmissionConfig, AdmissionController, AdmissionDecision, ProbeReport,
};
pub use arrival::{ArrivalModel, ChurnAction, ChurnConfig, ChurnEvent, ChurnTrace};
pub use queue::{QueueEntry, RetryQueue};
pub use reschedule::{ReplanScope, ReplanStats, ReplanTrigger, Rescheduler};
