//! Admission control: accept a tenant only if a feasibility probe finds
//! a placement that keeps the incumbents' benefit above a floor.
//!
//! The probe is the survivor-restricted Algorithm 1 + Hungarian path
//! ([`Scenario::evaluate_surviving_recorded`]) run once per candidate
//! configuration of the newcomer, with every incumbent pinned to its
//! currently deployed configuration. That makes the probe cheap — one
//! grouping + assignment per grid point, no BO — while still answering
//! the only question admission needs answered: *does a zero-jitter
//! placement exist that hosts everyone, and does hosting the newcomer
//! degrade the incumbents by more than the configured floor?*
//!
//! Candidates that are feasible but floor-violating are queued (to be
//! retried when capacity frees up: a departure, a server restore, or an
//! epoch boundary); candidates with no feasible placement at any
//! configuration are queued on the same grounds, and either is rejected
//! outright once the queue is full.

use eva_obs::{emit_warn, span, ObsEvent, Phase, Recorder};
use eva_sched::Assignment;
use eva_workload::{Outcome, Scenario, VideoConfig};

/// Admission policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum tolerated drop in the incumbents' benefit (benefit
    /// units; benefit is ≤ 0 with 0 at utopia, so a drop of 0.05 is
    /// 5% of one unit-weight objective's full range).
    pub max_benefit_drop: f64,
    /// Hard cap on concurrently served tenants (admission stops probing
    /// once reached; 0 disables serving entirely).
    pub max_live: usize,
    /// Capacity of the retry queue; a blocked arrival is rejected once
    /// the queue holds this many waiting tenants.
    pub queue_capacity: usize,
    /// Age-based shedding: a queued tenant waiting longer than this is
    /// shed (oldest first) instead of retried. `f64::INFINITY`
    /// disables age shedding (the pre-overload default).
    pub max_queue_age_s: f64,
    /// High-water mark on queue depth: at or above this many waiters
    /// the serving loop switches the rescheduler to coalesced batch
    /// repairs and sheds down to the mark. `usize::MAX` disables
    /// (the pre-overload default).
    pub high_water: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_benefit_drop: 0.05,
            max_live: 64,
            queue_capacity: 8,
            max_queue_age_s: f64::INFINITY,
            high_water: usize::MAX,
        }
    }
}

/// The successful probe's evidence: what the newcomer gets and what it
/// costs the incumbents.
#[derive(Debug, Clone)]
pub struct ProbeReport {
    /// The configuration chosen for the newcomer.
    pub newcomer_config: VideoConfig,
    /// The full zero-jitter placement hosting incumbents + newcomer.
    pub assignment: Assignment,
    /// Incumbent benefit before admitting (caller-supplied baseline).
    pub incumbent_before: f64,
    /// Incumbent benefit after admitting, under the probe placement
    /// (same benefit function, incumbents-only outcome).
    pub incumbent_after: f64,
    /// Benefit of the whole post-admission system (incumbents +
    /// newcomer) — the quantity the probe maximizes across candidates.
    pub total_benefit: f64,
}

/// The admission controller's verdict on one arrival.
#[derive(Debug, Clone)]
pub enum AdmissionDecision {
    /// Admit under the reported placement.
    Accept(Box<ProbeReport>),
    /// Park in the retry queue.
    Queue {
        /// Why the tenant could not be admitted right now.
        reason: &'static str,
    },
    /// Turn away (queue full or serving disabled).
    Reject {
        /// Why the tenant was turned away.
        reason: &'static str,
    },
}

/// Stateless admission policy. State (live set, queue) lives in the
/// serving loop; the controller only answers "can this tenant join the
/// current system?".
#[derive(Debug, Clone, Default)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
}

impl AdmissionController {
    /// Build with the given policy.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionController { cfg }
    }

    /// The policy in force.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Probe admission of the newcomer.
    ///
    /// `trial` must contain the incumbents as cameras `0..m` and the
    /// newcomer as camera `m`, where `m = incumbent_configs.len()`;
    /// `incumbent_before` is the incumbents' current benefit under the
    /// deployed placement, and `benefit` scores an aggregate
    /// [`Outcome`] (higher is better). `live_tenants` / `queue_len`
    /// are the serving loop's current counts, used for the cap and
    /// queue-overflow checks.
    ///
    /// The probe scans the newcomer's whole config grid with incumbents
    /// pinned, keeps the feasible candidate maximizing total system
    /// benefit, and accepts iff that candidate keeps
    /// `incumbent_after >= incumbent_before - max_benefit_drop`.
    #[allow(clippy::too_many_arguments)]
    pub fn admit(
        &self,
        trial: &Scenario,
        incumbent_configs: &[VideoConfig],
        alive: Option<&[bool]>,
        incumbent_before: f64,
        benefit: &dyn Fn(&Outcome) -> f64,
        live_tenants: usize,
        queue_len: usize,
        rec: &dyn Recorder,
    ) -> AdmissionDecision {
        let _probe = span(rec, Phase::Admission);
        if rec.enabled() {
            rec.add("serve.admission_probes", 1);
        }
        let m = incumbent_configs.len();
        if trial.n_videos() != m + 1 {
            // A malformed probe scenario is a caller bug; degrade to a
            // reject instead of panicking the serving loop.
            emit_warn(
                rec,
                ObsEvent::warn(
                    "admission_probe_malformed",
                    "trial scenario camera count mismatch",
                )
                .with("trial_cameras", trial.n_videos() as u64)
                .with("expected", (m + 1) as u64),
            );
            return AdmissionDecision::Reject {
                reason: "malformed probe scenario",
            };
        }
        if self.cfg.max_live == 0 {
            return AdmissionDecision::Reject {
                reason: "serving disabled (max_live = 0)",
            };
        }
        if live_tenants >= self.cfg.max_live {
            return self.queue_or_reject(queue_len, "tenant cap reached");
        }

        let mut configs = incumbent_configs.to_vec();
        let Some(placeholder) = trial.config_space().iter().next() else {
            return AdmissionDecision::Reject {
                reason: "empty config space",
            };
        };
        configs.push(placeholder); // overwritten by each candidate below
        let mut best: Option<ProbeReport> = None;
        for cand in trial.config_space().iter() {
            configs[m] = cand;
            let Ok(out) = trial.evaluate_surviving_recorded(&configs, alive, rec) else {
                continue; // no zero-jitter placement at this config
            };
            let total = benefit(&out.outcome);
            if !total.is_finite() {
                continue;
            }
            if best.as_ref().is_none_or(|b| total > b.total_benefit) {
                let incumbent_after = if m == 0 {
                    incumbent_before
                } else {
                    benefit(&subset_outcome(trial, &configs, &out.assignment, m))
                };
                best = Some(ProbeReport {
                    newcomer_config: cand,
                    assignment: out.assignment,
                    incumbent_before,
                    incumbent_after,
                    total_benefit: total,
                });
            }
        }

        match best {
            None => self.queue_or_reject(queue_len, "no feasible placement"),
            Some(report) => {
                if report.incumbent_after >= incumbent_before - self.cfg.max_benefit_drop {
                    AdmissionDecision::Accept(Box::new(report))
                } else {
                    self.queue_or_reject(queue_len, "incumbent benefit floor")
                }
            }
        }
    }

    fn queue_or_reject(&self, queue_len: usize, reason: &'static str) -> AdmissionDecision {
        if queue_len < self.cfg.queue_capacity {
            AdmissionDecision::Queue { reason }
        } else {
            AdmissionDecision::Reject { reason }
        }
    }
}

/// The aggregate outcome restricted to cameras `0..cameras`: accuracy
/// averaged and resources summed over the subset, latency averaged over
/// the subset's post-split streams at the (true) uplinks `assignment`
/// placed them on. This is the incumbents-only view of a joint
/// placement — the quantity the admission floor is checked against.
pub fn subset_outcome(
    scenario: &Scenario,
    configs: &[VideoConfig],
    assignment: &Assignment,
    cameras: usize,
) -> Outcome {
    // Panic-free: clamp an oversized subset and return a neutral
    // (all-zero) outcome for an empty one.
    let cameras = cameras.min(configs.len());
    if cameras == 0 {
        return Outcome {
            latency_s: 0.0,
            accuracy: 0.0,
            network_bps: 0.0,
            compute_tflops: 0.0,
            power_w: 0.0,
        };
    }
    let mut acc_sum = 0.0;
    let mut net = 0.0;
    let mut com = 0.0;
    let mut eng = 0.0;
    for (i, c) in configs.iter().take(cameras).enumerate() {
        let s = scenario.surfaces(i);
        acc_sum += s.accuracy(c);
        net += s.bandwidth_bps(c);
        com += s.compute_tflops(c);
        eng += s.power_w(c);
    }
    let mut lat_sum = 0.0;
    let mut n_streams = 0usize;
    for (idx, st) in assignment.streams.iter().enumerate() {
        let src = st.id.source;
        if src < cameras {
            let uplink = scenario.uplinks()[assignment.server_of[idx]];
            lat_sum += scenario
                .surfaces(src)
                .e2e_latency_secs(&configs[src], uplink);
            n_streams += 1;
        }
    }
    Outcome {
        latency_s: lat_sum / n_streams.max(1) as f64,
        accuracy: acc_sum / cameras as f64,
        network_bps: net,
        compute_tflops: com,
        power_w: eng,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_obs::NoopRecorder;
    use eva_workload::outcome::idx;

    /// A simple benefit: accuracy minus scaled latency and bandwidth —
    /// higher is better, monotone the right way in each objective.
    fn bench_benefit(o: &Outcome) -> f64 {
        o.accuracy - 0.5 * o.latency_s - o.network_bps / 100e6
    }

    fn trial(n_incumbents: usize, n_servers: usize) -> (Scenario, Vec<VideoConfig>) {
        let sc = Scenario::uniform(n_incumbents + 1, n_servers, 20e6, 17);
        let incumbents = vec![VideoConfig::new(720.0, 5.0); n_incumbents];
        (sc, incumbents)
    }

    fn incumbent_baseline(sc: &Scenario, incumbents: &[VideoConfig]) -> f64 {
        // Deploy incumbents alone (newcomer's surface unused): evaluate
        // an incumbents-only scenario built from the same clips.
        let sub = Scenario::new(
            (0..incumbents.len()).map(|i| sc.clip(i).clone()).collect(),
            sc.uplinks().to_vec(),
            sc.config_space().clone(),
        );
        let out = sub.evaluate(incumbents).expect("baseline feasible");
        bench_benefit(&out.outcome)
    }

    #[test]
    fn accepts_when_capacity_is_ample() {
        let (sc, incumbents) = trial(2, 3);
        let before = incumbent_baseline(&sc, &incumbents);
        let ctl = AdmissionController::new(AdmissionConfig::default());
        let d = ctl.admit(
            &sc,
            &incumbents,
            None,
            before,
            &bench_benefit,
            2,
            0,
            &NoopRecorder,
        );
        let AdmissionDecision::Accept(report) = d else {
            panic!("expected accept, got {d:?}");
        };
        // The probe placement covers all three cameras.
        let sources: std::collections::HashSet<usize> = report
            .assignment
            .streams
            .iter()
            .map(|s| s.id.source)
            .collect();
        assert_eq!(sources.len(), 3);
        assert!(report.incumbent_after.is_finite());
    }

    #[test]
    fn respects_tenant_cap_and_queue_capacity() {
        let (sc, incumbents) = trial(2, 3);
        let ctl = AdmissionController::new(AdmissionConfig {
            max_live: 2,
            queue_capacity: 1,
            ..AdmissionConfig::default()
        });
        let d = ctl.admit(
            &sc,
            &incumbents,
            None,
            0.0,
            &bench_benefit,
            2,
            0,
            &NoopRecorder,
        );
        assert!(matches!(d, AdmissionDecision::Queue { .. }), "{d:?}");
        // Queue full -> reject.
        let d = ctl.admit(
            &sc,
            &incumbents,
            None,
            0.0,
            &bench_benefit,
            2,
            1,
            &NoopRecorder,
        );
        assert!(matches!(d, AdmissionDecision::Reject { .. }), "{d:?}");
    }

    #[test]
    fn infeasible_system_is_not_accepted() {
        // One server already saturated by heavy incumbents: nothing fits.
        let sc = Scenario::uniform(4, 1, 20e6, 3);
        let incumbents = vec![VideoConfig::new(2160.0, 30.0); 3];
        let ctl = AdmissionController::new(AdmissionConfig::default());
        let d = ctl.admit(
            &sc,
            &incumbents,
            None,
            0.0,
            &bench_benefit,
            3,
            0,
            &NoopRecorder,
        );
        assert!(
            !matches!(d, AdmissionDecision::Accept(_)),
            "must not accept an infeasible system: {d:?}"
        );
    }

    #[test]
    fn strict_floor_queues_admissible_but_costly_tenants() {
        let (sc, incumbents) = trial(2, 2);
        let before = incumbent_baseline(&sc, &incumbents);
        // A zero-tolerance floor with a benefit that punishes any added
        // network load: admitting anything measurably hurts.
        let harsh = |o: &Outcome| -o.to_vec()[idx::NETWORK];
        let before_harsh = -incumbents
            .iter()
            .enumerate()
            .map(|(i, c)| sc.surfaces(i).bandwidth_bps(c))
            .sum::<f64>();
        let _ = before; // baseline under bench_benefit unused here
        let ctl = AdmissionController::new(AdmissionConfig {
            max_benefit_drop: 0.0,
            ..AdmissionConfig::default()
        });
        let d = ctl.admit(
            &sc,
            &incumbents,
            None,
            before_harsh,
            &harsh,
            2,
            0,
            &NoopRecorder,
        );
        // Incumbent outcome itself is unchanged by the newcomer in the
        // network dimension (sums over the subset), so this *accepts*:
        // the floor protects incumbents, not total benefit.
        assert!(matches!(d, AdmissionDecision::Accept(_)), "{d:?}");
    }

    #[test]
    fn dead_servers_are_respected() {
        let (sc, incumbents) = trial(2, 3);
        let before = incumbent_baseline(&sc, &incumbents);
        let alive = vec![true, false, true];
        let ctl = AdmissionController::new(AdmissionConfig::default());
        let d = ctl.admit(
            &sc,
            &incumbents,
            Some(&alive),
            before,
            &bench_benefit,
            2,
            0,
            &NoopRecorder,
        );
        if let AdmissionDecision::Accept(report) = d {
            assert!(report.assignment.server_of.iter().all(|&s| s != 1));
        }
    }

    #[test]
    fn subset_outcome_matches_full_outcome_when_subset_is_everything() {
        let (sc, _) = trial(2, 3);
        let cfgs = vec![VideoConfig::new(720.0, 5.0); 3];
        let full = sc.evaluate(&cfgs).unwrap();
        let sub = subset_outcome(&sc, &cfgs, &full.assignment, 3);
        assert!((sub.latency_s - full.outcome.latency_s).abs() < 1e-12);
        assert!((sub.accuracy - full.outcome.accuracy).abs() < 1e-12);
        assert!((sub.network_bps - full.outcome.network_bps).abs() < 1e-9);
    }

    #[test]
    fn subset_outcome_sums_only_the_subset() {
        let (sc, _) = trial(2, 3);
        let cfgs = vec![
            VideoConfig::new(720.0, 5.0),
            VideoConfig::new(720.0, 5.0),
            VideoConfig::new(2160.0, 15.0), // heavy newcomer
        ];
        if let Ok(full) = sc.evaluate(&cfgs) {
            let sub = subset_outcome(&sc, &cfgs, &full.assignment, 2);
            // The newcomer's bandwidth must not leak into the subset.
            let manual: f64 = (0..2).map(|i| sc.surfaces(i).bandwidth_bps(&cfgs[i])).sum();
            assert!((sub.network_bps - manual).abs() < 1e-9);
            assert!(sub.network_bps < full.outcome.network_bps);
        }
    }
}
