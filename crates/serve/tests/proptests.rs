//! Property tests for the serving substrates: admission never lets an
//! infeasible placement through, departures only ever free capacity,
//! and the retry queue's bound/drain/shed discipline holds under any
//! operation sequence.

use eva_obs::NoopRecorder;
use eva_sched::const2_zero_jitter_ok;
use eva_serve::{
    AdmissionConfig, AdmissionController, AdmissionDecision, ReplanScope, ReplanTrigger,
    Rescheduler, RetryQueue,
};
use eva_workload::{ClipProfile, Outcome, Scenario, VideoConfig};
use proptest::prelude::*;

/// A benefit function that prefers accurate, fast outcomes — any
/// monotone scorer works for these properties.
fn toy_benefit(o: &Outcome) -> f64 {
    o.accuracy - o.latency_s - 1e-9 * o.network_bps - 0.01 * o.power_w
}

/// Incumbent configurations drawn from the low-load end of the grid so
/// the starting system is schedulable most of the time.
fn configs_strategy(n: usize, grid: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..grid.min(12), n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// If admission accepts, the probe placement it reports is a
    /// genuine zero-jitter placement: every group satisfies Const2,
    /// groups sit on distinct live servers, and every post-split
    /// stream of every camera (incumbents + newcomer) is placed.
    #[test]
    fn accept_implies_zero_jitter_feasible_placement(
        n_inc in 1usize..=3,
        n_servers in 1usize..=3,
        seed in 0u64..500,
        cfg_idx in configs_strategy(3, 72),
        alive_bits in 0usize..8,
    ) {
        // `trial` holds incumbents as cameras 0..n_inc and the newcomer
        // as camera n_inc.
        let trial = Scenario::uniform(n_inc + 1, n_servers, 20e6, seed);
        let mut alive: Vec<bool> = (0..n_servers).map(|s| alive_bits >> s & 1 == 1).collect();
        if alive.iter().all(|&b| !b) {
            alive[0] = true; // at least one survivor
        }
        let incumbent_configs: Vec<VideoConfig> = cfg_idx[..n_inc]
            .iter()
            .map(|&i| trial.config_space().at(i))
            .collect();
        let ctl = AdmissionController::new(AdmissionConfig::default());
        // NEG_INFINITY baseline disables the floor, maximizing Accept
        // coverage — this property is about feasibility, not the floor.
        let decision = ctl.admit(
            &trial,
            &incumbent_configs,
            Some(&alive),
            f64::NEG_INFINITY,
            &toy_benefit,
            n_inc,
            0,
            &NoopRecorder,
        );
        if let AdmissionDecision::Accept(report) = decision {
            let mut configs = incumbent_configs.clone();
            configs.push(report.newcomer_config);
            let a = &report.assignment;
            // Every camera's streams are placed.
            let mut sources: Vec<usize> = a.streams.iter().map(|s| s.id.source).collect();
            sources.sort_unstable();
            sources.dedup();
            prop_assert_eq!(sources.len(), n_inc + 1, "some camera unplaced");
            // Groups: Const2 per group, distinct live servers.
            let mut seen = std::collections::HashSet::new();
            for (g, &server) in a.groups.iter().zip(&a.group_server) {
                prop_assert!(server < n_servers);
                prop_assert!(alive[server], "group placed on a dead server");
                prop_assert!(seen.insert(server), "two groups share a server");
                let members: Vec<_> = g.iter().map(|&i| a.streams[i]).collect();
                prop_assert!(
                    const2_zero_jitter_ok(&members),
                    "accepted placement violates Const2"
                );
            }
        }
    }

    /// Departures monotonically free capacity: after each departure the
    /// total utilization (sum of proc/period) weakly decreases, the
    /// placement stays zero-jitter feasible, and an incremental repair
    /// never grows the set of occupied servers.
    #[test]
    fn departures_monotonically_free_capacity(
        n in 2usize..=4,
        n_servers in 2usize..=3,
        seed in 0u64..500,
        cfg_idx in configs_strategy(4, 72),
    ) {
        let base = Scenario::uniform(n, n_servers, 20e6, seed);
        let mut configs: Vec<VideoConfig> = cfg_idx[..n]
            .iter()
            .map(|&i| base.config_space().at(i))
            .collect();
        // Vacuous when the starting system is unschedulable.
        prop_assume!(base.schedule(&configs).is_ok());
        let a0 = base.schedule(&configs).expect("just checked");
        let mut clips: Vec<ClipProfile> =
            (0..n).map(|i| base.clip(i).clone()).collect();
        let mut resched = Rescheduler::new();
        resched.install(&a0);
        let util = |a: &eva_sched::Assignment| -> f64 {
            a.streams.iter().map(|s| s.proc as f64 / s.period as f64).sum()
        };
        let occupied = |a: &eva_sched::Assignment| a.group_server.len();
        let mut prev_util = util(&a0);
        let mut prev_occupied = occupied(&a0);
        // Depart the last camera repeatedly until one remains.
        while clips.len() > 1 {
            let camera = clips.len() - 1;
            clips.pop();
            configs.pop();
            let scenario = Scenario::new(
                clips.clone(),
                base.uplinks().to_vec(),
                base.config_space().clone(),
            );
            let (a, scope) = resched
                .replan(
                    &scenario,
                    &configs,
                    None,
                    ReplanTrigger::Departure { camera },
                    &NoopRecorder,
                )
                .expect("removing load cannot make a feasible system infeasible");
            let u = util(&a);
            prop_assert!(
                u <= prev_util + 1e-12,
                "departure increased utilization: {} -> {}",
                prev_util,
                u
            );
            for (g, _) in a.groups.iter().zip(&a.group_server) {
                let members: Vec<_> = g.iter().map(|&i| a.streams[i]).collect();
                prop_assert!(const2_zero_jitter_ok(&members));
            }
            if matches!(scope, ReplanScope::Incremental { .. }) {
                prop_assert!(
                    occupied(&a) <= prev_occupied,
                    "incremental departure repair grew the server footprint"
                );
            }
            prev_util = u;
            prev_occupied = occupied(&a);
        }
    }

    /// The retry queue under an arbitrary operation sequence: the
    /// depth never exceeds `queue_capacity`, pops (departures /
    /// restores draining it) are monotone FIFO, and both shedding
    /// paths (age expiry, high-water eviction) evict oldest-first.
    #[test]
    fn retry_queue_bound_drain_and_oldest_first_shedding(
        capacity in 1usize..=6,
        high_water in 0usize..=6,
        max_age in 1u32..=20,
        ops in proptest::collection::vec((0u8..=3, 0u64..32), 1..60),
    ) {
        let cfg = AdmissionConfig {
            queue_capacity: capacity,
            max_queue_age_s: max_age as f64,
            high_water,
            ..AdmissionConfig::default()
        };
        let mut q = RetryQueue::new(&cfg);
        let mut now = 0.0f64;
        let mut model: Vec<(u64, f64)> = Vec::new(); // (tenant, enqueued_at)
        for (op, tenant) in ops {
            now += 1.0; // monotone clock, one tick per op
            match op {
                0 => {
                    // Arrival tries to queue.
                    let pushed = q.try_push(tenant, now);
                    prop_assert_eq!(pushed, model.len() < capacity,
                        "push must succeed iff below capacity");
                    if pushed {
                        model.push((tenant, now));
                    }
                }
                1 => {
                    // Capacity freed: drain the oldest waiter.
                    let popped = q.pop_front();
                    prop_assert_eq!(popped.map(|e| e.tenant),
                        model.first().map(|&(t, _)| t),
                        "drain must be FIFO (oldest first)");
                    if !model.is_empty() {
                        model.remove(0);
                    }
                }
                2 => {
                    // Age shedding at the current clock.
                    let shed = q.expire(now);
                    let expected: Vec<u64> = model
                        .iter()
                        .take_while(|&&(_, at)| now - at > max_age as f64)
                        .map(|&(t, _)| t)
                        .collect();
                    prop_assert_eq!(
                        shed.iter().map(|e| e.tenant).collect::<Vec<_>>(),
                        expected,
                        "age shedding must evict exactly the over-age prefix"
                    );
                    model.drain(..shed.len());
                }
                _ => {
                    // High-water eviction.
                    let shed = q.shed_to_high_water();
                    let excess = model.len().saturating_sub(high_water);
                    let expected: Vec<u64> =
                        model[..excess].iter().map(|&(t, _)| t).collect();
                    prop_assert_eq!(
                        shed.iter().map(|e| e.tenant).collect::<Vec<_>>(),
                        expected,
                        "high-water shedding must evict the oldest excess"
                    );
                    model.drain(..excess);
                    prop_assert!(q.len() <= high_water.min(capacity));
                }
            }
            // Invariants after every operation.
            prop_assert!(q.len() <= capacity, "queue exceeded its bound");
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(
                q.entries().map(|e| e.tenant).collect::<Vec<_>>(),
                model.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
                "queue order diverged from FIFO model"
            );
            prop_assert_eq!(q.under_pressure(), q.len() >= high_water);
        }
    }
}
