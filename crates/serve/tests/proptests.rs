//! Property tests for the serving substrates: admission never lets an
//! infeasible placement through, and departures only ever free
//! capacity.

use eva_obs::NoopRecorder;
use eva_sched::const2_zero_jitter_ok;
use eva_serve::{
    AdmissionConfig, AdmissionController, AdmissionDecision, ReplanScope, ReplanTrigger,
    Rescheduler,
};
use eva_workload::{ClipProfile, Outcome, Scenario, VideoConfig};
use proptest::prelude::*;

/// A benefit function that prefers accurate, fast outcomes — any
/// monotone scorer works for these properties.
fn toy_benefit(o: &Outcome) -> f64 {
    o.accuracy - o.latency_s - 1e-9 * o.network_bps - 0.01 * o.power_w
}

/// Incumbent configurations drawn from the low-load end of the grid so
/// the starting system is schedulable most of the time.
fn configs_strategy(n: usize, grid: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..grid.min(12), n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// If admission accepts, the probe placement it reports is a
    /// genuine zero-jitter placement: every group satisfies Const2,
    /// groups sit on distinct live servers, and every post-split
    /// stream of every camera (incumbents + newcomer) is placed.
    #[test]
    fn accept_implies_zero_jitter_feasible_placement(
        n_inc in 1usize..=3,
        n_servers in 1usize..=3,
        seed in 0u64..500,
        cfg_idx in configs_strategy(3, 72),
        alive_bits in 0usize..8,
    ) {
        // `trial` holds incumbents as cameras 0..n_inc and the newcomer
        // as camera n_inc.
        let trial = Scenario::uniform(n_inc + 1, n_servers, 20e6, seed);
        let mut alive: Vec<bool> = (0..n_servers).map(|s| alive_bits >> s & 1 == 1).collect();
        if alive.iter().all(|&b| !b) {
            alive[0] = true; // at least one survivor
        }
        let incumbent_configs: Vec<VideoConfig> = cfg_idx[..n_inc]
            .iter()
            .map(|&i| trial.config_space().at(i))
            .collect();
        let ctl = AdmissionController::new(AdmissionConfig::default());
        // NEG_INFINITY baseline disables the floor, maximizing Accept
        // coverage — this property is about feasibility, not the floor.
        let decision = ctl.admit(
            &trial,
            &incumbent_configs,
            Some(&alive),
            f64::NEG_INFINITY,
            &toy_benefit,
            n_inc,
            0,
            &NoopRecorder,
        );
        if let AdmissionDecision::Accept(report) = decision {
            let mut configs = incumbent_configs.clone();
            configs.push(report.newcomer_config);
            let a = &report.assignment;
            // Every camera's streams are placed.
            let mut sources: Vec<usize> = a.streams.iter().map(|s| s.id.source).collect();
            sources.sort_unstable();
            sources.dedup();
            prop_assert_eq!(sources.len(), n_inc + 1, "some camera unplaced");
            // Groups: Const2 per group, distinct live servers.
            let mut seen = std::collections::HashSet::new();
            for (g, &server) in a.groups.iter().zip(&a.group_server) {
                prop_assert!(server < n_servers);
                prop_assert!(alive[server], "group placed on a dead server");
                prop_assert!(seen.insert(server), "two groups share a server");
                let members: Vec<_> = g.iter().map(|&i| a.streams[i]).collect();
                prop_assert!(
                    const2_zero_jitter_ok(&members),
                    "accepted placement violates Const2"
                );
            }
        }
    }

    /// Departures monotonically free capacity: after each departure the
    /// total utilization (sum of proc/period) weakly decreases, the
    /// placement stays zero-jitter feasible, and an incremental repair
    /// never grows the set of occupied servers.
    #[test]
    fn departures_monotonically_free_capacity(
        n in 2usize..=4,
        n_servers in 2usize..=3,
        seed in 0u64..500,
        cfg_idx in configs_strategy(4, 72),
    ) {
        let base = Scenario::uniform(n, n_servers, 20e6, seed);
        let mut configs: Vec<VideoConfig> = cfg_idx[..n]
            .iter()
            .map(|&i| base.config_space().at(i))
            .collect();
        // Vacuous when the starting system is unschedulable.
        prop_assume!(base.schedule(&configs).is_ok());
        let a0 = base.schedule(&configs).expect("just checked");
        let mut clips: Vec<ClipProfile> =
            (0..n).map(|i| base.clip(i).clone()).collect();
        let mut resched = Rescheduler::new();
        resched.install(&a0);
        let util = |a: &eva_sched::Assignment| -> f64 {
            a.streams.iter().map(|s| s.proc as f64 / s.period as f64).sum()
        };
        let occupied = |a: &eva_sched::Assignment| a.group_server.len();
        let mut prev_util = util(&a0);
        let mut prev_occupied = occupied(&a0);
        // Depart the last camera repeatedly until one remains.
        while clips.len() > 1 {
            let camera = clips.len() - 1;
            clips.pop();
            configs.pop();
            let scenario = Scenario::new(
                clips.clone(),
                base.uplinks().to_vec(),
                base.config_space().clone(),
            );
            let (a, scope) = resched
                .replan(
                    &scenario,
                    &configs,
                    None,
                    ReplanTrigger::Departure { camera },
                    &NoopRecorder,
                )
                .expect("removing load cannot make a feasible system infeasible");
            let u = util(&a);
            prop_assert!(
                u <= prev_util + 1e-12,
                "departure increased utilization: {} -> {}",
                prev_util,
                u
            );
            for (g, _) in a.groups.iter().zip(&a.group_server) {
                let members: Vec<_> = g.iter().map(|&i| a.streams[i]).collect();
                prop_assert!(const2_zero_jitter_ok(&members));
            }
            if matches!(scope, ReplanScope::Incremental { .. }) {
                prop_assert!(
                    occupied(&a) <= prev_occupied,
                    "incremental departure repair grew the server footprint"
                );
            }
            prev_util = u;
            prev_occupied = occupied(&a);
        }
    }
}
