//! Cholesky factorization for symmetric positive-definite matrices.
//!
//! Kernel (Gram) matrices produced by the GP stack are symmetric and in
//! theory positive definite, but near-duplicate inputs push the smallest
//! eigenvalue to round-off scale. [`Cholesky::decompose_jittered`]
//! therefore retries with exponentially increasing diagonal jitter — the
//! standard GP-library trick (GPML §3.4.3, BoTorch does the same).
//!
//! [`Cholesky::extend`] appends rows/columns to an existing factor in
//! O(k·n²) instead of refactoring the whole (n+k)×(n+k) matrix in
//! O(n³): the new off-diagonal block comes from k triangular solves and
//! the new diagonal block from factoring the k×k Schur complement. This
//! is what makes per-observation GP conditioning incremental.

use crate::{solve, LinalgError, Mat, Result};

/// Jitter ladder start (relative to the mean diagonal magnitude).
const JITTER_START: f64 = 1e-10;
/// Maximum number of 10x jitter escalations before giving up.
const JITTER_TRIES: usize = 8;

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Mat,
    /// Jitter that was actually added to the diagonal (0.0 if none).
    jitter: f64,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix without jitter.
    pub fn decompose(a: &Mat) -> Result<Self> {
        Self::decompose_inner(a, 0.0)
    }

    /// Factor with automatic jitter escalation. `a` must be symmetric;
    /// the decomposition retries with `jitter * 10^k` added to the
    /// diagonal until it succeeds or `JITTER_TRIES` is exhausted.
    pub fn decompose_jittered(a: &Mat) -> Result<Self> {
        match Self::decompose_inner(a, 0.0) {
            Ok(c) => return Ok(c),
            Err(LinalgError::NotPositiveDefinite { .. }) => {}
            Err(e) => return Err(e),
        }
        // Scale the ladder by the mean diagonal so jitter is meaningful
        // for both tiny and huge kernel amplitudes. The floor is machine
        // epsilon, not 1.0: a kernel with mean diagonal 1e-6 must start
        // its ladder at 1e-16, not at 1e-10 (100x the signal).
        let n = a.rows();
        let mean_diag = (0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n.max(1) as f64;
        let base = JITTER_START * mean_diag.max(f64::EPSILON);
        let mut jitter = base;
        let mut last_err = LinalgError::NotPositiveDefinite {
            pivot: 0,
            value: 0.0,
        };
        for _ in 0..JITTER_TRIES {
            match Self::decompose_inner(a, jitter) {
                Ok(c) => return Ok(c),
                Err(e @ LinalgError::NotPositiveDefinite { .. }) => last_err = e,
                Err(e) => return Err(e),
            }
            jitter *= 10.0;
        }
        Err(last_err)
    }

    fn decompose_inner(a: &Mat, jitter: f64) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // sum_{k<j} L[i,k] * L[j,k]
                let s = crate::vecops::dot(&l.row(i)[..j], &l.row(j)[..j]);
                if i == j {
                    let d = a[(i, i)] + jitter - s;
                    if d <= 0.0 || !d.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i, value: d });
                    }
                    l[(i, j)] = d.sqrt();
                } else {
                    l[(i, j)] = (a[(i, j)] - s) / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l, jitter })
    }

    /// Extend the factor of an n×n matrix `A` to the factor of the
    /// (n+k)×(n+k) matrix `[[A, B], [Bᵀ, C]]` without refactoring `A`.
    ///
    /// `cross` is the n×k block `B` and `corner` the k×k block `C`. The
    /// new rows cost k triangular solves (O(k·n²)) plus a k×k Schur
    /// factorization, versus O((n+k)³) for a from-scratch decompose.
    ///
    /// Any jitter baked into this factor is added to the new diagonal
    /// block too, so the extended factor represents the same uniformly
    /// jittered matrix. If the Schur complement itself is not positive
    /// definite, the standard jitter ladder runs on the *new* block only
    /// (the already-factored block is untouched); `jitter()` then
    /// reports the largest jitter in effect on any diagonal entry.
    pub fn extend(&self, cross: &Mat, corner: &Mat) -> Result<Self> {
        let n = self.dim();
        let k = corner.rows();
        if !corner.is_square() {
            return Err(LinalgError::NotSquare {
                rows: corner.rows(),
                cols: corner.cols(),
            });
        }
        if cross.rows() != n || cross.cols() != k {
            return Err(LinalgError::DimMismatch {
                op: "cholesky extend",
                left: (n, k),
                right: (cross.rows(), cross.cols()),
            });
        }
        // L21ᵀ solves L·Y = B column by column; row j of L21 is yⱼ.
        let mut l21 = Mat::zeros(k, n);
        for j in 0..k {
            let y = solve::forward_substitution(&self.l, &cross.col(j))?;
            l21.row_mut(j).copy_from_slice(&y);
        }
        // Schur complement S = C + jitter·I − L21·L21ᵀ.
        let mut s = Mat::zeros(k, k);
        for i in 0..k {
            for j in 0..=i {
                let v = corner[(i, j)] - crate::vecops::dot(l21.row(i), l21.row(j));
                s[(i, j)] = v;
                s[(j, i)] = v;
            }
            s[(i, i)] += self.jitter;
        }
        let s_ch = Self::decompose_jittered(&s)?;
        let mut l = Mat::zeros(n + k, n + k);
        for i in 0..n {
            l.row_mut(i)[..=i].copy_from_slice(&self.l.row(i)[..=i]);
        }
        for i in 0..k {
            l.row_mut(n + i)[..n].copy_from_slice(l21.row(i));
            l.row_mut(n + i)[n..n + i + 1].copy_from_slice(&s_ch.l.row(i)[..=i]);
        }
        Ok(Cholesky {
            l,
            jitter: self.jitter.max(s_ch.jitter),
        })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// The jitter added to the diagonal during factorization.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `A x = b` via the two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = solve::forward_substitution(&self.l, b)?;
        solve::backward_substitution_transposed(&self.l, &y)
    }

    /// Solve `A X = B` column by column.
    pub fn solve_mat(&self, b: &Mat) -> Result<Mat> {
        if b.rows() != self.dim() {
            return Err(LinalgError::DimMismatch {
                op: "cholesky solve_mat",
                left: (self.dim(), self.dim()),
                right: (b.rows(), b.cols()),
            });
        }
        let mut out = Mat::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// `log det A = 2 * sum_i log L[i,i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// The inverse `A^{-1}` (avoid when a solve suffices; needed by the
    /// Laplace-approximation posterior covariance).
    pub fn inverse(&self) -> Result<Mat> {
        self.solve_mat(&Mat::identity(self.dim()))
    }

    /// Quadratic form `b^T A^{-1} b` — the data-fit term of a GP
    /// log-marginal-likelihood.
    pub fn quad_form(&self, b: &[f64]) -> Result<f64> {
        // b^T A^-1 b = ||L^-1 b||^2
        let y = solve::forward_substitution(&self.l, b)?;
        Ok(crate::vecops::dot(&y, &y))
    }

    /// [`Self::quad_form`] with a caller-provided scratch buffer of
    /// length `n` — identical arithmetic, no allocation per call.
    pub fn quad_form_into(&self, b: &[f64], scratch: &mut [f64]) -> Result<f64> {
        solve::forward_substitution_into(&self.l, b, scratch)?;
        Ok(crate::vecops::dot(scratch, scratch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_3x3() -> Mat {
        // A = B B^T + I for B random-ish is SPD; use a fixed known one.
        Mat::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.2], &[0.6, 1.2, 3.0]])
    }

    #[test]
    fn reconstructs_a() {
        let a = spd_3x3();
        let ch = Cholesky::decompose(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(rec.max_abs_diff(&a) < 1e-12);
        assert_eq!(ch.jitter(), 0.0);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd_3x3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn log_det_matches_known_value() {
        let a = Mat::from_diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::decompose(&a).unwrap();
        assert!((ch.log_det() - (24.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn quad_form_matches_solve() {
        let a = spd_3x3();
        let b = [1.0, 2.0, 3.0];
        let ch = Cholesky::decompose(&a).unwrap();
        let x = ch.solve(&b).unwrap();
        let direct = crate::vecops::dot(&b, &x);
        assert!((ch.quad_form(&b).unwrap() - direct).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_spd_without_jitter() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-1 matrix: strictly singular, jitter makes it factorizable.
        let a = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let ch = Cholesky::decompose_jittered(&a).unwrap();
        assert!(ch.jitter() > 0.0);
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(rec.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn jitter_scale_tracks_tiny_amplitudes() {
        // Near-singular with mean diagonal 1e-6: the ladder must start
        // proportional to the amplitude (1e-16), not floored at 1e-10
        // which would be 100x the signal itself.
        let a = Mat::from_rows(&[&[1e-6, 1e-6], &[1e-6, 1e-6]]);
        let ch = Cholesky::decompose_jittered(&a).unwrap();
        assert!(ch.jitter() > 0.0);
        assert!(
            ch.jitter() < 1e-9 * 1e-6,
            "jitter {} is not small relative to the 1e-6 amplitude",
            ch.jitter()
        );
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(rec.max_abs_diff(&a) < 1e-12);
    }

    fn spd_5x5() -> Mat {
        let b = Mat::from_fn(5, 5, |i, j| ((i * 7 + j * 3) as f64 * 0.37).sin());
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diag(1.0);
        a.symmetrize();
        a
    }

    /// Split an SPD matrix into leading block + cross + corner.
    fn split(a: &Mat, n: usize) -> (Mat, Mat, Mat) {
        let k = a.rows() - n;
        let lead = Mat::from_fn(n, n, |i, j| a[(i, j)]);
        let cross = Mat::from_fn(n, k, |i, j| a[(i, n + j)]);
        let corner = Mat::from_fn(k, k, |i, j| a[(n + i, n + j)]);
        (lead, cross, corner)
    }

    #[test]
    fn extend_matches_full_decompose() {
        let a = spd_5x5();
        for n in [1usize, 3, 4] {
            let (lead, cross, corner) = split(&a, n);
            let base = Cholesky::decompose(&lead).unwrap();
            let ext = base.extend(&cross, &corner).unwrap();
            let full = Cholesky::decompose(&a).unwrap();
            assert!(
                ext.l().max_abs_diff(full.l()) < 1e-10,
                "n={n}: factor mismatch"
            );
            assert!((ext.log_det() - full.log_det()).abs() < 1e-10);
            assert_eq!(ext.jitter(), 0.0);
        }
    }

    #[test]
    fn extend_solve_matches_full_solve() {
        let a = spd_5x5();
        let (lead, cross, corner) = split(&a, 2);
        let ext = Cholesky::decompose(&lead)
            .unwrap()
            .extend(&cross, &corner)
            .unwrap();
        let b = [0.3, -1.0, 2.0, 0.7, -0.2];
        let x_ext = ext.solve(&b).unwrap();
        let x_full = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
        for (u, v) in x_ext.iter().zip(&x_full) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn extend_propagates_existing_jitter_to_new_block() {
        // Base factor needed jitter; the extended factor must represent
        // the concatenated matrix with that same jitter on every
        // diagonal entry, old and new alike.
        let lead = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let base = Cholesky::decompose_jittered(&lead).unwrap();
        let j = base.jitter();
        assert!(j > 0.0);
        // Cross block aligned with the range of the singular lead block
        // (equal entries) — the jittered concatenated matrix stays PD.
        let cross = Mat::from_rows(&[&[0.1], &[0.1]]);
        let corner = Mat::from_rows(&[&[2.0]]);
        let ext = base.extend(&cross, &corner).unwrap();
        let mut want = Mat::from_rows(&[&[1.0, 1.0, 0.1], &[1.0, 1.0, 0.1], &[0.1, 0.1, 2.0]]);
        want.add_diag(j);
        let rec = ext.l().matmul(&ext.l().transpose()).unwrap();
        assert!(rec.max_abs_diff(&want) < 1e-10);
        assert_eq!(ext.jitter(), j);
    }

    #[test]
    fn extend_jitters_degenerate_new_rows() {
        // Appending a duplicate of an existing row makes the Schur
        // complement singular; the ladder must rescue the new block.
        let a = spd_3x3();
        let base = Cholesky::decompose(&a).unwrap();
        let cross = Mat::from_fn(3, 1, |i, _| a[(i, 0)]);
        let corner = Mat::from_rows(&[&[a[(0, 0)]]]);
        let ext = base.extend(&cross, &corner).unwrap();
        assert!(ext.jitter() > 0.0);
        assert_eq!(ext.dim(), 4);
        // The factor still solves the (jittered) concatenated system.
        let full = Mat::from_fn(4, 4, |i, j| {
            let ii = if i == 3 { 0 } else { i };
            let jj = if j == 3 { 0 } else { j };
            a[(ii, jj)]
        });
        let rec = ext.l().matmul(&ext.l().transpose()).unwrap();
        assert!(rec.max_abs_diff(&full) < 1e-6);
    }

    #[test]
    fn extend_rejects_bad_shapes() {
        let base = Cholesky::decompose(&spd_3x3()).unwrap();
        let bad_cross = Mat::zeros(2, 1);
        assert!(matches!(
            base.extend(&bad_cross, &Mat::identity(1)),
            Err(LinalgError::DimMismatch { .. })
        ));
        assert!(matches!(
            base.extend(&Mat::zeros(3, 2), &Mat::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn jitter_cannot_rescue_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 0.0], &[0.0, -100.0]]);
        assert!(Cholesky::decompose_jittered(&a).is_err());
    }

    #[test]
    fn inverse_times_a_is_identity() {
        let a = spd_3x3();
        let inv = Cholesky::decompose(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Mat::identity(3)) < 1e-10);
    }

    #[test]
    fn solve_mat_multi_rhs() {
        let a = spd_3x3();
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let x = Cholesky::decompose(&a).unwrap().solve_mat(&b).unwrap();
        let rec = a.matmul(&x).unwrap();
        assert!(rec.max_abs_diff(&b) < 1e-10);
    }

    #[test]
    fn non_square_errors() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
