//! Cholesky factorization for symmetric positive-definite matrices.
//!
//! Kernel (Gram) matrices produced by the GP stack are symmetric and in
//! theory positive definite, but near-duplicate inputs push the smallest
//! eigenvalue to round-off scale. [`Cholesky::decompose_jittered`]
//! therefore retries with exponentially increasing diagonal jitter — the
//! standard GP-library trick (GPML §3.4.3, BoTorch does the same).

use crate::{solve, LinalgError, Mat, Result};

/// Jitter ladder start (relative to the mean diagonal magnitude).
const JITTER_START: f64 = 1e-10;
/// Maximum number of 10x jitter escalations before giving up.
const JITTER_TRIES: usize = 8;

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Mat,
    /// Jitter that was actually added to the diagonal (0.0 if none).
    jitter: f64,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix without jitter.
    pub fn decompose(a: &Mat) -> Result<Self> {
        Self::decompose_inner(a, 0.0)
    }

    /// Factor with automatic jitter escalation. `a` must be symmetric;
    /// the decomposition retries with `jitter * 10^k` added to the
    /// diagonal until it succeeds or `JITTER_TRIES` is exhausted.
    pub fn decompose_jittered(a: &Mat) -> Result<Self> {
        match Self::decompose_inner(a, 0.0) {
            Ok(c) => return Ok(c),
            Err(LinalgError::NotPositiveDefinite { .. }) => {}
            Err(e) => return Err(e),
        }
        // Scale the ladder by the mean diagonal so jitter is meaningful
        // for both tiny and huge kernel amplitudes.
        let n = a.rows();
        let mean_diag = (0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n.max(1) as f64;
        let base = JITTER_START * mean_diag.max(1.0);
        let mut jitter = base;
        let mut last_err = LinalgError::NotPositiveDefinite {
            pivot: 0,
            value: 0.0,
        };
        for _ in 0..JITTER_TRIES {
            match Self::decompose_inner(a, jitter) {
                Ok(c) => return Ok(c),
                Err(e @ LinalgError::NotPositiveDefinite { .. }) => last_err = e,
                Err(e) => return Err(e),
            }
            jitter *= 10.0;
        }
        Err(last_err)
    }

    fn decompose_inner(a: &Mat, jitter: f64) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // sum_{k<j} L[i,k] * L[j,k]
                let s = crate::vecops::dot(&l.row(i)[..j], &l.row(j)[..j]);
                if i == j {
                    let d = a[(i, i)] + jitter - s;
                    if d <= 0.0 || !d.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i, value: d });
                    }
                    l[(i, j)] = d.sqrt();
                } else {
                    l[(i, j)] = (a[(i, j)] - s) / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l, jitter })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// The jitter added to the diagonal during factorization.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `A x = b` via the two triangular solves.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = solve::forward_substitution(&self.l, b)?;
        solve::backward_substitution_transposed(&self.l, &y)
    }

    /// Solve `A X = B` column by column.
    pub fn solve_mat(&self, b: &Mat) -> Result<Mat> {
        if b.rows() != self.dim() {
            return Err(LinalgError::DimMismatch {
                op: "cholesky solve_mat",
                left: (self.dim(), self.dim()),
                right: (b.rows(), b.cols()),
            });
        }
        let mut out = Mat::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// `log det A = 2 * sum_i log L[i,i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// The inverse `A^{-1}` (avoid when a solve suffices; needed by the
    /// Laplace-approximation posterior covariance).
    pub fn inverse(&self) -> Result<Mat> {
        self.solve_mat(&Mat::identity(self.dim()))
    }

    /// Quadratic form `b^T A^{-1} b` — the data-fit term of a GP
    /// log-marginal-likelihood.
    pub fn quad_form(&self, b: &[f64]) -> Result<f64> {
        // b^T A^-1 b = ||L^-1 b||^2
        let y = solve::forward_substitution(&self.l, b)?;
        Ok(crate::vecops::dot(&y, &y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_3x3() -> Mat {
        // A = B B^T + I for B random-ish is SPD; use a fixed known one.
        Mat::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.2], &[0.6, 1.2, 3.0]])
    }

    #[test]
    fn reconstructs_a() {
        let a = spd_3x3();
        let ch = Cholesky::decompose(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(rec.max_abs_diff(&a) < 1e-12);
        assert_eq!(ch.jitter(), 0.0);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd_3x3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn log_det_matches_known_value() {
        let a = Mat::from_diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::decompose(&a).unwrap();
        assert!((ch.log_det() - (24.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn quad_form_matches_solve() {
        let a = spd_3x3();
        let b = [1.0, 2.0, 3.0];
        let ch = Cholesky::decompose(&a).unwrap();
        let x = ch.solve(&b).unwrap();
        let direct = crate::vecops::dot(&b, &x);
        assert!((ch.quad_form(&b).unwrap() - direct).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_spd_without_jitter() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-1 matrix: strictly singular, jitter makes it factorizable.
        let a = Mat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let ch = Cholesky::decompose_jittered(&a).unwrap();
        assert!(ch.jitter() > 0.0);
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(rec.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn jitter_cannot_rescue_indefinite() {
        let a = Mat::from_rows(&[&[1.0, 0.0], &[0.0, -100.0]]);
        assert!(Cholesky::decompose_jittered(&a).is_err());
    }

    #[test]
    fn inverse_times_a_is_identity() {
        let a = spd_3x3();
        let inv = Cholesky::decompose(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Mat::identity(3)) < 1e-10);
    }

    #[test]
    fn solve_mat_multi_rhs() {
        let a = spd_3x3();
        let b = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let x = Cholesky::decompose(&a).unwrap().solve_mat(&b).unwrap();
        let rec = a.matmul(&x).unwrap();
        assert!(rec.max_abs_diff(&b) < 1e-10);
    }

    #[test]
    fn non_square_errors() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
