//! Householder QR factorization and least-squares solving.
//!
//! The paper's related work ("existing EVA schedulers ... begin by
//! modeling the correlation ... using polynomial regression techniques",
//! Sec. 1) needs a numerically sound least-squares solver; QR via
//! Householder reflections is the standard choice — unlike the normal
//! equations it does not square the condition number.

use crate::{LinalgError, Mat, Result};

/// Compact QR factorization of a tall matrix (`rows >= cols`):
/// Householder vectors stored in the lower trapezoid, `R` in the upper
/// triangle.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factors (Householder vectors below the diagonal, R above).
    qr: Mat,
    /// Householder scalar coefficients `tau_k = 2 / (v_k^T v_k)` folded
    /// into normalized vectors (first element 1).
    betas: Vec<f64>,
}

impl Qr {
    /// Factor `a` (must satisfy `rows >= cols`).
    pub fn decompose(a: &Mat) -> Result<Self> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(LinalgError::DimMismatch {
                op: "qr (rows < cols)",
                left: (m, n),
                right: (n, n),
            });
        }
        let mut qr = a.clone();
        let mut betas = Vec::with_capacity(n);
        for k in 0..n {
            // Householder vector for column k, rows k..m.
            let mut norm2 = 0.0;
            for i in k..m {
                norm2 += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm2.sqrt();
            if norm == 0.0 {
                betas.push(0.0); // zero column: identity reflector
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = [v0, a_{k+1,k}, ..., a_{m-1,k}], normalize by v0 so the
            // stored vector has implicit leading 1.
            let mut vtv = v0 * v0;
            for i in (k + 1)..m {
                vtv += qr[(i, k)] * qr[(i, k)];
            }
            if vtv == 0.0 {
                betas.push(0.0);
                continue;
            }
            let beta = 2.0 * v0 * v0 / vtv;
            // Store normalized tail v_i / v0 below the diagonal.
            for i in (k + 1)..m {
                let scaled = qr[(i, k)] / v0;
                qr[(i, k)] = scaled;
            }
            qr[(k, k)] = alpha;
            betas.push(beta);
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                // w = v^T a_j (with implicit v_k = 1)
                let mut w = qr[(k, j)];
                for i in (k + 1)..m {
                    w += qr[(i, k)] * qr[(i, j)];
                }
                w *= beta;
                qr[(k, j)] -= w;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= w * vik;
                }
            }
        }
        Ok(Qr { qr, betas })
    }

    /// Number of columns (unknowns).
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Solve the least-squares problem `min ||A x − b||₂`.
    // Index loops mirror the textbook reflector/back-substitution forms.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        if b.len() != m {
            return Err(LinalgError::DimMismatch {
                op: "qr solve",
                left: (m, n),
                right: (b.len(), 1),
            });
        }
        // y = Q^T b via successive reflector applications.
        let mut y = b.to_vec();
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let mut w = y[k];
            for i in (k + 1)..m {
                w += self.qr[(i, k)] * y[i];
            }
            w *= beta;
            y[k] -= w;
            for i in (k + 1)..m {
                y[i] -= w * self.qr[(i, k)];
            }
        }
        // Back-substitute R x = y[..n]. Diagonal entries tiny relative
        // to the largest one indicate (numerical) rank deficiency.
        let max_diag = (0..n).map(|i| self.qr[(i, i)].abs()).fold(0.0f64, f64::max);
        let tol = 1e-12 * max_diag.max(1e-300);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.qr[(i, j)] * x[j];
            }
            let d = self.qr[(i, i)];
            if d.abs() < tol {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = s / d;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn solves_square_system_exactly() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x_true = vec![1.0, -2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = Qr::decompose(&a).unwrap().solve_least_squares(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let mut rng = eva_stats::rng::seeded(1);
        let (m, n) = (30, 4);
        let a = Mat::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
        let b: Vec<f64> = (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x = Qr::decompose(&a).unwrap().solve_least_squares(&b).unwrap();
        // Normal equations via Cholesky: (A^T A) x = A^T b.
        let ata = a.gram();
        let atb = a.matvec_t(&b).unwrap();
        let x_ne = crate::Cholesky::decompose_jittered(&ata)
            .unwrap()
            .solve(&atb)
            .unwrap();
        for (qi, ni) in x.iter().zip(&x_ne) {
            assert!((qi - ni).abs() < 1e-8, "{qi} vs {ni}");
        }
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        let mut rng = eva_stats::rng::seeded(2);
        let (m, n) = (20, 3);
        let a = Mat::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
        let b: Vec<f64> = (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x = Qr::decompose(&a).unwrap().solve_least_squares(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect();
        // A^T r = 0 at the least-squares optimum.
        let atr = a.matvec_t(&r).unwrap();
        for v in atr {
            assert!(v.abs() < 1e-10, "non-orthogonal residual: {v}");
        }
    }

    #[test]
    fn exact_fit_when_b_in_range() {
        let a = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let x_true = vec![2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = Qr::decompose(&a).unwrap().solve_least_squares(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Mat::zeros(2, 3);
        assert!(Qr::decompose(&a).is_err());
    }

    #[test]
    fn rank_deficient_reports_singular() {
        // Two identical columns.
        let a = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let qr = Qr::decompose(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular { .. })
        ));
    }
}
