//! Row-major dense matrix with blocked, parallel multiplication.

use rayon::prelude::*;

use crate::{LinalgError, Result};

/// Block edge (in elements) for the cache-blocked multiply. 64x64 f64
/// tiles are 32 KiB — three of them fit in a typical 256 KiB L2 slice.
const BLOCK: usize = 64;

/// Row count above which `matmul` fans rows out across the rayon pool.
const PAR_THRESHOLD: usize = 128;

/// A dense, row-major `f64` matrix.
///
/// This is deliberately minimal: exactly the operations the GP stack and
/// schedulers need, with contiguous storage so the hot loops vectorize.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// An `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector. Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Mat::from_vec: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Mat { rows, cols, data }
    }

    /// Build from nested row slices (test/bench convenience).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Mat::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Mat::from_vec(r, c, data)
    }

    /// Build by evaluating `f(i, j)` on every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// A diagonal matrix with the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Mat::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the raw row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Copy the diagonal into a new vector.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// `self + other`.
    pub fn add(&self, other: &Mat) -> Result<Mat> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// `self - other`.
    pub fn sub(&self, other: &Mat) -> Result<Mat> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    fn zip_with(&self, other: &Mat, op: &'static str, f: impl Fn(f64, f64) -> f64) -> Result<Mat> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimMismatch {
                op,
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scale every entry by `s`.
    pub fn scale(&self, s: f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * s).collect(),
        }
    }

    /// Add `eps` to the diagonal in place (jitter for SPD factorizations).
    pub fn add_diag(&mut self, eps: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += eps;
        }
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimMismatch {
                op: "matvec",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| crate::vecops::dot(self.row(i), x))
            .collect())
    }

    /// Transposed matrix-vector product `self^T * x`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::DimMismatch {
                op: "matvec_t",
                left: (self.cols, self.rows),
                right: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.rows {
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += xi * a;
            }
        }
        Ok(out)
    }

    /// Matrix product `self * other`, cache-blocked and row-parallel for
    /// larger operands.
    pub fn matmul(&self, other: &Mat) -> Result<Mat> {
        if self.cols != other.rows {
            return Err(LinalgError::DimMismatch {
                op: "matmul",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Mat::zeros(m, n);
        if m >= PAR_THRESHOLD && k * n >= BLOCK * BLOCK {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, out_row)| mul_row_blocked(self.row(i), other, out_row, k, n));
        } else {
            for i in 0..m {
                let (a_row, out_row) = (self.row(i), &mut out.data[i * n..(i + 1) * n]);
                mul_row_blocked(a_row, other, out_row, k, n);
            }
        }
        Ok(out)
    }

    /// `self^T * self` — the Gram matrix, exploiting symmetry.
    pub fn gram(&self) -> Mat {
        let n = self.cols;
        let mut g = Mat::zeros(n, n);
        for row in self.data.chunks_exact(self.cols.max(1)) {
            for (j, &rj) in row.iter().enumerate() {
                if rj == 0.0 {
                    continue;
                }
                for (l, &rl) in row.iter().enumerate().skip(j) {
                    g[(j, l)] += rj * rl;
                }
            }
        }
        for j in 0..n {
            for l in 0..j {
                g[(j, l)] = g[(l, j)];
            }
        }
        g
    }

    /// Maximum absolute entry difference to `other` (test helper).
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Symmetrize in place: `A <- (A + A^T) / 2`. Useful before Cholesky
    /// when round-off has broken exact symmetry.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }
}

/// One output row of a blocked GEMM: `out_row += a_row * b`.
///
/// Iterating `l` (the shared dimension) in the middle loop turns the inner
/// loop into a contiguous axpy over `b`'s row — the access pattern that
/// lets LLVM vectorize without any unsafe indexing.
fn mul_row_blocked(a_row: &[f64], b: &Mat, out_row: &mut [f64], k: usize, n: usize) {
    for l0 in (0..k).step_by(BLOCK) {
        let l1 = (l0 + BLOCK).min(k);
        for j0 in (0..n).step_by(BLOCK) {
            let j1 = (j0 + BLOCK).min(n);
            #[allow(clippy::needless_range_loop)]
            for l in l0..l1 {
                let a = a_row[l];
                if a == 0.0 {
                    continue;
                }
                let b_row = &b.row(l)[j0..j1];
                let out = &mut out_row[j0..j1];
                for (o, &bv) in out.iter_mut().zip(b_row) {
                    *o += a * bv;
                }
            }
        }
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Mat::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Mat::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Mat::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matmul_dim_mismatch_errors() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn blocked_matmul_matches_naive_large() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let (m, k, n) = (150, 90, 70); // crosses the parallel threshold
        let a = Mat::from_fn(m, k, |_, _| rng.gen_range(-1.0..1.0));
        let b = Mat::from_fn(k, n, |_, _| rng.gen_range(-1.0..1.0));
        let fast = a.matmul(&b).unwrap();
        let mut naive = Mat::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..k {
                    acc += a[(i, l)] * b[(l, j)];
                }
                naive[(i, j)] = acc;
            }
        }
        assert!(fast.max_abs_diff(&naive) < 1e-9);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn matvec_and_matvec_t() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0, 11.0]);
        let z = a.matvec_t(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(z, vec![9.0, 12.0]);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn add_sub_scale_diag() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::identity(2);
        assert!(approx(a.add(&b).unwrap()[(0, 0)], 2.0));
        assert!(approx(a.sub(&b).unwrap()[(1, 1)], 3.0));
        assert!(approx(a.scale(2.0)[(1, 0)], 6.0));
        let mut c = a.clone();
        c.add_diag(0.5);
        assert!(approx(c[(0, 0)], 1.5) && approx(c[(0, 1)], 2.0));
        assert_eq!(a.diag(), vec![1.0, 4.0]);
    }

    #[test]
    fn symmetrize_fixes_roundoff() {
        let mut a = Mat::from_rows(&[&[1.0, 2.0 + 1e-13], &[2.0, 5.0]]);
        a.symmetrize();
        assert_eq!(a[(0, 1)], a[(1, 0)]);
    }

    #[test]
    fn from_diag_and_col() {
        let d = Mat::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.col(1), vec![0.0, 2.0, 0.0]);
        assert_eq!(d.diag(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Mat::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
