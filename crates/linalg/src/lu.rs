//! LU factorization with partial pivoting, for general square systems.
//!
//! The GP stack is Cholesky-only, but the Laplace-approximation inner
//! loop and a few test oracles need a general solver that tolerates
//! non-symmetric matrices.

use crate::{LinalgError, Mat, Result};

/// Pivot magnitudes below this are treated as exactly singular.
const PIVOT_EPS: f64 = 1e-300;

/// Combined LU factors (`L` unit-lower + `U` upper, packed in one matrix)
/// with a row-permutation vector.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Mat,
    perm: Vec<usize>,
    /// +1.0 or -1.0 depending on permutation parity (for determinants).
    sign: f64,
}

impl Lu {
    /// Factor a square matrix. Returns an error for singular input.
    pub fn decompose(a: &Mat) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivot: largest magnitude in column k at/below row k.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    p = i;
                    pmax = v;
                }
            }
            if pmax < PIVOT_EPS || !pmax.is_finite() {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                perm.swap(p, k);
                sign = -sign;
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let ukj = lu[(k, j)];
                        lu[(i, j)] -= factor * ukj;
                    }
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimMismatch {
                op: "lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply permutation, then unit-lower forward solve.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 0..n {
            let s = crate::vecops::dot(&self.lu.row(i)[..i], &y[..i]);
            y[i] -= s; // unit diagonal: no division
        }
        // Upper backward solve.
        for i in (0..n).rev() {
            let s = crate::vecops::dot(&self.lu.row(i)[i + 1..], &y[i + 1..]);
            let d = self.lu[(i, i)];
            if d == 0.0 {
                return Err(LinalgError::Singular { pivot: i });
            }
            y[i] = (y[i] - s) / d;
        }
        Ok(y)
    }

    /// Solve `A X = B` column by column.
    pub fn solve_mat(&self, b: &Mat) -> Result<Mat> {
        if b.rows() != self.dim() {
            return Err(LinalgError::DimMismatch {
                op: "lu solve_mat",
                left: (self.dim(), self.dim()),
                right: (b.rows(), b.cols()),
            });
        }
        let mut out = Mat::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let x = self.solve(&b.col(j))?;
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let prod: f64 = (0..self.dim()).map(|i| self.lu[(i, i)]).product();
        self.sign * prod
    }

    /// Inverse matrix. Prefer [`Lu::solve`] when you only need `A^{-1}b`.
    pub fn inverse(&self) -> Result<Mat> {
        self.solve_mat(&Mat::identity(self.dim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_general_system() {
        let a = Mat::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -2.0, -3.0], &[-1.0, 1.0, 2.0]]);
        let x_true = vec![1.0, 2.0, -1.0];
        let b = a.matvec(&x_true).unwrap();
        let x = Lu::decompose(&a).unwrap().solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn det_known_values() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!((Lu::decompose(&a).unwrap().det() - (-2.0)).abs() < 1e-12);
        let i = Mat::identity(4);
        assert!((Lu::decompose(&i).unwrap().det() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn det_sign_tracks_permutation() {
        // Row-swapped identity has determinant -1.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((Lu::decompose(&a).unwrap().det() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn singular_rejected() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            Lu::decompose(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Mat::from_rows(&[&[3.0, 1.0, 0.0], &[1.0, 4.0, 1.0], &[0.0, 1.0, 5.0]]);
        let inv = Lu::decompose(&a).unwrap().inverse().unwrap();
        assert!(a.matmul(&inv).unwrap().max_abs_diff(&Mat::identity(3)) < 1e-12);
    }

    #[test]
    fn non_square_rejected() {
        assert!(Lu::decompose(&Mat::zeros(2, 3)).is_err());
    }
}
