//! Triangular solves used by the Cholesky and LU factorizations.

use crate::{LinalgError, Mat, Result};

/// Solve `L y = b` with `L` lower triangular (entries above the diagonal
/// are ignored).
pub fn forward_substitution(l: &Mat, b: &[f64]) -> Result<Vec<f64>> {
    let mut y = vec![0.0; l.rows()];
    forward_substitution_into(l, b, &mut y)?;
    Ok(y)
}

/// [`forward_substitution`] writing into a caller-provided buffer of
/// length `l.rows()` — identical arithmetic, no allocation. Batched
/// prediction paths reuse one scratch vector across many right-hand
/// sides.
pub fn forward_substitution_into(l: &Mat, b: &[f64], y: &mut [f64]) -> Result<()> {
    check_square_rhs(l, b, "forward_substitution")?;
    let n = l.rows();
    assert_eq!(y.len(), n, "forward_substitution_into: bad buffer length");
    for i in 0..n {
        let s = crate::vecops::dot(&l.row(i)[..i], &y[..i]);
        let d = l[(i, i)];
        if d == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        y[i] = (b[i] - s) / d;
    }
    Ok(())
}

/// Solve `U x = b` with `U` upper triangular (entries below the diagonal
/// are ignored).
pub fn backward_substitution(u: &Mat, b: &[f64]) -> Result<Vec<f64>> {
    check_square_rhs(u, b, "backward_substitution")?;
    let n = u.rows();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let s = crate::vecops::dot(&u.row(i)[i + 1..], &x[i + 1..]);
        let d = u[(i, i)];
        if d == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] = (b[i] - s) / d;
    }
    Ok(x)
}

/// Solve `L^T x = b` given the *lower* factor `L`, without materializing
/// the transpose. This is the second half of a Cholesky solve.
pub fn backward_substitution_transposed(l: &Mat, b: &[f64]) -> Result<Vec<f64>> {
    check_square_rhs(l, b, "backward_substitution_transposed")?;
    let n = l.rows();
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let d = l[(i, i)];
        if d == 0.0 {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] /= d;
        let xi = x[i];
        // Column i of L below the diagonal eliminates into earlier rows of x.
        for j in 0..i {
            x[j] -= l[(i, j)] * xi;
        }
    }
    Ok(x)
}

fn check_square_rhs(m: &Mat, b: &[f64], op: &'static str) -> Result<()> {
    if !m.is_square() {
        return Err(LinalgError::NotSquare {
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    if b.len() != m.rows() {
        return Err(LinalgError::DimMismatch {
            op,
            left: (m.rows(), m.cols()),
            right: (b.len(), 1),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_solves_lower_system() {
        let l = Mat::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let y = forward_substitution(&l, &[4.0, 11.0]).unwrap();
        assert_eq!(y, vec![2.0, 3.0]);
    }

    #[test]
    fn backward_solves_upper_system() {
        let u = Mat::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let x = backward_substitution(&u, &[7.0, 9.0]).unwrap();
        assert_eq!(x, vec![2.0, 3.0]);
    }

    #[test]
    fn transposed_backward_matches_explicit_transpose() {
        let l = Mat::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[0.5, -1.0, 1.5]]);
        let b = [1.0, 2.0, 3.0];
        let via_fast = backward_substitution_transposed(&l, &b).unwrap();
        let via_explicit = backward_substitution(&l.transpose(), &b).unwrap();
        for (a, c) in via_fast.iter().zip(&via_explicit) {
            assert!((a - c).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_pivot_is_singular() {
        let l = Mat::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        assert!(matches!(
            forward_substitution(&l, &[1.0, 1.0]),
            Err(LinalgError::Singular { pivot: 0 })
        ));
    }

    #[test]
    fn rhs_length_checked() {
        let l = Mat::identity(3);
        assert!(forward_substitution(&l, &[1.0]).is_err());
        assert!(backward_substitution(&l, &[1.0]).is_err());
        assert!(backward_substitution_transposed(&l, &[1.0]).is_err());
    }
}
