//! Small `&[f64]` helpers shared by the numeric crates.
//!
//! These are free functions over slices rather than a vector newtype: the
//! call sites (GP math, schedulers, simulators) all hold plain `Vec<f64>`
//! and a wrapper type would only add friction.

/// Dot product. Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    // Four-lane manual unroll: keeps independent accumulators so the
    // additions can be reassociated/vectorized despite FP non-associativity.
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0;
    for j in chunks * 4..a.len() {
        tail += a[j] * b[j];
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// `y += alpha * x` in place.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two points.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// Elementwise `a - b` into a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Elementwise `a + b` into a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Scale a vector into a new vector.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|&x| x * s).collect()
}

/// Sum of all entries.
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Arithmetic mean (0.0 for an empty slice).
#[inline]
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        sum(a) / a.len() as f64
    }
}

/// Maximum entry; `NEG_INFINITY` for an empty slice.
#[inline]
pub fn max(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Minimum entry; `INFINITY` for an empty slice.
#[inline]
pub fn min(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Index of the maximum entry (first on ties); `None` when empty or all NaN.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv >= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum entry (first on ties); `None` when empty or all NaN.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if bv <= v => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// L1 distance between two vectors.
#[inline]
pub fn l1_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l1_dist: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum()
}

/// Weighted L1 distance `sum_i w_i |a_i - b_i|` — the paper's Eq. 13 core.
#[inline]
pub fn weighted_l1_dist(a: &[f64], b: &[f64], w: &[f64]) -> f64 {
    assert!(
        a.len() == b.len() && a.len() == w.len(),
        "weighted_l1_dist: length mismatch"
    );
    a.iter()
        .zip(b)
        .zip(w)
        .map(|((&x, &y), &wi)| wi * (x - y).abs())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_on_odd_lengths() {
        for n in 0..17 {
            let a: Vec<f64> = (0..n).map(|i| i as f64 + 0.5).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn norms_and_distances() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(l1_dist(&[1.0, -1.0], &[0.0, 1.0]), 3.0);
        assert_eq!(weighted_l1_dist(&[1.0, 0.0], &[0.0, 2.0], &[2.0, 0.5]), 3.0);
    }

    #[test]
    fn reductions() {
        let a = [2.0, -1.0, 5.0, 0.0];
        assert_eq!(sum(&a), 6.0);
        assert_eq!(mean(&a), 1.5);
        assert_eq!(max(&a), 5.0);
        assert_eq!(min(&a), -1.0);
        assert_eq!(argmax(&a), Some(2));
        assert_eq!(argmin(&a), Some(1));
    }

    #[test]
    fn arg_extrema_edge_cases() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[f64::NAN]), None);
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
        // first index wins on ties
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
        assert_eq!(argmin(&[2.0, 2.0]), Some(0));
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn elementwise_ops() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scale(&[1.0, 2.0], -2.0), vec![-2.0, -4.0]);
    }
}
