//! Dense linear-algebra kernels for the PaMO reproduction.
//!
//! The Gaussian-process stack (`eva-gp`, `eva-prefgp`) needs exact dense
//! factorizations on kernel matrices of a few hundred to a few thousand
//! rows. Rather than pulling a full BLAS/LAPACK binding, this crate
//! implements the handful of kernels the system actually uses:
//!
//! * [`Mat`] — a row-major dense matrix with cache-blocked,
//!   rayon-parallel multiplication,
//! * [`Cholesky`] — SPD factorization with automatic jitter escalation
//!   (kernel matrices are frequently near-singular),
//! * [`Lu`] — partial-pivoting LU for general square systems,
//! * [`Qr`] — Householder QR for least squares (polynomial regression),
//! * triangular/linear solves, log-determinants and the small vector
//!   helpers in [`vecops`].
//!
//! All storage is `f64`; the matrices involved are small enough that
//! mixed precision buys nothing while the GP math is sensitive to
//! round-off.

pub mod cholesky;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod solve;
pub mod vecops;

pub use cholesky::Cholesky;
pub use lu::Lu;
pub use matrix::Mat;
pub use qr::Qr;

/// Error type for factorization and solve failures.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Matrix was expected to be square but is not.
    NotSquare { rows: usize, cols: usize },
    /// Dimensions of two operands do not agree.
    DimMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        left: (usize, usize),
        right: (usize, usize),
    },
    /// Cholesky failed even after the maximum jitter was added.
    NotPositiveDefinite { pivot: usize, value: f64 },
    /// LU hit an (effectively) zero pivot: matrix is singular.
    Singular { pivot: usize },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            LinalgError::DimMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite (pivot {pivot} = {value:e})"
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at {pivot})")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
