//! Property-based tests for the dense linear-algebra kernels.

use eva_linalg::{vecops, Cholesky, Lu, Mat};
use proptest::prelude::*;

/// Strategy: a random matrix with entries in [-1, 1].
fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-1.0f64..1.0, rows * cols)
        .prop_map(move |data| Mat::from_vec(rows, cols, data))
}

/// Strategy: an SPD matrix `B B^T + I` of size n.
fn spd_strategy(n: usize) -> impl Strategy<Value = Mat> {
    mat_strategy(n, n).prop_map(move |b| {
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diag(1.0);
        a.symmetrize();
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_reconstructs(a in spd_strategy(6)) {
        let ch = Cholesky::decompose_jittered(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        prop_assert!(rec.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn cholesky_solve_residual_small(a in spd_strategy(5),
                                     b in proptest::collection::vec(-1.0f64..1.0, 5)) {
        let ch = Cholesky::decompose_jittered(&a).unwrap();
        let x = ch.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        prop_assert!(vecops::l1_dist(&ax, &b) < 1e-6);
    }

    #[test]
    fn cholesky_quad_form_nonnegative(a in spd_strategy(4),
                                      b in proptest::collection::vec(-1.0f64..1.0, 4)) {
        let ch = Cholesky::decompose_jittered(&a).unwrap();
        prop_assert!(ch.quad_form(&b).unwrap() >= -1e-12);
    }

    #[test]
    fn lu_solve_residual_small(a in spd_strategy(5),
                               b in proptest::collection::vec(-1.0f64..1.0, 5)) {
        // SPD inputs are conveniently always nonsingular.
        let lu = Lu::decompose(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        prop_assert!(vecops::l1_dist(&ax, &b) < 1e-6);
    }

    #[test]
    fn lu_det_matches_cholesky_logdet(a in spd_strategy(4)) {
        let det = Lu::decompose(&a).unwrap().det();
        let log_det = Cholesky::decompose(&a).unwrap().log_det();
        prop_assert!(det > 0.0);
        prop_assert!((det.ln() - log_det).abs() < 1e-6);
    }

    /// Incremental `extend` of a leading-block factor matches a
    /// from-scratch `decompose` of the concatenated matrix: same factor,
    /// same log-determinant, same solves.
    #[test]
    fn cholesky_extend_equals_full_decompose(a in spd_strategy(7),
                                             n_lead in 1usize..7,
                                             b in proptest::collection::vec(-1.0f64..1.0, 7)) {
        let lead = Mat::from_fn(n_lead, n_lead, |i, j| a[(i, j)]);
        let k = a.rows() - n_lead;
        let cross = Mat::from_fn(n_lead, k, |i, j| a[(i, n_lead + j)]);
        let corner = Mat::from_fn(k, k, |i, j| a[(n_lead + i, n_lead + j)]);

        let ext = Cholesky::decompose(&lead).unwrap().extend(&cross, &corner).unwrap();
        let full = Cholesky::decompose(&a).unwrap();

        prop_assert!(ext.l().max_abs_diff(full.l()) < 1e-8,
            "factor mismatch at n_lead={n_lead}");
        prop_assert!((ext.log_det() - full.log_det()).abs() < 1e-8);
        let x_ext = ext.solve(&b).unwrap();
        let x_full = full.solve(&b).unwrap();
        prop_assert!(vecops::l1_dist(&x_ext, &x_full) < 1e-8);
    }

    /// Extending one row at a time agrees with extending all rows at
    /// once (the factor is unique for PD matrices).
    #[test]
    fn cholesky_extend_is_associative(a in spd_strategy(6)) {
        let lead = Mat::from_fn(4, 4, |i, j| a[(i, j)]);
        let cross = Mat::from_fn(4, 2, |i, j| a[(i, 4 + j)]);
        let corner = Mat::from_fn(2, 2, |i, j| a[(4 + i, 4 + j)]);
        let both = Cholesky::decompose(&lead).unwrap().extend(&cross, &corner).unwrap();

        let cross1 = Mat::from_fn(4, 1, |i, _| a[(i, 4)]);
        let corner1 = Mat::from_fn(1, 1, |_, _| a[(4, 4)]);
        let step1 = Cholesky::decompose(&lead).unwrap().extend(&cross1, &corner1).unwrap();
        let cross2 = Mat::from_fn(5, 1, |i, _| a[(i, 5)]);
        let corner2 = Mat::from_fn(1, 1, |_, _| a[(5, 5)]);
        let step2 = step1.extend(&cross2, &corner2).unwrap();

        prop_assert!(step2.l().max_abs_diff(both.l()) < 1e-8);
    }

    #[test]
    fn matmul_associative_with_vector(a in mat_strategy(4, 3),
                                      b in mat_strategy(3, 5),
                                      x in proptest::collection::vec(-1.0f64..1.0, 5)) {
        // (A B) x == A (B x)
        let lhs = a.matmul(&b).unwrap().matvec(&x).unwrap();
        let rhs = a.matvec(&b.matvec(&x).unwrap()).unwrap();
        prop_assert!(vecops::l1_dist(&lhs, &rhs) < 1e-9);
    }

    #[test]
    fn transpose_respects_matvec(a in mat_strategy(4, 6),
                                 x in proptest::collection::vec(-1.0f64..1.0, 4)) {
        let fast = a.matvec_t(&x).unwrap();
        let explicit = a.transpose().matvec(&x).unwrap();
        prop_assert!(vecops::l1_dist(&fast, &explicit) < 1e-10);
    }

    #[test]
    fn dot_cauchy_schwarz(x in proptest::collection::vec(-10.0f64..10.0, 1..32),
                          y_seed in proptest::collection::vec(-10.0f64..10.0, 32)) {
        let y = &y_seed[..x.len()];
        let d = vecops::dot(&x, y).abs();
        let bound = vecops::norm2(&x) * vecops::norm2(y);
        prop_assert!(d <= bound + 1e-9);
    }
}
