//! Property-based tests for the dense linear-algebra kernels.

use eva_linalg::{vecops, Cholesky, Lu, Mat};
use proptest::prelude::*;

/// Strategy: a random matrix with entries in [-1, 1].
fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-1.0f64..1.0, rows * cols)
        .prop_map(move |data| Mat::from_vec(rows, cols, data))
}

/// Strategy: an SPD matrix `B B^T + I` of size n.
fn spd_strategy(n: usize) -> impl Strategy<Value = Mat> {
    mat_strategy(n, n).prop_map(move |b| {
        let mut a = b.matmul(&b.transpose()).unwrap();
        a.add_diag(1.0);
        a.symmetrize();
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_reconstructs(a in spd_strategy(6)) {
        let ch = Cholesky::decompose_jittered(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose()).unwrap();
        prop_assert!(rec.max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn cholesky_solve_residual_small(a in spd_strategy(5),
                                     b in proptest::collection::vec(-1.0f64..1.0, 5)) {
        let ch = Cholesky::decompose_jittered(&a).unwrap();
        let x = ch.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        prop_assert!(vecops::l1_dist(&ax, &b) < 1e-6);
    }

    #[test]
    fn cholesky_quad_form_nonnegative(a in spd_strategy(4),
                                      b in proptest::collection::vec(-1.0f64..1.0, 4)) {
        let ch = Cholesky::decompose_jittered(&a).unwrap();
        prop_assert!(ch.quad_form(&b).unwrap() >= -1e-12);
    }

    #[test]
    fn lu_solve_residual_small(a in spd_strategy(5),
                               b in proptest::collection::vec(-1.0f64..1.0, 5)) {
        // SPD inputs are conveniently always nonsingular.
        let lu = Lu::decompose(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        prop_assert!(vecops::l1_dist(&ax, &b) < 1e-6);
    }

    #[test]
    fn lu_det_matches_cholesky_logdet(a in spd_strategy(4)) {
        let det = Lu::decompose(&a).unwrap().det();
        let log_det = Cholesky::decompose(&a).unwrap().log_det();
        prop_assert!(det > 0.0);
        prop_assert!((det.ln() - log_det).abs() < 1e-6);
    }

    #[test]
    fn matmul_associative_with_vector(a in mat_strategy(4, 3),
                                      b in mat_strategy(3, 5),
                                      x in proptest::collection::vec(-1.0f64..1.0, 5)) {
        // (A B) x == A (B x)
        let lhs = a.matmul(&b).unwrap().matvec(&x).unwrap();
        let rhs = a.matvec(&b.matvec(&x).unwrap()).unwrap();
        prop_assert!(vecops::l1_dist(&lhs, &rhs) < 1e-9);
    }

    #[test]
    fn transpose_respects_matvec(a in mat_strategy(4, 6),
                                 x in proptest::collection::vec(-1.0f64..1.0, 4)) {
        let fast = a.matvec_t(&x).unwrap();
        let explicit = a.transpose().matvec(&x).unwrap();
        prop_assert!(vecops::l1_dist(&fast, &explicit) < 1e-10);
    }

    #[test]
    fn dot_cauchy_schwarz(x in proptest::collection::vec(-10.0f64..10.0, 1..32),
                          y_seed in proptest::collection::vec(-10.0f64..10.0, 32)) {
        let y = &y_seed[..x.len()];
        let d = vecops::dot(&x, y).abs();
        let bound = vecops::norm2(&x) * vecops::norm2(y);
        prop_assert!(d <= bound + 1e-9);
    }
}
