//! Online bandwidth estimators.
//!
//! The scheduler never observes `B(t)` directly — it sees *deliveries*:
//! a frame of `bytes` took `duration` seconds on the uplink. Each
//! estimator folds such samples into a running estimate `B̂` that the
//! planning layer divides by a headroom factor before using it as the
//! Eq. 5 bandwidth.
//!
//! Two standard designs:
//! * [`EwmaEstimator`] — exponentially weighted moving average of the
//!   per-frame delivery rates (TCP-style smoothing; lags on step
//!   changes, robust to single-sample noise),
//! * [`MaxFilterEstimator`] — BBR-style windowed max-filter: the
//!   bottleneck bandwidth is the *largest* recently observed delivery
//!   rate, since queueing can only make samples undershoot capacity.

use std::collections::VecDeque;

/// Delivery rate implied by one observation (bits/s). Degenerate
/// observations (non-finite or non-positive) map to `0.0` rather than
/// NaN/∞ so a corrupt sample can never poison downstream state.
pub fn delivery_rate_bps(bytes: f64, duration_s: f64) -> f64 {
    if !valid_observation(bytes, duration_s) {
        return 0.0;
    }
    bytes * 8.0 / duration_s
}

/// Whether a `(bytes, duration)` delivery sample is usable: both finite
/// and strictly positive. NaN fails every `<=` comparison, so a plain
/// `bytes <= 0.0` guard would let NaN through and corrupt an EWMA
/// forever — hence the explicit `is_finite` checks.
fn valid_observation(bytes: f64, duration_s: f64) -> bool {
    bytes.is_finite() && duration_s.is_finite() && bytes > 0.0 && duration_s > 0.0
}

/// A bandwidth estimator fed per-frame delivery observations.
pub trait LinkEstimator {
    /// Record one delivery: `bytes` transferred in `duration_s` seconds.
    /// Non-positive observations are ignored.
    fn observe(&mut self, bytes: f64, duration_s: f64);

    /// Current estimate (bits/s); `None` before any valid observation.
    fn estimate_bps(&self) -> Option<f64>;

    /// Forget all state (e.g. after a handover invalidates history).
    fn reset(&mut self);
}

/// Exponentially weighted moving average of delivery-rate samples.
#[derive(Debug, Clone)]
pub struct EwmaEstimator {
    alpha: f64,
    current: Option<f64>,
}

impl EwmaEstimator {
    /// `alpha` is the weight of the newest sample, in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EwmaEstimator: alpha in (0, 1]"
        );
        EwmaEstimator {
            alpha,
            current: None,
        }
    }
}

impl Default for EwmaEstimator {
    /// TCP-style smoothing weight (`alpha = 1/8`).
    fn default() -> Self {
        EwmaEstimator::new(0.125)
    }
}

impl LinkEstimator for EwmaEstimator {
    fn observe(&mut self, bytes: f64, duration_s: f64) {
        if !valid_observation(bytes, duration_s) {
            return;
        }
        let sample = delivery_rate_bps(bytes, duration_s);
        self.current = Some(match self.current {
            None => sample,
            Some(prev) => prev + self.alpha * (sample - prev),
        });
    }

    fn estimate_bps(&self) -> Option<f64> {
        self.current
    }

    fn reset(&mut self) {
        self.current = None;
    }
}

/// BBR-style windowed max-filter over the last `window` delivery-rate
/// samples.
#[derive(Debug, Clone)]
pub struct MaxFilterEstimator {
    window: usize,
    samples: VecDeque<f64>,
}

impl MaxFilterEstimator {
    /// Keep the largest of the last `window >= 1` samples.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "MaxFilterEstimator: empty window");
        MaxFilterEstimator {
            window,
            samples: VecDeque::with_capacity(window),
        }
    }
}

impl Default for MaxFilterEstimator {
    /// BBR's default of 10 round-trip samples.
    fn default() -> Self {
        MaxFilterEstimator::new(10)
    }
}

impl LinkEstimator for MaxFilterEstimator {
    fn observe(&mut self, bytes: f64, duration_s: f64) {
        if !valid_observation(bytes, duration_s) {
            return;
        }
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(delivery_rate_bps(bytes, duration_s));
    }

    fn estimate_bps(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |m| m.max(s)))
            })
    }

    fn reset(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One frame of `bits` delivered at `rate_bps`.
    fn feed(est: &mut dyn LinkEstimator, bits: f64, rate_bps: f64) {
        est.observe(bits / 8.0, bits / rate_bps);
    }

    #[test]
    fn empty_estimators_return_none() {
        assert_eq!(EwmaEstimator::default().estimate_bps(), None);
        assert_eq!(MaxFilterEstimator::default().estimate_bps(), None);
    }

    #[test]
    fn constant_rate_is_recovered_exactly() {
        let mut ewma = EwmaEstimator::default();
        let mut maxf = MaxFilterEstimator::default();
        for _ in 0..50 {
            feed(&mut ewma, 100_000.0, 20e6);
            feed(&mut maxf, 100_000.0, 20e6);
        }
        assert!((ewma.estimate_bps().unwrap() - 20e6).abs() < 1e-6);
        assert!((maxf.estimate_bps().unwrap() - 20e6).abs() < 1e-6);
    }

    #[test]
    fn ewma_converges_after_step_change() {
        let mut ewma = EwmaEstimator::new(0.25);
        for _ in 0..40 {
            feed(&mut ewma, 100_000.0, 10e6);
        }
        for _ in 0..40 {
            feed(&mut ewma, 100_000.0, 20e6);
        }
        let est = ewma.estimate_bps().unwrap();
        assert!((est - 20e6).abs() / 20e6 < 0.01, "est {est}");
    }

    #[test]
    fn max_filter_tracks_recent_peak_and_expires_it() {
        let mut maxf = MaxFilterEstimator::new(5);
        feed(&mut maxf, 100_000.0, 30e6);
        for _ in 0..3 {
            feed(&mut maxf, 100_000.0, 10e6);
        }
        // The peak is still inside the 5-sample window.
        assert!((maxf.estimate_bps().unwrap() - 30e6).abs() < 1e-6);
        for _ in 0..5 {
            feed(&mut maxf, 100_000.0, 10e6);
        }
        // Now it has been pushed out.
        assert!((maxf.estimate_bps().unwrap() - 10e6).abs() < 1e-6);
    }

    #[test]
    fn degenerate_observations_are_ignored() {
        let mut ewma = EwmaEstimator::default();
        let mut maxf = MaxFilterEstimator::default();
        for est in [&mut ewma as &mut dyn LinkEstimator, &mut maxf] {
            est.observe(0.0, 1.0);
            est.observe(100.0, 0.0);
            est.observe(-5.0, 1.0);
            assert_eq!(est.estimate_bps(), None);
        }
    }

    #[test]
    fn non_finite_observations_do_not_poison_state() {
        // Regression: NaN fails both `<= 0.0` comparisons, so the old
        // guard admitted it and `prev + alpha * (NaN - prev)` stayed
        // NaN forever. Every non-finite combination must be a no-op.
        let mut ewma = EwmaEstimator::default();
        let mut maxf = MaxFilterEstimator::default();
        for est in [&mut ewma as &mut dyn LinkEstimator, &mut maxf] {
            feed(est, 100_000.0, 20e6);
            for (bytes, dur) in [
                (f64::NAN, 1.0),
                (100.0, f64::NAN),
                (f64::NAN, f64::NAN),
                (f64::INFINITY, 1.0),
                (100.0, f64::INFINITY),
                (f64::NEG_INFINITY, 1.0),
            ] {
                est.observe(bytes, dur);
            }
            let got = est.estimate_bps().expect("estimate survives");
            assert!(
                got.is_finite() && (got - 20e6).abs() < 1e-6,
                "estimate poisoned: {got}"
            );
        }
        // And the rate helper itself never returns NaN/∞.
        assert_eq!(delivery_rate_bps(f64::NAN, 1.0), 0.0);
        assert_eq!(delivery_rate_bps(1.0, f64::NAN), 0.0);
        assert_eq!(delivery_rate_bps(f64::INFINITY, 1.0), 0.0);
        assert_eq!(delivery_rate_bps(1.0, 0.0), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut ewma = EwmaEstimator::default();
        let mut maxf = MaxFilterEstimator::default();
        feed(&mut ewma, 100_000.0, 15e6);
        feed(&mut maxf, 100_000.0, 15e6);
        ewma.reset();
        maxf.reset();
        assert_eq!(ewma.estimate_bps(), None);
        assert_eq!(maxf.estimate_bps(), None);
    }

    #[test]
    fn estimators_work_through_the_trait_object() {
        let mut ests: Vec<Box<dyn LinkEstimator>> = vec![
            Box::new(EwmaEstimator::default()),
            Box::new(MaxFilterEstimator::default()),
        ];
        for est in ests.iter_mut() {
            est.observe(12_500.0, 0.005); // 100 kbit in 5 ms = 20 Mbps
            assert!((est.estimate_bps().unwrap() - 20e6).abs() < 1e-6);
        }
    }
}
