//! Time-varying uplink bandwidth processes.
//!
//! A [`LinkModel`] describes one camera's uplink as a deterministic
//! (seeded) random process `B(t)`; [`LinkModel::trace`] materializes it
//! into a piecewise-constant [`LinkTrace`] over a simulation horizon.
//! Three families cover the usual measurement-study shapes:
//!
//! * **Constant** — the paper's fixed-`B` assumption (and the
//!   bit-identity anchor: a constant trace must reproduce the fixed
//!   `trans` simulation exactly),
//! * **Markov** — Gilbert-Elliott-style rate switching between a small
//!   set of states with exponentially distributed dwell times (fading /
//!   contention bursts),
//! * **Sinusoid** — a diurnal-style slow oscillation plus bounded
//!   per-quantum noise.

use eva_sched::{Ticks, TICKS_PER_SEC};

/// Floor on modeled rates (bits/s): keeps per-frame transmission times
/// finite even in deep fades.
pub const MIN_RATE_BPS: f64 = 1e3;

/// Time quantum of the sinusoid trace (seconds).
const SINUSOID_QUANTUM_S: f64 = 0.25;

/// One state of a Markov-modulated link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovState {
    /// Link rate while in this state (bits/s).
    pub rate_bps: f64,
    /// Mean dwell time in this state (seconds); dwells are exponential.
    pub mean_dwell_s: f64,
}

/// A per-camera time-varying uplink bandwidth process. Deterministic
/// given its parameters (and seed, for the stochastic families).
#[derive(Debug, Clone, PartialEq)]
pub enum LinkModel {
    /// Fixed rate — the paper's provisioned-uplink assumption.
    Constant {
        /// Link rate (bits/s).
        rate_bps: f64,
    },
    /// Markov-modulated rate switching: the link sits in one of
    /// `states`, staying an exponential dwell, then jumps to another
    /// state (uniformly among the others).
    Markov {
        /// The rate states (at least two).
        states: Vec<MarkovState>,
        /// Seed for dwell and transition draws.
        seed: u64,
    },
    /// Slow sinusoidal oscillation with per-quantum noise — the
    /// diurnal shape of campus/ISP uplink studies, time-compressed.
    Sinusoid {
        /// Mean rate (bits/s).
        mean_bps: f64,
        /// Peak deviation from the mean (bits/s).
        amplitude_bps: f64,
        /// Oscillation period (seconds).
        period_s: f64,
        /// Relative noise magnitude per quantum (e.g. 0.05 = ±5%).
        noise_rel: f64,
        /// Seed for the noise draws.
        seed: u64,
    },
}

impl LinkModel {
    /// A fixed-rate link.
    pub fn constant(rate_bps: f64) -> Self {
        assert!(rate_bps > 0.0, "LinkModel: non-positive rate");
        LinkModel::Constant { rate_bps }
    }

    /// Two-state Gilbert-Elliott rate switching.
    pub fn gilbert_elliott(
        good_bps: f64,
        bad_bps: f64,
        dwell_good_s: f64,
        dwell_bad_s: f64,
        seed: u64,
    ) -> Self {
        LinkModel::markov(
            vec![
                MarkovState {
                    rate_bps: good_bps,
                    mean_dwell_s: dwell_good_s,
                },
                MarkovState {
                    rate_bps: bad_bps,
                    mean_dwell_s: dwell_bad_s,
                },
            ],
            seed,
        )
    }

    /// Three-state Markov switching (good / degraded / bad).
    pub fn three_state(rates_bps: [f64; 3], dwells_s: [f64; 3], seed: u64) -> Self {
        LinkModel::markov(
            rates_bps
                .iter()
                .zip(&dwells_s)
                .map(|(&rate_bps, &mean_dwell_s)| MarkovState {
                    rate_bps,
                    mean_dwell_s,
                })
                .collect(),
            seed,
        )
    }

    /// General Markov-modulated link over explicit states.
    pub fn markov(states: Vec<MarkovState>, seed: u64) -> Self {
        assert!(states.len() >= 2, "LinkModel::markov: need >= 2 states");
        assert!(
            states
                .iter()
                .all(|s| s.rate_bps > 0.0 && s.mean_dwell_s > 0.0),
            "LinkModel::markov: degenerate state"
        );
        LinkModel::Markov { states, seed }
    }

    /// Sinusoidal diurnal oscillation plus per-quantum noise.
    pub fn sinusoid(
        mean_bps: f64,
        amplitude_bps: f64,
        period_s: f64,
        noise_rel: f64,
        seed: u64,
    ) -> Self {
        assert!(
            mean_bps > 0.0 && period_s > 0.0,
            "LinkModel: degenerate sinusoid"
        );
        assert!(
            amplitude_bps >= 0.0 && amplitude_bps < mean_bps,
            "LinkModel: amplitude must leave the rate positive"
        );
        assert!(
            (0.0..1.0).contains(&noise_rel),
            "LinkModel: noise_rel in [0, 1)"
        );
        LinkModel::Sinusoid {
            mean_bps,
            amplitude_bps,
            period_s,
            noise_rel,
            seed,
        }
    }

    /// The same process with every rate multiplied by `factor` — the
    /// hook `ChaosSpec`-style link collapse uses to degrade one member
    /// of a bundle without touching its dwell structure or seed.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "LinkModel::scaled: factor must be finite and positive"
        );
        match self {
            LinkModel::Constant { rate_bps } => LinkModel::Constant {
                rate_bps: rate_bps * factor,
            },
            LinkModel::Markov { states, seed } => LinkModel::Markov {
                states: states
                    .iter()
                    .map(|s| MarkovState {
                        rate_bps: s.rate_bps * factor,
                        mean_dwell_s: s.mean_dwell_s,
                    })
                    .collect(),
                seed: *seed,
            },
            LinkModel::Sinusoid {
                mean_bps,
                amplitude_bps,
                period_s,
                noise_rel,
                seed,
            } => LinkModel::Sinusoid {
                mean_bps: mean_bps * factor,
                amplitude_bps: amplitude_bps * factor,
                period_s: *period_s,
                noise_rel: *noise_rel,
                seed: *seed,
            },
        }
    }

    /// Long-run mean rate of the process (bits/s) — what an oracle
    /// planner would use as `B`.
    pub fn nominal_bps(&self) -> f64 {
        match self {
            LinkModel::Constant { rate_bps } => *rate_bps,
            LinkModel::Markov { states, .. } => {
                let weight: f64 = states.iter().map(|s| s.mean_dwell_s).sum();
                states
                    .iter()
                    .map(|s| s.rate_bps * s.mean_dwell_s)
                    .sum::<f64>()
                    / weight
            }
            LinkModel::Sinusoid { mean_bps, .. } => *mean_bps,
        }
    }

    /// Materialize the process over `[0, horizon)` ticks as a
    /// piecewise-constant trace. Deterministic: the same model and
    /// horizon always produce the same trace.
    pub fn trace(&self, horizon: Ticks) -> LinkTrace {
        assert!(horizon > 0, "LinkModel::trace: empty horizon");
        let (starts, rates) = match self {
            LinkModel::Constant { rate_bps } => (vec![0], vec![*rate_bps]),
            LinkModel::Markov { states, seed } => {
                let mut rng = SplitMix::new(*seed);
                let mut state = (rng.next_u64() % states.len() as u64) as usize;
                let mut t: Ticks = 0;
                let mut starts = Vec::new();
                let mut rates = Vec::new();
                while t < horizon {
                    starts.push(t);
                    rates.push(states[state].rate_bps.max(MIN_RATE_BPS));
                    let dwell_s = rng.exp(states[state].mean_dwell_s);
                    t += secs_to_ticks(dwell_s).max(1);
                    state = if states.len() == 2 {
                        1 - state
                    } else {
                        // Uniform among the other states.
                        let step = 1 + (rng.next_u64() % (states.len() as u64 - 1)) as usize;
                        (state + step) % states.len()
                    };
                }
                (starts, rates)
            }
            LinkModel::Sinusoid {
                mean_bps,
                amplitude_bps,
                period_s,
                noise_rel,
                seed,
            } => {
                let mut rng = SplitMix::new(*seed);
                let quantum = secs_to_ticks(SINUSOID_QUANTUM_S).max(1);
                let mut starts = Vec::new();
                let mut rates = Vec::new();
                let mut t: Ticks = 0;
                while t < horizon {
                    let t_s = t as f64 / TICKS_PER_SEC as f64;
                    let carrier = mean_bps
                        + amplitude_bps * (2.0 * std::f64::consts::PI * t_s / period_s).sin();
                    let noise = noise_rel * mean_bps * (2.0 * rng.next_f64() - 1.0);
                    starts.push(t);
                    rates.push((carrier + noise).max(MIN_RATE_BPS));
                    t += quantum;
                }
                (starts, rates)
            }
        };
        LinkTrace {
            starts,
            rates,
            horizon,
        }
    }
}

/// A materialized `B(t)`: piecewise-constant rate segments covering
/// `[0, horizon)`. Queries past the horizon hold the last rate (the
/// process is frozen, not undefined — simulations may peek slightly
/// past the end when a transmission straddles it).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkTrace {
    starts: Vec<Ticks>,
    rates: Vec<f64>,
    horizon: Ticks,
}

impl LinkTrace {
    /// Instantaneous rate at time `t` (bits/s).
    pub fn rate_at(&self, t: Ticks) -> f64 {
        // First segment with start > t, minus one. starts[0] == 0.
        let idx = self.starts.partition_point(|&s| s <= t);
        self.rates[idx - 1]
    }

    /// The segments as `(start, end, rate_bps)` triples, in time order.
    pub fn segments(&self) -> impl Iterator<Item = (Ticks, Ticks, f64)> + '_ {
        self.starts.iter().enumerate().map(move |(i, &start)| {
            let end = self
                .starts
                .get(i + 1)
                .copied()
                .unwrap_or(self.horizon.max(start));
            (start, end, self.rates[i])
        })
    }

    /// Number of constant-rate segments.
    pub fn n_segments(&self) -> usize {
        self.starts.len()
    }

    /// The horizon the trace was materialized for (ticks).
    pub fn horizon(&self) -> Ticks {
        self.horizon
    }

    /// Time-weighted mean rate over `[0, horizon)` (bits/s).
    pub fn mean_bps(&self) -> f64 {
        let mut acc = 0.0;
        let mut span = 0.0;
        for (start, end, rate) in self.segments() {
            let w = end.saturating_sub(start) as f64;
            acc += rate * w;
            span += w;
        }
        if span > 0.0 {
            acc / span
        } else {
            self.rates[0]
        }
    }

    /// Smallest segment rate (bits/s).
    pub fn min_bps(&self) -> f64 {
        self.rates.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest segment rate (bits/s).
    pub fn max_bps(&self) -> f64 {
        self.rates.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Convert seconds to ticks (rounded).
pub fn secs_to_ticks(secs: f64) -> Ticks {
    (secs * TICKS_PER_SEC as f64).round().max(0.0) as Ticks
}

/// Internal deterministic generator (splitmix64) — keeps `eva-net`
/// dependency-free and traces reproducible across platforms.
#[derive(Debug, Clone)]
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` (53-bit mantissa).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential with the given mean (inverse CDF).
    fn exp(&mut self, mean: f64) -> f64 {
        -mean * (1.0 - self.next_f64()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HORIZON: Ticks = 60 * TICKS_PER_SEC;

    #[test]
    fn constant_trace_is_one_segment() {
        let t = LinkModel::constant(20e6).trace(HORIZON);
        assert_eq!(t.n_segments(), 1);
        assert_eq!(t.rate_at(0), 20e6);
        assert_eq!(t.rate_at(HORIZON - 1), 20e6);
        assert_eq!(t.rate_at(HORIZON + 12345), 20e6); // frozen past horizon
        assert_eq!(t.mean_bps(), 20e6);
    }

    #[test]
    fn traces_are_deterministic() {
        let m = LinkModel::gilbert_elliott(25e6, 8e6, 3.0, 1.5, 42);
        assert_eq!(m.trace(HORIZON), m.trace(HORIZON));
        let s = LinkModel::sinusoid(20e6, 5e6, 30.0, 0.05, 7);
        assert_eq!(s.trace(HORIZON), s.trace(HORIZON));
    }

    #[test]
    fn different_seeds_differ() {
        let a = LinkModel::gilbert_elliott(25e6, 8e6, 3.0, 1.5, 1).trace(HORIZON);
        let b = LinkModel::gilbert_elliott(25e6, 8e6, 3.0, 1.5, 2).trace(HORIZON);
        assert_ne!(a, b);
    }

    #[test]
    fn markov_trace_visits_both_states() {
        let t = LinkModel::gilbert_elliott(25e6, 8e6, 3.0, 1.5, 3).trace(HORIZON);
        assert!(t.n_segments() > 5, "only {} segments", t.n_segments());
        assert_eq!(t.min_bps(), 8e6);
        assert_eq!(t.max_bps(), 25e6);
        // Dwell-weighted mean sits strictly between the states.
        let mean = t.mean_bps();
        assert!(mean > 8e6 && mean < 25e6, "mean {mean}");
    }

    #[test]
    fn markov_mean_approaches_nominal() {
        let m = LinkModel::gilbert_elliott(25e6, 8e6, 3.0, 1.5, 9);
        let nominal = m.nominal_bps();
        // (25*3 + 8*1.5) / 4.5 ≈ 19.33 Mbps.
        assert!((nominal - (25e6 * 3.0 + 8e6 * 1.5) / 4.5).abs() < 1.0);
        let long = m.trace(3600 * TICKS_PER_SEC);
        assert!(
            (long.mean_bps() - nominal).abs() / nominal < 0.1,
            "empirical {} vs nominal {}",
            long.mean_bps(),
            nominal
        );
    }

    #[test]
    fn three_state_uses_all_rates() {
        let t = LinkModel::three_state([30e6, 15e6, 5e6], [2.0, 2.0, 2.0], 5).trace(HORIZON);
        let mut seen = [false; 3];
        for (_, _, r) in t.segments() {
            for (i, &rate) in [30e6, 15e6, 5e6].iter().enumerate() {
                if (r - rate).abs() < 1.0 {
                    seen[i] = true;
                }
            }
        }
        assert_eq!(seen, [true; 3], "states visited: {seen:?}");
    }

    #[test]
    fn sinusoid_oscillates_around_mean() {
        let t = LinkModel::sinusoid(20e6, 5e6, 10.0, 0.0, 0).trace(HORIZON);
        assert!(t.max_bps() > 24e6, "max {}", t.max_bps());
        assert!(t.min_bps() < 16e6, "min {}", t.min_bps());
        assert!((t.mean_bps() - 20e6).abs() / 20e6 < 0.02);
    }

    #[test]
    fn segments_tile_the_horizon() {
        for model in [
            LinkModel::constant(10e6),
            LinkModel::gilbert_elliott(25e6, 8e6, 3.0, 1.5, 11),
            LinkModel::sinusoid(20e6, 5e6, 10.0, 0.05, 11),
        ] {
            let t = model.trace(HORIZON);
            let mut expected_start = 0;
            for (start, end, rate) in t.segments() {
                assert_eq!(start, expected_start);
                assert!(end > start || end == t.horizon());
                assert!(rate >= MIN_RATE_BPS);
                expected_start = end;
            }
            assert!(expected_start >= HORIZON);
        }
    }

    #[test]
    fn rate_at_agrees_with_segments() {
        let t = LinkModel::gilbert_elliott(25e6, 8e6, 0.5, 0.5, 13).trace(HORIZON);
        for (start, end, rate) in t.segments() {
            assert_eq!(t.rate_at(start), rate);
            if end > start + 1 {
                assert_eq!(t.rate_at(end - 1), rate);
            }
        }
    }

    #[test]
    fn scaled_multiplies_rates_and_keeps_dwell_structure() {
        let m = LinkModel::gilbert_elliott(25e6, 8e6, 3.0, 1.5, 42);
        let half = m.scaled(0.5);
        assert!((half.nominal_bps() - m.nominal_bps() * 0.5).abs() < 1.0);
        // Same seed and dwells: segment boundaries are identical, only
        // the rates scale.
        let (a, b) = (m.trace(HORIZON), half.trace(HORIZON));
        assert_eq!(a.n_segments(), b.n_segments());
        for ((s0, e0, r0), (s1, e1, r1)) in a.segments().zip(b.segments()) {
            assert_eq!((s0, e0), (s1, e1));
            assert!((r1 - r0 * 0.5).abs() < 1e-6);
        }
        let s = LinkModel::sinusoid(20e6, 5e6, 30.0, 0.0, 7).scaled(2.0);
        assert!((s.nominal_bps() - 40e6).abs() < 1.0);
        assert!((LinkModel::constant(10e6).scaled(0.25).nominal_bps() - 2.5e6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "need >= 2 states")]
    fn rejects_single_state_markov() {
        let _ = LinkModel::markov(
            vec![MarkovState {
                rate_bps: 1e6,
                mean_dwell_s: 1.0,
            }],
            0,
        );
    }
}
