//! Network dynamics for the EVA testbed: time-varying uplink models and
//! online bandwidth estimators.
//!
//! The paper's Eq. 5 charges each frame a fixed `θ_bit(r)/B` uplink
//! term — `B` is a known constant. Real radio links are neither known
//! nor constant: WiFi/cellular uplinks fade, share airtime, and drift
//! on diurnal cycles. This crate supplies the two halves the scheduler
//! needs to cope:
//!
//! * [`link`] — per-camera *link models*: deterministic, seeded
//!   processes (`B(t)`) materialized as piecewise-constant
//!   [`link::LinkTrace`]s the simulator samples per frame,
//! * [`estimator`] — *online estimators* fed per-frame delivery
//!   samples `(bytes, duration)`, producing the `B̂` the scheduler
//!   plans against (EWMA, and a BBR-style windowed max-filter).
//!
//! The split mirrors the deployment loop: the true `B(t)` drives the
//! simulated transmissions, the estimator only ever sees realized
//! deliveries, and scheduling decisions consume `B̂ / headroom`.

pub mod estimator;
pub mod link;

pub use estimator::{delivery_rate_bps, EwmaEstimator, LinkEstimator, MaxFilterEstimator};
pub use link::{LinkModel, LinkTrace, MarkovState};
