//! Property tests for the eva-net estimators and the link-aware DES
//! paths: estimator convergence/boundedness, and the tandem ↔ dedicated
//! equivalence in the contention-free regime.

use eva_net::{delivery_rate_bps, EwmaEstimator, LinkEstimator, LinkModel, MaxFilterEstimator};
use eva_sched::{StreamId, Ticks, TICKS_PER_SEC};
use eva_sim::{
    simulate_shared_uplink_with_links, simulate_with_links, SimConfig, SimStream, StreamLink,
};
use proptest::prelude::*;

proptest! {
    /// On a constant link every estimator must converge to within 5% of
    /// the true mean rate (here: exactly, since samples are noise-free).
    #[test]
    fn estimators_converge_on_constant_link(
        rate_bps in 1e5f64..1e9,
        bytes in 1e3f64..1e6,
        n in 20usize..100,
    ) {
        let duration_s = bytes * 8.0 / rate_bps;
        let mut ewma = EwmaEstimator::default();
        let mut maxf = MaxFilterEstimator::default();
        for _ in 0..n {
            ewma.observe(bytes, duration_s);
            maxf.observe(bytes, duration_s);
        }
        for est in [
            ewma.estimate_bps().expect("fed"),
            maxf.estimate_bps().expect("fed"),
        ] {
            prop_assert!(
                (est - rate_bps).abs() / rate_bps < 0.05,
                "estimate {est} off true {rate_bps}"
            );
        }
    }

    /// The windowed max-filter can never report more than the largest
    /// delivery rate it actually observed.
    #[test]
    fn max_filter_bounded_by_max_observed_sample(
        window in 1usize..20,
        samples in prop::collection::vec((1e2f64..1e7, 1e-4f64..1.0), 1..60),
    ) {
        let mut maxf = MaxFilterEstimator::new(window);
        let mut max_rate = 0.0f64;
        for &(bytes, duration_s) in &samples {
            maxf.observe(bytes, duration_s);
            max_rate = max_rate.max(delivery_rate_bps(bytes, duration_s));
        }
        let est = maxf.estimate_bps().expect("fed");
        prop_assert!(
            est <= max_rate * (1.0 + 1e-12),
            "estimate {est} exceeds max observed {max_rate}"
        );
    }

    /// With one stream per server on a constant link there is no
    /// contention anywhere, so the tandem (link FIFO → CPU FIFO) and
    /// dedicated-pipe models must measure *identical* per-stream
    /// latencies: both reduce to `trans + proc` per frame. The dedicated
    /// run is arrival-anchored, so its phase/horizon shift by `trans`
    /// to cover the same generated-frame set.
    #[test]
    fn tandem_matches_dedicated_without_contention(
        n_streams in 1usize..4,
        period_ms in 40u64..200,
        seed in 0u64..1000,
    ) {
        let period: Ticks = period_ms * 1_000;
        // phase, proc, trans each under period/4: every frame finishes
        // before the next slot and before the horizon in both models.
        let q = period / 4;
        let mix = |k: u64| (seed.wrapping_mul(2654435761).wrapping_add(k * 97) % (q - 1)) + 1;
        let rate_bps = 20e6;
        let horizon: Ticks = 8 * period;

        let mut tandem_streams = Vec::new();
        let mut dedicated_streams = Vec::new();
        let mut links = Vec::new();
        // One shared trans: the dedicated run's horizon extends by
        // `trans`, which only covers the same generated-frame set when
        // every stream shifts by the same amount.
        let trans = mix(1_000_003);
        for i in 0..n_streams {
            let phase = mix(3 * i as u64);
            let proc = mix(3 * i as u64 + 1);
            let base = SimStream {
                id: StreamId::source(i),
                period,
                proc,
                trans,
                server: i,
                phase,
            };
            tandem_streams.push(base);
            dedicated_streams.push(SimStream { phase: phase + trans, ..base });
            links.push(StreamLink {
                bits_per_frame: trans as f64 / TICKS_PER_SEC as f64 * rate_bps,
                trace: LinkModel::constant(rate_bps).trace(horizon + period),
            });
        }

        let tandem_cfg = SimConfig { horizon, warmup: 0, deadline: 0 };
        let tandem = simulate_shared_uplink_with_links(
            &tandem_streams, &links, n_streams, &tandem_cfg,
        );
        // Dedicated arrivals land at gen + trans; extend the horizon by
        // trans so the same frames are admitted.
        let ded_cfg = SimConfig { horizon: horizon + trans, warmup: 0, deadline: 0 };
        let dedicated = simulate_with_links(
            &dedicated_streams, &links, n_streams, &ded_cfg,
        );

        for (t, d) in tandem.streams.iter().zip(&dedicated.streams) {
            prop_assert_eq!(t.frames, d.frames, "frame sets differ");
            prop_assert!(
                (t.latency.mean() - d.latency.mean()).abs() < 1e-9,
                "mean latency differs: tandem {} vs dedicated {}",
                t.latency.mean(), d.latency.mean()
            );
            prop_assert!((t.latency.max() - d.latency.max()).abs() < 1e-9);
            prop_assert!(t.jitter_s < 1e-9);
            prop_assert!(d.jitter_s < 1e-9);
        }
    }
}
