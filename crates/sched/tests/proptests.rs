//! Property tests for the zero-jitter scheduling stack.

use eva_sched::{
    assign_groups_to_servers, const1_utilization_ok, const2_zero_jitter_ok, group_streams,
    group_streams_sequential, group_streams_sharded, hungarian_min_cost, split_high_rate,
    AuctionConfig, AuctionSolver, SparseCost, StreamId, StreamTiming, UNASSIGNED,
};
use proptest::prelude::*;

/// A stream with a period that is a multiple of 10ms (keeps gcds
/// non-degenerate, like real camera frame rates) and feasible load.
fn stream_strategy(source: usize) -> impl Strategy<Value = StreamTiming> {
    (1u64..=12, 5_000u64..=60_000).prop_map(move |(mult, proc)| {
        let period = mult * 50_000; // 50ms..600ms
        StreamTiming::new(StreamId::source(source), period, proc.min(period))
    })
}

fn streams_strategy(max: usize) -> impl Strategy<Value = Vec<StreamTiming>> {
    proptest::collection::vec((1u64..=12, 5_000u64..=60_000), 1..=max).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (mult, proc))| {
                let period = mult * 50_000;
                StreamTiming::new(StreamId::source(i), period, proc.min(period))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Algorithm 1's groups always satisfy Const2 — the paper's central
    /// feasibility invariant (Theorem 3 -> Const2 -> Theorem 1 zero jitter).
    #[test]
    fn grouping_always_satisfies_const2(streams in streams_strategy(10)) {
        // Enough servers that grouping can always succeed.
        let n_servers = streams.len();
        let groups = group_streams(&streams, n_servers).unwrap();
        let mut placed = 0;
        for g in &groups {
            let members: Vec<StreamTiming> = g.iter().map(|&i| streams[i]).collect();
            prop_assert!(const2_zero_jitter_ok(&members));
            prop_assert!(const1_utilization_ok(&members)); // Theorem 2
            placed += members.len();
        }
        prop_assert_eq!(placed, streams.len());
    }

    /// Splitting always removes the high-rate condition and preserves
    /// total utilization.
    #[test]
    fn splitting_normalizes_high_rate(period in 10_000u64..200_000,
                                      proc in 10_000u64..800_000) {
        let s = StreamTiming::new(StreamId::source(0), period, proc);
        let parts = split_high_rate(&[s]);
        for p in &parts {
            prop_assert!(p.proc <= p.period, "{p:?}");
        }
        let before = s.utilization();
        let after: f64 = parts.iter().map(|p| p.utilization()).sum();
        prop_assert!((before - after).abs() < 1e-9);
        prop_assert_eq!(parts.len() as u64, proc.div_ceil(period).max(1));
    }

    /// Hungarian result is never worse than any of a few random
    /// alternative assignments.
    #[test]
    fn hungarian_not_beaten_by_random_permutations(
        seed in 0u64..1000,
        n in 1usize..7,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = n + rng.gen_range(0..3);
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..m).map(|_| rng.gen_range(0.0..10.0)).collect())
            .collect();
        let (_, total) = hungarian_min_cost(&cost);
        // Sample 50 random injections rows -> cols.
        for _ in 0..50 {
            let cols = eva_stats::rng::sample_indices(&mut rng, m, n);
            let alt: f64 = (0..n).map(|r| cost[r][cols[r]]).sum();
            prop_assert!(total <= alt + 1e-9, "hungarian {total} beaten by {alt}");
        }
    }

    /// End-to-end assignment: all placed streams satisfy Const2 per
    /// server, and every stream is placed.
    #[test]
    fn assignment_invariants(streams in streams_strategy(6), n_extra in 0usize..3) {
        let bits: Vec<f64> = (0..streams.len()).map(|i| 1e5 * (i + 1) as f64).collect();
        let uplinks: Vec<f64> = (0..streams.len() + n_extra).map(|j| 5e6 * (j + 1) as f64).collect();
        let a = assign_groups_to_servers(&streams, &bits, &uplinks).unwrap();
        for server in 0..uplinks.len() {
            let members: Vec<StreamTiming> = a.streams_on(server)
                .into_iter().map(|i| a.streams[i]).collect();
            prop_assert!(const2_zero_jitter_ok(&members));
        }
        prop_assert!(a.server_of.iter().all(|&s| s < uplinks.len()));
        prop_assert_eq!(a.server_of.len(), a.streams.len());
        prop_assert!(a.total_comm_latency >= 0.0);
    }

    /// A single stream strategy sanity check: constructor invariants hold.
    #[test]
    fn stream_strategy_is_wellformed(s in stream_strategy(0)) {
        prop_assert!(s.period > 0 && s.proc > 0);
        prop_assert!(s.utilization() <= 1.0 + 1e-12);
    }

    /// Auction assignment on random dense instances: total cost within
    /// the advertised additive gap (≈ (1+ε)·optimal) of the Hungarian
    /// optimum, and the matching is a full injection.
    #[test]
    fn auction_within_gap_of_hungarian(seed in 0u64..500, n in 1usize..12) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = n + rng.gen_range(0..4);
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..m).map(|_| rng.gen_range(0.0..10.0)).collect())
            .collect();
        let (_, opt) = hungarian_min_cost(&cost);
        let sparse = SparseCost::from_dense(&cost);
        let solver = AuctionSolver::solve(&sparse, &AuctionConfig::default()).unwrap();
        let total = solver.total_cost(&sparse);
        prop_assert!(
            total <= opt + solver.optimality_gap_bound() + 1e-9,
            "auction {} vs hungarian {}", total, opt
        );
        let mut cols = solver.assignment().to_vec();
        prop_assert!(cols.iter().all(|&j| j != UNASSIGNED && j < m));
        cols.sort_unstable();
        cols.dedup();
        prop_assert_eq!(cols.len(), n);
    }

    /// Incremental re-assignment: perturb a subset of rows, re-solve only
    /// those rows, and the repaired matching is equivalent to a
    /// from-scratch solve — both within the solver's gap bound of the
    /// Hungarian optimum on the perturbed instance.
    #[test]
    fn incremental_resolve_equivalent_to_scratch(
        seed in 0u64..500,
        n in 2usize..10,
        n_touch in 1usize..4,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        let m = n + rng.gen_range(0..3);
        let mut cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..m).map(|_| rng.gen_range(0.0..10.0)).collect())
            .collect();
        let mut sparse = SparseCost::from_dense(&cost);
        let mut solver = AuctionSolver::solve(&sparse, &AuctionConfig::default()).unwrap();
        // Perturb up to n_touch distinct rows.
        let mut touched: Vec<usize> = (0..n_touch.min(n)).map(|_| rng.gen_range(0..n)).collect();
        touched.sort_unstable();
        touched.dedup();
        for &i in &touched {
            for c in cost[i].iter_mut().take(m) {
                *c = rng.gen_range(0.0..10.0);
            }
            sparse.set_row(i, cost[i].iter().enumerate().map(|(j, &c)| (j, c)).collect());
        }
        solver.resolve_rows(&sparse, &touched).unwrap();
        let scratch = AuctionSolver::solve(&sparse, &AuctionConfig::default()).unwrap();
        let (_, opt) = hungarian_min_cost(&cost);
        let inc_total = solver.total_cost(&sparse);
        let scr_total = scratch.total_cost(&sparse);
        prop_assert!(
            inc_total <= opt + solver.optimality_gap_bound() + 1e-9,
            "incremental {} vs optimal {}", inc_total, opt
        );
        prop_assert!(
            scr_total <= opt + scratch.optimality_gap_bound() + 1e-9,
            "scratch {} vs optimal {}", scr_total, opt
        );
        // Equivalence: both land within the same gap of each other.
        let gap = solver.optimality_gap_bound() + scratch.optimality_gap_bound() + 1e-9;
        prop_assert!((inc_total - scr_total).abs() <= gap);
        // Repaired matching is a full injection.
        let mut cols = solver.assignment().to_vec();
        prop_assert!(cols.iter().all(|&j| j != UNASSIGNED && j < m));
        cols.sort_unstable();
        cols.dedup();
        prop_assert_eq!(cols.len(), n);
    }

    /// Sharded grouping is exactly equivalent to the sequential pass on
    /// mixed gcd-compatible period classes (including error cases).
    #[test]
    fn sharded_grouping_equals_sequential(
        raw in proptest::collection::vec((0usize..4, 0u32..3, 5_000u64..=60_000), 1..=48),
        n_servers in 0usize..50,
    ) {
        // Four divisibility families with power-of-two multiples: mixed
        // period classes with non-trivial sharing inside each family.
        let bases: [u64; 4] = [50_000, 70_000, 90_000, 110_000];
        let streams: Vec<StreamTiming> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (family, shift, proc))| {
                let period = bases[family] << shift;
                StreamTiming::new(StreamId::source(i), period, proc.min(period))
            })
            .collect();
        let seq = group_streams_sequential(&streams, n_servers);
        let sharded = group_streams_sharded(&streams, n_servers);
        prop_assert_eq!(&seq, &sharded);
        // The public dispatcher agrees with both on either side of the
        // size threshold.
        prop_assert_eq!(&group_streams(&streams, n_servers), &seq);
    }
}
