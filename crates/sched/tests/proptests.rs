//! Property tests for the zero-jitter scheduling stack.

use eva_sched::{
    assign_groups_to_servers, const1_utilization_ok, const2_zero_jitter_ok, group_streams,
    hungarian_min_cost, split_high_rate, StreamId, StreamTiming,
};
use proptest::prelude::*;

/// A stream with a period that is a multiple of 10ms (keeps gcds
/// non-degenerate, like real camera frame rates) and feasible load.
fn stream_strategy(source: usize) -> impl Strategy<Value = StreamTiming> {
    (1u64..=12, 5_000u64..=60_000).prop_map(move |(mult, proc)| {
        let period = mult * 50_000; // 50ms..600ms
        StreamTiming::new(StreamId::source(source), period, proc.min(period))
    })
}

fn streams_strategy(max: usize) -> impl Strategy<Value = Vec<StreamTiming>> {
    proptest::collection::vec((1u64..=12, 5_000u64..=60_000), 1..=max).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (mult, proc))| {
                let period = mult * 50_000;
                StreamTiming::new(StreamId::source(i), period, proc.min(period))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Algorithm 1's groups always satisfy Const2 — the paper's central
    /// feasibility invariant (Theorem 3 -> Const2 -> Theorem 1 zero jitter).
    #[test]
    fn grouping_always_satisfies_const2(streams in streams_strategy(10)) {
        // Enough servers that grouping can always succeed.
        let n_servers = streams.len();
        let groups = group_streams(&streams, n_servers).unwrap();
        let mut placed = 0;
        for g in &groups {
            let members: Vec<StreamTiming> = g.iter().map(|&i| streams[i]).collect();
            prop_assert!(const2_zero_jitter_ok(&members));
            prop_assert!(const1_utilization_ok(&members)); // Theorem 2
            placed += members.len();
        }
        prop_assert_eq!(placed, streams.len());
    }

    /// Splitting always removes the high-rate condition and preserves
    /// total utilization.
    #[test]
    fn splitting_normalizes_high_rate(period in 10_000u64..200_000,
                                      proc in 10_000u64..800_000) {
        let s = StreamTiming::new(StreamId::source(0), period, proc);
        let parts = split_high_rate(&[s]);
        for p in &parts {
            prop_assert!(p.proc <= p.period, "{p:?}");
        }
        let before = s.utilization();
        let after: f64 = parts.iter().map(|p| p.utilization()).sum();
        prop_assert!((before - after).abs() < 1e-9);
        prop_assert_eq!(parts.len() as u64, proc.div_ceil(period).max(1));
    }

    /// Hungarian result is never worse than any of a few random
    /// alternative assignments.
    #[test]
    fn hungarian_not_beaten_by_random_permutations(
        seed in 0u64..1000,
        n in 1usize..7,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = n + rng.gen_range(0..3);
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..m).map(|_| rng.gen_range(0.0..10.0)).collect())
            .collect();
        let (_, total) = hungarian_min_cost(&cost);
        // Sample 50 random injections rows -> cols.
        for _ in 0..50 {
            let cols = eva_stats::rng::sample_indices(&mut rng, m, n);
            let alt: f64 = (0..n).map(|r| cost[r][cols[r]]).sum();
            prop_assert!(total <= alt + 1e-9, "hungarian {total} beaten by {alt}");
        }
    }

    /// End-to-end assignment: all placed streams satisfy Const2 per
    /// server, and every stream is placed.
    #[test]
    fn assignment_invariants(streams in streams_strategy(6), n_extra in 0usize..3) {
        let bits: Vec<f64> = (0..streams.len()).map(|i| 1e5 * (i + 1) as f64).collect();
        let uplinks: Vec<f64> = (0..streams.len() + n_extra).map(|j| 5e6 * (j + 1) as f64).collect();
        let a = assign_groups_to_servers(&streams, &bits, &uplinks).unwrap();
        for server in 0..uplinks.len() {
            let members: Vec<StreamTiming> = a.streams_on(server)
                .into_iter().map(|i| a.streams[i]).collect();
            prop_assert!(const2_zero_jitter_ok(&members));
        }
        prop_assert!(a.server_of.iter().all(|&s| s < uplinks.len()));
        prop_assert_eq!(a.server_of.len(), a.streams.len());
        prop_assert!(a.total_comm_latency >= 0.0);
    }

    /// A single stream strategy sanity check: constructor invariants hold.
    #[test]
    fn stream_strategy_is_wellformed(s in stream_strategy(0)) {
        prop_assert!(s.period > 0 && s.proc > 0);
        prop_assert!(s.utilization() <= 1.0 + 1e-12);
    }
}
