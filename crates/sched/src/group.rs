//! Algorithm 1: group-based heuristic zero-jitter scheduling.
//!
//! Streams are sorted by period, prioritized by how many other streams'
//! periods divide theirs, and greedily packed into at most `N` groups
//! such that every group satisfies Theorem 3's condition — hence
//! `Const2`, hence zero delay jitter.

use crate::stream::{StreamTiming, Ticks};
use crate::theory::theorem3_group_ok;

/// Failure modes of the grouping heuristic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupingError {
    /// A single stream violates even a solo group (`p > T` after split —
    /// cannot happen if [`crate::stream::split_high_rate`] ran first).
    StreamInfeasible { source: usize, part: usize },
    /// More groups are required than servers are available
    /// (Algorithm 1, line 16: "No feasible grouping scheme").
    NotEnoughServers {
        needed_at_least: usize,
        available: usize,
    },
}

impl std::fmt::Display for GroupingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupingError::StreamInfeasible { source, part } => write!(
                f,
                "stream s{source}.{part} cannot satisfy Const2 alone (p > T); split it first"
            ),
            GroupingError::NotEnoughServers {
                needed_at_least,
                available,
            } => write!(
                f,
                "no feasible grouping: needs > {needed_at_least} groups, only {available} servers"
            ),
        }
    }
}

impl std::error::Error for GroupingError {}

/// Stream count at and above which [`group_streams`] switches from the
/// direct sequential first-fit to the sharded path — small (paper-scale)
/// instances keep the original code path untouched.
pub const SHARD_GROUPING_THRESHOLD: usize = 64;

/// Run Algorithm 1's grouping phase (lines 1-19): partition `streams`
/// into at most `n_servers` groups, each satisfying Theorem 3.
///
/// Returns the groups as vectors of indices into `streams`. Groups may
/// be fewer than `n_servers`; empty groups are not returned.
///
/// Below [`SHARD_GROUPING_THRESHOLD`] streams this runs the direct
/// sequential first-fit; at or above it, the gcd-compatibility-sharded
/// variant ([`group_streams_sharded`]) — the two produce identical
/// output, so the dispatch is purely a performance decision.
///
/// ```
/// use eva_sched::{group_streams, StreamId, StreamTiming};
/// // Two harmonic 10/5 fps streams pack together; a 7 fps stream cannot.
/// let streams = vec![
///     StreamTiming::from_rate(StreamId::source(0), 10.0, 0.030),
///     StreamTiming::from_rate(StreamId::source(1), 5.0, 0.050),
///     StreamTiming::from_rate(StreamId::source(2), 7.0, 0.050),
/// ];
/// let groups = group_streams(&streams, 3).unwrap();
/// assert_eq!(groups.len(), 2);
/// ```
pub fn group_streams(
    streams: &[StreamTiming],
    n_servers: usize,
) -> Result<Vec<Vec<usize>>, GroupingError> {
    if streams.len() >= SHARD_GROUPING_THRESHOLD {
        group_streams_sharded(streams, n_servers)
    } else {
        group_streams_sequential(streams, n_servers)
    }
}

/// The original direct implementation of Algorithm 1's grouping:
/// quadratic priority counting and linear-scan first-fit. Kept as the
/// reference oracle the sharded path is property-tested against.
pub fn group_streams_sequential(
    streams: &[StreamTiming],
    n_servers: usize,
) -> Result<Vec<Vec<usize>>, GroupingError> {
    if streams.is_empty() {
        return Ok(Vec::new());
    }
    // Line 1: sort by period ascending (stable; ties keep input order).
    let mut order: Vec<usize> = (0..streams.len()).collect();
    order.sort_by_key(|&i| (streams[i].period, i));

    // Line 2: priority I_i = #{ j < i : T_i % T_j == 0 } over the sorted
    // order — streams whose period is divisible by many earlier (smaller)
    // periods are *more* compatible and can wait; streams with few
    // divisors are harder to place and go first.
    let priorities: Vec<usize> = order
        .iter()
        .enumerate()
        .map(|(pos, &i)| {
            order[..pos]
                .iter()
                .filter(|&&j| streams[i].period.is_multiple_of(streams[j].period))
                .count()
        })
        .collect();

    // Line 3: re-sort by priority ascending (stable, so the period order
    // is preserved within equal priorities).
    let mut final_order: Vec<usize> = (0..order.len()).collect();
    final_order.sort_by_key(|&pos| (priorities[pos], pos));
    let final_order: Vec<usize> = final_order.into_iter().map(|pos| order[pos]).collect();

    // Lines 4-19: first-fit into groups under the Theorem-3 condition.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for &i in &final_order {
        let s = streams[i];
        if s.proc > s.period {
            return Err(GroupingError::StreamInfeasible {
                source: s.id.source,
                part: s.id.part,
            });
        }
        let mut placed = false;
        for group in groups.iter_mut() {
            if group_accepts(streams, group, s) {
                group.push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            if groups.len() == n_servers {
                return Err(GroupingError::NotEnoughServers {
                    needed_at_least: n_servers,
                    available: n_servers,
                });
            }
            groups.push(vec![i]);
        }
    }

    // Postcondition: every group satisfies Theorem 3 (and hence Const2).
    debug_assert!(groups.iter().all(|g| {
        let members: Vec<StreamTiming> = g.iter().map(|&i| streams[i]).collect();
        theorem3_group_ok(&members)
    }));
    Ok(groups)
}

/// Theorem-3 admission check for adding `candidate` to `group`.
///
/// Slightly more permissive than the paper's literal line 11 (which only
/// considers `T_new = t * T_min`): we evaluate Theorem 3 on the union, so
/// a candidate whose period *divides* the group's current minimum is also
/// admitted when the processing budget fits the new, smaller window. Both
/// versions are sufficient for Const2; the union check strictly dominates.
fn group_accepts(streams: &[StreamTiming], group: &[usize], candidate: StreamTiming) -> bool {
    let t_min_group: Ticks = group
        .iter()
        .map(|&i| streams[i].period)
        .min()
        .unwrap_or(candidate.period);
    let t_min = t_min_group.min(candidate.period);
    // (a) harmonicity w.r.t. the union minimum.
    let harmonic = candidate.period.is_multiple_of(t_min)
        && group
            .iter()
            .all(|&i| streams[i].period.is_multiple_of(t_min));
    if !harmonic {
        return false;
    }
    // (b) processing budget within the union minimum period.
    let total: Ticks = group.iter().map(|&i| streams[i].proc).sum::<Ticks>() + candidate.proc;
    total <= t_min
}

fn gcd_ticks(mut a: Ticks, mut b: Ticks) -> Ticks {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// A group under construction in the sharded first-fit, carrying the
/// cached invariants that make the Theorem-3 admission check O(1):
///
/// * `t_min` — minimum member period,
/// * `gcd` — gcd of member periods (all members divisible by `t` iff
///   `gcd % t == 0`),
/// * `proc_sum` — total member processing time.
///
/// `first_pos` is the position (in the global priority order) of the
/// member that created the group; the sequential algorithm creates
/// groups in exactly that order, so sorting merged shard groups by
/// `first_pos` reconstructs the sequential output.
struct GroupAcc {
    members: Vec<usize>,
    first_pos: usize,
    t_min: Ticks,
    gcd: Ticks,
    proc_sum: Ticks,
}

/// First-fit over one shard's streams, given as `(final_pos, index)`
/// pairs in global priority order. Equivalent to the sequential loop
/// restricted to this shard (cross-shard admissions are impossible —
/// see [`group_streams_sharded`]).
fn shard_first_fit(streams: &[StreamTiming], shard: &[(usize, usize)]) -> Vec<GroupAcc> {
    let mut groups: Vec<GroupAcc> = Vec::new();
    for &(pos, i) in shard {
        let s = streams[i];
        let mut placed = false;
        for g in groups.iter_mut() {
            // O(1) equivalent of `group_accepts`: harmonicity of the
            // union w.r.t. its minimum period reduces to two
            // divisibility checks on the cached gcd and minimum.
            let t_min_new = g.t_min.min(s.period);
            if s.period.is_multiple_of(t_min_new)
                && g.gcd.is_multiple_of(t_min_new)
                && g.proc_sum + s.proc <= t_min_new
            {
                g.members.push(i);
                g.t_min = t_min_new;
                g.gcd = gcd_ticks(g.gcd, s.period);
                g.proc_sum += s.proc;
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push(GroupAcc {
                members: vec![i],
                first_pos: pos,
                t_min: s.period,
                gcd: s.period,
                proc_sum: s.proc,
            });
        }
    }
    groups
}

/// Sharded Algorithm-1 grouping: identical output to
/// [`group_streams_sequential`], built scalably.
///
/// Two streams can share a group only if some common member period
/// divides both of theirs, so the *distinct period values*, connected by
/// divisibility, partition the streams into independent shards: the
/// Theorem-3 union check can never admit a candidate into a group from
/// another component (the union's minimum period would be a common
/// divisor linking the components). Within a shard, first-fit over the
/// restriction of the global priority order makes exactly the decisions
/// the sequential pass makes, because foreign groups always reject.
/// Shards run in parallel (rayon) and their groups are merged back in
/// sequential creation order via each group's first-member position.
///
/// Priorities are computed per distinct period value (`O(D² + M)`
/// instead of `O(M²)` for `D` distinct values), and the admission check
/// is O(1) via cached per-group `(min period, gcd, processing sum)`.
pub fn group_streams_sharded(
    streams: &[StreamTiming],
    n_servers: usize,
) -> Result<Vec<Vec<usize>>, GroupingError> {
    use rayon::prelude::*;

    if streams.is_empty() {
        return Ok(Vec::new());
    }
    let m = streams.len();
    // Global (period, index) order — line 1 of Algorithm 1.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by_key(|&i| (streams[i].period, i));

    // Distinct period values ascending, aligned with `order`.
    let mut values: Vec<Ticks> = Vec::new();
    let mut vi_of_pos: Vec<usize> = Vec::with_capacity(m);
    for &i in &order {
        if values.last() != Some(&streams[i].period) {
            values.push(streams[i].period);
        }
        vi_of_pos.push(values.len() - 1);
    }
    let d = values.len();
    let mut count = vec![0usize; d];
    for &vi in &vi_of_pos {
        count[vi] += 1;
    }

    // Priority I_i = #{ j earlier in order : T_i % T_j == 0 }: earlier
    // strictly-smaller divisors contribute their full class counts,
    // equal periods contribute the within-class rank.
    let mut divisor_sum = vec![0usize; d];
    for vi in 0..d {
        for w in 0..vi {
            if values[vi].is_multiple_of(values[w]) {
                divisor_sum[vi] += count[w];
            }
        }
    }
    let mut rank = vec![0usize; d];
    let mut priorities = vec![0usize; m];
    for pos in 0..m {
        let vi = vi_of_pos[pos];
        priorities[pos] = divisor_sum[vi] + rank[vi];
        rank[vi] += 1;
    }

    // Line 3: stable re-sort by priority.
    let mut final_pos: Vec<usize> = (0..m).collect();
    final_pos.sort_by_key(|&pos| (priorities[pos], pos));

    // Union-find over distinct period values by divisibility.
    let mut parent: Vec<usize> = (0..d).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for a in 0..d {
        for b in (a + 1)..d {
            if values[b].is_multiple_of(values[a]) {
                let ra = find(&mut parent, a);
                let rb = find(&mut parent, b);
                if ra != rb {
                    parent[rb] = ra;
                }
            }
        }
    }
    let comp_of_value: Vec<usize> = (0..d).map(|v| find(&mut parent, v)).collect();
    let mut shard_of_comp = vec![usize::MAX; d];
    let mut n_shards = 0usize;
    for &c in &comp_of_value {
        if shard_of_comp[c] == usize::MAX {
            shard_of_comp[c] = n_shards;
            n_shards += 1;
        }
    }

    // Distribute streams (in final priority order) to their shards.
    let mut shards: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_shards];
    for (fp, &pos) in final_pos.iter().enumerate() {
        let shard = shard_of_comp[comp_of_value[vi_of_pos[pos]]];
        shards[shard].push((fp, order[pos]));
    }

    let shard_groups: Vec<Vec<GroupAcc>> = shards
        .par_iter()
        .map(|shard| shard_first_fit(streams, shard))
        .collect();
    let mut all: Vec<GroupAcc> = shard_groups.into_iter().flatten().collect();
    all.sort_by_key(|g| g.first_pos);

    // Error semantics identical to the sequential pass: it errors at the
    // first priority-order position where either a stream is infeasible
    // (proc > period) or a new group would exceed `n_servers`; group
    // counts before any such position are unaffected by later streams.
    let first_infeasible = final_pos.iter().enumerate().find_map(|(fp, &pos)| {
        let s = streams[order[pos]];
        (s.proc > s.period).then_some((fp, s))
    });
    if let Some((fi, s)) = first_infeasible {
        let groups_before = all.iter().filter(|g| g.first_pos < fi).count();
        if groups_before > n_servers {
            return Err(GroupingError::NotEnoughServers {
                needed_at_least: n_servers,
                available: n_servers,
            });
        }
        return Err(GroupingError::StreamInfeasible {
            source: s.id.source,
            part: s.id.part,
        });
    }
    if all.len() > n_servers {
        return Err(GroupingError::NotEnoughServers {
            needed_at_least: n_servers,
            available: n_servers,
        });
    }

    let groups: Vec<Vec<usize>> = all.into_iter().map(|g| g.members).collect();
    debug_assert!(groups.iter().all(|g| {
        let members: Vec<StreamTiming> = g.iter().map(|&i| streams[i]).collect();
        theorem3_group_ok(&members)
    }));
    Ok(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamId;
    use crate::theory::const2_zero_jitter_ok;

    fn st(source: usize, period: Ticks, proc: Ticks) -> StreamTiming {
        StreamTiming::new(StreamId::source(source), period, proc)
    }

    fn materialize(streams: &[StreamTiming], groups: &[Vec<usize>]) -> Vec<Vec<StreamTiming>> {
        groups
            .iter()
            .map(|g| g.iter().map(|&i| streams[i]).collect())
            .collect()
    }

    #[test]
    fn groups_satisfy_const2() {
        let streams = vec![
            st(0, 100_000, 30_000),
            st(1, 200_000, 40_000),
            st(2, 100_000, 20_000),
            st(3, 50_000, 20_000),
            st(4, 400_000, 10_000),
        ];
        let groups = group_streams(&streams, 4).unwrap();
        for g in materialize(&streams, &groups) {
            assert!(const2_zero_jitter_ok(&g), "group violates Const2: {g:?}");
        }
        // Every stream placed exactly once.
        let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..streams.len()).collect::<Vec<_>>());
    }

    #[test]
    fn harmonic_streams_share_a_group() {
        // All periods multiples of 100ms, total proc 60ms <= 100ms.
        let streams = vec![
            st(0, 100_000, 20_000),
            st(1, 200_000, 20_000),
            st(2, 400_000, 20_000),
        ];
        let groups = group_streams(&streams, 3).unwrap();
        assert_eq!(groups.len(), 1, "harmonic set should pack into one group");
    }

    #[test]
    fn non_harmonic_streams_split_groups() {
        // 100ms and 130ms periods: gcd 10ms < procs, must separate.
        let streams = vec![st(0, 100_000, 50_000), st(1, 130_000, 50_000)];
        let groups = group_streams(&streams, 2).unwrap();
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn budget_overflow_splits_groups() {
        // Harmonic but 60+60 > 100.
        let streams = vec![st(0, 100_000, 60_000), st(1, 100_000, 60_000)];
        let groups = group_streams(&streams, 2).unwrap();
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn fails_when_servers_exhausted() {
        let streams = vec![st(0, 100_000, 60_000), st(1, 100_000, 60_000)];
        let err = group_streams(&streams, 1).unwrap_err();
        assert!(matches!(err, GroupingError::NotEnoughServers { .. }));
    }

    #[test]
    fn rejects_unsplit_high_rate_stream() {
        let streams = vec![st(0, 100_000, 150_000)];
        let err = group_streams(&streams, 4).unwrap_err();
        assert!(matches!(err, GroupingError::StreamInfeasible { .. }));
    }

    #[test]
    fn smaller_period_candidate_can_join_when_budget_fits() {
        // Group starts with T=200ms stream; T=100ms candidate divides it
        // and total proc 30+20 <= 100ms: the union check admits it.
        let streams = vec![st(0, 200_000, 30_000), st(1, 100_000, 20_000)];
        let groups = group_streams(&streams, 2).unwrap();
        // Regardless of processing order the two must co-locate.
        assert_eq!(groups.len(), 1);
        let g = materialize(&streams, &groups);
        assert!(const2_zero_jitter_ok(&g[0]));
    }

    #[test]
    fn empty_input_is_ok() {
        assert!(group_streams(&[], 3).unwrap().is_empty());
    }

    #[test]
    fn priority_order_prefers_hard_streams_first() {
        // A stream with an awkward period (70ms, divides nothing) should
        // still be placed; compatibility-rich streams fill around it.
        let streams = vec![
            st(0, 100_000, 30_000),
            st(1, 200_000, 30_000),
            st(2, 70_000, 30_000),
            st(3, 140_000, 30_000),
        ];
        let groups = group_streams(&streams, 4).unwrap();
        for g in materialize(&streams, &groups) {
            assert!(const2_zero_jitter_ok(&g));
        }
        // The 70/140 pair is harmonic and fits (60 <= 70): expect 2 groups.
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn sharded_matches_sequential_on_mixed_period_classes() {
        // Three divisibility components (100ms-family, 70ms-family, 90ms)
        // with repeats and budget pressure.
        let periods: [Ticks; 12] = [
            100_000, 200_000, 50_000, 400_000, 70_000, 140_000, 280_000, 90_000, 100_000, 70_000,
            200_000, 50_000,
        ];
        let streams: Vec<StreamTiming> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| st(i, p, 20_000))
            .collect();
        for n_servers in 1..=8 {
            let seq = group_streams_sequential(&streams, n_servers);
            let sharded = group_streams_sharded(&streams, n_servers);
            assert_eq!(seq, sharded, "n_servers = {n_servers}");
        }
    }

    #[test]
    fn sharded_matches_sequential_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31337);
        let bases: [Ticks; 4] = [50_000, 70_000, 90_000, 110_000];
        for trial in 0..50 {
            let n = rng.gen_range(1..=40);
            let streams: Vec<StreamTiming> = (0..n)
                .map(|i| {
                    let base = bases[rng.gen_range(0..bases.len())];
                    let period = base * (1 << rng.gen_range(0..3u32));
                    let proc = rng.gen_range(5_000..=period.min(60_000));
                    st(i, period, proc)
                })
                .collect();
            let n_servers = rng.gen_range(0..=n + 2);
            let seq = group_streams_sequential(&streams, n_servers);
            let sharded = group_streams_sharded(&streams, n_servers);
            assert_eq!(seq, sharded, "trial {trial}, n_servers {n_servers}");
        }
    }

    #[test]
    fn dispatch_threshold_paths_agree() {
        // Build an instance just above the threshold and check the
        // public entry point (sharded) against the sequential oracle.
        let streams: Vec<StreamTiming> = (0..SHARD_GROUPING_THRESHOLD + 8)
            .map(|i| {
                let period = [50_000u64, 100_000, 70_000, 140_000][i % 4];
                st(i, period, 10_000 + (i as Ticks % 7) * 1_000)
            })
            .collect();
        let n_servers = streams.len();
        assert_eq!(
            group_streams(&streams, n_servers),
            group_streams_sequential(&streams, n_servers)
        );
    }

    /// Deterministic: same input, same grouping.
    #[test]
    fn grouping_is_deterministic() {
        let streams = vec![
            st(0, 100_000, 25_000),
            st(1, 300_000, 25_000),
            st(2, 200_000, 25_000),
            st(3, 100_000, 25_000),
        ];
        let a = group_streams(&streams, 4).unwrap();
        let b = group_streams(&streams, 4).unwrap();
        assert_eq!(a, b);
    }
}
