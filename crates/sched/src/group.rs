//! Algorithm 1: group-based heuristic zero-jitter scheduling.
//!
//! Streams are sorted by period, prioritized by how many other streams'
//! periods divide theirs, and greedily packed into at most `N` groups
//! such that every group satisfies Theorem 3's condition — hence
//! `Const2`, hence zero delay jitter.

use crate::stream::{StreamTiming, Ticks};
use crate::theory::theorem3_group_ok;

/// Failure modes of the grouping heuristic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupingError {
    /// A single stream violates even a solo group (`p > T` after split —
    /// cannot happen if [`crate::stream::split_high_rate`] ran first).
    StreamInfeasible { source: usize, part: usize },
    /// More groups are required than servers are available
    /// (Algorithm 1, line 16: "No feasible grouping scheme").
    NotEnoughServers {
        needed_at_least: usize,
        available: usize,
    },
}

impl std::fmt::Display for GroupingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupingError::StreamInfeasible { source, part } => write!(
                f,
                "stream s{source}.{part} cannot satisfy Const2 alone (p > T); split it first"
            ),
            GroupingError::NotEnoughServers {
                needed_at_least,
                available,
            } => write!(
                f,
                "no feasible grouping: needs > {needed_at_least} groups, only {available} servers"
            ),
        }
    }
}

impl std::error::Error for GroupingError {}

/// Run Algorithm 1's grouping phase (lines 1-19): partition `streams`
/// into at most `n_servers` groups, each satisfying Theorem 3.
///
/// Returns the groups as vectors of indices into `streams`. Groups may
/// be fewer than `n_servers`; empty groups are not returned.
///
/// ```
/// use eva_sched::{group_streams, StreamId, StreamTiming};
/// // Two harmonic 10/5 fps streams pack together; a 7 fps stream cannot.
/// let streams = vec![
///     StreamTiming::from_rate(StreamId::source(0), 10.0, 0.030),
///     StreamTiming::from_rate(StreamId::source(1), 5.0, 0.050),
///     StreamTiming::from_rate(StreamId::source(2), 7.0, 0.050),
/// ];
/// let groups = group_streams(&streams, 3).unwrap();
/// assert_eq!(groups.len(), 2);
/// ```
pub fn group_streams(
    streams: &[StreamTiming],
    n_servers: usize,
) -> Result<Vec<Vec<usize>>, GroupingError> {
    if streams.is_empty() {
        return Ok(Vec::new());
    }
    // Line 1: sort by period ascending (stable; ties keep input order).
    let mut order: Vec<usize> = (0..streams.len()).collect();
    order.sort_by_key(|&i| (streams[i].period, i));

    // Line 2: priority I_i = #{ j < i : T_i % T_j == 0 } over the sorted
    // order — streams whose period is divisible by many earlier (smaller)
    // periods are *more* compatible and can wait; streams with few
    // divisors are harder to place and go first.
    let priorities: Vec<usize> = order
        .iter()
        .enumerate()
        .map(|(pos, &i)| {
            order[..pos]
                .iter()
                .filter(|&&j| streams[i].period.is_multiple_of(streams[j].period))
                .count()
        })
        .collect();

    // Line 3: re-sort by priority ascending (stable, so the period order
    // is preserved within equal priorities).
    let mut final_order: Vec<usize> = (0..order.len()).collect();
    final_order.sort_by_key(|&pos| (priorities[pos], pos));
    let final_order: Vec<usize> = final_order.into_iter().map(|pos| order[pos]).collect();

    // Lines 4-19: first-fit into groups under the Theorem-3 condition.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for &i in &final_order {
        let s = streams[i];
        if s.proc > s.period {
            return Err(GroupingError::StreamInfeasible {
                source: s.id.source,
                part: s.id.part,
            });
        }
        let mut placed = false;
        for group in groups.iter_mut() {
            if group_accepts(streams, group, s) {
                group.push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            if groups.len() == n_servers {
                return Err(GroupingError::NotEnoughServers {
                    needed_at_least: n_servers,
                    available: n_servers,
                });
            }
            groups.push(vec![i]);
        }
    }

    // Postcondition: every group satisfies Theorem 3 (and hence Const2).
    debug_assert!(groups.iter().all(|g| {
        let members: Vec<StreamTiming> = g.iter().map(|&i| streams[i]).collect();
        theorem3_group_ok(&members)
    }));
    Ok(groups)
}

/// Theorem-3 admission check for adding `candidate` to `group`.
///
/// Slightly more permissive than the paper's literal line 11 (which only
/// considers `T_new = t * T_min`): we evaluate Theorem 3 on the union, so
/// a candidate whose period *divides* the group's current minimum is also
/// admitted when the processing budget fits the new, smaller window. Both
/// versions are sufficient for Const2; the union check strictly dominates.
fn group_accepts(streams: &[StreamTiming], group: &[usize], candidate: StreamTiming) -> bool {
    let t_min_group: Ticks = group
        .iter()
        .map(|&i| streams[i].period)
        .min()
        .unwrap_or(candidate.period);
    let t_min = t_min_group.min(candidate.period);
    // (a) harmonicity w.r.t. the union minimum.
    let harmonic = candidate.period.is_multiple_of(t_min)
        && group
            .iter()
            .all(|&i| streams[i].period.is_multiple_of(t_min));
    if !harmonic {
        return false;
    }
    // (b) processing budget within the union minimum period.
    let total: Ticks = group.iter().map(|&i| streams[i].proc).sum::<Ticks>() + candidate.proc;
    total <= t_min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamId;
    use crate::theory::const2_zero_jitter_ok;

    fn st(source: usize, period: Ticks, proc: Ticks) -> StreamTiming {
        StreamTiming::new(StreamId::source(source), period, proc)
    }

    fn materialize(streams: &[StreamTiming], groups: &[Vec<usize>]) -> Vec<Vec<StreamTiming>> {
        groups
            .iter()
            .map(|g| g.iter().map(|&i| streams[i]).collect())
            .collect()
    }

    #[test]
    fn groups_satisfy_const2() {
        let streams = vec![
            st(0, 100_000, 30_000),
            st(1, 200_000, 40_000),
            st(2, 100_000, 20_000),
            st(3, 50_000, 20_000),
            st(4, 400_000, 10_000),
        ];
        let groups = group_streams(&streams, 4).unwrap();
        for g in materialize(&streams, &groups) {
            assert!(const2_zero_jitter_ok(&g), "group violates Const2: {g:?}");
        }
        // Every stream placed exactly once.
        let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..streams.len()).collect::<Vec<_>>());
    }

    #[test]
    fn harmonic_streams_share_a_group() {
        // All periods multiples of 100ms, total proc 60ms <= 100ms.
        let streams = vec![
            st(0, 100_000, 20_000),
            st(1, 200_000, 20_000),
            st(2, 400_000, 20_000),
        ];
        let groups = group_streams(&streams, 3).unwrap();
        assert_eq!(groups.len(), 1, "harmonic set should pack into one group");
    }

    #[test]
    fn non_harmonic_streams_split_groups() {
        // 100ms and 130ms periods: gcd 10ms < procs, must separate.
        let streams = vec![st(0, 100_000, 50_000), st(1, 130_000, 50_000)];
        let groups = group_streams(&streams, 2).unwrap();
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn budget_overflow_splits_groups() {
        // Harmonic but 60+60 > 100.
        let streams = vec![st(0, 100_000, 60_000), st(1, 100_000, 60_000)];
        let groups = group_streams(&streams, 2).unwrap();
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn fails_when_servers_exhausted() {
        let streams = vec![st(0, 100_000, 60_000), st(1, 100_000, 60_000)];
        let err = group_streams(&streams, 1).unwrap_err();
        assert!(matches!(err, GroupingError::NotEnoughServers { .. }));
    }

    #[test]
    fn rejects_unsplit_high_rate_stream() {
        let streams = vec![st(0, 100_000, 150_000)];
        let err = group_streams(&streams, 4).unwrap_err();
        assert!(matches!(err, GroupingError::StreamInfeasible { .. }));
    }

    #[test]
    fn smaller_period_candidate_can_join_when_budget_fits() {
        // Group starts with T=200ms stream; T=100ms candidate divides it
        // and total proc 30+20 <= 100ms: the union check admits it.
        let streams = vec![st(0, 200_000, 30_000), st(1, 100_000, 20_000)];
        let groups = group_streams(&streams, 2).unwrap();
        // Regardless of processing order the two must co-locate.
        assert_eq!(groups.len(), 1);
        let g = materialize(&streams, &groups);
        assert!(const2_zero_jitter_ok(&g[0]));
    }

    #[test]
    fn empty_input_is_ok() {
        assert!(group_streams(&[], 3).unwrap().is_empty());
    }

    #[test]
    fn priority_order_prefers_hard_streams_first() {
        // A stream with an awkward period (70ms, divides nothing) should
        // still be placed; compatibility-rich streams fill around it.
        let streams = vec![
            st(0, 100_000, 30_000),
            st(1, 200_000, 30_000),
            st(2, 70_000, 30_000),
            st(3, 140_000, 30_000),
        ];
        let groups = group_streams(&streams, 4).unwrap();
        for g in materialize(&streams, &groups) {
            assert!(const2_zero_jitter_ok(&g));
        }
        // The 70/140 pair is harmonic and fits (60 <= 70): expect 2 groups.
        assert_eq!(groups.len(), 2);
    }

    /// Deterministic: same input, same grouping.
    #[test]
    fn grouping_is_deterministic() {
        let streams = vec![
            st(0, 100_000, 25_000),
            st(1, 300_000, 25_000),
            st(2, 200_000, 25_000),
            st(3, 100_000, 25_000),
        ];
        let a = group_streams(&streams, 4).unwrap();
        let b = group_streams(&streams, 4).unwrap();
        assert_eq!(a, b);
    }
}
