//! Periodic stream timing on an integer tick grid.

/// Integer time unit: one microsecond.
pub type Ticks = u64;

/// Ticks per second.
pub const TICKS_PER_SEC: Ticks = 1_000_000;

/// Identifier of a (possibly split) stream. Substreams produced by
/// [`split_high_rate`] keep their parent id plus a part index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId {
    /// Index of the original camera stream.
    pub source: usize,
    /// Substream index (0 for unsplit streams).
    pub part: usize,
}

impl StreamId {
    /// Id for an unsplit source stream.
    pub fn source(source: usize) -> Self {
        StreamId { source, part: 0 }
    }
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.part == 0 {
            write!(f, "s{}", self.source)
        } else {
            write!(f, "s{}.{}", self.source, self.part)
        }
    }
}

/// The timing tuple `{T_i, p_i}` of Sec. 3 (resolution and other content
/// metadata live in `eva-workload`; the scheduler only needs timing plus
/// a per-stream transmission cost supplied at assignment time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTiming {
    /// Stream identity.
    pub id: StreamId,
    /// Inter-arrival period `T_i` in ticks (inverse of frame rate).
    pub period: Ticks,
    /// Average per-frame processing time `p_i` in ticks.
    pub proc: Ticks,
}

impl StreamTiming {
    /// Construct and validate a timing tuple.
    pub fn new(id: StreamId, period: Ticks, proc: Ticks) -> Self {
        assert!(period > 0, "StreamTiming: zero period");
        assert!(proc > 0, "StreamTiming: zero processing time");
        StreamTiming { id, period, proc }
    }

    /// Convenience: build from frame rate (fps) and processing seconds.
    pub fn from_rate(id: StreamId, fps: f64, proc_secs: f64) -> Self {
        assert!(
            fps > 0.0 && proc_secs > 0.0,
            "from_rate: non-positive input"
        );
        let period = ((TICKS_PER_SEC as f64) / fps).round().max(1.0) as Ticks;
        let proc = (proc_secs * TICKS_PER_SEC as f64).round().max(1.0) as Ticks;
        StreamTiming { id, period, proc }
    }

    /// Utilization `p_i * s_i = p_i / T_i`.
    pub fn utilization(&self) -> f64 {
        self.proc as f64 / self.period as f64
    }

    /// True when the worst-case processing time exceeds the period —
    /// the "high-rate" condition of Sec. 3 that forces splitting.
    pub fn is_high_rate(&self) -> bool {
        self.proc > self.period
    }
}

/// Split high-rate streams into `ceil(s_i * p_i)` interleaved substreams
/// (Sec. 3, "Variable Definition"). Each substream samples every `m`-th
/// frame, so its period is `m * T_i`, and by construction
/// `p_i <= m * T_i` — no self-contention remains.
///
/// Streams that are not high-rate pass through unchanged. The output
/// order groups substreams of a source contiguously.
pub fn split_high_rate(streams: &[StreamTiming]) -> Vec<StreamTiming> {
    let mut out = Vec::with_capacity(streams.len());
    for s in streams {
        if !s.is_high_rate() {
            out.push(*s);
            continue;
        }
        // m = ceil(p / T) = ceil(s * p)
        let m = s.proc.div_ceil(s.period);
        for part in 0..m {
            out.push(StreamTiming {
                id: StreamId {
                    source: s.id.source,
                    part: part as usize,
                },
                period: s.period * m,
                proc: s.proc,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rate_converts_units() {
        let s = StreamTiming::from_rate(StreamId::source(0), 10.0, 0.05);
        assert_eq!(s.period, 100_000);
        assert_eq!(s.proc, 50_000);
        assert!((s.utilization() - 0.5).abs() < 1e-12);
        assert!(!s.is_high_rate());
    }

    #[test]
    fn high_rate_detection() {
        // 10 fps (T = 0.1 s) with 0.15 s processing: high-rate.
        let s = StreamTiming::from_rate(StreamId::source(1), 10.0, 0.15);
        assert!(s.is_high_rate());
    }

    #[test]
    fn split_produces_ceil_sp_substreams() {
        // s*p = 10 * 0.15 = 1.5 -> 2 substreams with period 0.2 s.
        let s = StreamTiming::from_rate(StreamId::source(2), 10.0, 0.15);
        let parts = split_high_rate(&[s]);
        assert_eq!(parts.len(), 2);
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p.id, StreamId { source: 2, part: i });
            assert_eq!(p.period, 200_000);
            assert_eq!(p.proc, 150_000);
            assert!(!p.is_high_rate(), "substream still high-rate");
        }
    }

    #[test]
    fn split_preserves_aggregate_utilization() {
        let s = StreamTiming::from_rate(StreamId::source(0), 30.0, 0.11); // s*p = 3.3 -> 4 parts
        let parts = split_high_rate(&[s]);
        assert_eq!(parts.len(), 4);
        let total: f64 = parts.iter().map(|p| p.utilization()).sum();
        // Splitting into m parts with period m*T divides per-part
        // utilization by m, totalling the original utilization again.
        assert!((total - s.utilization()).abs() < 1e-9);
    }

    #[test]
    fn split_passes_low_rate_through() {
        let a = StreamTiming::from_rate(StreamId::source(0), 5.0, 0.1);
        let b = StreamTiming::from_rate(StreamId::source(1), 30.0, 0.2); // high rate
        let expected_parts = b.proc.div_ceil(b.period); // 7 after tick rounding
        let out = split_high_rate(&[a, b]);
        assert_eq!(out[0], a);
        assert_eq!(out.len(), 1 + expected_parts as usize);
    }

    #[test]
    fn exact_multiple_boundary() {
        // p exactly equals 2 periods: s*p = 2.0 -> exactly 2 parts.
        let s = StreamTiming::new(StreamId::source(3), 100, 200);
        let parts = split_high_rate(&[s]);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].period, 200);
    }

    #[test]
    #[should_panic(expected = "zero period")]
    fn rejects_zero_period() {
        let _ = StreamTiming::new(StreamId::source(0), 0, 1);
    }
}
