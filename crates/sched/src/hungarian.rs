//! Kuhn-Munkres (Hungarian) algorithm for minimum-cost assignment.
//!
//! Algorithm 1, line 20 maps stream groups onto servers by solving an
//! assignment problem minimizing total communication latency. This is
//! the O(n³) potentials formulation; it handles rectangular instances
//! with `rows <= cols` directly (each row gets a distinct column).

/// Solve min-cost assignment for a `rows x cols` cost matrix with
/// `rows <= cols`. Returns `(assignment, total_cost)` where
/// `assignment[r]` is the column given to row `r`.
///
/// ```
/// use eva_sched::hungarian_min_cost;
/// // Two stream groups onto three servers: costs are transmission latencies.
/// let cost = vec![vec![0.8, 0.2, 0.5], vec![0.3, 0.1, 0.9]];
/// let (assignment, total) = hungarian_min_cost(&cost);
/// assert_eq!(assignment, vec![1, 0]); // group 0 -> server 1, group 1 -> server 0
/// assert!((total - 0.5).abs() < 1e-12);
/// ```
///
/// Costs may be any finite `f64`; `INFINITY` marks forbidden pairs
/// (the solver avoids them whenever a finite-cost perfect matching
/// exists).
///
/// # Panics
/// Panics if `rows > cols`, the matrix is ragged, or it is empty.
pub fn hungarian_min_cost(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    assert!(n > 0, "hungarian: empty cost matrix");
    let m = cost[0].len();
    assert!(
        cost.iter().all(|row| row.len() == m),
        "hungarian: ragged cost matrix"
    );
    assert!(n <= m, "hungarian: rows {n} > cols {m}");

    // 1-indexed potentials formulation (e-maxx). p[j] = row matched to
    // column j (0 = none). way[j] = previous column on the alternating
    // path.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1];
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            debug_assert!(
                delta.is_finite(),
                "hungarian: no augmenting path (all remaining pairs forbidden)"
            );
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total = assignment
        .iter()
        .enumerate()
        .map(|(r, &c)| cost[r][c])
        .sum();
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force oracle over all permutations (small instances only).
    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        let n = cost.len();
        let m = cost[0].len();
        let mut cols: Vec<usize> = (0..m).collect();
        let mut best = f64::INFINITY;
        permute(&mut cols, 0, &mut |perm| {
            let total: f64 = (0..n).map(|r| cost[r][perm[r]]).sum();
            if total < best {
                best = total;
            }
        });
        best
    }

    fn permute(items: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == items.len() {
            f(items);
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, f);
            items.swap(k, i);
        }
    }

    #[test]
    fn solves_classic_3x3() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let (assign, total) = hungarian_min_cost(&cost);
        assert_eq!(total, 5.0); // 1 + 2 + 2
        assert_eq!(assign, vec![1, 0, 2]);
    }

    #[test]
    fn assignment_is_a_partial_injection() {
        let cost = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 4.0, 6.0, 8.0],
            vec![3.0, 6.0, 9.0, 12.0],
        ];
        let (assign, _) = hungarian_min_cost(&cost);
        let mut cols = assign.clone();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 3, "columns reused: {assign:?}");
        assert!(assign.iter().all(|&c| c < 4));
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for trial in 0..30 {
            let n = rng.gen_range(1..=5);
            let m = rng.gen_range(n..=6);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let (_, total) = hungarian_min_cost(&cost);
            let best = brute_force(&cost);
            assert!(
                (total - best).abs() < 1e-9,
                "trial {trial}: hungarian {total} vs brute {best} on {cost:?}"
            );
        }
    }

    #[test]
    fn rectangular_uses_cheapest_columns() {
        // One row, four columns.
        let cost = vec![vec![5.0, 1.0, 7.0, 3.0]];
        let (assign, total) = hungarian_min_cost(&cost);
        assert_eq!(assign, vec![1]);
        assert_eq!(total, 1.0);
    }

    #[test]
    fn negative_costs_are_fine() {
        let cost = vec![vec![-5.0, 0.0], vec![0.0, -5.0]];
        let (assign, total) = hungarian_min_cost(&cost);
        assert_eq!(total, -10.0);
        assert_eq!(assign, vec![0, 1]);
    }

    #[test]
    fn forbidden_pairs_avoided_when_possible() {
        let inf = f64::INFINITY;
        let cost = vec![vec![inf, 1.0], vec![1.0, inf]];
        let (assign, total) = hungarian_min_cost(&cost);
        assert_eq!(assign, vec![1, 0]);
        assert_eq!(total, 2.0);
    }

    #[test]
    fn single_cell() {
        let (assign, total) = hungarian_min_cost(&[vec![42.0]]);
        assert_eq!(assign, vec![0]);
        assert_eq!(total, 42.0);
    }

    #[test]
    #[should_panic(expected = "rows 3 > cols 2")]
    fn rejects_more_rows_than_cols() {
        let _ = hungarian_min_cost(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
    }

    #[test]
    fn larger_instance_agrees_with_greedy_lower_bound() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 40;
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..100.0)).collect())
            .collect();
        let (assign, total) = hungarian_min_cost(&cost);
        // Lower bound: sum of per-row minima.
        let lb: f64 = cost
            .iter()
            .map(|r| r.iter().cloned().fold(f64::INFINITY, f64::min))
            .sum();
        assert!(total >= lb - 1e-9);
        // Upper bound: identity assignment.
        let ub: f64 = (0..n).map(|i| cost[i][i]).sum();
        assert!(total <= ub + 1e-9);
        let mut cols = assign.clone();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), n);
    }
}
