//! Exact (exponential) grouping oracles for small instances.
//!
//! Algorithm 1 is a greedy heuristic; these oracles compute the true
//! minimum number of `Const2`-feasible groups by exhaustive set
//! partitioning, so tests and ablations can quantify how much the
//! heuristic's priority ordering actually buys (the paper claims it
//! "increases the probability of finding a feasible schedule").

use crate::stream::StreamTiming;
use crate::theory::const2_zero_jitter_ok;

/// Instances above this size are refused (Bell-number blowup).
pub const ORACLE_MAX_STREAMS: usize = 12;

/// Minimum number of groups such that every group satisfies `Const2`,
/// or `None` if some single stream is infeasible alone (`p > T`).
///
/// Exhaustive branch-and-bound over set partitions; only for
/// `streams.len() <= ORACLE_MAX_STREAMS`.
pub fn min_groups_const2(streams: &[StreamTiming]) -> Option<usize> {
    assert!(
        streams.len() <= ORACLE_MAX_STREAMS,
        "oracle limited to {ORACLE_MAX_STREAMS} streams, got {}",
        streams.len()
    );
    if streams.is_empty() {
        return Some(0);
    }
    if streams.iter().any(|s| s.proc > s.period) {
        return None;
    }
    let mut best = streams.len(); // singleton partition always feasible
    let mut groups: Vec<Vec<StreamTiming>> = Vec::new();
    branch(streams, 0, &mut groups, &mut best);
    Some(best)
}

fn branch(
    streams: &[StreamTiming],
    next: usize,
    groups: &mut Vec<Vec<StreamTiming>>,
    best: &mut usize,
) {
    if groups.len() >= *best {
        return; // bound: cannot improve
    }
    if next == streams.len() {
        *best = groups.len();
        return;
    }
    let s = streams[next];
    // Try adding to each existing group.
    for gi in 0..groups.len() {
        groups[gi].push(s);
        if const2_zero_jitter_ok(&groups[gi]) {
            branch(streams, next + 1, groups, best);
        }
        groups[gi].pop();
    }
    // Or open a new group.
    groups.push(vec![s]);
    branch(streams, next + 1, groups, best);
    groups.pop();
}

/// Number of groups Algorithm 1 produces for the same instance, or
/// `None` when the heuristic needs more than `cap` groups.
pub fn heuristic_groups(streams: &[StreamTiming], cap: usize) -> Option<usize> {
    crate::group::group_streams(streams, cap)
        .ok()
        .map(|g| g.len())
}

/// First-fit *without* the period sort and priority ordering, using the
/// same Theorem-3 admission rule as Algorithm 1 — isolates the value of
/// the ordering heuristics.
pub fn unordered_first_fit_groups(streams: &[StreamTiming], cap: usize) -> Option<usize> {
    first_fit_with(streams, cap, crate::theory::theorem3_group_ok)
}

/// First-fit (input order) admitting by the *raw `Const2` gcd check*
/// instead of Theorem 3's harmonic condition. `Const2` is strictly more
/// permissive (it accepts e.g. periods {100, 150} with small processing
/// times, gcd 50), so this packs tighter than Algorithm 1 — quantifying
/// what the paper trades for Theorem 3's simplicity.
pub fn const2_first_fit_groups(streams: &[StreamTiming], cap: usize) -> Option<usize> {
    first_fit_with(streams, cap, const2_zero_jitter_ok)
}

fn first_fit_with(
    streams: &[StreamTiming],
    cap: usize,
    admit: impl Fn(&[StreamTiming]) -> bool,
) -> Option<usize> {
    let mut groups: Vec<Vec<StreamTiming>> = Vec::new();
    for &s in streams {
        if s.proc > s.period {
            return None;
        }
        let mut placed = false;
        for g in groups.iter_mut() {
            g.push(s);
            if admit(g) {
                placed = true;
                break;
            }
            g.pop();
        }
        if !placed {
            if groups.len() == cap {
                return None;
            }
            groups.push(vec![s]);
        }
    }
    Some(groups.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{StreamId, Ticks};
    use rand::Rng;

    fn st(source: usize, period: Ticks, proc: Ticks) -> StreamTiming {
        StreamTiming::new(StreamId::source(source), period, proc)
    }

    #[test]
    fn oracle_handles_trivial_cases() {
        assert_eq!(min_groups_const2(&[]), Some(0));
        assert_eq!(min_groups_const2(&[st(0, 100, 50)]), Some(1));
        // Single infeasible stream.
        assert_eq!(min_groups_const2(&[st(0, 100, 150)]), None);
    }

    #[test]
    fn oracle_packs_harmonic_streams() {
        // Three harmonic streams, Σp = 60 <= 100: one group.
        let set = [st(0, 100, 20), st(1, 200, 20), st(2, 400, 20)];
        assert_eq!(min_groups_const2(&set), Some(1));
    }

    #[test]
    fn oracle_separates_non_harmonic() {
        // gcd(100, 130) = 10 < 40: must separate.
        let set = [st(0, 100, 20), st(1, 130, 20)];
        assert_eq!(min_groups_const2(&set), Some(2));
    }

    #[test]
    fn heuristic_never_beats_oracle() {
        let mut rng = eva_stats::rng::seeded(71);
        for trial in 0..40 {
            let n = rng.gen_range(2..=7);
            let streams: Vec<StreamTiming> = (0..n)
                .map(|i| {
                    let period = 50_000 * rng.gen_range(1u64..=8);
                    let proc = rng.gen_range(5_000..=45_000).min(period);
                    st(i, period, proc)
                })
                .collect();
            let oracle = min_groups_const2(&streams).expect("feasible by construction");
            let heuristic = heuristic_groups(&streams, n).expect("cap = n always fits");
            assert!(
                heuristic >= oracle,
                "trial {trial}: heuristic {heuristic} < oracle {oracle}??"
            );
            // The heuristic should stay within 3x of optimal on these
            // small harmonic-ish instances (observed: usually equal,
            // occasionally 3x on dense near-unit-utilization draws; the
            // bound guards regressions without pinning the RNG stream).
            assert!(
                heuristic <= 3 * oracle,
                "trial {trial}: heuristic {heuristic} vs oracle {oracle}"
            );
        }
    }

    #[test]
    fn ordering_helps_on_adversarial_input() {
        // Input order interleaves periods so unordered first-fit packs
        // badly: [100, 300, 100, 300] with procs that pair 100+100 and
        // 300+300 cleanly but mix terribly.
        let set = [
            st(0, 100_000, 45_000),
            st(1, 300_000, 45_000),
            st(2, 100_000, 45_000),
            st(3, 300_000, 45_000),
        ];
        // Sorted/prioritized heuristic: {100,100} (Σ90 ≤ 100) and
        // {300,300} (Σ90 ≤ 300) = 2 groups.
        assert_eq!(heuristic_groups(&set, 4), Some(2));
        // Unordered first-fit puts 100 with 300 (Σ90 ≤ gcd 100 ✓), then
        // the second 100 cannot join (Σ135 > 100) and opens group 2,
        // the second 300 joins neither cleanly... count is ≥ 2.
        let unordered = unordered_first_fit_groups(&set, 4).unwrap();
        assert!(unordered >= 2);
    }

    fn random_streams(rng: &mut impl Rng, n: usize) -> Vec<StreamTiming> {
        (0..n)
            .map(|i| {
                let period = 50_000 * rng.gen_range(1u64..=10);
                let proc = rng.gen_range(5_000..=45_000).min(period);
                st(i, period, proc)
            })
            .collect()
    }

    #[test]
    fn random_instances_ordered_never_worse_on_average() {
        // Same Theorem-3 admission rule, with vs without the
        // sort+priority ordering: ordering should not lose ground.
        let mut rng = eva_stats::rng::seeded(72);
        let mut ordered_total = 0usize;
        let mut unordered_total = 0usize;
        for _ in 0..60 {
            let n = rng.gen_range(3..=8);
            let streams = random_streams(&mut rng, n);
            ordered_total += heuristic_groups(&streams, n).unwrap();
            unordered_total += unordered_first_fit_groups(&streams, n).unwrap();
        }
        assert!(
            ordered_total <= unordered_total + 3,
            "ordered {ordered_total} vs unordered {unordered_total}"
        );
    }

    #[test]
    fn const2_admission_packs_tighter_than_theorem3() {
        // The raw gcd check is strictly more permissive than Theorem 3's
        // harmonic condition, so it never needs more groups.
        let mut rng = eva_stats::rng::seeded(73);
        let mut t3_total = 0usize;
        let mut c2_total = 0usize;
        for _ in 0..60 {
            let n = rng.gen_range(3..=8);
            let streams = random_streams(&mut rng, n);
            t3_total += unordered_first_fit_groups(&streams, n).unwrap();
            c2_total += const2_first_fit_groups(&streams, n).unwrap();
        }
        assert!(
            c2_total <= t3_total,
            "const2 {c2_total} vs theorem3 {t3_total}"
        );
        // And the gap is real on this distribution (non-harmonic periods
        // with small procs exist).
        assert!(c2_total < t3_total, "expected a strict gap");
    }
}
