//! Final placement: Algorithm 1 end-to-end.
//!
//! Combines high-rate splitting, Theorem-3 grouping and Hungarian
//! assignment into the scheduling vector `q` of the paper: each (split)
//! stream is mapped to a server such that every server's stream set is
//! zero-jitter feasible and total uplink transmission latency is
//! minimized (Algorithm 1, line 20's objective
//! `min Σ_G Σ_{i∈G} bits(r_i) / B_q`).

use eva_obs::{span, NoopRecorder, Phase, Recorder};

use crate::auction::{AuctionConfig, AuctionSolver, SparseCost};
use crate::group::{group_streams, GroupingError};
use crate::hungarian::hungarian_min_cost;
use crate::stream::{split_high_rate, StreamTiming};

/// Group count at and above which [`AssignStrategy::Auto`] switches
/// from the dense Hungarian to the sparse auction. Below this the dense
/// solver is already microseconds and keeps the historical bit-exact
/// output.
pub const AUTO_AUCTION_THRESHOLD: usize = 64;

/// Candidate servers per group the auto strategy prices (plus the seed
/// arc; see [`sparse_candidates`]).
const AUTO_AUCTION_TOP_K: usize = 8;

/// How Algorithm 1's line-20 group-to-server matching is solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignStrategy {
    /// Dense Hungarian below [`AUTO_AUCTION_THRESHOLD`] groups (the
    /// historical, bit-exact path), sparse auction above it.
    #[default]
    Auto,
    /// Always the dense O(n³) Hungarian solver.
    Hungarian,
    /// Always the ε-scaling auction over sparse candidates: each group
    /// prices its `top_k` cheapest servers plus a seed server chosen by
    /// rank-pairing (heaviest group ↔ fastest uplink), which guarantees
    /// a perfect matching exists within the sparse arcs. Falls back to
    /// Hungarian if the auction errors.
    Auction {
        /// Cheapest candidate servers per group.
        top_k: usize,
    },
}

/// Build the sparse candidate cost matrix for the auction: per group
/// the `top_k` cheapest servers, plus a *seed* arc pairing groups and
/// servers rank-by-rank (bits descending ↔ uplink descending). The
/// per-group cost is rank-1 in the uplink (`bits_g / B_j`), so the
/// rank-paired seed assignment is optimal by the rearrangement
/// inequality — including it both guarantees the sparse instance has a
/// perfect matching and keeps a near-optimal solution inside the arcs.
fn sparse_candidates(group_bits: &[f64], uplinks: &[f64], top_k: usize) -> SparseCost {
    let n = group_bits.len();
    let m = uplinks.len();
    let mut col_order: Vec<usize> = (0..m).collect();
    col_order.sort_by(|&a, &b| uplinks[b].total_cmp(&uplinks[a]).then(a.cmp(&b)));
    let mut row_order: Vec<usize> = (0..n).collect();
    row_order.sort_by(|&a, &b| group_bits[b].total_cmp(&group_bits[a]).then(a.cmp(&b)));
    let mut seed_col = vec![0usize; n];
    for (rank, &g) in row_order.iter().enumerate() {
        seed_col[g] = col_order[rank];
    }
    let mut sparse = SparseCost::new(m);
    for (g, &bits) in group_bits.iter().enumerate() {
        let mut arcs: Vec<(usize, f64)> = col_order
            .iter()
            .take(top_k)
            .map(|&j| (j, bits / uplinks[j]))
            .collect();
        arcs.push((seed_col[g], bits / uplinks[seed_col[g]]));
        sparse.push_row(arcs);
    }
    sparse
}

/// A complete placement decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Post-split stream timings, in the order referenced by `server_of`.
    pub streams: Vec<StreamTiming>,
    /// `server_of[i]` is the server index assigned to `streams[i]`.
    pub server_of: Vec<usize>,
    /// Index sets of streams per group, parallel to `group_server`.
    pub groups: Vec<Vec<usize>>,
    /// Server chosen for each group.
    pub group_server: Vec<usize>,
    /// Total communication latency of the chosen mapping (seconds).
    pub total_comm_latency: f64,
}

impl Assignment {
    /// Streams co-located on `server` (indices into `self.streams`).
    pub fn streams_on(&self, server: usize) -> Vec<usize> {
        self.server_of
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == server)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Run Algorithm 1: split high-rate streams, group, then assign groups
/// to servers by Hungarian matching on communication latency.
///
/// * `streams` — original (pre-split) stream timings,
/// * `bits_per_frame[i]` — transmitted bits of one frame of source
///   stream `i` (resolution-dependent, from `eva-workload`),
/// * `uplink_bps[j]` — uplink bandwidth of server `j` in bits/second.
///
/// The per-group cost on server `j` is
/// `Σ_{i ∈ G} bits_per_frame[src(i)] / uplink_bps[j]` — each frame's
/// transmission latency, matching Eq. 5's `θ_bit(r_i)/B_{q_i}` term.
pub fn assign_groups_to_servers(
    streams: &[StreamTiming],
    bits_per_frame: &[f64],
    uplink_bps: &[f64],
) -> Result<Assignment, GroupingError> {
    assign_groups_to_surviving_servers(streams, bits_per_frame, uplink_bps, None)
}

/// Failure-aware Algorithm 1: identical to [`assign_groups_to_servers`]
/// but restricted to the servers marked `true` in `alive` — dead servers
/// receive no groups and contribute no Hungarian columns. Server indices
/// in the returned [`Assignment`] still refer to the *full* server list,
/// so placements map directly onto the unreduced cluster.
///
/// With `alive = None` (or all-true) this is exactly the unrestricted
/// Algorithm 1 — same operations in the same order, bit-identical
/// output — which is what keeps the zero-fault online path identical to
/// the fault-oblivious one.
pub fn assign_groups_to_surviving_servers(
    streams: &[StreamTiming],
    bits_per_frame: &[f64],
    uplink_bps: &[f64],
    alive: Option<&[bool]>,
) -> Result<Assignment, GroupingError> {
    assign_groups_to_surviving_servers_recorded(
        streams,
        bits_per_frame,
        uplink_bps,
        alive,
        &NoopRecorder,
    )
}

/// [`assign_groups_to_surviving_servers`] with telemetry: splitting +
/// grouping run under a [`Phase::Grouping`] span, the Hungarian
/// matching under a [`Phase::Assignment`] span, and group/stream
/// counts land on `rec`. With a [`NoopRecorder`] this is bit-identical
/// to the plain entry point (which delegates here).
pub fn assign_groups_to_surviving_servers_recorded(
    streams: &[StreamTiming],
    bits_per_frame: &[f64],
    uplink_bps: &[f64],
    alive: Option<&[bool]>,
    rec: &dyn Recorder,
) -> Result<Assignment, GroupingError> {
    assign_groups_with_strategy_recorded(
        streams,
        bits_per_frame,
        uplink_bps,
        alive,
        AssignStrategy::Auto,
        rec,
    )
}

/// [`assign_groups_to_surviving_servers_recorded`] with an explicit
/// matching strategy. [`AssignStrategy::Auto`] keeps the dense
/// Hungarian (bit-exact historical output) below
/// [`AUTO_AUCTION_THRESHOLD`] groups and switches to the sparse
/// ε-scaling auction above it, where the dense O(n³) solve becomes the
/// asymptotic wall.
pub fn assign_groups_with_strategy_recorded(
    streams: &[StreamTiming],
    bits_per_frame: &[f64],
    uplink_bps: &[f64],
    alive: Option<&[bool]>,
    strategy: AssignStrategy,
    rec: &dyn Recorder,
) -> Result<Assignment, GroupingError> {
    assert_eq!(
        streams.len(),
        bits_per_frame.len(),
        "assign: bits_per_frame length mismatch"
    );
    assert!(
        uplink_bps.iter().all(|&b| b > 0.0),
        "assign: non-positive uplink bandwidth"
    );
    if let Some(alive) = alive {
        assert_eq!(
            alive.len(),
            uplink_bps.len(),
            "assign: alive length mismatch"
        );
    }
    // Indices of usable servers in the full list. The all-alive case
    // keeps the identity mapping and reproduces the unrestricted path.
    let usable: Vec<usize> = match alive {
        Some(alive) => (0..uplink_bps.len()).filter(|&j| alive[j]).collect(),
        None => (0..uplink_bps.len()).collect(),
    };
    let n_servers = usable.len();
    let (split, grouped) = {
        let _grouping_span = span(rec, Phase::Grouping);
        let split = split_high_rate(streams);
        let grouped = group_streams(&split, n_servers);
        (split, grouped)
    };
    let groups = match grouped {
        Ok(g) => g,
        Err(e) => {
            if rec.enabled() {
                rec.add("sched.infeasible", 1);
            }
            return Err(e);
        }
    };
    if rec.enabled() {
        rec.add("sched.assignments", 1);
        rec.observe("sched.split_streams", split.len() as f64);
        rec.observe("sched.groups", groups.len() as f64);
    }

    if groups.is_empty() {
        return Ok(Assignment {
            streams: split,
            server_of: Vec::new(),
            groups,
            group_server: Vec::new(),
            total_comm_latency: 0.0,
        });
    }

    let _assignment_span = span(rec, Phase::Assignment);
    let group_bits: Vec<f64> = groups
        .iter()
        .map(|g| g.iter().map(|&i| bits_per_frame[split[i].id.source]).sum())
        .collect();
    let top_k = match strategy {
        AssignStrategy::Hungarian => None,
        AssignStrategy::Auction { top_k } => Some(top_k.max(1)),
        AssignStrategy::Auto => {
            (groups.len() >= AUTO_AUCTION_THRESHOLD).then_some(AUTO_AUCTION_TOP_K)
        }
    };
    let solve_dense = |rec: &dyn Recorder| {
        // Cost matrix: group g on usable server j.
        let cost: Vec<Vec<f64>> = group_bits
            .iter()
            .map(|&gb| usable.iter().map(|&j| gb / uplink_bps[j]).collect())
            .collect();
        if rec.enabled() {
            rec.add("sched.hungarian_solves", 1);
        }
        hungarian_min_cost(&cost)
    };
    let (chosen, total_comm_latency) = match top_k {
        Some(top_k) => {
            let uplinks: Vec<f64> = usable.iter().map(|&j| uplink_bps[j]).collect();
            let sparse = sparse_candidates(&group_bits, &uplinks, top_k);
            match AuctionSolver::solve(&sparse, &AuctionConfig::default()) {
                Ok(solver) => {
                    if rec.enabled() {
                        rec.add("sched.auction_solves", 1);
                    }
                    let chosen = solver.assignment().to_vec();
                    let total: f64 = chosen
                        .iter()
                        .enumerate()
                        .map(|(g, &j)| group_bits[g] / uplinks[j])
                        .sum();
                    (chosen, total)
                }
                Err(_) => {
                    // The seeded candidate set always admits a perfect
                    // matching; this is a belt-and-braces safety net.
                    if rec.enabled() {
                        rec.add("sched.auction_fallbacks", 1);
                    }
                    solve_dense(rec)
                }
            }
        }
        None => solve_dense(rec),
    };
    let group_server: Vec<usize> = chosen.into_iter().map(|j| usable[j]).collect();

    let mut server_of = vec![usize::MAX; split.len()];
    for (g, members) in groups.iter().enumerate() {
        for &i in members {
            server_of[i] = group_server[g];
        }
    }
    debug_assert!(server_of.iter().all(|&s| s < uplink_bps.len()));

    Ok(Assignment {
        streams: split,
        server_of,
        groups,
        group_server,
        total_comm_latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{StreamId, TICKS_PER_SEC};
    use crate::theory::const2_zero_jitter_ok;

    fn st(source: usize, fps: f64, proc_secs: f64) -> StreamTiming {
        StreamTiming::from_rate(StreamId::source(source), fps, proc_secs)
    }

    #[test]
    fn every_server_set_is_zero_jitter() {
        let streams = vec![
            st(0, 10.0, 0.03),
            st(1, 5.0, 0.05),
            st(2, 20.0, 0.02),
            st(3, 10.0, 0.04),
        ];
        let bits = vec![1e6, 2e6, 0.5e6, 1e6];
        let uplinks = vec![10e6, 20e6, 30e6];
        let a = assign_groups_to_servers(&streams, &bits, &uplinks).unwrap();
        for server in 0..uplinks.len() {
            let members: Vec<StreamTiming> = a
                .streams_on(server)
                .into_iter()
                .map(|i| a.streams[i])
                .collect();
            assert!(const2_zero_jitter_ok(&members), "server {server}");
        }
        assert_eq!(a.server_of.len(), a.streams.len());
    }

    #[test]
    fn heavy_group_lands_on_fast_uplink() {
        // One group with huge frames, one with tiny frames; two servers
        // with very different uplinks. Optimal matching puts the heavy
        // group on the fast link.
        let streams = vec![st(0, 10.0, 0.09), st(1, 7.0, 0.09)];
        // Non-harmonic periods (100 ms vs ~142.9 ms) force two groups.
        let bits = vec![8e6, 0.1e6];
        let uplinks = vec![1e6, 100e6]; // slow, fast
        let a = assign_groups_to_servers(&streams, &bits, &uplinks).unwrap();
        // Stream 0 (heavy) must sit on server 1 (fast).
        let heavy_idx = a.streams.iter().position(|s| s.id.source == 0).unwrap();
        assert_eq!(a.server_of[heavy_idx], 1);
    }

    #[test]
    fn comm_latency_is_minimal_versus_swap() {
        let streams = vec![st(0, 10.0, 0.05), st(1, 7.0, 0.05)];
        let bits = vec![4e6, 1e6];
        let uplinks = vec![2e6, 8e6];
        let a = assign_groups_to_servers(&streams, &bits, &uplinks).unwrap();
        assert_eq!(a.groups.len(), 2);
        // Cost of chosen mapping vs the swapped mapping.
        let cost = |g: usize, j: usize| -> f64 {
            let gb: f64 = a.groups[g]
                .iter()
                .map(|&i| bits[a.streams[i].id.source])
                .sum();
            gb / uplinks[j]
        };
        let chosen = cost(0, a.group_server[0]) + cost(1, a.group_server[1]);
        let swapped = cost(0, a.group_server[1]) + cost(1, a.group_server[0]);
        assert!(chosen <= swapped + 1e-12);
        assert!((a.total_comm_latency - chosen).abs() < 1e-12);
    }

    #[test]
    fn high_rate_streams_are_split_before_grouping() {
        // 30 fps, 0.11 s processing: s*p = 3.3 -> 4 substreams.
        let streams = vec![st(0, 30.0, 0.11)];
        let bits = vec![1e6];
        let uplinks = vec![10e6, 10e6, 10e6, 10e6];
        let a = assign_groups_to_servers(&streams, &bits, &uplinks).unwrap();
        assert_eq!(a.streams.len(), 4);
        let base_period = ((TICKS_PER_SEC as f64) / 30.0).round() as Ticks;
        for s in &a.streams {
            assert!(s.proc <= s.period);
            assert_eq!(s.period, 4 * base_period);
        }
        // All substreams placed on distinct servers (each uses 0.11 of a
        // 0.133 s window; two would blow the budget).
        let mut servers: Vec<usize> = a.server_of.clone();
        servers.sort_unstable();
        servers.dedup();
        assert_eq!(servers.len(), 4);
    }

    #[test]
    fn infeasible_when_too_few_servers() {
        let streams = vec![st(0, 10.0, 0.09), st(1, 7.0, 0.09), st(2, 11.0, 0.09)];
        let bits = vec![1e6; 3];
        let uplinks = vec![10e6]; // one server for three mutually unpackable streams
        assert!(assign_groups_to_servers(&streams, &bits, &uplinks).is_err());
    }

    #[test]
    fn surviving_subset_avoids_dead_servers() {
        let streams = vec![
            st(0, 10.0, 0.03),
            st(1, 5.0, 0.05),
            st(2, 20.0, 0.02),
            st(3, 10.0, 0.04),
        ];
        let bits = vec![1e6, 2e6, 0.5e6, 1e6];
        let uplinks = vec![10e6, 20e6, 30e6, 40e6];
        let alive = vec![true, false, true, true];
        let a =
            assign_groups_to_surviving_servers(&streams, &bits, &uplinks, Some(&alive)).unwrap();
        assert!(a.server_of.iter().all(|&s| s != 1), "dead server used");
        assert!(a.server_of.iter().all(|&s| s < uplinks.len()));
        for server in [0usize, 2, 3] {
            let members: Vec<StreamTiming> = a
                .streams_on(server)
                .into_iter()
                .map(|i| a.streams[i])
                .collect();
            assert!(const2_zero_jitter_ok(&members), "server {server}");
        }
    }

    #[test]
    fn all_alive_matches_unrestricted_bitwise() {
        let streams = vec![st(0, 10.0, 0.03), st(1, 5.0, 0.05), st(2, 20.0, 0.02)];
        let bits = vec![1e6, 2e6, 0.5e6];
        let uplinks = vec![10e6, 20e6, 30e6];
        let alive = vec![true; 3];
        let plain = assign_groups_to_servers(&streams, &bits, &uplinks).unwrap();
        let gated =
            assign_groups_to_surviving_servers(&streams, &bits, &uplinks, Some(&alive)).unwrap();
        assert_eq!(plain.server_of, gated.server_of);
        assert_eq!(plain.group_server, gated.group_server);
        assert_eq!(
            plain.total_comm_latency.to_bits(),
            gated.total_comm_latency.to_bits()
        );
    }

    #[test]
    fn too_many_failures_is_infeasible() {
        // Three mutually unpackable streams, three servers, two dead.
        let streams = vec![st(0, 10.0, 0.09), st(1, 7.0, 0.09), st(2, 11.0, 0.09)];
        let bits = vec![1e6; 3];
        let uplinks = vec![10e6; 3];
        let alive = vec![false, true, false];
        assert!(
            assign_groups_to_surviving_servers(&streams, &bits, &uplinks, Some(&alive)).is_err()
        );
    }

    #[test]
    fn empty_streams_yield_empty_assignment() {
        let a = assign_groups_to_servers(&[], &[], &[10e6]).unwrap();
        assert!(a.server_of.is_empty());
        assert_eq!(a.total_comm_latency, 0.0);
    }

    /// A many-group instance with mutually non-harmonic periods: each
    /// stream lands in its own group, exercising the matching at scale.
    fn many_groups(n: usize) -> (Vec<StreamTiming>, Vec<f64>, Vec<f64>) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        // Pairwise coprime-ish periods (primes in ticks) with proc close
        // to the period so no two streams can share a group.
        let mut streams = Vec::with_capacity(n);
        let mut period = 100_003u64;
        for i in 0..n {
            streams.push(StreamTiming::new(
                StreamId::source(i),
                period,
                period - 1_000,
            ));
            period = (period + 2_000..)
                .find(|p| p % 2 == 1 && p % 3 != 0 && p % 5 != 0)
                .unwrap();
        }
        let bits: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5e6..8e6)).collect();
        let uplinks: Vec<f64> = (0..n + n / 4)
            .map(|_| [5e6, 10e6, 15e6, 20e6, 25e6, 30e6][rng.gen_range(0..6)])
            .collect();
        (streams, bits, uplinks)
    }

    #[test]
    fn auction_strategy_matches_hungarian_latency() {
        let (streams, bits, uplinks) = many_groups(80);
        let rec = eva_obs::NoopRecorder;
        let hung = assign_groups_with_strategy_recorded(
            &streams,
            &bits,
            &uplinks,
            None,
            AssignStrategy::Hungarian,
            &rec,
        )
        .unwrap();
        let auct = assign_groups_with_strategy_recorded(
            &streams,
            &bits,
            &uplinks,
            None,
            AssignStrategy::Auction { top_k: 8 },
            &rec,
        )
        .unwrap();
        // Groups are identical (grouping is strategy-independent); the
        // auction matching must be within its advertised tolerance of
        // the Hungarian optimum (1e-4 relative, plus fp slack).
        assert_eq!(hung.groups, auct.groups);
        let tol = 1e-4 * hung.total_comm_latency.max(1.0) + 1e-9;
        assert!(
            auct.total_comm_latency <= hung.total_comm_latency + tol,
            "auction {} vs hungarian {}",
            auct.total_comm_latency,
            hung.total_comm_latency
        );
        // Valid placement: distinct servers per group.
        let mut servers = auct.group_server.clone();
        servers.sort_unstable();
        servers.dedup();
        assert_eq!(servers.len(), auct.groups.len());
    }

    #[test]
    fn auto_strategy_is_bit_identical_below_threshold() {
        let streams = vec![st(0, 10.0, 0.03), st(1, 5.0, 0.05), st(2, 7.0, 0.02)];
        let bits = vec![1e6, 2e6, 0.5e6];
        let uplinks = vec![10e6, 20e6, 30e6];
        let rec = eva_obs::NoopRecorder;
        let auto = assign_groups_with_strategy_recorded(
            &streams,
            &bits,
            &uplinks,
            None,
            AssignStrategy::Auto,
            &rec,
        )
        .unwrap();
        let hung = assign_groups_with_strategy_recorded(
            &streams,
            &bits,
            &uplinks,
            None,
            AssignStrategy::Hungarian,
            &rec,
        )
        .unwrap();
        assert_eq!(auto.server_of, hung.server_of);
        assert_eq!(
            auto.total_comm_latency.to_bits(),
            hung.total_comm_latency.to_bits()
        );
    }

    use crate::stream::Ticks;
}
