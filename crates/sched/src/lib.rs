//! Zero-jitter periodic scheduling for edge video analytics.
//!
//! Implements Section 3 (constraints, Theorems 1-2) and Section 4.1
//! (Algorithm 1, Theorem 3) of the PaMO paper:
//!
//! * [`stream`] — periodic stream timing model on an integer tick grid,
//!   including the high-rate stream *splitting* of Sec. 3 (a stream whose
//!   per-frame processing time exceeds its period is split into
//!   `ceil(s·p)` interleaved substreams),
//! * [`theory`] — `Const1` (utilization), `Const2` (gcd zero-jitter
//!   sufficient condition) and the Theorem-3 grouping condition as
//!   checkable predicates,
//! * [`group`] — the group-based heuristic of Algorithm 1,
//! * [`hungarian`] — Kuhn-Munkres optimal assignment, used to map groups
//!   to servers minimizing total communication latency (Algorithm 1,
//!   line 20),
//! * [`assign`] — the glue producing the final scheduling vector `q`.
//!
//! Timing is integer microseconds ([`Ticks`]): `gcd` on floats is
//! ill-defined, and the paper's constraints are all divisibility
//! statements.

pub mod assign;
pub mod auction;
pub mod group;
pub mod hungarian;
pub mod oracle;
pub mod stream;
pub mod theory;

pub use assign::{
    assign_groups_to_servers, assign_groups_to_surviving_servers,
    assign_groups_to_surviving_servers_recorded, assign_groups_with_strategy_recorded,
    AssignStrategy, Assignment,
};
pub use auction::{AuctionConfig, AuctionError, AuctionSolver, SparseCost, UNASSIGNED};
pub use group::{
    group_streams, group_streams_sequential, group_streams_sharded, GroupingError,
    SHARD_GROUPING_THRESHOLD,
};
pub use hungarian::hungarian_min_cost;
pub use stream::{split_high_rate, StreamId, StreamTiming, Ticks, TICKS_PER_SEC};
pub use theory::{const1_utilization_ok, const2_zero_jitter_ok, theorem3_group_ok};
