//! ε-scaling auction assignment over sparse candidate arcs.
//!
//! Bertsekas' forward auction solves the min-cost assignment problem by
//! letting unassigned rows *bid* for their best-value column (value =
//! `-cost - price`), raising that column's price by the bid increment
//! `v_best - v_second + ε`. Once every row is assigned, the matching
//! satisfies ε-complementary-slackness: each row's assigned value is
//! within ε of its best available value, which bounds the total cost to
//! within `n·ε` of the optimum. ε-*scaling* runs the auction in phases
//! with geometrically shrinking ε (keeping prices between phases), which
//! avoids the slow "price war" convergence a small ε would cost from a
//! cold start.
//!
//! Two properties make this the scalable replacement for the dense
//! O(n³) Hungarian solver in Algorithm 1's line 20:
//!
//! * it operates on a **sparse** arc set ([`SparseCost`]) — only the
//!   candidate servers worth considering per group need to be priced —
//!   so work scales with arcs, not `rows × cols`;
//! * prices are a reusable dual certificate: after costs change for a
//!   few rows, [`AuctionSolver::resolve_rows`] re-bids *only those rows*
//!   (plus any cascade of displaced rows) at the final ε. Untouched rows
//!   keep ε-CS — their costs are unchanged and prices only ever rise —
//!   so the repaired matching carries the same `n·ε` optimality bound as
//!   a from-scratch solve.
//!
//! The solver is deterministic: rows bid in FIFO order and ties among
//! equal-value arcs resolve to the lowest column index.

use std::collections::VecDeque;

/// Sentinel for "no row/column".
pub const UNASSIGNED: usize = usize::MAX;

/// Sparse row-to-column cost structure: each row holds its finite-cost
/// candidate arcs as `(column, cost)` pairs, sorted by column.
#[derive(Debug, Clone)]
pub struct SparseCost {
    rows: Vec<Vec<(usize, f64)>>,
    n_cols: usize,
}

impl SparseCost {
    /// Empty structure over `n_cols` columns.
    pub fn new(n_cols: usize) -> Self {
        SparseCost {
            rows: Vec::new(),
            n_cols,
        }
    }

    /// Append one row's candidate arcs. Out-of-range columns and
    /// non-finite costs are dropped; duplicate columns keep the first.
    pub fn push_row(&mut self, mut arcs: Vec<(usize, f64)>) {
        arcs.retain(|&(j, c)| j < self.n_cols && c.is_finite());
        arcs.sort_by_key(|&(j, _)| j);
        arcs.dedup_by_key(|&mut (j, _)| j);
        self.rows.push(arcs);
    }

    /// Replace the arcs of an existing row (used by incremental
    /// re-assignment when a row's costs changed).
    pub fn set_row(&mut self, row: usize, mut arcs: Vec<(usize, f64)>) {
        arcs.retain(|&(j, c)| j < self.n_cols && c.is_finite());
        arcs.sort_by_key(|&(j, _)| j);
        arcs.dedup_by_key(|&mut (j, _)| j);
        self.rows[row] = arcs;
    }

    /// Build from a dense matrix; `INFINITY` entries become missing arcs.
    pub fn from_dense(cost: &[Vec<f64>]) -> Self {
        let n_cols = cost.first().map_or(0, |r| r.len());
        let mut s = SparseCost::new(n_cols);
        for row in cost {
            s.push_row(
                row.iter()
                    .enumerate()
                    .filter(|(_, c)| c.is_finite())
                    .map(|(j, &c)| (j, c))
                    .collect(),
            );
        }
        s
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Candidate arcs of `row`.
    pub fn arcs(&self, row: usize) -> &[(usize, f64)] {
        &self.rows[row]
    }

    /// Cost of arc `(row, col)` if present.
    pub fn cost(&self, row: usize, col: usize) -> Option<f64> {
        self.rows[row]
            .iter()
            .find(|&&(j, _)| j == col)
            .map(|&(_, c)| c)
    }

    /// Largest absolute arc cost (0 when there are no arcs).
    fn cost_scale(&self) -> f64 {
        self.rows
            .iter()
            .flatten()
            .map(|&(_, c)| c.abs())
            .fold(0.0, f64::max)
    }
}

/// Failure modes of the auction. Callers treat both as "fall back to
/// the dense Hungarian solver".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuctionError {
    /// A row has no candidate arcs (or lost all of them to filtering).
    RowWithoutArcs {
        /// Offending row index.
        row: usize,
    },
    /// The bid-count safety cap was hit before every row was assigned —
    /// the sparse arc set likely admits no perfect matching.
    BidLimit {
        /// Bids spent before giving up.
        bids: usize,
    },
}

impl std::fmt::Display for AuctionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuctionError::RowWithoutArcs { row } => {
                write!(f, "auction: row {row} has no candidate arcs")
            }
            AuctionError::BidLimit { bids } => {
                write!(
                    f,
                    "auction: bid limit hit after {bids} bids (no perfect matching?)"
                )
            }
        }
    }
}

impl std::error::Error for AuctionError {}

/// Tuning knobs for the ε-scaling schedule.
#[derive(Debug, Clone, Copy)]
pub struct AuctionConfig {
    /// Relative additive optimality tolerance: the final ε is chosen so
    /// that the `n·ε` suboptimality bound is about `rel_tol` times the
    /// largest arc cost.
    pub rel_tol: f64,
    /// Geometric shrink factor of ε between scaling phases.
    pub scale_factor: f64,
    /// Safety cap on total bids per solve (and per incremental repair).
    pub max_bids: usize,
}

impl Default for AuctionConfig {
    fn default() -> Self {
        AuctionConfig {
            rel_tol: 1e-4,
            scale_factor: 5.0,
            max_bids: 2_000_000,
        }
    }
}

/// Auction state: a matching plus the dual prices that certify it.
///
/// Rectangular instances (`rows < cols`) are padded internally with
/// zero-cost *dummy rows* connected to every column, making the
/// matching perfect on columns. Without the padding, ε-scaling phases
/// can strand a stale high price on a column that ends up unassigned,
/// which silently voids the `n·ε` optimality bound; with it, both the
/// auction matching and any competitor matching pay the full column
/// price sum, so the bound's price terms cancel. Dummies contribute
/// zero cost and are invisible in [`assignment`](Self::assignment).
///
/// Keep the solver around between epochs to use [`resolve_rows`]
/// (incremental re-assignment) instead of solving from scratch.
///
/// [`resolve_rows`]: AuctionSolver::resolve_rows
#[derive(Debug, Clone)]
pub struct AuctionSolver {
    prices: Vec<f64>,
    /// Length `n_cols`: real rows `0..n_real`, then dummy rows.
    row_to_col: Vec<usize>,
    col_to_row: Vec<usize>,
    n_real: usize,
    eps_final: f64,
    scale: f64,
    max_bids: usize,
    bids: usize,
}

impl AuctionSolver {
    /// Solve the sparse assignment problem from scratch.
    ///
    /// Requires `n_rows <= n_cols`. On success every row is assigned a
    /// distinct column and the total cost is within
    /// [`optimality_gap_bound`](Self::optimality_gap_bound) of the
    /// optimum restricted to the given arcs.
    pub fn solve(sparse: &SparseCost, cfg: &AuctionConfig) -> Result<Self, AuctionError> {
        let n = sparse.n_rows();
        let m = sparse.n_cols();
        assert!(n <= m, "auction: rows {n} > cols {m}");
        let scale = sparse.cost_scale().max(1e-12);
        let eps_final = (cfg.rel_tol * scale / m.max(1) as f64).max(1e-12);
        let mut solver = AuctionSolver {
            prices: vec![0.0; m],
            row_to_col: vec![UNASSIGNED; m],
            col_to_row: vec![UNASSIGNED; m],
            n_real: n,
            eps_final,
            scale,
            max_bids: cfg.max_bids,
            bids: 0,
        };
        if n == 0 {
            return Ok(solver);
        }
        let mut eps = (scale / 4.0).max(eps_final);
        loop {
            // Each phase restarts the matching but keeps the prices —
            // that is what makes ε-scaling fast.
            solver.row_to_col.fill(UNASSIGNED);
            solver.col_to_row.fill(UNASSIGNED);
            let pending: VecDeque<usize> = (0..m).collect();
            solver.bid_until_assigned(sparse, pending, eps)?;
            if eps <= solver.eps_final {
                break;
            }
            eps = (eps / cfg.scale_factor).max(solver.eps_final);
        }
        Ok(solver)
    }

    /// Adopt an existing matching and price vector as warm-start state
    /// for incremental repricing via [`resolve_rows`](Self::resolve_rows).
    ///
    /// `assignment[i]` is the column of row `i` ([`UNASSIGNED`] allowed)
    /// and must be injective; `prices` is zero-extended to `n_cols`.
    /// Unlike [`solve`](Self::solve), no ε-complementary-slackness is
    /// assumed of the inputs, so a subsequent `resolve_rows` is a
    /// *best-effort* improvement of the touched rows (with displacement
    /// cascades) rather than a certified near-optimal solve — which is
    /// exactly what an event-driven rescheduler wants between full
    /// epoch-boundary re-optimizations.
    pub fn from_matching(
        sparse: &SparseCost,
        assignment: &[usize],
        prices: Vec<f64>,
        cfg: &AuctionConfig,
    ) -> Self {
        let n = sparse.n_rows();
        let m = sparse.n_cols();
        assert!(n <= m, "auction: rows {n} > cols {m}");
        assert_eq!(assignment.len(), n, "auction: assignment length mismatch");
        let mut p = prices;
        p.resize(m, 0.0);
        let mut row_to_col = vec![UNASSIGNED; m];
        let mut col_to_row = vec![UNASSIGNED; m];
        for (i, &j) in assignment.iter().enumerate() {
            if j == UNASSIGNED {
                continue;
            }
            assert!(j < m, "auction: column {j} out of range");
            assert!(
                col_to_row[j] == UNASSIGNED,
                "auction: column {j} assigned twice"
            );
            row_to_col[i] = j;
            col_to_row[j] = i;
        }
        let scale = sparse.cost_scale().max(1e-12);
        let eps_final = (cfg.rel_tol * scale / m.max(1) as f64).max(1e-12);
        AuctionSolver {
            prices: p,
            row_to_col,
            col_to_row,
            n_real: n,
            eps_final,
            scale,
            max_bids: cfg.max_bids,
            bids: 0,
        }
    }

    /// Re-solve only `rows` (whose costs in `sparse` may have changed)
    /// at the final ε, keeping prices and all other assignments. Rows
    /// displaced by the re-bidding cascade are re-bid too. Returns the
    /// number of bids spent. An empty `rows` slice is a no-op.
    ///
    /// Untouched rows keep ε-complementary slackness (their costs are
    /// unchanged and prices only rise), so the repaired matching has
    /// the same `n·ε` optimality bound as a fresh solve on the updated
    /// costs — provided only the listed rows' costs changed.
    pub fn resolve_rows(
        &mut self,
        sparse: &SparseCost,
        rows: &[usize],
    ) -> Result<usize, AuctionError> {
        assert_eq!(
            sparse.n_rows(),
            self.n_real,
            "auction: sparse shape changed since solve"
        );
        if rows.is_empty() {
            return Ok(0);
        }
        self.scale = sparse.cost_scale().max(1e-12);
        let mut pending: VecDeque<usize> = VecDeque::new();
        let mut queued = vec![false; self.n_real];
        for &i in rows {
            if i >= self.n_real || queued[i] {
                continue;
            }
            queued[i] = true;
            let j = self.row_to_col[i];
            if j != UNASSIGNED {
                self.col_to_row[j] = UNASSIGNED;
                self.row_to_col[i] = UNASSIGNED;
            }
            pending.push_back(i);
        }
        self.bids = 0;
        self.bid_until_assigned(sparse, pending, self.eps_final)?;
        Ok(self.bids)
    }

    /// One auction phase: bid rows from `pending` (FIFO, displaced rows
    /// re-queued) until none remain unassigned.
    fn bid_until_assigned(
        &mut self,
        sparse: &SparseCost,
        mut pending: VecDeque<usize>,
        eps: f64,
    ) -> Result<(), AuctionError> {
        while let Some(i) = pending.pop_front() {
            if self.row_to_col[i] != UNASSIGNED {
                continue;
            }
            let mut best_j = UNASSIGNED;
            let mut best_v = f64::NEG_INFINITY;
            let mut second_v = f64::NEG_INFINITY;
            if i < self.n_real {
                for &(j, c) in sparse.arcs(i) {
                    let v = -c - self.prices[j];
                    if v > best_v {
                        second_v = best_v;
                        best_v = v;
                        best_j = j;
                    } else if v > second_v {
                        second_v = v;
                    }
                }
            } else {
                // Dummy padding row: zero cost on every column.
                for (j, &p) in self.prices.iter().enumerate() {
                    let v = -p;
                    if v > best_v {
                        second_v = best_v;
                        best_v = v;
                        best_j = j;
                    } else if v > second_v {
                        second_v = v;
                    }
                }
            }
            if best_j == UNASSIGNED {
                return Err(AuctionError::RowWithoutArcs { row: i });
            }
            // Single-arc rows have no second-best; a large bump prices
            // competitors out immediately (any increment keeps ε-CS).
            let incr = if second_v.is_finite() {
                best_v - second_v + eps
            } else {
                2.0 * self.scale + eps
            };
            self.prices[best_j] += incr;
            let prev = self.col_to_row[best_j];
            if prev != UNASSIGNED {
                self.row_to_col[prev] = UNASSIGNED;
                pending.push_back(prev);
            }
            self.col_to_row[best_j] = i;
            self.row_to_col[i] = best_j;
            self.bids += 1;
            if self.bids > self.max_bids {
                return Err(AuctionError::BidLimit { bids: self.bids });
            }
        }
        Ok(())
    }

    /// Column assigned to each (real) row ([`UNASSIGNED`] never appears
    /// after a successful [`solve`](Self::solve)). Dummy padding rows
    /// are not included.
    pub fn assignment(&self) -> &[usize] {
        &self.row_to_col[..self.n_real]
    }

    /// Row owning each column, [`UNASSIGNED`] for free columns.
    pub fn column_owners(&self) -> &[usize] {
        &self.col_to_row
    }

    /// Current dual prices per column.
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// The final ε of the scaling schedule.
    pub fn eps_final(&self) -> f64 {
        self.eps_final
    }

    /// Additive bound on suboptimality: `n_cols · ε_final` (the padded
    /// square instance has `n_cols` rows).
    pub fn optimality_gap_bound(&self) -> f64 {
        self.prices.len() as f64 * self.eps_final
    }

    /// Total cost of the current matching under `sparse`. Unassigned
    /// rows, dummy rows and missing arcs contribute nothing.
    pub fn total_cost(&self, sparse: &SparseCost) -> f64 {
        self.row_to_col[..self.n_real]
            .iter()
            .enumerate()
            .filter(|&(_, &j)| j != UNASSIGNED)
            .filter_map(|(i, &j)| sparse.cost(i, j))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian::hungarian_min_cost;

    fn solve_dense(cost: &[Vec<f64>]) -> AuctionSolver {
        let sparse = SparseCost::from_dense(cost);
        AuctionSolver::solve(&sparse, &AuctionConfig::default()).unwrap()
    }

    #[test]
    fn matches_hungarian_on_classic_3x3() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let s = solve_dense(&cost);
        let sparse = SparseCost::from_dense(&cost);
        let total = s.total_cost(&sparse);
        assert!(
            total <= 5.0 + s.optimality_gap_bound() + 1e-9,
            "total {total}"
        );
    }

    #[test]
    fn assignment_is_injective() {
        let cost = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 4.0, 6.0, 8.0],
            vec![3.0, 6.0, 9.0, 12.0],
        ];
        let s = solve_dense(&cost);
        let mut cols = s.assignment().to_vec();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 3);
    }

    #[test]
    fn random_instances_stay_within_gap_of_hungarian() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        for trial in 0..40 {
            let n = rng.gen_range(1..=12);
            let m = rng.gen_range(n..=14);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let (_, opt) = hungarian_min_cost(&cost);
            let sparse = SparseCost::from_dense(&cost);
            let s = AuctionSolver::solve(&sparse, &AuctionConfig::default()).unwrap();
            let total = s.total_cost(&sparse);
            assert!(
                total <= opt + s.optimality_gap_bound() + 1e-9,
                "trial {trial}: auction {total} vs optimal {opt}"
            );
        }
    }

    #[test]
    fn forbidden_arcs_are_respected() {
        let inf = f64::INFINITY;
        let cost = vec![vec![inf, 1.0], vec![1.0, inf]];
        let sparse = SparseCost::from_dense(&cost);
        let s = AuctionSolver::solve(&sparse, &AuctionConfig::default()).unwrap();
        assert_eq!(s.assignment(), &[1, 0]);
    }

    #[test]
    fn infeasible_sparse_instance_errors_instead_of_spinning() {
        // Two rows, both restricted to the same single column.
        let mut sparse = SparseCost::new(2);
        sparse.push_row(vec![(0, 1.0)]);
        sparse.push_row(vec![(0, 2.0)]);
        let cfg = AuctionConfig {
            max_bids: 10_000,
            ..AuctionConfig::default()
        };
        assert!(AuctionSolver::solve(&sparse, &cfg).is_err());
    }

    #[test]
    fn resolve_rows_repairs_after_perturbation() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let n = 8;
        let m = 10;
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..m).map(|_| rng.gen_range(0.0..10.0)).collect())
            .collect();
        let mut sparse = SparseCost::from_dense(&cost);
        let mut s = AuctionSolver::solve(&sparse, &AuctionConfig::default()).unwrap();
        // Perturb two rows' costs and repair only those rows.
        let touched = [1usize, 5];
        let mut new_cost = cost.clone();
        for &i in &touched {
            for c in new_cost[i].iter_mut().take(m) {
                *c = rng.gen_range(0.0..10.0);
            }
            sparse.set_row(
                i,
                new_cost[i]
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| (j, c))
                    .collect(),
            );
        }
        s.resolve_rows(&sparse, &touched).unwrap();
        let (_, opt) = hungarian_min_cost(&new_cost);
        let total = s.total_cost(&sparse);
        assert!(
            total <= opt + s.optimality_gap_bound() + 1e-9,
            "repaired {total} vs optimal {opt}"
        );
        // Matching is still injective and complete.
        let mut cols = s.assignment().to_vec();
        assert!(cols.iter().all(|&j| j != UNASSIGNED));
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), n);
    }

    #[test]
    fn resolve_with_no_rows_is_a_no_op() {
        let cost = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let sparse = SparseCost::from_dense(&cost);
        let mut s = AuctionSolver::solve(&sparse, &AuctionConfig::default()).unwrap();
        let before = s.assignment().to_vec();
        let bids = s.resolve_rows(&sparse, &[]).unwrap();
        assert_eq!(bids, 0);
        assert_eq!(s.assignment(), &before[..]);
    }

    #[test]
    fn empty_instance_is_ok() {
        let sparse = SparseCost::new(3);
        let s = AuctionSolver::solve(&sparse, &AuctionConfig::default()).unwrap();
        assert!(s.assignment().is_empty());
    }
}
