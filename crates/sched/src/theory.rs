//! The paper's feasibility constraints as checkable predicates.
//!
//! * `Const1` (Eq. 6): total utilization on a server ≤ 1,
//! * `Const2` (Eq. 7): `Σ p_i ≤ gcd({T_i})` — by Theorem 1 a sufficient
//!   condition for zero delay jitter, and by Theorem 2 stronger than
//!   `Const1`,
//! * the Theorem-3 condition Algorithm 1 maintains per group.

use crate::stream::{StreamTiming, Ticks};

/// Greatest common divisor of two tick counts.
pub fn gcd(a: Ticks, b: Ticks) -> Ticks {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// gcd over a slice (0 for an empty slice).
pub fn gcd_all(values: impl IntoIterator<Item = Ticks>) -> Ticks {
    values.into_iter().fold(0, gcd)
}

/// `Const1` (Eq. 6): `Σ_i p_i / T_i ≤ 1` for the streams on one server.
pub fn const1_utilization_ok(streams: &[StreamTiming]) -> bool {
    // Exact rational comparison: Σ p_i/T_i ≤ 1  ⟺  Σ p_i · Π_{j≠i} T_j ≤ Π T_j.
    // Products overflow quickly, so use the f64 utilization with a tiny
    // tolerance — utilizations here are far from the representable edge.
    let total: f64 = streams.iter().map(|s| s.utilization()).sum();
    total <= 1.0 + 1e-12
}

/// `Const2` (Eq. 7): `Σ_i p_i ≤ gcd({T_i})` for the streams on one
/// server. By Theorem 1 this guarantees a zero-jitter static schedule.
pub fn const2_zero_jitter_ok(streams: &[StreamTiming]) -> bool {
    if streams.is_empty() {
        return true;
    }
    let g = gcd_all(streams.iter().map(|s| s.period));
    let total: Ticks = streams.iter().map(|s| s.proc).sum();
    total <= g
}

/// Theorem 3's grouping condition: (a) every period is an integer
/// multiple of the minimum period in the group, and (b) `Σ p_i ≤ T_min`.
/// Sufficient for `Const2` (and hence zero jitter + `Const1`).
pub fn theorem3_group_ok(streams: &[StreamTiming]) -> bool {
    if streams.is_empty() {
        return true;
    }
    let Some(t_min) = streams.iter().map(|s| s.period).min() else {
        return true; // unreachable: the empty group was handled above
    };
    let harmonic = streams.iter().all(|s| s.period % t_min == 0);
    let total: Ticks = streams.iter().map(|s| s.proc).sum();
    harmonic && total <= t_min
}

/// Compute the static zero-jitter offsets of Theorem 1's proof:
/// `o(τ_k) = Σ_{i<k} p_i`, valid whenever `Const2` holds. Returns `None`
/// when `Const2` fails (no such static schedule is guaranteed).
pub fn zero_jitter_offsets(streams: &[StreamTiming]) -> Option<Vec<Ticks>> {
    if !const2_zero_jitter_ok(streams) {
        return None;
    }
    let mut offsets = Vec::with_capacity(streams.len());
    let mut acc: Ticks = 0;
    for s in streams {
        offsets.push(acc);
        acc += s.proc;
    }
    Some(offsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamId;

    fn st(source: usize, period: Ticks, proc: Ticks) -> StreamTiming {
        StreamTiming::new(StreamId::source(source), period, proc)
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd_all([12, 18, 30]), 6);
        assert_eq!(gcd_all(std::iter::empty::<Ticks>()), 0);
    }

    #[test]
    fn const1_checks_utilization() {
        // 0.5 + 0.5 = 1.0 exactly: ok.
        assert!(const1_utilization_ok(&[st(0, 100, 50), st(1, 100, 50)]));
        // 0.6 + 0.5 > 1: not ok.
        assert!(!const1_utilization_ok(&[st(0, 100, 60), st(1, 100, 50)]));
        assert!(const1_utilization_ok(&[]));
    }

    #[test]
    fn const2_checks_gcd_budget() {
        // periods 100, 200 -> gcd 100; p sums 80 <= 100: ok.
        assert!(const2_zero_jitter_ok(&[st(0, 100, 50), st(1, 200, 30)]));
        // p sums 110 > 100: violates.
        assert!(!const2_zero_jitter_ok(&[st(0, 100, 60), st(1, 200, 50)]));
        // Coprime-ish periods shrink the gcd: 100 & 150 -> gcd 50.
        assert!(!const2_zero_jitter_ok(&[st(0, 100, 30), st(1, 150, 30)]));
        assert!(const2_zero_jitter_ok(&[st(0, 100, 30), st(1, 150, 20)]));
    }

    /// Theorem 2: Const2 implies Const1 — exhaustive small search.
    #[test]
    fn theorem2_const2_implies_const1() {
        let periods = [40u64, 60, 80, 120];
        let procs = [5u64, 10, 20, 35];
        let mut checked = 0;
        for &t1 in &periods {
            for &t2 in &periods {
                for &p1 in &procs {
                    for &p2 in &procs {
                        let set = [st(0, t1, p1), st(1, t2, p2)];
                        if const2_zero_jitter_ok(&set) {
                            assert!(const1_utilization_ok(&set), "{set:?}");
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert!(checked > 0, "no Const2-feasible combinations exercised");
    }

    /// Theorem 3: the grouping condition implies Const2.
    #[test]
    fn theorem3_implies_const2() {
        let base = 50u64;
        for mult in [(1u64, 2u64), (1, 3), (2, 4), (1, 1)] {
            for procs in [(10u64, 20u64), (25, 25), (5, 40)] {
                let set = [st(0, base * mult.0, procs.0), st(1, base * mult.1, procs.1)];
                if theorem3_group_ok(&set) {
                    assert!(const2_zero_jitter_ok(&set), "{set:?}");
                }
            }
        }
        // A harmonic set satisfying (a)+(b).
        let ok = [st(0, 100, 40), st(1, 200, 30), st(2, 400, 30)];
        assert!(theorem3_group_ok(&ok));
        assert!(const2_zero_jitter_ok(&ok));
        // Harmonic but budget-violating.
        let bad = [st(0, 100, 60), st(1, 200, 50)];
        assert!(!theorem3_group_ok(&bad));
    }

    #[test]
    fn theorem3_rejects_non_harmonic() {
        // 100 and 150 are both multiples of 50 but 150 % 100 != 0.
        assert!(!theorem3_group_ok(&[st(0, 100, 10), st(1, 150, 10)]));
    }

    #[test]
    fn offsets_pack_within_gcd_window() {
        let set = [st(0, 100, 30), st(1, 200, 30), st(2, 200, 40)];
        let offs = zero_jitter_offsets(&set).expect("Const2 holds");
        assert_eq!(offs, vec![0, 30, 60]);
        // Completion of the last stream fits inside the gcd window.
        let g = gcd_all(set.iter().map(|s| s.period));
        assert!(offs[2] + set[2].proc <= g);
    }

    #[test]
    fn offsets_absent_when_infeasible() {
        assert!(zero_jitter_offsets(&[st(0, 100, 80), st(1, 100, 30)]).is_none());
    }

    #[test]
    fn empty_sets_are_trivially_feasible() {
        assert!(const2_zero_jitter_ok(&[]));
        assert!(theorem3_group_ok(&[]));
        assert_eq!(zero_jitter_offsets(&[]), Some(vec![]));
    }
}
