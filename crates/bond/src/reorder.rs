//! Receiver-side reorder buffer.
//!
//! Packets striped across heterogeneous links arrive out of order; the
//! receiver must release them **in sequence**, so a packet that raced
//! ahead on a fast low-RTT link waits for its predecessors crawling up
//! the slow one. That wait is head-of-line (HoL) blocking — the
//! mechanism behind the multipath penalty — and this buffer turns
//! per-packet `(seq, arrival)` pairs into in-order release times while
//! accounting for exactly how long each packet was held.

use std::collections::BTreeMap;

/// One in-order packet release.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Release {
    /// Packet sequence number.
    pub seq: u64,
    /// When the packet physically arrived (seconds).
    pub arrival_s: f64,
    /// When the buffer released it in-order (seconds, `>= arrival_s`).
    pub release_s: f64,
}

/// An in-order release buffer over a contiguous sequence space starting
/// at 0. Feed arrivals in arrival-time order; the buffer holds
/// out-of-order packets and flushes every contiguous run as soon as the
/// gap fills.
#[derive(Debug, Clone, Default)]
pub struct ReorderBuffer {
    next_seq: u64,
    held: BTreeMap<u64, f64>,
    max_depth: usize,
}

impl ReorderBuffer {
    /// An empty buffer expecting sequence 0 first.
    pub fn new() -> Self {
        ReorderBuffer::default()
    }

    /// Offer one packet arrival. Returns the packets released by this
    /// arrival, in sequence order (possibly empty if the packet is out
    /// of order and must be held). `arrival_s` must be non-decreasing
    /// across calls — the caller feeds arrivals in time order.
    pub fn push(&mut self, seq: u64, arrival_s: f64) -> Vec<Release> {
        self.held.insert(seq, arrival_s);
        self.max_depth = self.max_depth.max(self.held.len());
        let mut out = Vec::new();
        while let Some(held_arrival) = self.held.remove(&self.next_seq) {
            out.push(Release {
                seq: self.next_seq,
                arrival_s: held_arrival,
                // Everything in a flushed run releases at the arrival
                // instant that completed the run.
                release_s: arrival_s,
            });
            self.next_seq += 1;
        }
        out
    }

    /// Deepest the buffer ever got (held packets), a direct HoL gauge.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Packets still held (non-zero only if the sequence has gaps).
    pub fn pending(&self) -> usize {
        self.held.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_arrivals_release_immediately() {
        let mut rb = ReorderBuffer::new();
        for seq in 0..5u64 {
            let t = seq as f64 * 0.01;
            let rel = rb.push(seq, t);
            assert_eq!(rel.len(), 1);
            assert_eq!(rel[0].seq, seq);
            assert_eq!(rel[0].release_s, t);
            assert_eq!(rel[0].arrival_s, t);
        }
        assert_eq!(rb.max_depth(), 1);
        assert_eq!(rb.pending(), 0);
    }

    #[test]
    fn out_of_order_packet_waits_for_the_gap() {
        let mut rb = ReorderBuffer::new();
        // seq 1 and 2 race ahead; seq 0 crawls in last.
        assert!(rb.push(1, 0.010).is_empty());
        assert!(rb.push(2, 0.012).is_empty());
        let rel = rb.push(0, 0.150);
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        // All three release when the straggler lands.
        assert!(rel.iter().all(|r| r.release_s == 0.150));
        // Held packets kept their true arrival stamps.
        assert_eq!(rel[1].arrival_s, 0.010);
        assert_eq!(rb.max_depth(), 3);
        assert_eq!(rb.pending(), 0);
    }

    #[test]
    fn partial_flush_keeps_later_gaps() {
        let mut rb = ReorderBuffer::new();
        assert!(rb.push(2, 0.01).is_empty());
        let rel = rb.push(0, 0.02);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel[0].seq, 0);
        assert_eq!(rb.pending(), 1); // seq 2 still waits for 1
        let rel = rb.push(1, 0.03);
        assert_eq!(rel.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(rb.pending(), 0);
    }

    #[test]
    fn releases_never_precede_arrivals() {
        let mut rb = ReorderBuffer::new();
        let arrivals = [(3u64, 0.01), (1, 0.02), (0, 0.05), (2, 0.06), (4, 0.06)];
        let mut all = Vec::new();
        for (seq, t) in arrivals {
            all.extend(rb.push(seq, t));
        }
        assert_eq!(all.len(), 5);
        for r in &all {
            assert!(r.release_s >= r.arrival_s, "{r:?}");
        }
        // Release times are non-decreasing in sequence order.
        for w in all.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
            assert!(w[1].release_s >= w[0].release_s);
        }
    }
}
