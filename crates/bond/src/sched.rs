//! Packet-striping schedulers.
//!
//! A bundle's sender decides, packet by packet, which member link
//! carries the next packet. The scheduler sees only *beliefs* — each
//! link's estimated delivery rate (from the per-link
//! [`LinkEstimator`](eva_net::LinkEstimator)s), its currently queued
//! bits this frame, and its base RTT — never the true trace rate, so a
//! stale or degraded belief steers real packets onto the wrong link
//! exactly as it would in a deployment.
//!
//! Three variants span the design space the strata reports describe:
//!
//! * [`RoundRobin`] — the naïve striper: ignores everything, deals
//!   packets in rotation. Under heterogeneous RTTs this is the
//!   multipath-penalty generator: every n-th packet crawls up the slow
//!   link and head-of-line blocks the reorder buffer.
//! * [`RateWeighted`] — queue-aware rate weighting: place the packet on
//!   the link whose queue drains soonest (`(queued + pkt) / rate`). In
//!   aggregate this splits bits proportionally to believed delivery
//!   rates, but it is still RTT-blind.
//! * [`EarliestDelivery`] — HoL-aware: place the packet where it
//!   *arrives* soonest (`(queued + pkt) / rate + rtt/2`). A slow
//!   high-RTT link only receives a packet when even its one-way delay
//!   beats the fast links' queueing backlog — the water-filling rule
//!   that recovers (and exceeds) best-single-link delivery.

/// What a scheduler may observe about one member link when placing a
/// packet: beliefs and local queue state, not ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSnapshot {
    /// Believed delivery rate (bits/s) — estimator output, falling back
    /// to the model's nominal rate before any observation.
    pub rate_bps: f64,
    /// Bits already queued on this link for the current frame.
    pub queued_bits: f64,
    /// Base round-trip time (seconds); one-way delay is `rtt_s / 2`.
    pub rtt_s: f64,
}

impl LinkSnapshot {
    /// Seconds until a packet of `pkt_bits` finishes serializing behind
    /// the current queue.
    fn drain_s(&self, pkt_bits: f64) -> f64 {
        (self.queued_bits + pkt_bits) / self.rate_bps.max(f64::MIN_POSITIVE)
    }

    /// Seconds until that packet *arrives* at the receiver.
    fn arrival_s(&self, pkt_bits: f64) -> f64 {
        self.drain_s(pkt_bits) + self.rtt_s * 0.5
    }
}

/// A packet-striping policy: pick the member link for the next packet.
pub trait BondScheduler: Send {
    /// Stable display name (for tables and JSON results).
    fn name(&self) -> &'static str;

    /// Choose the index of the link to carry a `pkt_bits`-sized packet,
    /// given one snapshot per member. `links` is never empty; the
    /// return value must be `< links.len()`. Ties break toward the
    /// lowest index, so placement is deterministic.
    fn pick(&mut self, pkt_bits: f64, links: &[LinkSnapshot]) -> usize;

    /// Clone behind the trait object (bundles are cloned per stream
    /// split part).
    fn clone_box(&self) -> Box<dyn BondScheduler>;
}

impl Clone for Box<dyn BondScheduler> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Deal packets in rotation, blind to rates, queues and RTTs.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl BondScheduler for RoundRobin {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn pick(&mut self, _pkt_bits: f64, links: &[LinkSnapshot]) -> usize {
        let idx = self.next % links.len();
        self.next = (self.next + 1) % links.len();
        idx
    }

    fn clone_box(&self) -> Box<dyn BondScheduler> {
        Box::new(self.clone())
    }
}

/// Queue-aware rate weighting: shortest believed drain time wins.
#[derive(Debug, Clone, Default)]
pub struct RateWeighted;

impl BondScheduler for RateWeighted {
    fn name(&self) -> &'static str {
        "rate_weighted"
    }

    fn pick(&mut self, pkt_bits: f64, links: &[LinkSnapshot]) -> usize {
        argmin_by(links, |l| l.drain_s(pkt_bits))
    }

    fn clone_box(&self) -> Box<dyn BondScheduler> {
        Box::new(self.clone())
    }
}

/// HoL-aware earliest-delivery-first: soonest believed *arrival* wins.
#[derive(Debug, Clone, Default)]
pub struct EarliestDelivery;

impl BondScheduler for EarliestDelivery {
    fn name(&self) -> &'static str {
        "earliest_delivery"
    }

    fn pick(&mut self, pkt_bits: f64, links: &[LinkSnapshot]) -> usize {
        argmin_by(links, |l| l.arrival_s(pkt_bits))
    }

    fn clone_box(&self) -> Box<dyn BondScheduler> {
        Box::new(self.clone())
    }
}

/// Index of the smallest key; first index wins ties (deterministic).
fn argmin_by(links: &[LinkSnapshot], key: impl Fn(&LinkSnapshot) -> f64) -> usize {
    let mut best = 0;
    let mut best_key = f64::INFINITY;
    for (i, l) in links.iter().enumerate() {
        let k = key(l);
        if k < best_key {
            best = i;
            best_key = k;
        }
    }
    best
}

/// The scheduler menu as a plain value — what scenarios, experiments
/// and JSON configs name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BondPolicy {
    /// Naïve rotation ([`RoundRobin`]).
    RoundRobin,
    /// Queue-aware rate weighting ([`RateWeighted`]).
    RateWeighted,
    /// HoL-aware earliest delivery ([`EarliestDelivery`]) — default.
    #[default]
    EarliestDelivery,
}

impl BondPolicy {
    /// Instantiate the scheduler.
    pub fn scheduler(self) -> Box<dyn BondScheduler> {
        match self {
            BondPolicy::RoundRobin => Box::new(RoundRobin::default()),
            BondPolicy::RateWeighted => Box::new(RateWeighted),
            BondPolicy::EarliestDelivery => Box::new(EarliestDelivery),
        }
    }

    /// Stable name (matches the scheduler's `name()`).
    pub fn as_str(self) -> &'static str {
        match self {
            BondPolicy::RoundRobin => "round_robin",
            BondPolicy::RateWeighted => "rate_weighted",
            BondPolicy::EarliestDelivery => "earliest_delivery",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(rate_bps: f64, queued_bits: f64, rtt_s: f64) -> LinkSnapshot {
        LinkSnapshot {
            rate_bps,
            queued_bits,
            rtt_s,
        }
    }

    #[test]
    fn round_robin_rotates() {
        let links = vec![snap(1e6, 0.0, 0.0); 3];
        let mut rr = RoundRobin::default();
        let picks: Vec<usize> = (0..7).map(|_| rr.pick(1e4, &links)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn rate_weighted_prefers_fast_then_balances() {
        let mut links = vec![snap(10e6, 0.0, 0.0), snap(5e6, 0.0, 0.0)];
        let mut rw = RateWeighted;
        let mut counts = [0usize; 2];
        for _ in 0..30 {
            let i = rw.pick(1e4, &links);
            links[i].queued_bits += 1e4;
            counts[i] += 1;
        }
        // 2:1 rate split → 2:1 packet split.
        assert_eq!(counts, [20, 10]);
    }

    #[test]
    fn earliest_delivery_skips_high_rtt_until_backlog_justifies_it() {
        // Fast link: 10 Mbps, 10 ms RTT. Slow link: 10 Mbps, 200 ms RTT.
        // Same rate — only RTT differs, so EDF uses the far link only
        // once the near queue exceeds the RTT gap (95 ms ≙ 950 kbit).
        let mut links = vec![snap(10e6, 0.0, 0.010), snap(10e6, 0.0, 0.200)];
        let mut edf = EarliestDelivery;
        let pkt = 12_000.0;
        let mut first_far = None;
        for k in 0..120 {
            let i = edf.pick(pkt, &links);
            links[i].queued_bits += pkt;
            if i == 1 && first_far.is_none() {
                first_far = Some(k);
            }
        }
        let first_far = first_far.unwrap_or(usize::MAX);
        // 950 kbit backlog / 12 kbit packets ≈ packet 80.
        assert!(
            (75..=85).contains(&first_far),
            "far link first used at packet {first_far}"
        );
        // RateWeighted, RTT-blind, would have alternated from the start.
        let mut rw = RateWeighted;
        assert_eq!(
            rw.pick(pkt, &[snap(10e6, 0.0, 0.010), snap(10e6, 0.0, 0.200)]),
            0
        );
        assert_eq!(
            rw.pick(pkt, &[snap(10e6, pkt, 0.010), snap(10e6, 0.0, 0.200)]),
            1
        );
    }

    #[test]
    fn ties_break_low_index_deterministically() {
        let links = vec![snap(10e6, 0.0, 0.01); 4];
        assert_eq!(RateWeighted.pick(1e4, &links), 0);
        assert_eq!(EarliestDelivery.pick(1e4, &links), 0);
    }

    #[test]
    fn policies_roundtrip_names() {
        for p in [
            BondPolicy::RoundRobin,
            BondPolicy::RateWeighted,
            BondPolicy::EarliestDelivery,
        ] {
            assert_eq!(p.scheduler().name(), p.as_str());
        }
        assert_eq!(BondPolicy::default(), BondPolicy::EarliestDelivery);
    }

    #[test]
    fn boxed_scheduler_clones() {
        let mut rr: Box<dyn BondScheduler> = Box::new(RoundRobin::default());
        let links = vec![snap(1e6, 0.0, 0.0); 2];
        let _ = rr.pick(1e4, &links);
        let mut cloned = rr.clone();
        // Clone carries the rotation state along.
        assert_eq!(cloned.pick(1e4, &links), rr.pick(1e4, &links));
    }
}
