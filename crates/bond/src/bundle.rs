//! Link bundles: a camera's set of heterogeneous uplinks and the
//! packet-level delivery model that turns them into one frame-delivery
//! time.
//!
//! A [`LinkBundle`] is the *description*: per-member
//! [`LinkModel`] + base RTT, plus the MTU-sized packet quantum. It
//! answers the planner's questions analytically —
//! [`LinkBundle::effective_rate_bps`] is the bonded rate a scheduler
//! should believe under each [`BondPolicy`], the quantity Algorithm-1,
//! JCAB, FACT and the BO sampler consume as the camera's Eq. 5 `B`.
//!
//! A [`BundleSim`] is the *materialization*: per-member traces, per-link
//! BBR-style estimators feeding the striping scheduler's beliefs, and a
//! receiver [`ReorderBuffer`] converting per-packet arrivals into the
//! in-order frame delivery instant the DES charges. Scheduling runs on
//! believed rates, physics on the true trace rates — the same
//! belief/truth split the rest of the system observes.
//!
//! Queueing state is per-frame (queues drain between frames), matching
//! the DES's quasi-static per-frame link model; estimator and
//! round-robin state persist across frames.

use eva_net::{LinkEstimator, LinkModel, LinkTrace, MaxFilterEstimator};
use eva_sched::Ticks;

use crate::reorder::ReorderBuffer;
use crate::sched::{BondPolicy, BondScheduler, LinkSnapshot};

/// Default packet quantum: 1500-byte MTU = 12 kbit.
pub const DEFAULT_PACKET_BITS: f64 = 12_000.0;

/// One member of a bundle: a time-varying rate process plus the base
/// round-trip time of the path (one-way delay is `rtt_s / 2`).
#[derive(Debug, Clone, PartialEq)]
pub struct BondedLink {
    /// The link's rate process.
    pub model: LinkModel,
    /// Base RTT (seconds, ≥ 0); propagation only, queueing is modeled.
    pub rtt_s: f64,
}

impl BondedLink {
    /// A bonded member from a model and base RTT.
    pub fn new(model: LinkModel, rtt_s: f64) -> Self {
        assert!(
            rtt_s.is_finite() && rtt_s >= 0.0,
            "BondedLink: rtt must be finite and non-negative"
        );
        BondedLink { model, rtt_s }
    }

    /// One-way delay (seconds).
    pub fn owd_s(&self) -> f64 {
        self.rtt_s * 0.5
    }
}

/// A camera's bonded uplink: 1–6 heterogeneous member links striped at
/// packet granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkBundle {
    links: Vec<BondedLink>,
    packet_bits: f64,
}

impl LinkBundle {
    /// A bundle over the given members with the default MTU quantum.
    pub fn new(links: Vec<BondedLink>) -> Self {
        assert!(!links.is_empty(), "LinkBundle: need at least one link");
        LinkBundle {
            links,
            packet_bits: DEFAULT_PACKET_BITS,
        }
    }

    /// A single-link bundle — the degenerate case that must behave
    /// bit-identically to the unbonded path when `rtt_s == 0`.
    pub fn single(model: LinkModel, rtt_s: f64) -> Self {
        LinkBundle::new(vec![BondedLink::new(model, rtt_s)])
    }

    /// Override the packet quantum (bits per packet, > 0).
    pub fn with_packet_bits(mut self, packet_bits: f64) -> Self {
        assert!(
            packet_bits.is_finite() && packet_bits > 0.0,
            "LinkBundle: packet_bits must be finite and positive"
        );
        self.packet_bits = packet_bits;
        self
    }

    /// The member links.
    pub fn links(&self) -> &[BondedLink] {
        &self.links
    }

    /// Number of member links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Never true: [`LinkBundle::new`] rejects empty bundles.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Whether the bundle is a degenerate single link.
    pub fn is_single(&self) -> bool {
        self.links.len() == 1
    }

    /// The packet quantum (bits).
    pub fn packet_bits(&self) -> f64 {
        self.packet_bits
    }

    /// Sum of member nominal rates — the ceiling no striping policy can
    /// beat.
    pub fn nominal_sum_bps(&self) -> f64 {
        self.links.iter().map(|l| l.model.nominal_bps()).sum()
    }

    /// Effective rate of the *best single member* for a reference frame
    /// of `frame_bits`: the whole frame rides one link, so delivery
    /// takes `F/r + owd` and the effective rate is `F` over that.
    pub fn best_single_rate_bps(&self, frame_bits: f64) -> f64 {
        assert!(
            frame_bits > 0.0,
            "best_single_rate_bps: need frame_bits > 0"
        );
        self.links
            .iter()
            .map(|l| {
                let t = frame_bits / l.model.nominal_bps() + l.owd_s();
                frame_bits / t
            })
            .fold(0.0, f64::max)
    }

    /// The bonded *effective* rate under `policy` for a reference frame
    /// of `frame_bits` — the planning belief. RTT makes this
    /// frame-size-dependent: the one-way delay is additive, so small
    /// frames amortize it worse.
    ///
    /// Analytic fluid model on nominal rates, one frame in isolation:
    ///
    /// * round-robin splits bits evenly, so the frame completes when
    ///   the *slowest* member finishes its equal share:
    ///   `T = max_l (F/(n·r_l) + owd_l)` — the multipath penalty in
    ///   closed form (a slow far link drags the whole frame);
    /// * rate-weighted splits bits ∝ rate, equalizing serialization:
    ///   `T = F/Σr + max_l owd_l` — rate-optimal but still paying the
    ///   worst member's delay;
    /// * earliest-delivery water-fills: members join in one-way-delay
    ///   order while their delay beats the completion time, and bits
    ///   equalize *arrival* across the chosen set `S`:
    ///   `T = (F + Σ_{l∈S} r_l·owd_l) / Σ_{l∈S} r_l`, minimized over
    ///   feasible prefixes. This is ≥ every member's owd by
    ///   construction, and degrades to best-single when the fast link
    ///   alone wins.
    pub fn effective_rate_bps(&self, policy: BondPolicy, frame_bits: f64) -> f64 {
        assert!(frame_bits > 0.0, "effective_rate_bps: need frame_bits > 0");
        let n = self.links.len() as f64;
        let completion_s = match policy {
            BondPolicy::RoundRobin => self
                .links
                .iter()
                .map(|l| frame_bits / (n * l.model.nominal_bps()) + l.owd_s())
                .fold(0.0, f64::max),
            BondPolicy::RateWeighted => {
                let sum_r: f64 = self.links.iter().map(|l| l.model.nominal_bps()).sum();
                let max_owd = self.links.iter().map(BondedLink::owd_s).fold(0.0, f64::max);
                frame_bits / sum_r + max_owd
            }
            BondPolicy::EarliestDelivery => {
                // Sort members by one-way delay, then scan prefixes.
                let mut by_owd: Vec<(f64, f64)> = self
                    .links
                    .iter()
                    .map(|l| (l.owd_s(), l.model.nominal_bps()))
                    .collect();
                by_owd.sort_by(|a, b| a.0.total_cmp(&b.0));
                let mut sum_r = 0.0;
                let mut sum_r_owd = 0.0;
                let mut best = f64::INFINITY;
                for &(owd, r) in &by_owd {
                    sum_r += r;
                    sum_r_owd += r * owd;
                    let t = (frame_bits + sum_r_owd) / sum_r;
                    // Feasible iff every included member can receive
                    // non-negative bits, i.e. T ≥ its owd; owds are
                    // sorted, so checking the newest suffices.
                    if t >= owd {
                        best = best.min(t);
                    }
                }
                best
            }
        };
        frame_bits / completion_s
    }

    /// The same bundle with member `idx`'s rate process scaled by
    /// `factor` — how a `ChaosSpec`-style link collapse degrades one
    /// member without zeroing the camera.
    pub fn scaled_link(&self, idx: usize, factor: f64) -> Self {
        assert!(idx < self.links.len(), "scaled_link: index out of range");
        let mut links = self.links.clone();
        links[idx] = BondedLink {
            model: links[idx].model.scaled(factor),
            rtt_s: links[idx].rtt_s,
        };
        LinkBundle {
            links,
            packet_bits: self.packet_bits,
        }
    }

    /// Materialize the bundle over `[0, horizon)` ticks as a stateful
    /// per-camera simulator striping with `policy`.
    pub fn simulator(&self, horizon: Ticks, policy: BondPolicy) -> BundleSim {
        BundleSim {
            members: self
                .links
                .iter()
                .map(|l| MemberState {
                    trace: l.model.trace(horizon),
                    rtt_s: l.rtt_s,
                    nominal_bps: l.model.nominal_bps(),
                    estimator: MaxFilterEstimator::default(),
                    delivered_bits: 0.0,
                    delivered_packets: 0,
                })
                .collect(),
            scheduler: policy.scheduler(),
            packet_bits: self.packet_bits,
            frames: 0,
            packets: 0,
            hol_wait_s_total: 0.0,
            max_reorder_depth: 0,
        }
    }
}

/// One materialized member inside a [`BundleSim`].
#[derive(Debug, Clone)]
struct MemberState {
    trace: LinkTrace,
    rtt_s: f64,
    nominal_bps: f64,
    estimator: MaxFilterEstimator,
    delivered_bits: f64,
    delivered_packets: u64,
}

impl MemberState {
    /// What the scheduler believes this link delivers (bits/s):
    /// estimator output, nominal before any observation.
    fn believed_bps(&self) -> f64 {
        self.estimator.estimate_bps().unwrap_or(self.nominal_bps)
    }
}

/// The outcome of delivering one frame through a bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameDelivery {
    /// Generation-to-in-order-delivery time (seconds): when the last
    /// packet clears the reorder buffer.
    pub delay_s: f64,
    /// Pure serialization component: the slowest member's queue-drain
    /// time (seconds), before propagation delay.
    pub serialization_s: f64,
    /// Bits each member carried for this frame.
    pub per_link_bits: Vec<f64>,
    /// Packets the frame was striped into.
    pub packets: u64,
    /// Total time packets spent held in the reorder buffer (seconds) —
    /// the frame's HoL-blocking bill.
    pub hol_wait_s: f64,
    /// Deepest the reorder buffer got during this frame.
    pub max_reorder_depth: usize,
}

/// A stateful bonded-uplink simulator for one camera: true per-member
/// traces drive physics, per-member estimators drive the scheduler's
/// beliefs, and a reorder buffer produces the in-order delivery time.
#[derive(Clone)]
pub struct BundleSim {
    members: Vec<MemberState>,
    scheduler: Box<dyn BondScheduler>,
    packet_bits: f64,
    frames: u64,
    packets: u64,
    hol_wait_s_total: f64,
    max_reorder_depth: usize,
}

impl std::fmt::Debug for BundleSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BundleSim")
            .field("links", &self.members.len())
            .field("policy", &self.scheduler.name())
            .field("frames", &self.frames)
            .field("packets", &self.packets)
            .finish()
    }
}

impl BundleSim {
    /// Deliver one frame of `bits` generated at tick `t`.
    ///
    /// Single-member bundles with zero RTT take a dedicated fast path
    /// computing `bits / rate_at(t)` in one division — the *same*
    /// floating-point expression as the unbonded DES link path, which
    /// keeps the degenerate bundle bit-identical to it (striping would
    /// re-associate the division into `Σ pktᵢ/r` and drift by ulps).
    pub fn frame_delivery(&mut self, t: Ticks, bits: f64) -> FrameDelivery {
        assert!(
            bits.is_finite() && bits > 0.0,
            "frame_delivery: need finite positive bits"
        );
        self.frames += 1;
        if self.members.len() == 1 {
            let m = &mut self.members[0];
            let rate = m.trace.rate_at(t);
            let serialization_s = bits / rate;
            let delay_s = serialization_s + m.rtt_s * 0.5;
            m.estimator.observe(bits / 8.0, serialization_s);
            m.delivered_bits += bits;
            m.delivered_packets += 1;
            self.packets += 1;
            return FrameDelivery {
                delay_s,
                serialization_s,
                per_link_bits: vec![bits],
                packets: 1,
                hol_wait_s: 0.0,
                max_reorder_depth: 1,
            };
        }
        self.striped_delivery(t, bits)
    }

    /// The general multi-link path: packetize, stripe on beliefs, fly
    /// on truth, reorder at the receiver.
    fn striped_delivery(&mut self, t: Ticks, bits: f64) -> FrameDelivery {
        let n = self.members.len();
        let n_pkts = (bits / self.packet_bits).ceil().max(1.0) as u64;
        let true_rates: Vec<f64> = self.members.iter().map(|m| m.trace.rate_at(t)).collect();
        let mut snaps: Vec<LinkSnapshot> = self
            .members
            .iter()
            .map(|m| LinkSnapshot {
                rate_bps: m.believed_bps(),
                queued_bits: 0.0,
                rtt_s: m.rtt_s,
            })
            .collect();

        // Stripe: the scheduler sees believed rates and this frame's
        // queue build-up; each packet's true arrival is its link-local
        // cumulative serialization (on the true rate) plus one-way
        // delay.
        let mut per_link_bits = vec![0.0_f64; n];
        let mut arrivals: Vec<(f64, u64)> = Vec::with_capacity(n_pkts as usize);
        let mut remaining = bits;
        for seq in 0..n_pkts {
            let pkt = remaining.min(self.packet_bits);
            remaining -= pkt;
            let idx = self.scheduler.pick(pkt, &snaps);
            debug_assert!(idx < n, "scheduler returned out-of-range link");
            let idx = idx.min(n - 1);
            snaps[idx].queued_bits += pkt;
            per_link_bits[idx] += pkt;
            let arrival = per_link_bits[idx] / true_rates[idx] + self.members[idx].rtt_s * 0.5;
            arrivals.push((arrival, seq));
            self.members[idx].delivered_packets += 1;
        }

        // Receiver: feed the reorder buffer in arrival order (sequence
        // breaks exact ties so the feed is deterministic).
        arrivals.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut rb = ReorderBuffer::new();
        let mut delay_s = 0.0_f64;
        let mut hol_wait_s = 0.0_f64;
        for &(arrival, seq) in &arrivals {
            for rel in rb.push(seq, arrival) {
                hol_wait_s += rel.release_s - rel.arrival_s;
                delay_s = delay_s.max(rel.release_s);
            }
        }
        debug_assert_eq!(rb.pending(), 0, "reorder buffer drained");

        // Book-keeping and estimator feedback: each used member saw
        // `per_link_bits` delivered over its true serialization time.
        let mut serialization_s = 0.0_f64;
        for (i, m) in self.members.iter_mut().enumerate() {
            if per_link_bits[i] > 0.0 {
                let ser = per_link_bits[i] / true_rates[i];
                serialization_s = serialization_s.max(ser);
                m.estimator.observe(per_link_bits[i] / 8.0, ser);
                m.delivered_bits += per_link_bits[i];
            }
        }
        self.packets += n_pkts;
        self.hol_wait_s_total += hol_wait_s;
        self.max_reorder_depth = self.max_reorder_depth.max(rb.max_depth());

        FrameDelivery {
            delay_s,
            serialization_s,
            per_link_bits,
            packets: n_pkts,
            hol_wait_s,
            max_reorder_depth: rb.max_depth(),
        }
    }

    /// Number of member links.
    pub fn n_links(&self) -> usize {
        self.members.len()
    }

    /// The striping policy's stable name.
    pub fn policy_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Frames delivered so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Packets striped so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Cumulative HoL wait across all frames (seconds).
    pub fn hol_wait_s_total(&self) -> f64 {
        self.hol_wait_s_total
    }

    /// Deepest reorder-buffer depth seen across all frames.
    pub fn max_reorder_depth(&self) -> usize {
        self.max_reorder_depth
    }

    /// Bits delivered per member so far.
    pub fn delivered_bits(&self) -> Vec<f64> {
        self.members.iter().map(|m| m.delivered_bits).collect()
    }

    /// Packets delivered per member so far.
    pub fn delivered_packets(&self) -> Vec<u64> {
        self.members.iter().map(|m| m.delivered_packets).collect()
    }

    /// What the scheduler currently believes each member delivers
    /// (bits/s) — estimator output, nominal before any observation.
    pub fn believed_rates_bps(&self) -> Vec<f64> {
        self.members.iter().map(MemberState::believed_bps).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_sched::TICKS_PER_SEC;

    const HORIZON: Ticks = 60 * TICKS_PER_SEC;

    /// The ext_multipath-style heterogeneous trio (rate bps, rtt s).
    fn trio() -> LinkBundle {
        LinkBundle::new(vec![
            BondedLink::new(LinkModel::constant(12e6), 0.030),
            BondedLink::new(LinkModel::constant(8e6), 0.080),
            BondedLink::new(LinkModel::constant(5e6), 0.200),
        ])
    }

    #[test]
    fn analytic_rates_reproduce_penalty_and_recovery() {
        let b = trio();
        let frame = 5e5; // 500 kbit reference frame
        let rr = b.effective_rate_bps(BondPolicy::RoundRobin, frame);
        let rw = b.effective_rate_bps(BondPolicy::RateWeighted, frame);
        let edf = b.effective_rate_bps(BondPolicy::EarliestDelivery, frame);
        let single = b.best_single_rate_bps(frame);
        // RR: T = max(F/3r + owd) = F/(3·5e6) + 0.1 = 0.1333 s → 3.75 Mbps.
        assert!((rr - frame / (frame / 15e6 + 0.1)).abs() < 1.0, "rr {rr}");
        // The multipath penalty: naïve striping loses to best single.
        assert!(rr < single, "penalty missing: rr {rr} vs single {single}");
        // Recovery: EDF beats every other policy and the best single.
        assert!(edf >= single, "edf {edf} < single {single}");
        assert!(edf >= rw && edf >= rr);
        // And nothing beats the capacity sum.
        for r in [rr, rw, edf, single] {
            assert!(r <= b.nominal_sum_bps() + 1e-9);
        }
    }

    #[test]
    fn edf_water_filling_excludes_links_too_far_to_help() {
        // A tiny frame on a fast near link: the 200 ms member cannot
        // possibly contribute before the frame is done.
        let b = LinkBundle::new(vec![
            BondedLink::new(LinkModel::constant(40e6), 0.010),
            BondedLink::new(LinkModel::constant(40e6), 0.400),
        ]);
        let frame = 1e5; // 2.5 ms serialization on the near link
        let edf = b.effective_rate_bps(BondPolicy::EarliestDelivery, frame);
        let single = b.best_single_rate_bps(frame);
        assert!(
            (edf - single).abs() / single < 1e-9,
            "edf should degrade to best single"
        );
        // Round-robin pays 200 ms of owd for half the bits.
        let rr = b.effective_rate_bps(BondPolicy::RoundRobin, frame);
        assert!(rr < 0.05 * single, "rr {rr} vs single {single}");
    }

    #[test]
    fn zero_rtt_identical_links_bond_to_the_sum() {
        let b = LinkBundle::new(vec![
            BondedLink::new(LinkModel::constant(10e6), 0.0),
            BondedLink::new(LinkModel::constant(10e6), 0.0),
        ]);
        for p in [
            BondPolicy::RoundRobin,
            BondPolicy::RateWeighted,
            BondPolicy::EarliestDelivery,
        ] {
            let r = b.effective_rate_bps(p, 5e5);
            assert!((r - 20e6).abs() < 1e-6, "{p:?}: {r}");
        }
    }

    #[test]
    fn simulated_delivery_tracks_the_analytic_model() {
        let b = trio();
        let frame = 5e5;
        for (policy, tol) in [
            (BondPolicy::RoundRobin, 0.05),
            (BondPolicy::RateWeighted, 0.05),
            (BondPolicy::EarliestDelivery, 0.05),
        ] {
            let mut sim = b.simulator(HORIZON, policy);
            // Warm the estimators, then measure.
            for k in 0..5 {
                let _ = sim.frame_delivery(k * TICKS_PER_SEC, frame);
            }
            let d = sim.frame_delivery(10 * TICKS_PER_SEC, frame);
            let analytic_t = frame / b.effective_rate_bps(policy, frame);
            let rel = (d.delay_s - analytic_t).abs() / analytic_t;
            assert!(
                rel < tol,
                "{policy:?}: sim {} vs analytic {analytic_t} (rel {rel})",
                d.delay_s
            );
            // All bits accounted for.
            let total: f64 = d.per_link_bits.iter().sum();
            assert!((total - frame).abs() < 1e-6);
        }
    }

    #[test]
    fn round_robin_hol_blocks_and_edf_does_not() {
        let b = trio();
        let mut rr = b.simulator(HORIZON, BondPolicy::RoundRobin);
        let mut edf = b.simulator(HORIZON, BondPolicy::EarliestDelivery);
        for k in 0..10 {
            let _ = rr.frame_delivery(k * TICKS_PER_SEC, 5e5);
            let _ = edf.frame_delivery(k * TICKS_PER_SEC, 5e5);
        }
        assert!(
            rr.hol_wait_s_total() > 10.0 * edf.hol_wait_s_total().max(1e-12),
            "rr hol {} vs edf hol {}",
            rr.hol_wait_s_total(),
            edf.hol_wait_s_total()
        );
        assert!(rr.max_reorder_depth() > edf.max_reorder_depth());
    }

    #[test]
    fn single_link_fast_path_is_one_division() {
        let model = LinkModel::gilbert_elliott(25e6, 8e6, 3.0, 1.5, 42);
        let trace = model.trace(HORIZON);
        let mut sim = LinkBundle::single(model, 0.0).simulator(HORIZON, BondPolicy::default());
        for t in [0, 12_345, 5 * TICKS_PER_SEC, HORIZON - 1] {
            let bits = 3.7e5;
            let d = sim.frame_delivery(t, bits);
            // Bit-exact: the same expression the DES link path computes.
            assert_eq!(d.delay_s.to_bits(), (bits / trace.rate_at(t)).to_bits());
            assert_eq!(d.packets, 1);
            assert_eq!(d.hol_wait_s, 0.0);
        }
    }

    #[test]
    fn scaled_link_degrades_one_member_only() {
        let b = trio();
        let collapsed = b.scaled_link(0, 0.25);
        assert!((collapsed.links()[0].model.nominal_bps() - 3e6).abs() < 1.0);
        assert_eq!(collapsed.links()[1], b.links()[1]);
        assert_eq!(collapsed.links()[2], b.links()[2]);
        let before = b.effective_rate_bps(BondPolicy::EarliestDelivery, 5e5);
        let after = collapsed.effective_rate_bps(BondPolicy::EarliestDelivery, 5e5);
        assert!(after < before, "collapse must degrade the bonded rate");
        assert!(after > 0.0, "but never zero the camera");
    }

    #[test]
    fn estimators_steer_the_scheduler_after_collapse() {
        // Link 0 is 5× slower than link 1; once the per-frame
        // observations converge the EDF striper must route the
        // supermajority of bits onto the fast member.
        let b = LinkBundle::new(vec![
            BondedLink::new(LinkModel::constant(2e6), 0.020),
            BondedLink::new(LinkModel::constant(10e6), 0.020),
        ]);
        let mut sim = b.simulator(HORIZON, BondPolicy::EarliestDelivery);
        for k in 0..20 {
            let _ = sim.frame_delivery(k * TICKS_PER_SEC, 5e5);
        }
        let share = sim.delivered_bits();
        let total: f64 = share.iter().sum();
        // The fast link should carry the supermajority once beliefs
        // converge on the truth.
        assert!(
            share[1] / total > 0.75,
            "fast-link share {}",
            share[1] / total
        );
        let believed = sim.believed_rates_bps();
        assert!((believed[0] - 2e6).abs() / 2e6 < 0.05);
        assert!((believed[1] - 10e6).abs() / 10e6 < 0.05);
    }
}
