//! Bonded multipath uplinks for edge video analytics.
//!
//! Real edge cameras rarely ride one radio: deployments bond 2–6
//! heterogeneous cellular/WiFi links (strata-style) and stripe each
//! frame's packets across them. Done naïvely this *hurts* — the
//! "multipath penalty": a slow high-RTT member head-of-line blocks the
//! receiver's reorder buffer until bonded goodput falls below the best
//! single link. Done well (HoL-aware earliest-delivery striping) the
//! bundle beats every member.
//!
//! This crate supplies the three layers:
//!
//! * [`LinkBundle`] / [`BondedLink`] — the description: per-member
//!   [`eva_net`] rate processes plus base RTTs, with analytic
//!   *effective-rate* formulas per policy
//!   ([`LinkBundle::effective_rate_bps`]) that the planner consumes as
//!   the camera's Eq. 5 bandwidth belief,
//! * [`BondScheduler`] — packet-striping policies ([`RoundRobin`],
//!   [`RateWeighted`], [`EarliestDelivery`]) choosing a member per
//!   packet from *believed* rates (per-link BBR-style estimators),
//!   queue depths and RTTs,
//! * [`BundleSim`] / [`ReorderBuffer`] — the materialization the DES
//!   drives: true traces carry the packets, the reorder buffer charges
//!   HoL blocking, and [`FrameDelivery`] reports the in-order frame
//!   delivery time plus per-link accounting.
//!
//! A single-member zero-RTT bundle is bit-identical to the unbonded
//! single-trace path (property-tested in `eva-sim`), so bundles are a
//! strict generalization, not a fork.

pub mod bundle;
pub mod reorder;
pub mod sched;

pub use bundle::{BondedLink, BundleSim, FrameDelivery, LinkBundle, DEFAULT_PACKET_BITS};
pub use reorder::{Release, ReorderBuffer};
pub use sched::{
    BondPolicy, BondScheduler, EarliestDelivery, LinkSnapshot, RateWeighted, RoundRobin,
};
