//! Property tests for the bonding layer: effective-rate dominance and
//! capacity bounds, reorder-buffer order/earliness invariants, and
//! packet-accounting conservation in the striped simulator.

use eva_bond::{BondPolicy, BondedLink, LinkBundle, ReorderBuffer};
use eva_net::LinkModel;
use eva_sched::TICKS_PER_SEC;
use proptest::prelude::*;

/// A random heterogeneous bundle: 1–5 constant-rate members with
/// arbitrary RTTs.
fn arb_bundle() -> impl Strategy<Value = LinkBundle> {
    prop::collection::vec((1e5f64..1e8, 0.0f64..0.5), 1..=5).prop_map(|links| {
        LinkBundle::new(
            links
                .into_iter()
                .map(|(rate, rtt)| BondedLink::new(LinkModel::constant(rate), rtt))
                .collect(),
        )
    })
}

proptest! {
    /// No striping policy can beat the sum of member capacities, and
    /// every bonded effective rate is positive.
    #[test]
    fn effective_rate_bounded_by_capacity_sum(
        bundle in arb_bundle(),
        frame_bits in 1e4f64..1e7,
    ) {
        let cap = bundle.nominal_sum_bps();
        for policy in [
            BondPolicy::RoundRobin,
            BondPolicy::RateWeighted,
            BondPolicy::EarliestDelivery,
        ] {
            let eff = bundle.effective_rate_bps(policy, frame_bits);
            prop_assert!(eff > 0.0, "{policy:?}: non-positive {eff}");
            prop_assert!(
                eff <= cap * (1.0 + 1e-12),
                "{policy:?}: {eff} beats capacity {cap}"
            );
        }
    }

    /// Earliest-delivery water-filling dominates every other policy and
    /// the best single member: each of those corresponds to a feasible
    /// bit split, and EDF optimizes over all of them.
    #[test]
    fn earliest_delivery_dominates(
        bundle in arb_bundle(),
        frame_bits in 1e4f64..1e7,
    ) {
        let edf = bundle.effective_rate_bps(BondPolicy::EarliestDelivery, frame_bits);
        let rr = bundle.effective_rate_bps(BondPolicy::RoundRobin, frame_bits);
        let rw = bundle.effective_rate_bps(BondPolicy::RateWeighted, frame_bits);
        let single = bundle.best_single_rate_bps(frame_bits);
        let slack = 1.0 + 1e-9;
        prop_assert!(edf * slack >= rr, "edf {edf} < rr {rr}");
        prop_assert!(edf * slack >= rw, "edf {edf} < rw {rw}");
        prop_assert!(edf * slack >= single, "edf {edf} < single {single}");
    }

    /// Reorder-buffer law: releases come out in exact sequence order,
    /// never before their own arrival, and never before any
    /// predecessor's arrival (the "never earlier than the slowest
    /// constituent packet" guarantee).
    #[test]
    fn reorder_buffer_is_in_order_and_never_early(
        arrivals in prop::collection::vec(0.0f64..1.0, 1..40),
    ) {
        // Random per-seq arrival offsets; feed in arrival-time order.
        let mut timed: Vec<(f64, u64)> = arrivals
            .iter()
            .enumerate()
            .map(|(seq, &t)| (t, seq as u64))
            .collect();
        timed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut rb = ReorderBuffer::new();
        let mut out = Vec::new();
        for &(t, seq) in &timed {
            out.extend(rb.push(seq, t));
        }
        prop_assert_eq!(rb.pending(), 0);
        prop_assert_eq!(out.len(), arrivals.len());
        let mut max_arrival_so_far = f64::NEG_INFINITY;
        for (k, rel) in out.iter().enumerate() {
            prop_assert_eq!(rel.seq, k as u64, "out of order");
            prop_assert!(rel.release_s >= rel.arrival_s);
            max_arrival_so_far = max_arrival_so_far.max(rel.arrival_s);
            // In-order delivery of seq k waits for every seq <= k.
            prop_assert!(
                rel.release_s >= max_arrival_so_far - 1e-15,
                "seq {k} released at {} before slowest predecessor {}",
                rel.release_s,
                max_arrival_so_far
            );
        }
    }

    /// The striped simulator conserves bits (per-link shares sum to the
    /// frame) and its delivery is never earlier than the pure
    /// serialization bound `F / Σr` or the slowest used member's
    /// one-way delay.
    #[test]
    fn striped_delivery_conserves_bits_and_respects_bounds(
        bundle in arb_bundle(),
        frame_bits in 1e4f64..2e6,
        policy_idx in 0usize..3,
    ) {
        let policy = [
            BondPolicy::RoundRobin,
            BondPolicy::RateWeighted,
            BondPolicy::EarliestDelivery,
        ][policy_idx];
        let mut sim = bundle.simulator(10 * TICKS_PER_SEC, policy);
        let d = sim.frame_delivery(TICKS_PER_SEC, frame_bits);
        let total: f64 = d.per_link_bits.iter().sum();
        prop_assert!(
            (total - frame_bits).abs() <= frame_bits * 1e-9,
            "bits leaked: {total} vs {frame_bits}"
        );
        prop_assert!(d.delay_s >= frame_bits / bundle.nominal_sum_bps() * (1.0 - 1e-9));
        for (i, link) in bundle.links().iter().enumerate() {
            if d.per_link_bits[i] > 0.0 {
                prop_assert!(
                    d.delay_s >= link.owd_s() * (1.0 - 1e-12),
                    "delivered before link {i}'s one-way delay"
                );
            }
        }
        prop_assert!(d.hol_wait_s >= 0.0);
        prop_assert!(d.max_reorder_depth >= 1);
    }
}
