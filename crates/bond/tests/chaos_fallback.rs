//! Bundle-aware fault plumbing: a `ChaosSpec` link collapse hitting
//! *one member* of a bonded uplink must degrade the bonded belief —
//! not zero the camera — and the HoL-aware scheduler must shift load
//! onto the surviving links.

use eva_bond::{BondPolicy, BondedLink, LinkBundle};
use eva_fault::{ChaosSpec, LinkCollapse};
use eva_net::LinkModel;
use eva_sched::TICKS_PER_SEC;

const FRAME_BITS: f64 = 5e5;

fn trio() -> LinkBundle {
    LinkBundle::new(vec![
        BondedLink::new(LinkModel::constant(12e6), 0.030),
        BondedLink::new(LinkModel::constant(8e6), 0.080),
        BondedLink::new(LinkModel::constant(5e6), 0.200),
    ])
}

#[test]
fn link_collapse_degrades_the_bonded_belief_instead_of_zeroing_it() {
    let spec = ChaosSpec {
        seed: 9,
        link_collapse: Some(LinkCollapse {
            factor: 0.2,
            mean_normal_s: 40.0,
            mean_collapsed_s: 20.0,
        }),
        ..ChaosSpec::none(9)
    };
    let windows = spec.link_windows(120.0);
    assert!(!windows.is_empty(), "collapse spec produced no windows");
    let factor = windows[0].factor;
    assert_eq!(factor, 0.2);

    let healthy = trio();
    let degraded = healthy.scaled_link(0, factor); // fastest member collapses

    let eff_healthy = healthy.effective_rate_bps(BondPolicy::EarliestDelivery, FRAME_BITS);
    let eff_degraded = degraded.effective_rate_bps(BondPolicy::EarliestDelivery, FRAME_BITS);

    // Collapsing one member degrades the bundle but never zeroes it:
    // the belief stays above what the surviving links alone provide to
    // a single-link camera, and well above zero.
    assert!(
        eff_degraded < eff_healthy,
        "collapse must cost capacity: {eff_degraded} vs {eff_healthy}"
    );
    let best_survivor = degraded.best_single_rate_bps(FRAME_BITS);
    assert!(
        eff_degraded >= best_survivor,
        "bonding must not lose to the best surviving link: \
         {eff_degraded} vs {best_survivor}"
    );
    // The collapsed member still contributes its scaled capacity, so
    // the degraded bundle keeps a sane fraction of the healthy rate.
    assert!(eff_degraded > 0.5 * eff_healthy, "belief over-collapsed");
}

#[test]
fn scheduler_shifts_share_onto_surviving_links() {
    let spec = ChaosSpec {
        seed: 21,
        link_collapse: Some(LinkCollapse {
            factor: 0.1,
            mean_normal_s: 30.0,
            mean_collapsed_s: 30.0,
        }),
        ..ChaosSpec::none(21)
    };
    let factor = spec
        .link_windows(200.0)
        .first()
        .expect("collapse windows exist")
        .factor;

    let share_of_link0 = |bundle: &LinkBundle| -> f64 {
        let mut sim = bundle.simulator(40 * TICKS_PER_SEC, BondPolicy::EarliestDelivery);
        for k in 0..200u64 {
            sim.frame_delivery(k * (TICKS_PER_SEC / 10), FRAME_BITS);
        }
        let bits = sim.delivered_bits();
        bits[0] / bits.iter().sum::<f64>()
    };

    let healthy_share = share_of_link0(&trio());
    let degraded_share = share_of_link0(&trio().scaled_link(0, factor));
    assert!(
        degraded_share < healthy_share,
        "estimator-steered striping must shed load from the collapsed \
         member: {degraded_share:.3} vs {healthy_share:.3}"
    );
    // The camera keeps flowing: the surviving links carry the rest.
    assert!(degraded_share > 0.0 && degraded_share < 0.5);
}
