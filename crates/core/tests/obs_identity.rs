//! Telemetry must be observationally free: an instrumented run under
//! the [`eva_obs::NoopRecorder`] — or even a live
//! [`eva_obs::FlightRecorder`] — must produce bit-identical scheduler
//! output to the plain entry points. Recorders never touch RNG state or
//! numeric inputs; these tests pin that contract end to end across the
//! whole pipeline (profiling, GP fits, elicitation, BO search,
//! Algorithm-1 placement, the fault loop).

use eva_bo::{AcqKind, BoConfig};
use eva_fault::FaultPlan;
use eva_obs::{FlightRecorder, NoopRecorder, Phase, Recorder};
use eva_stats::rng::seeded;
use eva_workload::{DriftingScenario, Scenario};
use pamo_core::{
    run_online, run_online_faulted, run_online_faulted_recorded, run_online_recorded,
    FaultedRunConfig, OnlineRun, PamoConfig, PreferenceSource,
};

fn tiny_config(preference: PreferenceSource) -> PamoConfig {
    PamoConfig {
        bo: BoConfig {
            n_init: 4,
            batch: 2,
            mc_samples: 16,
            max_iters: 3,
            delta: 0.02,
            kind: AcqKind::QNei,
        },
        pool_size: 20,
        profiling_per_camera: 20,
        profile_noise: 0.02,
        n_comparisons: 6,
        elicit_candidates: 15,
        preference,
    }
}

fn assert_runs_bit_identical(a: &OnlineRun, b: &OnlineRun, what: &str) {
    assert_eq!(a.epochs.len(), b.epochs.len(), "{what}: epoch count");
    assert_eq!(a.degraded, b.degraded, "{what}: degraded flag");
    for (x, y) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(x.epoch, y.epoch, "{what}");
        assert_eq!(
            x.online_benefit.to_bits(),
            y.online_benefit.to_bits(),
            "{what}: epoch {} online benefit diverged",
            x.epoch
        );
        assert_eq!(
            x.static_benefit.map(f64::to_bits),
            y.static_benefit.map(f64::to_bits),
            "{what}: epoch {} static benefit diverged",
            x.epoch
        );
        assert_eq!(x.configs, y.configs, "{what}: epoch {} configs", x.epoch);
        assert_eq!(x.alive, y.alive, "{what}: epoch {} alive", x.epoch);
        assert_eq!(x.degraded, y.degraded, "{what}: epoch {}", x.epoch);
        assert_eq!(
            x.divergence.to_bits(),
            y.divergence.to_bits(),
            "{what}: epoch {} divergence",
            x.epoch
        );
    }
}

#[test]
fn online_run_identical_under_noop_and_flight_recorders() {
    // The learned-preference path exercises the full pipeline:
    // profiling + GP fit, elicitation, qNEI, Algorithm-1 placement.
    let cfg = tiny_config(PreferenceSource::Learned);
    let base = Scenario::uniform(3, 2, 20e6, 71);
    let run = |rec: Option<&dyn Recorder>| {
        let mut d = DriftingScenario::new(&base, 0.08);
        match rec {
            None => run_online(&mut d, &cfg, [1.0; 5], 3, &mut seeded(5)),
            Some(r) => run_online_recorded(&mut d, &cfg, [1.0; 5], 3, &mut seeded(5), r),
        }
    };

    let plain = run(None);
    let noop = run(Some(&NoopRecorder));
    let flight = FlightRecorder::new();
    let recorded = run(Some(&flight));

    assert_runs_bit_identical(&plain, &noop, "plain vs noop");
    assert_runs_bit_identical(&plain, &recorded, "plain vs flight");

    // And the flight recorder actually saw the pipeline: every phase of
    // the fault-free path has completed spans.
    let snap = flight.snapshot();
    let phases: Vec<Phase> = snap.phase_stats().iter().map(|&(p, _)| p).collect();
    for expect in [
        Phase::Epoch,
        Phase::Decide,
        Phase::OutcomeFit,
        Phase::PrefModel,
        Phase::BoSearch,
        Phase::GpFit,
        Phase::Grouping,
        Phase::Assignment,
    ] {
        assert!(
            phases.contains(&expect),
            "flight recorder never saw phase {expect:?} (got {phases:?})"
        );
    }
    for (p, s) in snap.phase_stats() {
        assert!(s.count > 0, "phase {p:?} has zero spans");
        assert!(s.total_s >= 0.0 && s.total_s.is_finite());
    }
    assert_eq!(snap.metrics.counter("online.epochs"), 3);
    assert!(snap.metrics.counter("core.objective_evals") > 0);
    assert!(snap.metrics.counter("gp.fits") > 0);
}

#[test]
fn faulted_run_identical_under_recorders() {
    // Heavy crashes force detection, survivor re-planning and the
    // fallback ladder through the recorded path.
    let cfg = tiny_config(PreferenceSource::Oracle);
    let base = Scenario::uniform(3, 2, 20e6, 72);
    let plan = FaultPlan::none(2, 3).with_server_crashes(20.0, 40.0, 11);
    let run_cfg = FaultedRunConfig::default();
    let run = |rec: Option<&dyn Recorder>| {
        let mut d = DriftingScenario::new(&base, 0.05);
        match rec {
            None => run_online_faulted(
                &mut d,
                &cfg,
                [1.0; 5],
                4,
                Some(&plan),
                &run_cfg,
                &mut seeded(9),
            ),
            Some(r) => run_online_faulted_recorded(
                &mut d,
                &cfg,
                [1.0; 5],
                4,
                Some(&plan),
                &run_cfg,
                &mut seeded(9),
                r,
            ),
        }
    };

    let plain = run(None);
    let noop = run(Some(&NoopRecorder));
    let flight = FlightRecorder::new();
    let recorded = run(Some(&flight));

    assert_runs_bit_identical(&plain, &noop, "faulted plain vs noop");
    assert_runs_bit_identical(&plain, &recorded, "faulted plain vs flight");

    let snap = flight.snapshot();
    assert_eq!(snap.metrics.counter("online.epochs"), 4);
    // This plan crashes servers most of the time: the detector must
    // have fired at least once, as a counter and a structured event.
    assert!(
        snap.metrics.counter("fault.detections") > 0,
        "no fault detection recorded under heavy crashes"
    );
    assert!(
        snap.events.iter().any(|e| e.kind == "server_down_detected"),
        "no server_down_detected event recorded"
    );
}

#[test]
fn zero_fault_recorded_run_delegates_to_online_path() {
    // A zero plan through the *recorded* faulted entry point must equal
    // the recorded fault-free loop bit for bit (same delegation as the
    // plain entry points).
    let cfg = tiny_config(PreferenceSource::Oracle);
    let base = Scenario::uniform(3, 2, 20e6, 73);
    let flight_a = FlightRecorder::new();
    let a = {
        let mut d = DriftingScenario::new(&base, 0.05);
        run_online_faulted_recorded(
            &mut d,
            &cfg,
            [1.0; 5],
            3,
            Some(&FaultPlan::none(2, 3)),
            &FaultedRunConfig::default(),
            &mut seeded(13),
            &flight_a,
        )
    };
    let b = {
        let mut d = DriftingScenario::new(&base, 0.05);
        let mut rng = seeded(13);
        run_online_recorded(&mut d, &cfg, [1.0; 5], 3, &mut rng, &NoopRecorder)
    };
    assert_runs_bit_identical(&a, &b, "zero-plan faulted vs online");
    assert_eq!(flight_a.snapshot().metrics.counter("online.epochs"), 3);
}
