//! The serving loop must be a strict superset of the online loop: with
//! a silent arrival process and no fault plan, `run_serving` delegates
//! to `run_online` and its epochs are bit-identical, epoch for epoch —
//! the serving machinery costs nothing when nothing churns.

use eva_bo::{AcqKind, BoConfig};
use eva_serve::ArrivalModel;
use eva_stats::rng::seeded;
use eva_workload::{DriftingScenario, Scenario};
use pamo_core::{run_online, run_serving, PamoConfig, PreferenceSource, ServingConfig};
use proptest::prelude::*;

fn tiny_config() -> PamoConfig {
    PamoConfig {
        bo: BoConfig {
            n_init: 4,
            batch: 2,
            mc_samples: 16,
            max_iters: 2,
            delta: 0.02,
            kind: AcqKind::QNei,
        },
        pool_size: 15,
        profiling_per_camera: 15,
        profile_noise: 0.02,
        n_comparisons: 6,
        elicit_candidates: 15,
        preference: PreferenceSource::Oracle,
    }
}

proptest! {
    // Each case runs the full BO pipeline twice; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn zero_rate_serving_is_bit_identical_to_online(
        scenario_seed in 0u64..100,
        rng_seed in 0u64..100,
        drift in 0.0f64..0.15,
        n_epochs in 2usize..=3,
    ) {
        let base = Scenario::uniform(3, 2, 20e6, scenario_seed);
        let plain = {
            let mut d = DriftingScenario::new(&base, drift);
            run_online(&mut d, &tiny_config(), [1.0; 5], n_epochs, &mut seeded(rng_seed))
        };
        let serving = ServingConfig {
            n_epochs,
            arrivals: ArrivalModel::Poisson { rate_hz: 0.0 },
            ..ServingConfig::default()
        };
        let served = {
            let mut d = DriftingScenario::new(&base, drift);
            run_serving(
                &mut d,
                &tiny_config(),
                [1.0; 5],
                None,
                &serving,
                &mut seeded(rng_seed),
            )
        };
        prop_assert!(served.events.is_empty());
        prop_assert_eq!(served.epochs.len(), plain.epochs.len());
        prop_assert_eq!(served.degraded, plain.degraded);
        for (s, p) in served.epochs.iter().zip(&plain.epochs) {
            prop_assert_eq!(s.epoch, p.epoch);
            prop_assert_eq!(
                s.online_benefit.to_bits(),
                p.online_benefit.to_bits(),
                "epoch {} online benefit diverged",
                s.epoch
            );
            prop_assert_eq!(&s.configs, &p.configs, "epoch {} configs diverged", s.epoch);
            prop_assert_eq!(
                s.divergence.to_bits(),
                p.divergence.to_bits(),
                "epoch {} divergence diverged",
                s.epoch
            );
            prop_assert_eq!(&s.alive, &p.alive);
        }
    }
}
