//! The joint-configuration candidate pool.
//!
//! The raw decision space is `(N · C_r · C_f)^M`; Algorithm 1 absorbs
//! the placement dimension and the BO loop then searches joint
//! configurations `(r_i, s_i)_{i=1..M}`. We encode a joint config as a
//! flat `2M` vector of normalized knobs (the GP-friendly encoding) and
//! search over a *feasible* candidate pool: the uniform "diagonal"
//! configs (all cameras share one knob pair) plus Latin-hypercube mixed
//! configs, all pre-filtered by Algorithm-1 schedulability.

use eva_workload::{Scenario, VideoConfig};
use rand::Rng;

/// Encode per-camera configs as a flat normalized vector
/// `[r₀/2160, s₀/30, r₁/2160, …]`.
pub fn encode_joint(scenario: &Scenario, configs: &[VideoConfig]) -> Vec<f64> {
    assert_eq!(configs.len(), scenario.n_videos(), "encode: config count");
    let space = scenario.config_space();
    configs.iter().flat_map(|c| space.normalize(c)).collect()
}

/// Decode a flat vector back to per-camera configs (snapping to the
/// knob grid, so arbitrary vectors are legal input).
pub fn decode_joint(scenario: &Scenario, x: &[f64]) -> Vec<VideoConfig> {
    let m = scenario.n_videos();
    assert_eq!(x.len(), 2 * m, "decode: expected 2M entries");
    let space = scenario.config_space();
    (0..m)
        .map(|i| space.denormalize_snap(&x[2 * i..2 * i + 2]))
        .collect()
}

/// Build a feasible candidate pool of roughly `target_size` joint
/// configurations.
///
/// Composition:
/// 1. every *uniform* config (all cameras at the same knob pair) that is
///    zero-jitter schedulable — these anchor the low-cost corner and the
///    Pareto "diagonal",
/// 2. Latin-hypercube mixed configs (independent knobs per camera),
///    kept only if schedulable, until the target is reached.
pub fn build_pool<R: Rng + ?Sized>(
    scenario: &Scenario,
    target_size: usize,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    assert!(target_size >= 1, "build_pool: empty target");
    let space = scenario.config_space();
    let m = scenario.n_videos();
    let mut pool: Vec<Vec<f64>> = Vec::new();

    // (1) Uniform diagonals.
    for c in space.iter() {
        let configs = vec![c; m];
        if scenario.schedule(&configs).is_ok() {
            pool.push(encode_joint(scenario, &configs));
        }
        if pool.len() >= target_size {
            return pool;
        }
    }

    // (2) LHS mixed configs; oversample since many draws are infeasible.
    let mut attempts = 0usize;
    let max_attempts = 60 * target_size;
    while pool.len() < target_size && attempts < max_attempts {
        let batch = eva_stats::design::latin_hypercube(rng, 16, 2 * m);
        for u in batch {
            attempts += 1;
            let configs = decode_joint(scenario, &u);
            if scenario.schedule(&configs).is_ok() {
                let enc = encode_joint(scenario, &configs);
                if !pool.contains(&enc) {
                    pool.push(enc);
                }
                if pool.len() >= target_size {
                    break;
                }
            }
        }
    }
    assert!(
        !pool.is_empty(),
        "build_pool: no feasible joint configuration exists for this scenario"
    );
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_stats::rng::seeded;

    fn scenario() -> Scenario {
        Scenario::uniform(4, 3, 20e6, 37)
    }

    #[test]
    fn encode_decode_roundtrip_on_grid() {
        let sc = scenario();
        let configs = vec![
            VideoConfig::new(480.0, 5.0),
            VideoConfig::new(1080.0, 10.0),
            VideoConfig::new(720.0, 1.0),
            VideoConfig::new(2160.0, 30.0),
        ];
        let x = encode_joint(&sc, &configs);
        assert_eq!(x.len(), 8);
        let back = decode_joint(&sc, &x);
        assert_eq!(back, configs);
    }

    #[test]
    fn pool_entries_are_feasible_and_distinct() {
        let sc = scenario();
        let pool = build_pool(&sc, 40, &mut seeded(1));
        assert!(pool.len() >= 20, "pool too small: {}", pool.len());
        for x in &pool {
            let configs = decode_joint(&sc, x);
            assert!(sc.schedule(&configs).is_ok(), "infeasible pool entry");
        }
        let mut keys: Vec<String> = pool.iter().map(|p| format!("{p:?}")).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), pool.len(), "duplicate pool entries");
    }

    #[test]
    fn pool_contains_cheap_diagonal() {
        let sc = scenario();
        let pool = build_pool(&sc, 30, &mut seeded(2));
        let cheapest = encode_joint(&sc, &[VideoConfig::new(360.0, 1.0); 4]);
        assert!(pool.contains(&cheapest));
    }

    #[test]
    fn overconstrained_scenario_still_yields_some_pool() {
        // 6 cameras, 1 server: only frugal configs are feasible.
        let sc = Scenario::uniform(6, 1, 20e6, 5);
        let pool = build_pool(&sc, 25, &mut seeded(3));
        assert!(!pool.is_empty());
        for x in &pool {
            assert!(sc.schedule(&decode_joint(&sc, x)).is_ok());
        }
    }
}
