//! The panic-free error layer for the end-to-end scheduler.
//!
//! Everything that can go wrong inside a PaMO decision — an infeasible
//! placement, a GP fit whose kernel matrix stays non-positive-definite
//! after the jitter ladder, a preference model that fails to converge —
//! surfaces here as a [`CoreError`] instead of a panic. The online loop
//! treats a failed epoch as *degraded service* (skip-and-log), never as
//! process death: a scheduler that aborts on a numerical hiccup is
//! strictly worse than one that serves the previous decision for one
//! more epoch.

use eva_gp::GpError;
use eva_prefgp::PrefError;
use eva_sched::GroupingError;

/// Any failure of the PaMO decision pipeline.
#[derive(Debug, Clone)]
pub enum CoreError {
    /// Algorithm 1 found no zero-jitter placement.
    Grouping(GroupingError),
    /// Outcome-model fitting or conditioning failed numerically (the
    /// Cholesky jitter ladder was exhausted, or the data was degenerate).
    OutcomeModel(GpError),
    /// Preference elicitation / Laplace fitting failed.
    Preference(PrefError),
    /// A benefit or outcome value came back NaN/Inf.
    NonFinite {
        /// Which quantity went non-finite.
        context: &'static str,
    },
    /// The profiling budget is below the minimum the GP fits need.
    InsufficientProfiling {
        /// Minimum samples per camera required.
        needed: usize,
        /// Samples per camera actually requested.
        got: usize,
    },
    /// A control-plane snapshot failed to decode (corrupt JSON or a
    /// missing/ill-typed field).
    Snapshot {
        /// Which part of the snapshot was malformed.
        context: &'static str,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Grouping(e) => write!(f, "no zero-jitter placement: {e}"),
            CoreError::OutcomeModel(e) => write!(f, "outcome-model failure: {e}"),
            CoreError::Preference(e) => write!(f, "preference-model failure: {e}"),
            CoreError::NonFinite { context } => {
                write!(f, "non-finite value in {context}")
            }
            CoreError::InsufficientProfiling { needed, got } => {
                write!(
                    f,
                    "profiling budget too small: need at least {needed} samples per camera, got {got}"
                )
            }
            CoreError::Snapshot { context } => {
                write!(f, "malformed control-plane snapshot: {context}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Grouping(e) => Some(e),
            CoreError::OutcomeModel(e) => Some(e),
            CoreError::Preference(e) => Some(e),
            CoreError::NonFinite { .. } => None,
            CoreError::InsufficientProfiling { .. } => None,
            CoreError::Snapshot { .. } => None,
        }
    }
}

impl From<GroupingError> for CoreError {
    fn from(e: GroupingError) -> Self {
        CoreError::Grouping(e)
    }
}

impl From<GpError> for CoreError {
    fn from(e: GpError) -> Self {
        CoreError::OutcomeModel(e)
    }
}

impl From<PrefError> for CoreError {
    fn from(e: PrefError) -> Self {
        CoreError::Preference(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::from(GroupingError::NotEnoughServers {
            needed_at_least: 3,
            available: 2,
        });
        assert!(e.to_string().contains("zero-jitter"));
        assert!(std::error::Error::source(&e).is_some());
        let nf = CoreError::NonFinite { context: "benefit" };
        assert!(nf.to_string().contains("benefit"));
        assert!(std::error::Error::source(&nf).is_none());
        let ip = CoreError::InsufficientProfiling { needed: 4, got: 2 };
        assert!(ip.to_string().contains("at least 4"));
        assert!(ip.to_string().contains("got 2"));
        assert!(std::error::Error::source(&ip).is_none());
    }
}
