//! Continuous-arrival serving: the event loop that drives `eva-serve`.
//!
//! Every other runner in this crate replays a *fixed* tenant set.
//! [`run_serving`] instead drives a discrete-event simulation whose
//! stream set mutates mid-run: a pre-generated churn trace
//! ([`eva_serve::ChurnTrace`]) injects tenant arrivals and departures,
//! an optional [`FaultPlan`] injects server crashes and restores, and
//! the loop reacts to all four event kinds uniformly as replan
//! triggers.
//!
//! Two reaction disciplines are compared:
//!
//! * **event-driven** (`event_driven = true`): every event is handled
//!   at its event time — arrivals get an admission probe and, when
//!   accepted, an incremental row repair; departures/failures/restores
//!   get a row repair immediately. Reaction latency is the handler's
//!   compute time.
//! * **epoch-synchronous** (`event_driven = false`): churn events are
//!   deferred to the next epoch boundary and failures are only noticed
//!   by the boundary heartbeat check. Reaction latency is the wait
//!   until the boundary plus the handler's compute time.
//!
//! Both disciplines re-optimize with the full PaMO pipeline at every
//! epoch boundary, so the comparison isolates *reaction policy*, not
//! decision quality.
//!
//! **Serving value.** The run integrates `served(t) · quality(t)` over
//! time, where `served(t)` counts cameras whose post-split streams all
//! sit on truly-up servers (departed-but-unnoticed tenants do not
//! count — an epoch-synchronous scheduler keeps burning resources on
//! them, which is exactly the waste this metric exposes) and
//! `quality(t)` is the normalized benefit of the deployed joint
//! configuration. `ServingRun::benefit_per_server` divides the
//! integral by `horizon × n_servers` — the paper's "maximize system
//! benefit" objective, per provisioned server, under churn.
//!
//! **Determinism.** The churn trace and each tenant's clip profile are
//! pure functions of `churn_seed`; mid-window event handling consumes
//! no randomness from the run's RNG. A silent arrival model with no
//! fault plan therefore delegates to [`run_online_recorded`] outright,
//! and the epochs are bit-identical to a plain online run.

use std::collections::{HashSet, VecDeque};
use std::time::Instant;

use eva_fault::process::secs_to_ticks;
use eva_fault::{AvailabilityTrace, FaultPlan};
use eva_obs::{span, DecisionRung, NoopRecorder, Phase, Recorder};
use eva_sched::{Assignment, TICKS_PER_SEC};
use eva_serve::{
    subset_outcome, AdmissionConfig, AdmissionController, AdmissionDecision, ArrivalModel,
    ChurnAction, ChurnConfig, ChurnEvent, ChurnTrace, ReplanScope, ReplanTrigger, Rescheduler,
};
use eva_workload::{ClipProfile, DriftingScenario, Scenario, VideoConfig, N_OBJECTIVES};
use rand::Rng;

use crate::benefit::{normalized_benefit, TruePreference};
use crate::faulted::fallback_uniform;
use crate::online::{run_online_recorded, EpochRecord};
use crate::pamo::{Pamo, PamoConfig};

/// Knobs of a serving run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingConfig {
    /// Epoch (full re-optimization) period in seconds.
    pub epoch_s: f64,
    /// Number of epochs; the horizon is `epoch_s * n_epochs`.
    pub n_epochs: usize,
    /// Heartbeat interval — the epoch-synchronous failure detector
    /// marks a server down at a boundary iff it was not up throughout
    /// the trailing heartbeat window.
    pub heartbeat_s: f64,
    /// `true`: react at event time; `false`: defer to epoch boundaries.
    pub event_driven: bool,
    /// Arrival process for churn tenants.
    pub arrivals: ArrivalModel,
    /// Mean tenant hold (service) time in seconds.
    pub mean_hold_s: f64,
    /// Seed of the churn trace and of per-tenant clip profiles.
    pub churn_seed: u64,
    /// Admission policy.
    pub admission: AdmissionConfig,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            epoch_s: 30.0,
            n_epochs: 4,
            heartbeat_s: 2.0,
            event_driven: true,
            arrivals: ArrivalModel::Poisson { rate_hz: 0.05 },
            mean_hold_s: 45.0,
            churn_seed: 0,
            admission: AdmissionConfig::default(),
        }
    }
}

impl ServingConfig {
    /// The run horizon in seconds.
    pub fn horizon_s(&self) -> f64 {
        self.epoch_s * self.n_epochs as f64
    }
}

/// One handled serving event (simulation-time stamped).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeEvent {
    /// Event time in seconds from run start.
    pub time_s: f64,
    /// `"arrival"`, `"departure"`, `"failure"` or `"restore"`.
    pub kind: &'static str,
    /// Churn tenant id (`None` for server events).
    pub tenant: Option<u64>,
    /// What the scheduler did: `"accepted"`, `"queued"`, `"rejected"`,
    /// `"replanned"`, `"ignored"`, `"degraded"`, `"shed"` (dropped by
    /// overload load shedding) or `"deferred"` (pushed past the budget
    /// window by a stale-rung controller).
    pub outcome: &'static str,
    /// Replan scope when a replan ran: `"incremental"`, `"full"` or
    /// `"coalesced"` (one batched full solve absorbing a burst).
    pub scope: Option<&'static str>,
    /// The escalation-ladder rung the controller was on when it
    /// handled this event (`"full"`, `"repair"` or `"stale"`); always
    /// `"full"` outside budgeted overload runs.
    pub rung: &'static str,
    /// Scheduling reaction latency in seconds: handler compute time,
    /// plus (epoch-synchronous only) the wait until the boundary that
    /// finally handled the event.
    pub reaction_s: f64,
    /// Live churn tenants after handling.
    pub live_tenants: usize,
}

/// Result of a serving run.
#[derive(Debug, Clone)]
pub struct ServingRun {
    /// One record per epoch boundary (same shape as an online run).
    pub epochs: Vec<EpochRecord>,
    /// Every handled event, time-ordered.
    pub events: Vec<ServeEvent>,
    /// Tenants admitted.
    pub accepted: u64,
    /// Tenants turned away.
    pub rejected: u64,
    /// Peak retry-queue depth.
    pub queued_peak: usize,
    /// Replans resolved by incremental row repair.
    pub replan_incremental: u64,
    /// Replans that fell back to a full re-solve.
    pub replan_full: u64,
    /// Integral of served-cameras × normalized-benefit over the run
    /// (camera-seconds of quality-weighted service).
    pub value_integral: f64,
    /// Run horizon in seconds.
    pub horizon_s: f64,
    /// Provisioned servers.
    pub n_servers: usize,
    /// Minimum over accepted admissions of
    /// `incumbent_after - (incumbent_before - max_benefit_drop)`;
    /// `+inf` when nothing was admitted. Non-negative iff admission
    /// kept every incumbent above the configured floor.
    pub min_floor_margin: f64,
    /// Whether the run ever served a degraded or dark interval.
    pub degraded: bool,
    /// Waiting tenants dropped by overload load shedding (age expiry
    /// plus high-water eviction); 0 outside overload runs.
    pub shed: u64,
    /// Replans coalesced into batched full solves under pressure.
    pub replan_coalesced: u64,
    /// Total decision-budget work units spent across all windows.
    pub budget_spent: u64,
    /// Budget overruns — forced charges past an exhausted budget.
    /// Always 0 when the escalation ladder is tuned correctly; the
    /// `ext_overload` experiment gates on it.
    pub budget_overruns: u64,
    /// Decision windows whose modeled control latency met the
    /// [`eva_obs::BudgetPolicy`] deadline.
    pub deadline_hits: u64,
    /// Decision windows that missed the modeled deadline.
    pub deadline_misses: u64,
    /// Epoch decisions taken per escalation-ladder rung, indexed by
    /// [`DecisionRung::index`] (`[full, repair, stale]`).
    pub rung_counts: [u64; 3],
}

impl ServingRun {
    /// Quality-weighted camera-seconds served per provisioned
    /// server-second — the headline metric of the churn experiment.
    pub fn benefit_per_server(&self) -> f64 {
        if self.horizon_s <= 0.0 || self.n_servers == 0 {
            return 0.0;
        }
        self.value_integral / (self.horizon_s * self.n_servers as f64)
    }

    /// Rejected fraction of decided (accepted + rejected) arrivals.
    pub fn rejection_rate(&self) -> f64 {
        let decided = self.accepted + self.rejected;
        if decided == 0 {
            return 0.0;
        }
        self.rejected as f64 / decided as f64
    }

    /// p99 scheduling reaction latency over all handled events
    /// (`"ignored"` events excluded); 0 when nothing was handled.
    pub fn reaction_p99_s(&self) -> f64 {
        percentile_99(
            self.events
                .iter()
                .filter(|e| e.outcome != "ignored")
                .map(|e| e.reaction_s),
        )
    }

    /// Fraction of decision windows whose modeled control latency met
    /// the budget policy's deadline; 1.0 when nothing was measured.
    pub fn deadline_hit_rate(&self) -> f64 {
        let total = self.deadline_hits + self.deadline_misses;
        if total == 0 {
            return 1.0;
        }
        self.deadline_hits as f64 / total as f64
    }

    /// p99 reaction latency restricted to one event kind.
    pub fn reaction_p99_for(&self, kind: &str) -> f64 {
        percentile_99(
            self.events
                .iter()
                .filter(|e| e.kind == kind && e.outcome != "ignored")
                .map(|e| e.reaction_s),
        )
    }
}

pub(crate) fn percentile_99(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let idx = ((v.len() as f64 * 0.99).ceil() as usize).clamp(1, v.len()) - 1;
    v[idx]
}

/// A timeline entry: churn or a server liveness toggle.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Happening {
    Churn(ChurnEvent),
    Server { server: usize, up: bool },
}

/// The churn tenant's content — a pure function of the churn seed, so
/// retries (queue drains) and both reaction disciplines see the same
/// clip for the same tenant.
pub(crate) fn churn_clip(churn_seed: u64, tenant: u64, index: usize) -> ClipProfile {
    let seed = eva_stats::rng::child_seed(churn_seed, tenant.wrapping_add(0xC11F));
    let mut rng = eva_stats::rng::seeded(seed);
    ClipProfile::random(&mut rng, index)
}

/// Mutable serving-loop state, factored out so event handlers can be
/// methods instead of closures over a dozen locals.
struct ServingLoop<'a> {
    weights: [f64; N_OBJECTIVES],
    serving: &'a ServingConfig,
    rec: &'a dyn Recorder,
    controller: AdmissionController,
    rescheduler: Rescheduler,
    /// Current epoch's base (non-churn) scenario snapshot.
    base: Scenario,
    base_n: usize,
    /// Admitted churn tenants, in camera order (`base_n + i`).
    extras: Vec<(u64, ClipProfile)>,
    /// Deployed configurations, parallel to `scenario`'s cameras.
    configs: Vec<VideoConfig>,
    /// Effective scenario: base cameras plus admitted extras.
    scenario: Scenario,
    /// Deployed placement; `None` while degraded (dark).
    assignment: Option<Assignment>,
    /// Ground-truth server liveness.
    truly_up: Vec<bool>,
    /// The scheduler's belief about server liveness.
    belief: Vec<bool>,
    /// Waiting tenants, FIFO.
    queue: VecDeque<u64>,
    /// Departed-but-unprocessed tenants (epoch-synchronous only).
    zombies: HashSet<u64>,
    events: Vec<ServeEvent>,
    accepted: u64,
    rejected: u64,
    queued_peak: usize,
    min_floor_margin: f64,
    value_integral: f64,
    seg_start: f64,
    rate: f64,
    degraded: bool,
}

impl<'a> ServingLoop<'a> {
    /// Accumulate serving value up to `t`.
    fn advance_value(&mut self, t: f64) {
        if t > self.seg_start {
            self.value_integral += self.rate * (t - self.seg_start);
            self.seg_start = t;
        }
    }

    /// Recompute the instantaneous serving-value rate.
    fn recompute_rate(&mut self) {
        let Some(a) = &self.assignment else {
            self.rate = 0.0;
            return;
        };
        let n = self.scenario.n_videos();
        let pref = TruePreference::new(&self.scenario, self.weights);
        let out = subset_outcome(&self.scenario, &self.configs, a, n);
        let quality = normalized_benefit(pref.benefit(&out), 0.0, pref.min_reference());
        let mut down = vec![false; n];
        for (i, st) in a.streams.iter().enumerate() {
            if !self.truly_up[a.server_of[i]] {
                down[st.id.source] = true;
            }
        }
        let served = (0..n)
            .filter(|&c| !down[c] && !self.is_zombie_camera(c))
            .count();
        self.rate = served as f64 * quality;
    }

    fn is_zombie_camera(&self, camera: usize) -> bool {
        camera >= self.base_n
            && self
                .extras
                .get(camera - self.base_n)
                .is_some_and(|(id, _)| self.zombies.contains(id))
    }

    fn mask_vec(&self) -> Option<Vec<bool>> {
        if self.belief.iter().all(|&b| b) {
            None
        } else {
            Some(self.belief.clone())
        }
    }

    /// Rebuild the effective scenario from the base snapshot + extras.
    fn rebuild_scenario(&mut self) {
        let mut clips: Vec<ClipProfile> = (0..self.base_n)
            .map(|i| self.base.clip(i).clone())
            .collect();
        clips.extend(self.extras.iter().map(|(_, c)| c.clone()));
        self.scenario = Scenario::new(
            clips,
            self.base.uplinks().to_vec(),
            self.base.config_space().clone(),
        );
    }

    fn push_event(
        &mut self,
        time_s: f64,
        kind: &'static str,
        tenant: Option<u64>,
        outcome: &'static str,
        scope: Option<&'static str>,
        reaction_s: f64,
    ) {
        if self.rec.enabled() {
            self.rec.observe("serve.reaction_s", reaction_s);
        }
        self.events.push(ServeEvent {
            time_s,
            kind,
            tenant,
            outcome,
            scope,
            reaction_s,
            live_tenants: self.extras.len(),
            rung: DecisionRung::Full.as_str(),
        });
    }

    /// Probe admission of `tenant` against the current system.
    /// `queue_len` is the number of *other* waiting tenants.
    fn admit_probe(&self, tenant: u64, queue_len: usize) -> AdmissionDecision {
        if self.assignment.is_none() || self.configs.len() != self.scenario.n_videos() {
            // Dark or inconsistent system: don't admit into chaos.
            return if queue_len < self.controller.config().queue_capacity {
                AdmissionDecision::Queue {
                    reason: "system degraded",
                }
            } else {
                AdmissionDecision::Reject {
                    reason: "system degraded",
                }
            };
        }
        let clip = churn_clip(
            self.serving.churn_seed,
            tenant,
            self.base_n + tenant as usize,
        );
        let mut clips: Vec<ClipProfile> = (0..self.scenario.n_videos())
            .map(|i| self.scenario.clip(i).clone())
            .collect();
        clips.push(clip);
        let trial = Scenario::new(
            clips,
            self.scenario.uplinks().to_vec(),
            self.scenario.config_space().clone(),
        );
        let pref = TruePreference::new(&trial, self.weights);
        let incumbent_before = match &self.assignment {
            Some(a) => pref.benefit(&subset_outcome(
                &trial,
                &self.configs,
                a,
                self.scenario.n_videos(),
            )),
            None => f64::NEG_INFINITY,
        };
        let mask = self.mask_vec();
        self.controller.admit(
            &trial,
            &self.configs,
            mask.as_deref(),
            incumbent_before,
            &|o| pref.benefit(o),
            self.extras.len(),
            queue_len,
            self.rec,
        )
    }

    /// Install an accepted tenant and replan around it. Returns the
    /// replan scope label.
    fn apply_accept(&mut self, tenant: u64, report: &eva_serve::ProbeReport) -> &'static str {
        let floor = report.incumbent_before - self.controller.config().max_benefit_drop;
        self.min_floor_margin = self.min_floor_margin.min(report.incumbent_after - floor);
        let clip = churn_clip(
            self.serving.churn_seed,
            tenant,
            self.base_n + tenant as usize,
        );
        self.extras.push((tenant, clip));
        self.configs.push(report.newcomer_config);
        self.rebuild_scenario();
        let camera = self.configs.len() - 1;
        let mask = self.mask_vec();
        match self.rescheduler.replan(
            &self.scenario,
            &self.configs,
            mask.as_deref(),
            ReplanTrigger::Arrival { camera },
            self.rec,
        ) {
            Ok((a, scope)) => {
                self.assignment = Some(a);
                scope_label(scope)
            }
            Err(_) => {
                // The probe proved feasibility, so this is effectively
                // unreachable; degrade rather than panic if it happens.
                self.assignment = None;
                self.degraded = true;
                "none"
            }
        }
    }

    /// Handle one arrival at simulation time `now`; `reaction_base` is
    /// the already-elapsed wait (0 for event-driven handling).
    fn handle_arrival(&mut self, ev: ChurnEvent, now: f64, reaction_base: f64) {
        let t0 = Instant::now();
        let decision = self.admit_probe(ev.tenant, self.queue.len());
        let (outcome, scope) = match decision {
            AdmissionDecision::Accept(report) => {
                self.accepted += 1;
                let scope = self.apply_accept(ev.tenant, &report);
                ("accepted", Some(scope))
            }
            AdmissionDecision::Queue { .. } => {
                self.queue.push_back(ev.tenant);
                self.queued_peak = self.queued_peak.max(self.queue.len());
                ("queued", None)
            }
            AdmissionDecision::Reject { .. } => {
                self.rejected += 1;
                ("rejected", None)
            }
        };
        let reaction = reaction_base + t0.elapsed().as_secs_f64();
        self.push_event(now, "arrival", Some(ev.tenant), outcome, scope, reaction);
    }

    /// Handle one departure at simulation time `now`.
    fn handle_departure(&mut self, ev: ChurnEvent, now: f64, reaction_base: f64) {
        let t0 = Instant::now();
        let (outcome, scope) =
            if let Some(pos) = self.extras.iter().position(|(id, _)| *id == ev.tenant) {
                let camera = self.base_n + pos;
                self.extras.remove(pos);
                self.configs.remove(camera);
                self.zombies.remove(&ev.tenant);
                self.rebuild_scenario();
                if self.assignment.is_some() {
                    let mask = self.mask_vec();
                    match self.rescheduler.replan(
                        &self.scenario,
                        &self.configs,
                        mask.as_deref(),
                        ReplanTrigger::Departure { camera },
                        self.rec,
                    ) {
                        Ok((a, scope)) => {
                            self.assignment = Some(a);
                            ("replanned", Some(scope_label(scope)))
                        }
                        Err(_) => {
                            self.assignment = None;
                            self.degraded = true;
                            ("degraded", None)
                        }
                    }
                } else {
                    ("ignored", None)
                }
            } else if let Some(pos) = self.queue.iter().position(|&id| id == ev.tenant) {
                // Waiting tenant gave up before being admitted.
                self.queue.remove(pos);
                ("ignored", None)
            } else {
                ("ignored", None)
            };
        let reaction = reaction_base + t0.elapsed().as_secs_f64();
        self.push_event(now, "departure", Some(ev.tenant), outcome, scope, reaction);
        if outcome == "replanned" {
            self.drain_queue(now);
        }
    }

    /// Handle a server toggle the event-driven way: update belief and
    /// replan immediately.
    fn handle_toggle_event_driven(&mut self, server: usize, up: bool, now: f64) {
        let t0 = Instant::now();
        self.belief[server] = up;
        let kind = if up { "restore" } else { "failure" };
        let trigger = if up {
            ReplanTrigger::ServerRestore { server }
        } else {
            ReplanTrigger::ServerFailure { server }
        };
        let (outcome, scope) =
            if self.configs.len() == self.scenario.n_videos() && !self.configs.is_empty() {
                let mask = self.mask_vec();
                match self.rescheduler.replan(
                    &self.scenario,
                    &self.configs,
                    mask.as_deref(),
                    trigger,
                    self.rec,
                ) {
                    Ok((a, scope)) => {
                        self.assignment = Some(a);
                        ("replanned", Some(scope_label(scope)))
                    }
                    Err(_) => {
                        self.assignment = None;
                        self.degraded = true;
                        ("degraded", None)
                    }
                }
            } else {
                ("ignored", None)
            };
        let reaction = t0.elapsed().as_secs_f64();
        self.push_event(now, kind, None, outcome, scope, reaction);
        if up && outcome == "replanned" {
            self.drain_queue(now);
        }
    }

    /// Retry waiting tenants FIFO until one re-queues (or the queue is
    /// empty). Called whenever capacity may have freed up.
    fn drain_queue(&mut self, now: f64) {
        while let Some(&tenant) = self.queue.front() {
            let t0 = Instant::now();
            let decision = self.admit_probe(tenant, self.queue.len() - 1);
            match decision {
                AdmissionDecision::Accept(report) => {
                    self.queue.pop_front();
                    self.accepted += 1;
                    let scope = self.apply_accept(tenant, &report);
                    let reaction = t0.elapsed().as_secs_f64();
                    self.push_event(
                        now,
                        "arrival",
                        Some(tenant),
                        "accepted",
                        Some(scope),
                        reaction,
                    );
                }
                AdmissionDecision::Queue { .. } => break,
                AdmissionDecision::Reject { .. } => {
                    self.queue.pop_front();
                    self.rejected += 1;
                    let reaction = t0.elapsed().as_secs_f64();
                    self.push_event(now, "arrival", Some(tenant), "rejected", None, reaction);
                }
            }
        }
    }
}

pub(crate) fn scope_label(scope: ReplanScope) -> &'static str {
    match scope {
        ReplanScope::Incremental { .. } => "incremental",
        ReplanScope::Full => "full",
    }
}

/// [`run_serving_recorded`] without telemetry.
#[allow(clippy::too_many_arguments)]
pub fn run_serving<R: Rng + ?Sized>(
    drifting: &mut DriftingScenario,
    config: &PamoConfig,
    weights: [f64; N_OBJECTIVES],
    plan: Option<&FaultPlan>,
    serving: &ServingConfig,
    rng: &mut R,
) -> ServingRun {
    run_serving_recorded(drifting, config, weights, plan, serving, rng, &NoopRecorder)
}

/// Drive the continuous-serving DES for `serving.n_epochs` epochs.
///
/// `plan` injects server crashes/restores (camera faults and retry
/// budgets are ignored here — serving models churn and crashes, not
/// frame loss). A silent arrival model with no effective fault plan
/// delegates to [`run_online_recorded`]: the epochs of such a run are
/// bit-identical to the plain online runner's, which pins the serving
/// loop's bookkeeping as overhead-free.
#[allow(clippy::too_many_arguments)]
pub fn run_serving_recorded<R: Rng + ?Sized>(
    drifting: &mut DriftingScenario,
    config: &PamoConfig,
    weights: [f64; N_OBJECTIVES],
    plan: Option<&FaultPlan>,
    serving: &ServingConfig,
    rng: &mut R,
    rec: &dyn Recorder,
) -> ServingRun {
    let initial = drifting.snapshot();
    let n_servers = initial.n_servers();
    let horizon_s = serving.horizon_s();
    let trace = ChurnTrace::generate(&ChurnConfig {
        model: serving.arrivals,
        mean_hold_s: serving.mean_hold_s,
        horizon_s,
        seed: serving.churn_seed,
    });
    let plan = plan.filter(|p| !p.is_zero());

    if trace.is_empty() && plan.is_none() {
        // No churn, no faults: the serving loop is the online loop.
        let run = run_online_recorded(drifting, config, weights, serving.n_epochs, rng, rec);
        let min_ref = -0.5 * weights.iter().sum::<f64>();
        let value_integral = run
            .epochs
            .iter()
            .map(|e| {
                e.configs.len() as f64
                    * normalized_benefit(e.online_benefit, 0.0, min_ref)
                    * serving.epoch_s
            })
            .sum();
        return ServingRun {
            epochs: run.epochs,
            events: Vec::new(),
            accepted: 0,
            rejected: 0,
            queued_peak: 0,
            replan_incremental: 0,
            replan_full: 0,
            value_integral,
            horizon_s,
            n_servers,
            min_floor_margin: f64::INFINITY,
            degraded: run.degraded,
            shed: 0,
            replan_coalesced: 0,
            budget_spent: 0,
            budget_overruns: 0,
            deadline_hits: 0,
            deadline_misses: 0,
            rung_counts: [serving.n_epochs as u64, 0, 0],
        };
    }

    // Ground-truth server availability over the horizon.
    let horizon_ticks = secs_to_ticks(horizon_s).max(1) + 1;
    let server_up: Option<Vec<AvailabilityTrace>> =
        plan.map(|p| p.server_availability(horizon_ticks));

    // Merge churn and liveness toggles into one timeline.
    let mut timeline: Vec<(f64, Happening)> = trace
        .events()
        .iter()
        .map(|&e| (e.time_s, Happening::Churn(e)))
        .collect();
    if let Some(traces) = &server_up {
        for (server, tr) in traces.iter().enumerate() {
            for (i, &tick) in tr.toggles().iter().enumerate() {
                let t = tick as f64 / TICKS_PER_SEC as f64;
                if t < horizon_s {
                    timeline.push((
                        t,
                        Happening::Server {
                            server,
                            up: i % 2 == 1,
                        },
                    ));
                }
            }
        }
    }
    timeline.sort_by(|a, b| a.0.total_cmp(&b.0));

    // One scheduler for the whole serving run: every replan warm-starts
    // its GP fits from the previous decision's hyperparameters.
    let pamo = Pamo::new(config.clone());
    let heartbeat = secs_to_ticks(serving.heartbeat_s);
    let mut state = ServingLoop {
        weights,
        serving,
        rec,
        controller: AdmissionController::new(serving.admission),
        rescheduler: Rescheduler::new(),
        base: initial.clone(),
        base_n: initial.n_videos(),
        extras: Vec::new(),
        configs: Vec::new(),
        scenario: initial.clone(),
        assignment: None,
        truly_up: vec![true; n_servers],
        belief: vec![true; n_servers],
        queue: VecDeque::new(),
        zombies: HashSet::new(),
        events: Vec::new(),
        accepted: 0,
        rejected: 0,
        queued_peak: 0,
        min_floor_margin: f64::INFINITY,
        value_integral: 0.0,
        seg_start: 0.0,
        rate: 0.0,
        degraded: false,
    };
    let mut epochs: Vec<EpochRecord> = Vec::with_capacity(serving.n_epochs);
    let mut deferred: Vec<ChurnEvent> = Vec::new();
    let mut idx = 0usize;

    for epoch in 0..serving.n_epochs {
        let t0 = epoch as f64 * serving.epoch_s;
        let t1 = t0 + serving.epoch_s;
        state.advance_value(t0);

        // ---- Epoch boundary ----
        let _epoch_span = span(rec, Phase::Epoch);
        state.base = drifting.snapshot();
        state.rebuild_scenario();

        // Failure detection.
        if serving.event_driven {
            state.belief.copy_from_slice(&state.truly_up);
        } else if let Some(traces) = &server_up {
            let now_ticks = secs_to_ticks(t0);
            for (s, tr) in traces.iter().enumerate() {
                state.belief[s] =
                    tr.is_up_throughout(now_ticks.saturating_sub(heartbeat), now_ticks);
            }
        }

        // Epoch-synchronous: churn deferred from the last window lands
        // here, charged its full boundary wait.
        for ev in std::mem::take(&mut deferred) {
            let wait = t0 - ev.time_s;
            match ev.action {
                ChurnAction::Arrive => state.handle_arrival(ev, t0, wait),
                ChurnAction::Depart => state.handle_departure(ev, t0, wait),
            }
        }
        state.zombies.clear();

        // Full PaMO re-optimization over the effective tenant set.
        let pref = TruePreference::new(&state.scenario, weights);
        let mask = state.mask_vec();
        let planned =
            match pamo.decide_surviving_recorded(&state.scenario, &pref, mask.as_deref(), rng, rec)
            {
                Ok(d) => match state.scenario.schedule_surviving_recorded(
                    &d.configs,
                    mask.as_deref(),
                    rec,
                ) {
                    Ok(a) => Some((d.configs, a, false)),
                    Err(_) => fallback_uniform(&state.scenario, &pref, mask.as_deref(), rec)
                        .map(|(c, a)| (c, a, true)),
                },
                Err(_) => fallback_uniform(&state.scenario, &pref, mask.as_deref(), rec)
                    .map(|(c, a)| (c, a, true)),
            };
        let epoch_degraded = match planned {
            Some((c, a, fell_back)) => {
                state.configs = c;
                state.rescheduler.install(&a);
                state.assignment = Some(a);
                fell_back
            }
            None => {
                state.assignment = None;
                state.degraded = true;
                true
            }
        };
        state.degraded |= epoch_degraded || state.belief.iter().any(|&b| !b);
        let online_benefit = match &state.assignment {
            Some(a) => pref.benefit(&subset_outcome(
                &state.scenario,
                &state.configs,
                a,
                state.scenario.n_videos(),
            )),
            // Dark epoch: worse than any feasible decision, but finite
            // so run-level means stay usable.
            None => pref.min_reference() - 1.0,
        };
        epochs.push(EpochRecord {
            epoch,
            divergence: drifting.divergence_from(&initial),
            online_benefit,
            static_benefit: None,
            configs: state.configs.clone(),
            planning_bps: None,
            alive: state.belief.clone(),
            degraded: epoch_degraded,
            rung: DecisionRung::Full,
        });
        if rec.enabled() {
            rec.add("serve.epochs", 1);
        }

        // Boundary capacity may admit waiting tenants.
        state.drain_queue(t0);
        state.recompute_rate();
        drop(_epoch_span);

        // ---- Event window [t0, t1) ----
        while idx < timeline.len() && timeline[idx].0 < t1 {
            let (t, what) = timeline[idx];
            idx += 1;
            state.advance_value(t.max(t0));
            match what {
                Happening::Server { server, up } => {
                    state.truly_up[server] = up;
                    if !up {
                        state.degraded = true;
                    }
                    if serving.event_driven {
                        state.handle_toggle_event_driven(server, up, t);
                    }
                    // Epoch-synchronous: the heartbeat notices at the
                    // next boundary; only ground truth changes now.
                }
                Happening::Churn(ev) => {
                    if serving.event_driven {
                        match ev.action {
                            ChurnAction::Arrive => state.handle_arrival(ev, t, 0.0),
                            ChurnAction::Depart => state.handle_departure(ev, t, 0.0),
                        }
                    } else {
                        if ev.action == ChurnAction::Depart
                            && state.extras.iter().any(|(id, _)| *id == ev.tenant)
                        {
                            // Gone in reality; value stops counting it
                            // even though the scheduler hasn't noticed.
                            state.zombies.insert(ev.tenant);
                        }
                        deferred.push(ev);
                    }
                }
            }
            state.recompute_rate();
        }

        drifting.advance(rng);
    }

    // Close the last segment and flush epoch-sync events that never
    // reached a boundary (charged the wait to end-of-run).
    state.advance_value(horizon_s);
    for ev in std::mem::take(&mut deferred) {
        let wait = horizon_s - ev.time_s;
        match ev.action {
            ChurnAction::Arrive => state.handle_arrival(ev, horizon_s, wait),
            ChurnAction::Depart => state.handle_departure(ev, horizon_s, wait),
        }
    }

    let stats = state.rescheduler.stats();
    let n_epochs = epochs.len() as u64;
    ServingRun {
        epochs,
        events: state.events,
        accepted: state.accepted,
        rejected: state.rejected,
        queued_peak: state.queued_peak,
        replan_incremental: stats.incremental,
        replan_full: stats.full,
        value_integral: state.value_integral,
        horizon_s,
        n_servers,
        min_floor_margin: state.min_floor_margin,
        degraded: state.degraded,
        shed: 0,
        replan_coalesced: stats.coalesced,
        budget_spent: 0,
        budget_overruns: 0,
        deadline_hits: 0,
        deadline_misses: 0,
        rung_counts: [n_epochs, 0, 0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::run_online;
    use crate::pamo::PreferenceSource;
    use eva_bo::{AcqKind, BoConfig};
    use eva_stats::rng::seeded;

    fn tiny_config() -> PamoConfig {
        PamoConfig {
            bo: BoConfig {
                n_init: 4,
                batch: 2,
                mc_samples: 16,
                max_iters: 3,
                delta: 0.02,
                kind: AcqKind::QNei,
            },
            pool_size: 20,
            profiling_per_camera: 20,
            profile_noise: 0.02,
            n_comparisons: 6,
            elicit_candidates: 15,
            preference: PreferenceSource::Oracle,
        }
    }

    fn base() -> Scenario {
        Scenario::uniform(3, 3, 20e6, 61)
    }

    fn storm(event_driven: bool) -> ServingConfig {
        ServingConfig {
            epoch_s: 20.0,
            n_epochs: 3,
            event_driven,
            arrivals: ArrivalModel::Poisson { rate_hz: 0.15 },
            mean_hold_s: 25.0,
            churn_seed: 5,
            ..ServingConfig::default()
        }
    }

    #[test]
    fn zero_churn_run_is_bit_identical_to_run_online() {
        let sc = base();
        let plain = {
            let mut d = DriftingScenario::new(&sc, 0.08);
            run_online(&mut d, &tiny_config(), [1.0; 5], 4, &mut seeded(9))
        };
        let silent = ServingConfig {
            epoch_s: 30.0,
            n_epochs: 4,
            arrivals: ArrivalModel::Poisson { rate_hz: 0.0 },
            ..ServingConfig::default()
        };
        for plan in [None, Some(FaultPlan::none(3, 3))] {
            let mut d = DriftingScenario::new(&sc, 0.08);
            let served = run_serving(
                &mut d,
                &tiny_config(),
                [1.0; 5],
                plan.as_ref(),
                &silent,
                &mut seeded(9),
            );
            assert!(served.events.is_empty());
            assert_eq!(served.epochs.len(), plain.epochs.len());
            for (s, p) in served.epochs.iter().zip(&plain.epochs) {
                assert_eq!(
                    s.online_benefit.to_bits(),
                    p.online_benefit.to_bits(),
                    "epoch {} diverged",
                    s.epoch
                );
                assert_eq!(s.configs, p.configs);
            }
            assert!(served.value_integral > 0.0);
        }
    }

    #[test]
    fn storm_run_admits_tenants_and_respects_the_floor() {
        let sc = base();
        let mut d = DriftingScenario::new(&sc, 0.05);
        let run = run_serving(
            &mut d,
            &tiny_config(),
            [1.0; 5],
            None,
            &storm(true),
            &mut seeded(2),
        );
        let arrivals = run.events.iter().filter(|e| e.kind == "arrival").count();
        assert!(arrivals > 0, "storm produced no arrival events");
        assert!(run.accepted > 0, "nothing admitted under a light storm");
        assert!(
            run.min_floor_margin >= -1e-9,
            "admission violated the incumbent floor: margin {}",
            run.min_floor_margin
        );
        assert!(run.value_integral > 0.0);
        // Live tenant counts reported on events never exceed the cap.
        for e in &run.events {
            assert!(e.live_tenants <= run.n_servers * 64);
        }
    }

    #[test]
    fn event_driven_reacts_faster_than_epoch_synchronous() {
        let sc = base();
        let mut runs = Vec::new();
        for event_driven in [true, false] {
            let mut d = DriftingScenario::new(&sc, 0.05);
            runs.push(run_serving(
                &mut d,
                &tiny_config(),
                [1.0; 5],
                None,
                &storm(event_driven),
                &mut seeded(2),
            ));
        }
        let (ed, es) = (&runs[0], &runs[1]);
        assert!(ed.events.iter().any(|e| e.outcome == "accepted"));
        // Epoch-sync charges boundary waits (seconds); event-driven
        // charges compute only (far below a second per event).
        assert!(
            ed.reaction_p99_s() < es.reaction_p99_s(),
            "event-driven p99 {} !< epoch-sync p99 {}",
            ed.reaction_p99_s(),
            es.reaction_p99_s()
        );
        assert!(es.reaction_p99_s() > 1.0, "boundary waits should dominate");
    }

    #[test]
    fn server_crashes_surface_as_failure_and_restore_events() {
        let sc = base();
        let plan = FaultPlan::none(3, 3).with_server_crashes(25.0, 15.0, 11);
        let mut d = DriftingScenario::new(&sc, 0.05);
        let run = run_serving(
            &mut d,
            &tiny_config(),
            [1.0; 5],
            Some(&plan),
            &ServingConfig {
                epoch_s: 20.0,
                n_epochs: 3,
                arrivals: ArrivalModel::Poisson { rate_hz: 0.0 },
                ..ServingConfig::default()
            },
            &mut seeded(4),
        );
        let kinds: HashSet<&str> = run.events.iter().map(|e| e.kind).collect();
        assert!(
            kinds.contains("failure"),
            "no failure events in {kinds:?} ({} events)",
            run.events.len()
        );
        assert!(run.degraded, "crash-heavy run must be flagged degraded");
    }
}
