//! PaMO: the preference-aware multi-objective EVA scheduler.
//!
//! This crate composes the substrates into the paper's system
//! (Fig. 5's framework):
//!
//! * [`benefit`] — the hidden *true* preference function (Eq. 13),
//!   outcome normalization, the decision-maker oracle, and the
//!   normalized-benefit metric of the evaluation section,
//! * [`models`] — the outcome-model bank: one GP per (camera,
//!   objective), fitted on profiling data and updated online
//!   (Algorithm 2, lines 1-4 and 18),
//! * [`pool`] — the discrete joint-configuration candidate pool over
//!   which the BO loop searches (placement is delegated to Algorithm 1,
//!   shrinking the paper's `(N·C_r·C_f)^M` space to `(C_r·C_f)^M`),
//! * [`composite`] — the composite surrogate `g(f(x))`: outcome-GP
//!   samples pushed through the preference model, exposed through
//!   `eva-bo`'s [`eva_bo::SurrogateSampler`] so qNEI/qEI/qUCB/qSR all
//!   apply unchanged,
//! * [`pamo`] — Algorithm 2 end to end: profile → elicit preferences →
//!   BO with qNEI → recommend, plus the PaMO+ oracle variant and the
//!   acquisition ablations.

pub mod benefit;
pub mod composite;
pub mod error;
pub mod faulted;
pub mod models;
pub mod online;
pub mod overload;
pub mod pamo;
pub mod pool;
pub mod serving;
pub mod snapshot;

pub use benefit::{normalized_benefit, OutcomeNormalizer, TruePreference};
pub use composite::{CompositeSampler, PreferenceEval};
pub use error::CoreError;
pub use faulted::{run_online_faulted, run_online_faulted_recorded, FaultedRunConfig};
pub use models::{OutcomeModelBank, ProfilingDesign};
pub use online::{
    run_online, run_online_estimated, run_online_estimated_recorded, run_online_recorded,
    EpochRecord, OnlineRun,
};
pub use overload::{
    run_serving_overloaded, run_serving_overloaded_recorded, OverloadConfig, ServingSession,
};
pub use pamo::{Pamo, PamoConfig, PamoDecision, PreferenceSource};
pub use pool::{build_pool, decode_joint, encode_joint};
pub use serving::{run_serving, run_serving_recorded, ServeEvent, ServingConfig, ServingRun};
pub use snapshot::{ControlPlaneSnapshot, SnapshotCursor};
