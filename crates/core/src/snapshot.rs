//! Checkpoint/restore for the overload control plane.
//!
//! A [`ControlPlaneSnapshot`] captures *all* mutable state of a
//! [`ServingSession`](crate::overload::ServingSession) between steps:
//! the deployed placement and rescheduler repair state, admitted
//! tenants, the retry queue, the drift walk, the scheduler's GP
//! warm-start, the RNG stream, the step cursor, and every accumulated
//! output (epochs, events, counters). Restoring a snapshot into a
//! fresh session and running it to completion therefore produces a
//! [`ServingRun`](crate::serving::ServingRun) that is **bit-identical**
//! to the uninterrupted run — the crash-recovery property the
//! `crash_at_any_step_then_restore_is_bit_identical` test drives at
//! every step index.
//!
//! The wire format is JSON (via the vendored `serde_json` stand-in)
//! with one deliberate twist: every `f64` is encoded as the `u64` of
//! [`f64::to_bits`]. Decimal round-trips of floats are lossy in
//! general; bit-exact restore is the whole point, so floats travel as
//! bits. Static strings (event kinds, outcomes, replan scopes, ladder
//! rungs) are re-interned against closed tables on decode — an unknown
//! label is a decode error, not a dangling allocation.
//!
//! Run *parameters* (scenario shape, PaMO config, budget policy) are
//! intentionally not serialized: a restore is "restart the binary with
//! the same flags, then load state", exactly like any checkpointed
//! service. Feeding a snapshot into a session built with different
//! parameters is detected where cheap (length mismatches) and
//! otherwise undefined, like pointing a database at someone else's WAL.

use eva_obs::DecisionRung;
use eva_sched::{Assignment, StreamId, StreamTiming};
use eva_serve::{ChurnAction, ChurnEvent, QueueEntry, ReplanStats};
use eva_workload::{ClipProfile, VideoConfig};
use serde_json::{from_str, to_string, Map, Number, Value};

use crate::error::CoreError;
use crate::models::ProfilingDesign;
use crate::online::EpochRecord;
use crate::serving::ServeEvent;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u64 = 1;

/// The step cursor: where in the serving run the session stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotCursor {
    /// About to run epoch `usize`'s boundary decision.
    Boundary(usize),
    /// Inside epoch `usize`'s event window.
    Window(usize),
    /// About to run the end-of-horizon flush.
    Flush,
    /// Run complete.
    Done,
}

impl SnapshotCursor {
    fn encode(self) -> (u64, u64) {
        match self {
            SnapshotCursor::Boundary(e) => (0, e as u64),
            SnapshotCursor::Window(e) => (1, e as u64),
            SnapshotCursor::Flush => (2, 0),
            SnapshotCursor::Done => (3, 0),
        }
    }

    fn decode(kind: u64, epoch: u64) -> Result<Self, CoreError> {
        match kind {
            0 => Ok(SnapshotCursor::Boundary(epoch as usize)),
            1 => Ok(SnapshotCursor::Window(epoch as usize)),
            2 => Ok(SnapshotCursor::Flush),
            3 => Ok(SnapshotCursor::Done),
            _ => Err(snap_err("cursor")),
        }
    }
}

/// Every piece of mutable control-plane state, checkpointed between
/// session steps. Fields are crate-private; sessions build and consume
/// snapshots, external callers move them through
/// [`to_json`](ControlPlaneSnapshot::to_json) /
/// [`from_json`](ControlPlaneSnapshot::from_json).
#[derive(Debug, Clone, PartialEq)]
pub struct ControlPlaneSnapshot {
    pub(crate) cursor: SnapshotCursor,
    pub(crate) idx: usize,
    pub(crate) deferred: Vec<ChurnEvent>,
    pub(crate) rng_state: [u64; 4],
    pub(crate) drift_clips: Vec<ClipProfile>,
    pub(crate) base_clips: Vec<ClipProfile>,
    pub(crate) base_uplinks: Vec<f64>,
    pub(crate) warm: Option<Vec<Vec<f64>>>,
    pub(crate) design: Option<ProfilingDesign>,
    pub(crate) extras: Vec<(u64, ClipProfile)>,
    pub(crate) configs: Vec<VideoConfig>,
    pub(crate) assignment: Option<Assignment>,
    pub(crate) resch_groups: Vec<Vec<StreamTiming>>,
    pub(crate) resch_group_server: Vec<usize>,
    pub(crate) resch_prices: Vec<f64>,
    pub(crate) resch_stats: ReplanStats,
    pub(crate) truly_up: Vec<bool>,
    pub(crate) belief: Vec<bool>,
    pub(crate) queue_entries: Vec<QueueEntry>,
    pub(crate) queue_peak: usize,
    pub(crate) queue_shed: u64,
    pub(crate) zombies: Vec<u64>,
    pub(crate) events: Vec<ServeEvent>,
    pub(crate) epochs: Vec<EpochRecord>,
    pub(crate) accepted: u64,
    pub(crate) rejected: u64,
    pub(crate) min_floor_margin: f64,
    pub(crate) value_integral: f64,
    pub(crate) seg_start: f64,
    pub(crate) rate: f64,
    pub(crate) degraded: bool,
    pub(crate) pending_batch: u64,
    pub(crate) budget_limit: u64,
    pub(crate) budget_spent: u64,
    pub(crate) budget_overruns: u64,
    pub(crate) budget_spent_total: u64,
    pub(crate) budget_overruns_total: u64,
    pub(crate) deadline_hits: u64,
    pub(crate) deadline_misses: u64,
    pub(crate) rung_counts: [u64; 3],
}

fn snap_err(context: &'static str) -> CoreError {
    CoreError::Snapshot { context }
}

// ---- encode helpers ----

fn jf(v: f64) -> Value {
    Value::Number(Number::U(v.to_bits()))
}

fn ju(v: u64) -> Value {
    Value::Number(Number::U(v))
}

fn jus(v: usize) -> Value {
    ju(v as u64)
}

fn jfv(v: &[f64]) -> Value {
    Value::Array(v.iter().map(|&x| jf(x)).collect())
}

fn jbv(v: &[bool]) -> Value {
    Value::Array(v.iter().map(|&b| Value::Bool(b)).collect())
}

fn juv(v: &[usize]) -> Value {
    Value::Array(v.iter().map(|&x| jus(x)).collect())
}

fn jclip(c: &ClipProfile) -> Value {
    let mut o = Map::new();
    o.insert("name".into(), Value::String(c.name.clone()));
    o.insert("acc".into(), jf(c.accuracy_scale));
    o.insert("complexity".into(), jf(c.complexity));
    o.insert("bitrate".into(), jf(c.bitrate_factor));
    o.insert("motion".into(), jf(c.motion));
    Value::Object(o)
}

fn jconfig(c: &VideoConfig) -> Value {
    Value::Array(vec![jf(c.resolution), jf(c.fps)])
}

fn jtiming(t: &StreamTiming) -> Value {
    Value::Array(vec![
        jus(t.id.source),
        jus(t.id.part),
        ju(t.period),
        ju(t.proc),
    ])
}

fn jchurn(e: &ChurnEvent) -> Value {
    let mut o = Map::new();
    o.insert("t".into(), jf(e.time_s));
    o.insert("tenant".into(), ju(e.tenant));
    o.insert(
        "action".into(),
        Value::String(
            match e.action {
                ChurnAction::Arrive => "arrive",
                ChurnAction::Depart => "depart",
            }
            .into(),
        ),
    );
    Value::Object(o)
}

fn jassignment(a: &Assignment) -> Value {
    let mut o = Map::new();
    o.insert(
        "streams".into(),
        Value::Array(a.streams.iter().map(jtiming).collect()),
    );
    o.insert("server_of".into(), juv(&a.server_of));
    o.insert(
        "groups".into(),
        Value::Array(a.groups.iter().map(|g| juv(g)).collect()),
    );
    o.insert("group_server".into(), juv(&a.group_server));
    o.insert("comm".into(), jf(a.total_comm_latency));
    Value::Object(o)
}

fn jevent(e: &ServeEvent) -> Value {
    let mut o = Map::new();
    o.insert("t".into(), jf(e.time_s));
    o.insert("kind".into(), Value::String(e.kind.into()));
    o.insert("tenant".into(), e.tenant.map(ju).unwrap_or(Value::Null));
    o.insert("outcome".into(), Value::String(e.outcome.into()));
    o.insert(
        "scope".into(),
        e.scope
            .map(|s| Value::String(s.into()))
            .unwrap_or(Value::Null),
    );
    o.insert("reaction".into(), jf(e.reaction_s));
    o.insert("live".into(), jus(e.live_tenants));
    o.insert("rung".into(), Value::String(e.rung.into()));
    Value::Object(o)
}

fn jepoch(e: &EpochRecord) -> Value {
    let mut o = Map::new();
    o.insert("epoch".into(), jus(e.epoch));
    o.insert("divergence".into(), jf(e.divergence));
    o.insert("online".into(), jf(e.online_benefit));
    o.insert(
        "static".into(),
        e.static_benefit.map(jf).unwrap_or(Value::Null),
    );
    o.insert(
        "configs".into(),
        Value::Array(e.configs.iter().map(jconfig).collect()),
    );
    o.insert(
        "planning_bps".into(),
        e.planning_bps
            .as_ref()
            .map(|b| jfv(b))
            .unwrap_or(Value::Null),
    );
    o.insert("alive".into(), jbv(&e.alive));
    o.insert("degraded".into(), Value::Bool(e.degraded));
    o.insert("rung".into(), Value::String(e.rung.as_str().into()));
    Value::Object(o)
}

// ---- decode helpers ----

fn get<'a>(o: &'a Map, key: &'static str) -> Result<&'a Value, CoreError> {
    o.get(key).ok_or(snap_err(key))
}

fn gu(o: &Map, key: &'static str) -> Result<u64, CoreError> {
    get(o, key)?.as_u64().ok_or(snap_err(key))
}

fn gus(o: &Map, key: &'static str) -> Result<usize, CoreError> {
    Ok(gu(o, key)? as usize)
}

fn gf(o: &Map, key: &'static str) -> Result<f64, CoreError> {
    Ok(f64::from_bits(gu(o, key)?))
}

fn gb(o: &Map, key: &'static str) -> Result<bool, CoreError> {
    get(o, key)?.as_bool().ok_or(snap_err(key))
}

fn garr<'a>(o: &'a Map, key: &'static str) -> Result<&'a Vec<Value>, CoreError> {
    get(o, key)?.as_array().ok_or(snap_err(key))
}

fn gobj<'a>(v: &'a Value, context: &'static str) -> Result<&'a Map, CoreError> {
    v.as_object().ok_or(snap_err(context))
}

fn du(v: &Value, context: &'static str) -> Result<u64, CoreError> {
    v.as_u64().ok_or(snap_err(context))
}

fn df(v: &Value, context: &'static str) -> Result<f64, CoreError> {
    Ok(f64::from_bits(du(v, context)?))
}

fn dfv(o: &Map, key: &'static str) -> Result<Vec<f64>, CoreError> {
    garr(o, key)?.iter().map(|v| df(v, key)).collect()
}

fn dbv(o: &Map, key: &'static str) -> Result<Vec<bool>, CoreError> {
    garr(o, key)?
        .iter()
        .map(|v| v.as_bool().ok_or(snap_err(key)))
        .collect()
}

fn duv(v: &Value, context: &'static str) -> Result<Vec<usize>, CoreError> {
    v.as_array()
        .ok_or(snap_err(context))?
        .iter()
        .map(|x| Ok(du(x, context)? as usize))
        .collect()
}

fn dclip(v: &Value) -> Result<ClipProfile, CoreError> {
    let o = gobj(v, "clip")?;
    Ok(ClipProfile {
        name: get(o, "name")?
            .as_str()
            .ok_or(snap_err("name"))?
            .to_string(),
        accuracy_scale: gf(o, "acc")?,
        complexity: gf(o, "complexity")?,
        bitrate_factor: gf(o, "bitrate")?,
        motion: gf(o, "motion")?,
    })
}

fn dconfig(v: &Value) -> Result<VideoConfig, CoreError> {
    let a = v.as_array().ok_or(snap_err("config"))?;
    if a.len() != 2 {
        return Err(snap_err("config"));
    }
    Ok(VideoConfig {
        resolution: df(&a[0], "config")?,
        fps: df(&a[1], "config")?,
    })
}

fn dtiming(v: &Value) -> Result<StreamTiming, CoreError> {
    let a = v.as_array().ok_or(snap_err("timing"))?;
    if a.len() != 4 {
        return Err(snap_err("timing"));
    }
    Ok(StreamTiming {
        id: StreamId {
            source: du(&a[0], "timing")? as usize,
            part: du(&a[1], "timing")? as usize,
        },
        period: du(&a[2], "timing")?,
        proc: du(&a[3], "timing")?,
    })
}

fn dchurn(v: &Value) -> Result<ChurnEvent, CoreError> {
    let o = gobj(v, "churn")?;
    Ok(ChurnEvent {
        time_s: gf(o, "t")?,
        tenant: gu(o, "tenant")?,
        action: match get(o, "action")?.as_str() {
            Some("arrive") => ChurnAction::Arrive,
            Some("depart") => ChurnAction::Depart,
            _ => return Err(snap_err("action")),
        },
    })
}

fn dassignment(v: &Value) -> Result<Assignment, CoreError> {
    let o = gobj(v, "assignment")?;
    Ok(Assignment {
        streams: garr(o, "streams")?
            .iter()
            .map(dtiming)
            .collect::<Result<_, _>>()?,
        server_of: duv(get(o, "server_of")?, "server_of")?,
        groups: garr(o, "groups")?
            .iter()
            .map(|g| duv(g, "groups"))
            .collect::<Result<_, _>>()?,
        group_server: duv(get(o, "group_server")?, "group_server")?,
        total_comm_latency: gf(o, "comm")?,
    })
}

/// Re-intern an event kind against the closed table.
fn intern_kind(s: &str) -> Option<&'static str> {
    ["arrival", "departure", "failure", "restore"]
        .into_iter()
        .find(|&k| k == s)
}

/// Re-intern an event outcome against the closed table.
fn intern_outcome(s: &str) -> Option<&'static str> {
    [
        "accepted",
        "queued",
        "rejected",
        "replanned",
        "ignored",
        "degraded",
        "shed",
        "deferred",
    ]
    .into_iter()
    .find(|&k| k == s)
}

/// Re-intern a replan scope against the closed table.
fn intern_scope(s: &str) -> Option<&'static str> {
    ["incremental", "full", "coalesced", "none"]
        .into_iter()
        .find(|&k| k == s)
}

fn devent(v: &Value) -> Result<ServeEvent, CoreError> {
    let o = gobj(v, "event")?;
    Ok(ServeEvent {
        time_s: gf(o, "t")?,
        kind: get(o, "kind")?
            .as_str()
            .and_then(intern_kind)
            .ok_or(snap_err("kind"))?,
        tenant: match get(o, "tenant")? {
            Value::Null => None,
            v => Some(du(v, "tenant")?),
        },
        outcome: get(o, "outcome")?
            .as_str()
            .and_then(intern_outcome)
            .ok_or(snap_err("outcome"))?,
        scope: match get(o, "scope")? {
            Value::Null => None,
            v => Some(v.as_str().and_then(intern_scope).ok_or(snap_err("scope"))?),
        },
        reaction_s: gf(o, "reaction")?,
        live_tenants: gus(o, "live")?,
        rung: get(o, "rung")?
            .as_str()
            .and_then(DecisionRung::parse)
            .map(DecisionRung::as_str)
            .ok_or(snap_err("rung"))?,
    })
}

fn depoch(v: &Value) -> Result<EpochRecord, CoreError> {
    let o = gobj(v, "epoch")?;
    Ok(EpochRecord {
        epoch: gus(o, "epoch")?,
        divergence: gf(o, "divergence")?,
        online_benefit: gf(o, "online")?,
        static_benefit: match get(o, "static")? {
            Value::Null => None,
            v => Some(df(v, "static")?),
        },
        configs: garr(o, "configs")?
            .iter()
            .map(dconfig)
            .collect::<Result<_, _>>()?,
        planning_bps: match get(o, "planning_bps")? {
            Value::Null => None,
            v => Some(
                v.as_array()
                    .ok_or(snap_err("planning_bps"))?
                    .iter()
                    .map(|x| df(x, "planning_bps"))
                    .collect::<Result<_, _>>()?,
            ),
        },
        alive: dbv(o, "alive")?,
        degraded: gb(o, "degraded")?,
        rung: get(o, "rung")?
            .as_str()
            .and_then(DecisionRung::parse)
            .ok_or(snap_err("rung"))?,
    })
}

impl ControlPlaneSnapshot {
    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut o = Map::new();
        o.insert("version".into(), ju(SNAPSHOT_VERSION));
        let (ck, ce) = self.cursor.encode();
        o.insert("cursor_kind".into(), ju(ck));
        o.insert("cursor_epoch".into(), ju(ce));
        o.insert("idx".into(), jus(self.idx));
        o.insert(
            "deferred".into(),
            Value::Array(self.deferred.iter().map(jchurn).collect()),
        );
        o.insert(
            "rng".into(),
            Value::Array(self.rng_state.iter().map(|&s| ju(s)).collect()),
        );
        o.insert(
            "drift_clips".into(),
            Value::Array(self.drift_clips.iter().map(jclip).collect()),
        );
        o.insert(
            "base_clips".into(),
            Value::Array(self.base_clips.iter().map(jclip).collect()),
        );
        o.insert("base_uplinks".into(), jfv(&self.base_uplinks));
        o.insert(
            "warm".into(),
            self.warm
                .as_ref()
                .map(|w| Value::Array(w.iter().map(|t| jfv(t)).collect()))
                .unwrap_or(Value::Null),
        );
        o.insert(
            "design".into(),
            self.design
                .as_ref()
                .map(|d| {
                    let mut m = Map::new();
                    m.insert(
                        "configs".into(),
                        Value::Array(d.configs.iter().map(jconfig).collect()),
                    );
                    m.insert("uplinks".into(), jfv(&d.uplinks));
                    Value::Object(m)
                })
                .unwrap_or(Value::Null),
        );
        o.insert(
            "extras".into(),
            Value::Array(
                self.extras
                    .iter()
                    .map(|(id, c)| Value::Array(vec![ju(*id), jclip(c)]))
                    .collect(),
            ),
        );
        o.insert(
            "configs".into(),
            Value::Array(self.configs.iter().map(jconfig).collect()),
        );
        o.insert(
            "assignment".into(),
            self.assignment
                .as_ref()
                .map(jassignment)
                .unwrap_or(Value::Null),
        );
        o.insert(
            "resch_groups".into(),
            Value::Array(
                self.resch_groups
                    .iter()
                    .map(|g| Value::Array(g.iter().map(jtiming).collect()))
                    .collect(),
            ),
        );
        o.insert("resch_group_server".into(), juv(&self.resch_group_server));
        o.insert("resch_prices".into(), jfv(&self.resch_prices));
        o.insert(
            "resch_stats".into(),
            Value::Array(vec![
                ju(self.resch_stats.incremental),
                ju(self.resch_stats.full),
                ju(self.resch_stats.coalesced),
            ]),
        );
        o.insert("truly_up".into(), jbv(&self.truly_up));
        o.insert("belief".into(), jbv(&self.belief));
        o.insert(
            "queue".into(),
            Value::Array(
                self.queue_entries
                    .iter()
                    .map(|e| Value::Array(vec![ju(e.tenant), jf(e.enqueued_at_s)]))
                    .collect(),
            ),
        );
        o.insert("queue_peak".into(), jus(self.queue_peak));
        o.insert("queue_shed".into(), ju(self.queue_shed));
        o.insert(
            "zombies".into(),
            Value::Array(self.zombies.iter().map(|&z| ju(z)).collect()),
        );
        o.insert(
            "events".into(),
            Value::Array(self.events.iter().map(jevent).collect()),
        );
        o.insert(
            "epochs".into(),
            Value::Array(self.epochs.iter().map(jepoch).collect()),
        );
        o.insert("accepted".into(), ju(self.accepted));
        o.insert("rejected".into(), ju(self.rejected));
        o.insert("min_floor_margin".into(), jf(self.min_floor_margin));
        o.insert("value_integral".into(), jf(self.value_integral));
        o.insert("seg_start".into(), jf(self.seg_start));
        o.insert("rate".into(), jf(self.rate));
        o.insert("degraded".into(), Value::Bool(self.degraded));
        o.insert("pending_batch".into(), ju(self.pending_batch));
        o.insert("budget_limit".into(), ju(self.budget_limit));
        o.insert("budget_spent".into(), ju(self.budget_spent));
        o.insert("budget_overruns".into(), ju(self.budget_overruns));
        o.insert("budget_spent_total".into(), ju(self.budget_spent_total));
        o.insert(
            "budget_overruns_total".into(),
            ju(self.budget_overruns_total),
        );
        o.insert("deadline_hits".into(), ju(self.deadline_hits));
        o.insert("deadline_misses".into(), ju(self.deadline_misses));
        o.insert(
            "rung_counts".into(),
            Value::Array(self.rung_counts.iter().map(|&c| ju(c)).collect()),
        );
        to_string(&Value::Object(o)).unwrap_or_default()
    }

    /// Decode a snapshot from its JSON form. Every missing, ill-typed
    /// or unknown-label field surfaces as [`CoreError::Snapshot`].
    pub fn from_json(text: &str) -> Result<Self, CoreError> {
        let root = from_str(text).map_err(|_| snap_err("json"))?;
        let o = gobj(&root, "root")?;
        if gu(o, "version")? != SNAPSHOT_VERSION {
            return Err(snap_err("version"));
        }
        let rng_vals = garr(o, "rng")?;
        if rng_vals.len() != 4 {
            return Err(snap_err("rng"));
        }
        let mut rng_state = [0u64; 4];
        for (slot, v) in rng_state.iter_mut().zip(rng_vals) {
            *slot = du(v, "rng")?;
        }
        let stats_vals = garr(o, "resch_stats")?;
        if stats_vals.len() != 3 {
            return Err(snap_err("resch_stats"));
        }
        let rung_vals = garr(o, "rung_counts")?;
        if rung_vals.len() != 3 {
            return Err(snap_err("rung_counts"));
        }
        let mut rung_counts = [0u64; 3];
        for (slot, v) in rung_counts.iter_mut().zip(rung_vals) {
            *slot = du(v, "rung_counts")?;
        }
        Ok(ControlPlaneSnapshot {
            cursor: SnapshotCursor::decode(gu(o, "cursor_kind")?, gu(o, "cursor_epoch")?)?,
            idx: gus(o, "idx")?,
            deferred: garr(o, "deferred")?
                .iter()
                .map(dchurn)
                .collect::<Result<_, _>>()?,
            rng_state,
            drift_clips: garr(o, "drift_clips")?
                .iter()
                .map(dclip)
                .collect::<Result<_, _>>()?,
            base_clips: garr(o, "base_clips")?
                .iter()
                .map(dclip)
                .collect::<Result<_, _>>()?,
            base_uplinks: dfv(o, "base_uplinks")?,
            warm: match get(o, "warm")? {
                Value::Null => None,
                v => Some(
                    v.as_array()
                        .ok_or(snap_err("warm"))?
                        .iter()
                        .map(|t| {
                            t.as_array()
                                .ok_or(snap_err("warm"))?
                                .iter()
                                .map(|x| df(x, "warm"))
                                .collect()
                        })
                        .collect::<Result<_, _>>()?,
                ),
            },
            design: match get(o, "design")? {
                Value::Null => None,
                v => {
                    let d = gobj(v, "design")?;
                    Some(ProfilingDesign {
                        configs: garr(d, "configs")?
                            .iter()
                            .map(dconfig)
                            .collect::<Result<_, _>>()?,
                        uplinks: dfv(d, "uplinks")?,
                    })
                }
            },
            extras: garr(o, "extras")?
                .iter()
                .map(|v| {
                    let pair = v.as_array().ok_or(snap_err("extras"))?;
                    if pair.len() != 2 {
                        return Err(snap_err("extras"));
                    }
                    Ok((du(&pair[0], "extras")?, dclip(&pair[1])?))
                })
                .collect::<Result<_, _>>()?,
            configs: garr(o, "configs")?
                .iter()
                .map(dconfig)
                .collect::<Result<_, _>>()?,
            assignment: match get(o, "assignment")? {
                Value::Null => None,
                v => Some(dassignment(v)?),
            },
            resch_groups: garr(o, "resch_groups")?
                .iter()
                .map(|g| {
                    g.as_array()
                        .ok_or(snap_err("resch_groups"))?
                        .iter()
                        .map(dtiming)
                        .collect()
                })
                .collect::<Result<_, _>>()?,
            resch_group_server: duv(get(o, "resch_group_server")?, "resch_group_server")?,
            resch_prices: dfv(o, "resch_prices")?,
            resch_stats: ReplanStats {
                incremental: du(&stats_vals[0], "resch_stats")?,
                full: du(&stats_vals[1], "resch_stats")?,
                coalesced: du(&stats_vals[2], "resch_stats")?,
            },
            truly_up: dbv(o, "truly_up")?,
            belief: dbv(o, "belief")?,
            queue_entries: garr(o, "queue")?
                .iter()
                .map(|v| {
                    let pair = v.as_array().ok_or(snap_err("queue"))?;
                    if pair.len() != 2 {
                        return Err(snap_err("queue"));
                    }
                    Ok(QueueEntry {
                        tenant: du(&pair[0], "queue")?,
                        enqueued_at_s: df(&pair[1], "queue")?,
                    })
                })
                .collect::<Result<_, _>>()?,
            queue_peak: gus(o, "queue_peak")?,
            queue_shed: gu(o, "queue_shed")?,
            zombies: garr(o, "zombies")?
                .iter()
                .map(|v| du(v, "zombies"))
                .collect::<Result<_, _>>()?,
            events: garr(o, "events")?
                .iter()
                .map(devent)
                .collect::<Result<_, _>>()?,
            epochs: garr(o, "epochs")?
                .iter()
                .map(depoch)
                .collect::<Result<_, _>>()?,
            accepted: gu(o, "accepted")?,
            rejected: gu(o, "rejected")?,
            min_floor_margin: gf(o, "min_floor_margin")?,
            value_integral: gf(o, "value_integral")?,
            seg_start: gf(o, "seg_start")?,
            rate: gf(o, "rate")?,
            degraded: gb(o, "degraded")?,
            pending_batch: gu(o, "pending_batch")?,
            budget_limit: gu(o, "budget_limit")?,
            budget_spent: gu(o, "budget_spent")?,
            budget_overruns: gu(o, "budget_overruns")?,
            budget_spent_total: gu(o, "budget_spent_total")?,
            budget_overruns_total: gu(o, "budget_overruns_total")?,
            deadline_hits: gu(o, "deadline_hits")?,
            deadline_misses: gu(o, "deadline_misses")?,
            rung_counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_snapshot() -> ControlPlaneSnapshot {
        let clip = ClipProfile {
            name: "cam-0".into(),
            accuracy_scale: 0.93,
            complexity: 1.07,
            bitrate_factor: 1.01,
            motion: 1.3,
        };
        ControlPlaneSnapshot {
            cursor: SnapshotCursor::Window(1),
            idx: 3,
            deferred: vec![ChurnEvent {
                time_s: 12.5,
                tenant: 4,
                action: ChurnAction::Depart,
            }],
            rng_state: [1, u64::MAX, 3, 4],
            drift_clips: vec![clip.clone()],
            base_clips: vec![clip.clone()],
            base_uplinks: vec![2.0e7, 0.1 + 0.2],
            warm: Some(vec![vec![0.5, -1.25_f64.exp()]]),
            design: Some(ProfilingDesign {
                configs: vec![VideoConfig {
                    resolution: 720.0,
                    fps: 15.0,
                }],
                uplinks: vec![1.5e7],
            }),
            extras: vec![(7, clip)],
            configs: vec![VideoConfig {
                resolution: 1080.0,
                fps: 30.0,
            }],
            assignment: Some(Assignment {
                streams: vec![StreamTiming {
                    id: StreamId { source: 0, part: 0 },
                    period: 100,
                    proc: 40,
                }],
                server_of: vec![2],
                groups: vec![vec![0]],
                group_server: vec![2],
                total_comm_latency: 0.034,
            }),
            resch_groups: vec![vec![StreamTiming {
                id: StreamId { source: 0, part: 0 },
                period: 100,
                proc: 40,
            }]],
            resch_group_server: vec![2],
            resch_prices: vec![0.25],
            resch_stats: ReplanStats {
                incremental: 5,
                full: 1,
                coalesced: 2,
            },
            truly_up: vec![true, false, true],
            belief: vec![true, true, true],
            queue_entries: vec![QueueEntry {
                tenant: 9,
                enqueued_at_s: 3.25,
            }],
            queue_peak: 4,
            queue_shed: 2,
            zombies: vec![4],
            events: vec![ServeEvent {
                time_s: 1.5,
                kind: "arrival",
                tenant: Some(9),
                outcome: "shed",
                scope: None,
                reaction_s: 0.125,
                live_tenants: 1,
                rung: "repair",
            }],
            epochs: vec![EpochRecord {
                epoch: 0,
                divergence: 0.0,
                online_benefit: 1.75,
                static_benefit: None,
                configs: vec![VideoConfig {
                    resolution: 1080.0,
                    fps: 30.0,
                }],
                planning_bps: Some(vec![1.0e7]),
                alive: vec![true, true, true],
                degraded: false,
                rung: DecisionRung::Full,
            }],
            accepted: 3,
            rejected: 1,
            min_floor_margin: f64::INFINITY,
            value_integral: 123.456,
            seg_start: 40.0,
            rate: 2.5,
            degraded: true,
            pending_batch: 2,
            budget_limit: 500,
            budget_spent: 123,
            budget_overruns: 0,
            budget_spent_total: 999,
            budget_overruns_total: 0,
            deadline_hits: 2,
            deadline_misses: 1,
            rung_counts: [2, 1, 0],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = tiny_snapshot();
        let text = snap.to_json();
        let back = ControlPlaneSnapshot::from_json(&text).expect("decode");
        assert_eq!(snap, back);
        // Floats survive bit-exactly, including non-representable
        // decimals and infinity.
        assert_eq!(back.base_uplinks[1].to_bits(), (0.1_f64 + 0.2).to_bits());
        assert!(back.min_floor_margin.is_infinite());
    }

    #[test]
    fn corrupt_or_alien_json_is_a_typed_error() {
        for bad in ["", "{", "{\"version\": 99}", "{\"version\": 1}", "[1,2,3]"] {
            let err = ControlPlaneSnapshot::from_json(bad).unwrap_err();
            assert!(matches!(err, CoreError::Snapshot { .. }), "{bad:?}: {err}");
        }
        // A wrong-typed field names itself in the error.
        let mut good = tiny_snapshot().to_json();
        assert!(good.contains("\"queue_peak\": 4"), "fixture drifted");
        good = good.replace("\"queue_peak\": 4", "\"queue_peak\": true");
        let err = ControlPlaneSnapshot::from_json(&good).unwrap_err();
        assert!(err.to_string().contains("queue_peak"), "{err}");
    }

    #[test]
    fn unknown_interned_labels_are_rejected() {
        let text = tiny_snapshot()
            .to_json()
            .replace("\"outcome\": \"shed\"", "\"outcome\": \"vanished\"");
        let err = ControlPlaneSnapshot::from_json(&text).unwrap_err();
        assert!(err.to_string().contains("outcome"), "{err}");
    }
}
