//! The composite surrogate `g(f(x))`: outcome-GP samples pushed through
//! the preference model.
//!
//! qNEI (Eq. 12) integrates the acquisition over the *posterior of the
//! benefit*, which in PaMO is the composition of two learned models.
//! Sampling that composition jointly across candidates would require a
//! preference-GP joint posterior over `n_mc × n_points` outcome vectors
//! — cubic and prohibitive. We instead sample **marginally per point
//! with common random numbers**: every distinct (camera, objective,
//! config, uplink) sub-point and every distinct joint candidate derives
//! its noise stream deterministically from the acquisition seed and its
//! own content hash. Identical sub-configurations therefore receive
//! identical draws across candidate batches (the correlation that
//! matters for comparing batches), while cross-point correlation is
//! approximated as independence. BoTorch's qNEI makes the analogous
//! MC-with-CRN trade, just with full joint GP sampling.

use std::collections::{HashMap, HashSet};

use eva_bo::SurrogateSampler;
use eva_linalg::Mat;
use eva_prefgp::PreferenceModel;
use eva_stats::rng::{child_seed, standard_normal, standard_normal_vec};
use eva_workload::outcome::idx;
use eva_workload::profiler::features_of;
use eva_workload::{Outcome, Scenario, N_OBJECTIVES};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::benefit::{OutcomeNormalizer, TruePreference};
use crate::models::OutcomeModelBank;
use crate::pool::decode_joint;

/// Benefit assigned to joint configs with no zero-jitter placement.
/// Far below any reachable utility on either the learned (GP-prior
/// scale ~1) or oracle (≥ −Σw) benefit scale.
pub const INFEASIBLE_BENEFIT: f64 = -1.0e3;

/// GP posterior `(mean, sd)` for `(camera, objective, config, uplink,
/// part)`; `part` is the split part's index within the assignment, used
/// only by the batched latency lookup.
type PredictFn<'p> =
    dyn Fn(usize, usize, &eva_workload::VideoConfig, f64, usize) -> (f64, f64) + 'p;

/// The preference layer: learned GP or the oracle truth (PaMO+).
#[derive(Clone)]
pub enum PreferenceEval {
    /// The Laplace preference GP of Sec. 4.2.
    Learned(PreferenceModel),
    /// The hidden true preference (Eq. 13) — the PaMO+ upper bound.
    Oracle(TruePreference),
}

impl PreferenceEval {
    /// Posterior mean and standard deviation of the utility of a
    /// normalized outcome vector (oracle: exact value, zero spread).
    pub fn mean_and_std(&self, y_norm: &[f64]) -> (f64, f64) {
        match self {
            PreferenceEval::Learned(model) => {
                let (mu, var) = model.predict_utility(y_norm);
                (mu, var.max(0.0).sqrt())
            }
            PreferenceEval::Oracle(pref) => (pref.benefit_of_normalized(y_norm), 0.0),
        }
    }
}

/// The composite `g(f(x))` sampler over joint-configuration encodings.
pub struct CompositeSampler<'a> {
    scenario: &'a Scenario,
    bank: OutcomeModelBank,
    pref: PreferenceEval,
    normalizer: OutcomeNormalizer,
    /// Memo: (point hash, seed, n_mc) → benefit samples. Exact because
    /// every sample stream is deterministic in those keys.
    cache: Mutex<HashMap<(u64, u64, usize), Vec<f64>>>,
}

impl<'a> CompositeSampler<'a> {
    /// Assemble the surrogate from its fitted parts.
    pub fn new(
        scenario: &'a Scenario,
        bank: OutcomeModelBank,
        pref: PreferenceEval,
        normalizer: OutcomeNormalizer,
    ) -> Self {
        CompositeSampler {
            scenario,
            bank,
            pref,
            normalizer,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Predictive mean aggregate outcome of a joint config (Eq. 2-5
    /// assembled from the outcome-GP means under the Algorithm-1
    /// placement); `None` if unschedulable.
    pub fn predict_outcome(&self, x: &[f64]) -> Option<Outcome> {
        let configs = decode_joint(self.scenario, x);
        let assignment = self.scenario.schedule(&configs).ok()?;
        let m = self.scenario.n_videos() as f64;

        let uplinks = self.uplink_map(&assignment);
        let mut acc = 0.0;
        let mut net = 0.0;
        let mut com = 0.0;
        let mut eng = 0.0;
        #[allow(clippy::needless_range_loop)]
        for cam in 0..self.scenario.n_videos() {
            let o = self.bank.predict(cam, &configs[cam], uplinks[cam]);
            acc += o.accuracy;
            net += o.network_bps;
            com += o.compute_tflops;
            eng += o.power_w;
        }
        let mut lat = 0.0;
        for (i, st) in assignment.streams.iter().enumerate() {
            let cam = st.id.source;
            let uplink = self.scenario.planning_uplinks()[assignment.server_of[i]];
            let (mu, _) = self
                .bank
                .predict_objective(cam, idx::LATENCY, &configs[cam], uplink);
            lat += mu;
        }
        lat /= assignment.streams.len().max(1) as f64;

        Some(Outcome {
            latency_s: lat,
            accuracy: acc / m,
            network_bps: net,
            compute_tflops: com,
            power_w: eng,
        })
    }

    /// Planning uplink seen by each camera under an assignment: the
    /// server hosting the camera's first split part, falling back to
    /// server 0 for cameras absent from the assignment. One pass over
    /// the streams — the per-camera `position()` scan this replaces was
    /// O(M²) per evaluated point.
    fn uplink_map(&self, assignment: &eva_sched::Assignment) -> Vec<f64> {
        let ups = self.scenario.planning_uplinks();
        let mut map: Vec<Option<f64>> = vec![None; self.scenario.n_videos()];
        for (i, st) in assignment.streams.iter().enumerate() {
            let slot = &mut map[st.id.source];
            if slot.is_none() {
                *slot = Some(ups[assignment.server_of[i]]);
            }
        }
        map.into_iter().map(|u| u.unwrap_or(ups[0])).collect()
    }

    /// Benefit samples at one joint-config point.
    fn point_samples(&self, x: &[f64], n_mc: usize, seed: u64) -> Vec<f64> {
        let key = (hash_bits(x), seed, n_mc);
        if let Some(hit) = self.cache.lock().get(&key) {
            return hit.clone();
        }
        let samples = self.compute_point_samples(x, n_mc, seed);
        self.cache.lock().insert(key, samples.clone());
        samples
    }

    fn compute_point_samples(&self, x: &[f64], n_mc: usize, seed: u64) -> Vec<f64> {
        let configs = decode_joint(self.scenario, x);
        let assignment = match self.scenario.schedule(&configs) {
            Ok(a) => a,
            Err(_) => return vec![INFEASIBLE_BENEFIT; n_mc],
        };
        let uplinks = self.uplink_map(&assignment);
        self.assemble_point_samples(
            x,
            &configs,
            &assignment,
            &uplinks,
            n_mc,
            seed,
            &|cam, obj, cfg, uplink, _part| self.bank.predict_objective(cam, obj, cfg, uplink),
        )
    }

    /// The common sample-assembly path: aggregate per-(camera,
    /// objective) marginal draws under content-hash CRN, push through
    /// the preference layer. `predict` supplies the GP posterior for
    /// each (camera, objective, config, uplink) — either the scalar
    /// bank call or a lookup into batched results (`part` is the split
    /// part's index within the assignment, used only by the batched
    /// latency lookup); both are bit-identical, so cached and uncached
    /// points agree exactly.
    ///
    /// CRN draws are generated inline (one cheap xoshiro stream per
    /// sub-key) rather than materialized as vectors — at M = 2000 a
    /// single point needs ~10k streams and the intermediate `Vec`s were
    /// measurable allocator churn.
    #[allow(clippy::too_many_arguments)]
    fn assemble_point_samples(
        &self,
        x: &[f64],
        configs: &[eva_workload::VideoConfig],
        assignment: &eva_sched::Assignment,
        uplinks: &[f64],
        n_mc: usize,
        seed: u64,
        predict: &PredictFn<'_>,
    ) -> Vec<f64> {
        let m = self.scenario.n_videos();

        // Per-(camera, objective) marginal draws with content-hash CRN.
        // draws[cam][obj][mc]; latency handled per split part below.
        let mut agg = vec![[0.0f64; N_OBJECTIVES]; n_mc];
        #[allow(clippy::needless_range_loop)]
        for cam in 0..m {
            let uplink = uplinks[cam];
            for obj in [idx::ACCURACY, idx::NETWORK, idx::COMPUTATION, idx::ENERGY] {
                let (mu, var) = predict(cam, obj, &configs[cam], uplink, 0);
                let sd = var.max(0.0).sqrt();
                let mut rng = crn_stream(seed, sub_key(cam, obj, &configs[cam], uplink));
                for row in agg.iter_mut() {
                    let mut v = mu + sd * standard_normal(&mut rng);
                    if obj == idx::ACCURACY {
                        v = v.clamp(0.0, 1.0);
                    } else {
                        v = v.max(0.0);
                    }
                    row[obj] += v;
                }
            }
        }
        // Latency: mean over split parts at each part's uplink.
        let n_parts = assignment.streams.len().max(1);
        for (i, st) in assignment.streams.iter().enumerate() {
            let cam = st.id.source;
            let uplink = self.scenario.planning_uplinks()[assignment.server_of[i]];
            let (mu, var) = predict(cam, idx::LATENCY, &configs[cam], uplink, i);
            let sd = var.max(0.0).sqrt();
            let mut rng = crn_stream(
                seed,
                sub_key(cam, idx::LATENCY, &configs[cam], uplink) ^ (i as u64) << 32,
            );
            for row in agg.iter_mut() {
                row[idx::LATENCY] +=
                    (mu + sd * standard_normal(&mut rng)).max(0.0) / n_parts as f64;
            }
        }

        // Normalize, evaluate the preference layer with per-row noise.
        let zeta = crn_draws(seed, hash_bits(x) ^ 0x5eed_c0de, n_mc);
        let m_f = m as f64;
        (0..n_mc)
            .map(|row| {
                let outcome = Outcome {
                    latency_s: agg[row][idx::LATENCY],
                    accuracy: agg[row][idx::ACCURACY] / m_f,
                    network_bps: agg[row][idx::NETWORK],
                    compute_tflops: agg[row][idx::COMPUTATION],
                    power_w: agg[row][idx::ENERGY],
                };
                let y = self.normalizer.normalize(&outcome);
                let (mu_g, sd_g) = self.pref.mean_and_std(&y);
                mu_g + sd_g * zeta[row]
            })
            .collect()
    }
}

impl SurrogateSampler for CompositeSampler<'_> {
    fn joint_samples(&self, xs: &[Vec<f64>], n_mc: usize, seed: u64) -> Mat {
        let cols: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| self.point_samples(x, n_mc, seed))
            .collect();
        Mat::from_fn(n_mc, xs.len(), |r, c| cols[c][r])
    }

    fn posterior_mean(&self, x: &[f64]) -> f64 {
        match self.predict_outcome(x) {
            Some(outcome) => {
                let y = self.normalizer.normalize(&outcome);
                self.pref.mean_and_std(&y).0
            }
            None => INFEASIBLE_BENEFIT,
        }
    }

    /// Batch-fill the sample cache for a whole candidate set: evaluate
    /// each (camera, objective) model once over the queries all
    /// uncached feasible points make against it
    /// ([`OutcomeModelBank::predict_objective_many`] shares a single
    /// cross-kernel matrix per model), then assemble samples per point
    /// from the batched posteriors. Query positions are pure indices —
    /// aggregate objectives query exactly once per (point, camera), and
    /// latency once per (point, split part) — so no hashing or dedup
    /// bookkeeping sits on the hot path. Bit-identical to the per-point
    /// path, so the driver's subsequent indexed calls are pure cache
    /// hits.
    fn prepare(&self, xs: &[Vec<f64>], n_mc: usize, seed: u64) {
        // Uncached points, deduped by content hash.
        let mut todo: Vec<(u64, &Vec<f64>)> = Vec::new();
        {
            let cache = self.cache.lock();
            let mut seen = HashSet::new();
            for x in xs {
                let h = hash_bits(x);
                if !cache.contains_key(&(h, seed, n_mc)) && seen.insert(h) {
                    todo.push((h, x));
                }
            }
        }
        if todo.len() < 2 {
            return; // nothing worth batching — the per-point path covers it
        }

        struct Feasible<'p> {
            hash: u64,
            x: &'p [f64],
            configs: Vec<eva_workload::VideoConfig>,
            assignment: eva_sched::Assignment,
            uplinks: Vec<f64>,
        }
        let mut feasible: Vec<Feasible> = Vec::new();
        let mut settled: Vec<((u64, u64, usize), Vec<f64>)> = Vec::new();
        for (hash, x) in todo {
            let configs = decode_joint(self.scenario, x);
            match self.scenario.schedule(&configs) {
                Ok(assignment) => {
                    let uplinks = self.uplink_map(&assignment);
                    feasible.push(Feasible {
                        hash,
                        x,
                        configs,
                        assignment,
                        uplinks,
                    });
                }
                Err(_) => settled.push(((hash, seed, n_mc), vec![INFEASIBLE_BENEFIT; n_mc])),
            }
        }

        const AGG_OBJS: [usize; 4] = [idx::ACCURACY, idx::NETWORK, idx::COMPUTATION, idx::ENERGY];
        let mut agg_slot = [usize::MAX; N_OBJECTIVES];
        for (k, &obj) in AGG_OBJS.iter().enumerate() {
            agg_slot[obj] = k;
        }
        let n_videos = self.scenario.n_videos();
        let planning = self.scenario.planning_uplinks();

        // Aggregate objectives: point `p` queries camera `cam` at
        // `(configs[cam], uplinks[cam])`, so the batch for each model is
        // simply the points in order — `agg_post[cam * 4 + slot][p]`.
        // Cameras are independent (pure posterior reads), so the
        // batches run in parallel; ordered collect keeps the layout.
        let agg_post: Vec<Vec<(f64, f64)>> = (0..n_videos)
            .into_par_iter()
            .flat_map(|cam| {
                // One feature build per camera, shared by all four
                // objective batches (the GPs agree on the feature map).
                let xs: Vec<Vec<f64>> = feasible
                    .iter()
                    .map(|f| features_of(&f.configs[cam], f.uplinks[cam]))
                    .collect();
                AGG_OBJS
                    .iter()
                    .map(|&obj| self.bank.model(cam, obj).predict_many(&xs))
                    .collect::<Vec<_>>()
            })
            .collect();

        // Latency: one query per (point, split part), batched per
        // camera; `lat_slot[p][part]` is the part's position in its
        // camera's batch.
        let mut lat_queries: Vec<Vec<(eva_workload::VideoConfig, f64)>> =
            vec![Vec::new(); n_videos];
        let mut lat_slot: Vec<Vec<usize>> = Vec::with_capacity(feasible.len());
        for f in &feasible {
            let mut slots = Vec::with_capacity(f.assignment.streams.len());
            for (i, st) in f.assignment.streams.iter().enumerate() {
                let cam = st.id.source;
                let batch = &mut lat_queries[cam];
                slots.push(batch.len());
                batch.push((f.configs[cam], planning[f.assignment.server_of[i]]));
            }
            lat_slot.push(slots);
        }
        let lat_post: Vec<Vec<(f64, f64)>> = lat_queries
            .par_iter()
            .enumerate()
            .map(|(cam, batch)| {
                if batch.is_empty() {
                    Vec::new()
                } else {
                    self.bank.predict_objective_many(cam, idx::LATENCY, batch)
                }
            })
            .collect();

        // Points are independent too: every CRN stream is seeded by its
        // own (seed, sub-key) pair and accumulation stays sequential
        // *within* a point, so the samples are bit-identical to the
        // sequential per-point loop.
        let assembled: Vec<((u64, u64, usize), Vec<f64>)> = feasible
            .par_iter()
            .enumerate()
            .map(|(p, f)| {
                let slots = &lat_slot[p];
                let predict = |cam: usize,
                               obj: usize,
                               _cfg: &eva_workload::VideoConfig,
                               _uplink: f64,
                               part: usize|
                 -> (f64, f64) {
                    if obj == idx::LATENCY {
                        lat_post[cam][slots[part]]
                    } else {
                        agg_post[cam * AGG_OBJS.len() + agg_slot[obj]][p]
                    }
                };
                let samples = self.assemble_point_samples(
                    f.x,
                    &f.configs,
                    &f.assignment,
                    &f.uplinks,
                    n_mc,
                    seed,
                    &predict,
                );
                ((f.hash, seed, n_mc), samples)
            })
            .collect();
        settled.extend(assembled);

        let mut cache = self.cache.lock();
        for (key, samples) in settled {
            cache.insert(key, samples);
        }
    }
}

/// Deterministic generator for one sub-point's CRN stream.
fn crn_stream(seed: u64, key: u64) -> StdRng {
    StdRng::seed_from_u64(child_seed(seed, key))
}

/// Deterministic per-sub-point standard-normal draws (the CRN streams).
fn crn_draws(seed: u64, key: u64, n: usize) -> Vec<f64> {
    standard_normal_vec(&mut crn_stream(seed, key), n)
}

fn sub_key(cam: usize, obj: usize, config: &eva_workload::VideoConfig, uplink: f64) -> u64 {
    let mut h = (cam as u64) << 48 | (obj as u64) << 40;
    h ^= config.resolution.to_bits().rotate_left(17);
    h ^= config.fps.to_bits().rotate_left(31);
    h ^= uplink.to_bits().rotate_left(7);
    h
}

fn hash_bits(x: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in x {
        h = (h ^ v.to_bits()).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benefit::TruePreference;
    use crate::models::OutcomeModelBank;
    use crate::pool::encode_joint;
    use eva_stats::rng::seeded;
    use eva_workload::VideoConfig;

    fn setup() -> (Scenario, OutcomeModelBank, TruePreference) {
        let sc = Scenario::uniform(3, 2, 20e6, 41);
        let mut rng = seeded(9);
        let bank = OutcomeModelBank::fit_initial(&sc, 40, 0.01, &mut rng).unwrap();
        let pref = TruePreference::uniform(&sc);
        (sc, bank, pref)
    }

    #[test]
    fn oracle_sampler_is_deterministic_with_zero_spread() {
        let (sc, bank, pref) = setup();
        let normalizer = OutcomeNormalizer::for_scenario(&sc);
        let sampler =
            CompositeSampler::new(&sc, bank, PreferenceEval::Oracle(pref.clone()), normalizer);
        let x = encode_joint(&sc, &[VideoConfig::new(600.0, 5.0); 3]);
        let s = sampler.joint_samples(std::slice::from_ref(&x), 16, 3);
        // Oracle preference has zero spread in g, but outcome GPs still
        // inject spread; samples vary across rows yet share the mean.
        let mean: f64 = (0..16).map(|r| s[(r, 0)]).sum::<f64>() / 16.0;
        let pm = sampler.posterior_mean(&x);
        assert!((mean - pm).abs() < 0.1, "MC mean {mean} vs analytic {pm}");
    }

    #[test]
    fn crn_makes_same_seed_identical() {
        let (sc, bank, pref) = setup();
        let normalizer = OutcomeNormalizer::for_scenario(&sc);
        let sampler = CompositeSampler::new(&sc, bank, PreferenceEval::Oracle(pref), normalizer);
        let a = encode_joint(&sc, &[VideoConfig::new(600.0, 5.0); 3]);
        let b = encode_joint(&sc, &[VideoConfig::new(900.0, 10.0); 3]);
        // Same point in two different batches, same seed: identical column.
        let s1 = sampler.joint_samples(&[a.clone(), b.clone()], 8, 77);
        let s2 = sampler.joint_samples(&[b, a.clone()], 8, 77);
        for r in 0..8 {
            assert_eq!(s1[(r, 0)], s2[(r, 1)], "CRN violated at row {r}");
        }
        // Different seed: different draws.
        let s3 = sampler.joint_samples(&[a], 8, 78);
        assert!((0..8).any(|r| s3[(r, 0)] != s1[(r, 0)]));
    }

    #[test]
    fn better_configs_get_higher_posterior_mean() {
        let (sc, bank, pref) = setup();
        let normalizer = OutcomeNormalizer::for_scenario(&sc);
        let sampler =
            CompositeSampler::new(&sc, bank, PreferenceEval::Oracle(pref.clone()), normalizer);
        // Under uniform weights, an extreme config (huge resource burn)
        // should score below a balanced mid config.
        let balanced = encode_joint(&sc, &[VideoConfig::new(720.0, 5.0); 3]);
        let extreme = encode_joint(&sc, &[VideoConfig::new(360.0, 1.0); 3]);
        let mu_b = sampler.posterior_mean(&balanced);
        // True benefits for reference.
        let tb = pref.benefit(&sc.evaluate(&decode_joint(&sc, &balanced)).unwrap().outcome);
        let te = pref.benefit(&sc.evaluate(&decode_joint(&sc, &extreme)).unwrap().outcome);
        let mu_e = sampler.posterior_mean(&extreme);
        // Surrogate ordering matches the truth ordering.
        assert_eq!(mu_b > mu_e, tb > te, "b: {mu_b}/{tb}, e: {mu_e}/{te}");
    }

    #[test]
    fn prepared_batch_is_bit_identical_to_per_point_path() {
        let (sc, bank, pref) = setup();
        let normalizer = OutcomeNormalizer::for_scenario(&sc);
        let fast = CompositeSampler::new(
            &sc,
            bank.clone(),
            PreferenceEval::Oracle(pref.clone()),
            normalizer.clone(),
        );
        let slow = CompositeSampler::new(&sc, bank, PreferenceEval::Oracle(pref), normalizer);
        // A mixed pool: distinct feasible points, one duplicate, one
        // infeasible point.
        let xs = vec![
            encode_joint(&sc, &[VideoConfig::new(600.0, 5.0); 3]),
            encode_joint(&sc, &[VideoConfig::new(900.0, 10.0); 3]),
            encode_joint(&sc, &[VideoConfig::new(600.0, 5.0); 3]),
            encode_joint(&sc, &[VideoConfig::new(2160.0, 30.0); 3]),
            encode_joint(&sc, &[VideoConfig::new(1440.0, 20.0); 3]),
        ];
        fast.prepare(&xs, 12, 77);
        let a = fast.joint_samples(&xs, 12, 77);
        let b = slow.joint_samples(&xs, 12, 77);
        for r in 0..12 {
            for c in 0..xs.len() {
                assert_eq!(
                    a[(r, c)].to_bits(),
                    b[(r, c)].to_bits(),
                    "mismatch at ({r},{c})"
                );
            }
        }
        // Indexed access through the default trait path agrees too.
        use eva_bo::SurrogateSampler as _;
        let sub = fast.joint_samples_indexed(&xs, &[4, 0, 3], 12, 77);
        for r in 0..12 {
            assert_eq!(sub[(r, 0)].to_bits(), b[(r, 4)].to_bits());
            assert_eq!(sub[(r, 1)].to_bits(), b[(r, 0)].to_bits());
            assert_eq!(sub[(r, 2)].to_bits(), b[(r, 3)].to_bits());
        }
    }

    #[test]
    fn infeasible_point_gets_penalty() {
        let (sc, bank, pref) = setup();
        let normalizer = OutcomeNormalizer::for_scenario(&sc);
        let sampler = CompositeSampler::new(&sc, bank, PreferenceEval::Oracle(pref), normalizer);
        // 3 maxed-out cameras on 2 servers: unschedulable.
        let x = encode_joint(&sc, &[VideoConfig::new(2160.0, 30.0); 3]);
        let s = sampler.joint_samples(std::slice::from_ref(&x), 4, 1);
        for r in 0..4 {
            assert_eq!(s[(r, 0)], INFEASIBLE_BENEFIT);
        }
        assert_eq!(sampler.posterior_mean(&x), INFEASIBLE_BENEFIT);
    }

    #[test]
    fn bonded_planning_belief_drives_latency_prediction() {
        use eva_workload::{BondPolicy, BondedLink, LinkBundle, LinkModel};

        let (sc, bank, pref) = setup();
        let normalizer = OutcomeNormalizer::for_scenario(&sc);
        // The trio bundle stripes to ~10 Mbps effective — half the
        // 20 Mbps provisioned rate the sampler would otherwise plan on.
        let frame_bits = 5e5;
        let trio = || {
            LinkBundle::new(vec![
                BondedLink::new(LinkModel::constant(12e6), 0.030),
                BondedLink::new(LinkModel::constant(8e6), 0.080),
                BondedLink::new(LinkModel::constant(5e6), 0.200),
            ])
        };
        let eff = trio().effective_rate_bps(BondPolicy::EarliestDelivery, frame_bits);
        let bonded = sc
            .clone()
            .with_link_bundles(vec![trio(); 3], BondPolicy::EarliestDelivery)
            .with_bonded_planning(frame_bits, 1.0);
        let explicit = sc.clone().with_planning_uplinks(vec![eff; 2], 1.0);

        let x = encode_joint(&sc, &[VideoConfig::new(720.0, 10.0); 3]);

        // Same belief, same prediction — bit-identically: the bonded
        // scenario's planning path is exactly the explicit override.
        let via_bond = CompositeSampler::new(
            &bonded,
            bank.clone(),
            PreferenceEval::Oracle(pref.clone()),
            normalizer.clone(),
        )
        .predict_outcome(&x)
        .unwrap();
        let via_override = CompositeSampler::new(
            &explicit,
            bank.clone(),
            PreferenceEval::Oracle(pref.clone()),
            normalizer.clone(),
        )
        .predict_outcome(&x)
        .unwrap();
        assert_eq!(
            via_bond.latency_s.to_bits(),
            via_override.latency_s.to_bits()
        );

        // And the halved belief must actually reach the latency GP:
        // the bonded prediction differs from oracle-B planning (the GP
        // is queried at uplink ≈ 10 Mbps instead of 20 Mbps).
        let oracle = CompositeSampler::new(
            &sc,
            bank.clone(),
            PreferenceEval::Oracle(pref.clone()),
            normalizer.clone(),
        )
        .predict_outcome(&x)
        .unwrap();
        assert_ne!(
            via_bond.latency_s.to_bits(),
            oracle.latency_s.to_bits(),
            "bonded belief never reached the latency prediction"
        );
    }

    #[test]
    fn predicted_outcome_close_to_truth() {
        let (sc, bank, _) = setup();
        let normalizer = OutcomeNormalizer::for_scenario(&sc);
        let sampler = CompositeSampler::new(
            &sc,
            bank,
            PreferenceEval::Oracle(TruePreference::uniform(&sc)),
            normalizer,
        );
        let configs = vec![VideoConfig::new(720.0, 10.0); 3];
        let x = encode_joint(&sc, &configs);
        let predicted = sampler.predict_outcome(&x).unwrap();
        let truth = sc.evaluate(&configs).unwrap().outcome;
        assert!((predicted.accuracy - truth.accuracy).abs() < 0.05);
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-9);
        assert!(rel(predicted.network_bps, truth.network_bps) < 0.15);
        assert!(rel(predicted.power_w, truth.power_w) < 0.15);
        assert!(rel(predicted.latency_s, truth.latency_s) < 0.25);
    }
}
