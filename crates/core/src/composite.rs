//! The composite surrogate `g(f(x))`: outcome-GP samples pushed through
//! the preference model.
//!
//! qNEI (Eq. 12) integrates the acquisition over the *posterior of the
//! benefit*, which in PaMO is the composition of two learned models.
//! Sampling that composition jointly across candidates would require a
//! preference-GP joint posterior over `n_mc × n_points` outcome vectors
//! — cubic and prohibitive. We instead sample **marginally per point
//! with common random numbers**: every distinct (camera, objective,
//! config, uplink) sub-point and every distinct joint candidate derives
//! its noise stream deterministically from the acquisition seed and its
//! own content hash. Identical sub-configurations therefore receive
//! identical draws across candidate batches (the correlation that
//! matters for comparing batches), while cross-point correlation is
//! approximated as independence. BoTorch's qNEI makes the analogous
//! MC-with-CRN trade, just with full joint GP sampling.

use std::collections::HashMap;

use eva_bo::SurrogateSampler;
use eva_linalg::Mat;
use eva_prefgp::PreferenceModel;
use eva_stats::rng::{child_seed, standard_normal_vec};
use eva_workload::outcome::idx;
use eva_workload::{Outcome, Scenario, N_OBJECTIVES};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::benefit::{OutcomeNormalizer, TruePreference};
use crate::models::OutcomeModelBank;
use crate::pool::decode_joint;

/// Benefit assigned to joint configs with no zero-jitter placement.
/// Far below any reachable utility on either the learned (GP-prior
/// scale ~1) or oracle (≥ −Σw) benefit scale.
pub const INFEASIBLE_BENEFIT: f64 = -1.0e3;

/// The preference layer: learned GP or the oracle truth (PaMO+).
#[derive(Clone)]
pub enum PreferenceEval {
    /// The Laplace preference GP of Sec. 4.2.
    Learned(PreferenceModel),
    /// The hidden true preference (Eq. 13) — the PaMO+ upper bound.
    Oracle(TruePreference),
}

impl PreferenceEval {
    /// Posterior mean and standard deviation of the utility of a
    /// normalized outcome vector (oracle: exact value, zero spread).
    pub fn mean_and_std(&self, y_norm: &[f64]) -> (f64, f64) {
        match self {
            PreferenceEval::Learned(model) => {
                let (mu, var) = model.predict_utility(y_norm);
                (mu, var.max(0.0).sqrt())
            }
            PreferenceEval::Oracle(pref) => (pref.benefit_of_normalized(y_norm), 0.0),
        }
    }
}

/// The composite `g(f(x))` sampler over joint-configuration encodings.
pub struct CompositeSampler<'a> {
    scenario: &'a Scenario,
    bank: OutcomeModelBank,
    pref: PreferenceEval,
    normalizer: OutcomeNormalizer,
    /// Memo: (point hash, seed, n_mc) → benefit samples. Exact because
    /// every sample stream is deterministic in those keys.
    cache: Mutex<HashMap<(u64, u64, usize), Vec<f64>>>,
}

impl<'a> CompositeSampler<'a> {
    /// Assemble the surrogate from its fitted parts.
    pub fn new(
        scenario: &'a Scenario,
        bank: OutcomeModelBank,
        pref: PreferenceEval,
        normalizer: OutcomeNormalizer,
    ) -> Self {
        CompositeSampler {
            scenario,
            bank,
            pref,
            normalizer,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Predictive mean aggregate outcome of a joint config (Eq. 2-5
    /// assembled from the outcome-GP means under the Algorithm-1
    /// placement); `None` if unschedulable.
    pub fn predict_outcome(&self, x: &[f64]) -> Option<Outcome> {
        let configs = decode_joint(self.scenario, x);
        let assignment = self.scenario.schedule(&configs).ok()?;
        let m = self.scenario.n_videos() as f64;

        let mut acc = 0.0;
        let mut net = 0.0;
        let mut com = 0.0;
        let mut eng = 0.0;
        #[allow(clippy::needless_range_loop)]
        for cam in 0..self.scenario.n_videos() {
            let uplink = self.camera_uplink(&assignment, cam);
            let o = self.bank.predict(cam, &configs[cam], uplink);
            acc += o.accuracy;
            net += o.network_bps;
            com += o.compute_tflops;
            eng += o.power_w;
        }
        let mut lat = 0.0;
        for (i, st) in assignment.streams.iter().enumerate() {
            let cam = st.id.source;
            let uplink = self.scenario.planning_uplinks()[assignment.server_of[i]];
            let (mu, _) = self
                .bank
                .predict_objective(cam, idx::LATENCY, &configs[cam], uplink);
            lat += mu;
        }
        lat /= assignment.streams.len().max(1) as f64;

        Some(Outcome {
            latency_s: lat,
            accuracy: acc / m,
            network_bps: net,
            compute_tflops: com,
            power_w: eng,
        })
    }

    fn camera_uplink(&self, assignment: &eva_sched::Assignment, cam: usize) -> f64 {
        assignment
            .streams
            .iter()
            .position(|s| s.id.source == cam)
            .map(|i| self.scenario.planning_uplinks()[assignment.server_of[i]])
            .unwrap_or_else(|| self.scenario.planning_uplinks()[0])
    }

    /// Benefit samples at one joint-config point.
    fn point_samples(&self, x: &[f64], n_mc: usize, seed: u64) -> Vec<f64> {
        let key = (hash_bits(x), seed, n_mc);
        if let Some(hit) = self.cache.lock().get(&key) {
            return hit.clone();
        }
        let samples = self.compute_point_samples(x, n_mc, seed);
        self.cache.lock().insert(key, samples.clone());
        samples
    }

    fn compute_point_samples(&self, x: &[f64], n_mc: usize, seed: u64) -> Vec<f64> {
        let configs = decode_joint(self.scenario, x);
        let assignment = match self.scenario.schedule(&configs) {
            Ok(a) => a,
            Err(_) => return vec![INFEASIBLE_BENEFIT; n_mc],
        };
        let m = self.scenario.n_videos();

        // Per-(camera, objective) marginal draws with content-hash CRN.
        // draws[cam][obj][mc]; latency handled per split part below.
        let mut agg = vec![[0.0f64; N_OBJECTIVES]; n_mc];
        #[allow(clippy::needless_range_loop)]
        for cam in 0..m {
            let uplink = self.camera_uplink(&assignment, cam);
            for obj in [idx::ACCURACY, idx::NETWORK, idx::COMPUTATION, idx::ENERGY] {
                let (mu, var) = self.bank.predict_objective(cam, obj, &configs[cam], uplink);
                let sd = var.max(0.0).sqrt();
                let draws = crn_draws(seed, sub_key(cam, obj, &configs[cam], uplink), n_mc);
                for (row, z) in draws.iter().enumerate() {
                    let mut v = mu + sd * z;
                    if obj == idx::ACCURACY {
                        v = v.clamp(0.0, 1.0);
                    } else {
                        v = v.max(0.0);
                    }
                    agg[row][obj] += v;
                }
            }
        }
        // Latency: mean over split parts at each part's uplink.
        let n_parts = assignment.streams.len().max(1);
        for (i, st) in assignment.streams.iter().enumerate() {
            let cam = st.id.source;
            let uplink = self.scenario.planning_uplinks()[assignment.server_of[i]];
            let (mu, var) = self
                .bank
                .predict_objective(cam, idx::LATENCY, &configs[cam], uplink);
            let sd = var.max(0.0).sqrt();
            let draws = crn_draws(
                seed,
                sub_key(cam, idx::LATENCY, &configs[cam], uplink) ^ (i as u64) << 32,
                n_mc,
            );
            for (row, z) in draws.iter().enumerate() {
                agg[row][idx::LATENCY] += (mu + sd * z).max(0.0) / n_parts as f64;
            }
        }

        // Normalize, evaluate the preference layer with per-row noise.
        let zeta = crn_draws(seed, hash_bits(x) ^ 0x5eed_c0de, n_mc);
        let m_f = m as f64;
        (0..n_mc)
            .map(|row| {
                let outcome = Outcome {
                    latency_s: agg[row][idx::LATENCY],
                    accuracy: agg[row][idx::ACCURACY] / m_f,
                    network_bps: agg[row][idx::NETWORK],
                    compute_tflops: agg[row][idx::COMPUTATION],
                    power_w: agg[row][idx::ENERGY],
                };
                let y = self.normalizer.normalize(&outcome);
                let (mu_g, sd_g) = self.pref.mean_and_std(&y);
                mu_g + sd_g * zeta[row]
            })
            .collect()
    }
}

impl SurrogateSampler for CompositeSampler<'_> {
    fn joint_samples(&self, xs: &[Vec<f64>], n_mc: usize, seed: u64) -> Mat {
        let cols: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| self.point_samples(x, n_mc, seed))
            .collect();
        Mat::from_fn(n_mc, xs.len(), |r, c| cols[c][r])
    }

    fn posterior_mean(&self, x: &[f64]) -> f64 {
        match self.predict_outcome(x) {
            Some(outcome) => {
                let y = self.normalizer.normalize(&outcome);
                self.pref.mean_and_std(&y).0
            }
            None => INFEASIBLE_BENEFIT,
        }
    }
}

/// Deterministic per-sub-point standard-normal draws (the CRN streams).
fn crn_draws(seed: u64, key: u64, n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(child_seed(seed, key));
    standard_normal_vec(&mut rng, n)
}

fn sub_key(cam: usize, obj: usize, config: &eva_workload::VideoConfig, uplink: f64) -> u64 {
    let mut h = (cam as u64) << 48 | (obj as u64) << 40;
    h ^= config.resolution.to_bits().rotate_left(17);
    h ^= config.fps.to_bits().rotate_left(31);
    h ^= uplink.to_bits().rotate_left(7);
    h
}

fn hash_bits(x: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in x {
        h = (h ^ v.to_bits()).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benefit::TruePreference;
    use crate::models::OutcomeModelBank;
    use crate::pool::encode_joint;
    use eva_stats::rng::seeded;
    use eva_workload::VideoConfig;

    fn setup() -> (Scenario, OutcomeModelBank, TruePreference) {
        let sc = Scenario::uniform(3, 2, 20e6, 41);
        let mut rng = seeded(9);
        let bank = OutcomeModelBank::fit_initial(&sc, 40, 0.01, &mut rng).unwrap();
        let pref = TruePreference::uniform(&sc);
        (sc, bank, pref)
    }

    #[test]
    fn oracle_sampler_is_deterministic_with_zero_spread() {
        let (sc, bank, pref) = setup();
        let normalizer = OutcomeNormalizer::for_scenario(&sc);
        let sampler =
            CompositeSampler::new(&sc, bank, PreferenceEval::Oracle(pref.clone()), normalizer);
        let x = encode_joint(&sc, &[VideoConfig::new(600.0, 5.0); 3]);
        let s = sampler.joint_samples(std::slice::from_ref(&x), 16, 3);
        // Oracle preference has zero spread in g, but outcome GPs still
        // inject spread; samples vary across rows yet share the mean.
        let mean: f64 = (0..16).map(|r| s[(r, 0)]).sum::<f64>() / 16.0;
        let pm = sampler.posterior_mean(&x);
        assert!((mean - pm).abs() < 0.1, "MC mean {mean} vs analytic {pm}");
    }

    #[test]
    fn crn_makes_same_seed_identical() {
        let (sc, bank, pref) = setup();
        let normalizer = OutcomeNormalizer::for_scenario(&sc);
        let sampler = CompositeSampler::new(&sc, bank, PreferenceEval::Oracle(pref), normalizer);
        let a = encode_joint(&sc, &[VideoConfig::new(600.0, 5.0); 3]);
        let b = encode_joint(&sc, &[VideoConfig::new(900.0, 10.0); 3]);
        // Same point in two different batches, same seed: identical column.
        let s1 = sampler.joint_samples(&[a.clone(), b.clone()], 8, 77);
        let s2 = sampler.joint_samples(&[b, a.clone()], 8, 77);
        for r in 0..8 {
            assert_eq!(s1[(r, 0)], s2[(r, 1)], "CRN violated at row {r}");
        }
        // Different seed: different draws.
        let s3 = sampler.joint_samples(&[a], 8, 78);
        assert!((0..8).any(|r| s3[(r, 0)] != s1[(r, 0)]));
    }

    #[test]
    fn better_configs_get_higher_posterior_mean() {
        let (sc, bank, pref) = setup();
        let normalizer = OutcomeNormalizer::for_scenario(&sc);
        let sampler =
            CompositeSampler::new(&sc, bank, PreferenceEval::Oracle(pref.clone()), normalizer);
        // Under uniform weights, an extreme config (huge resource burn)
        // should score below a balanced mid config.
        let balanced = encode_joint(&sc, &[VideoConfig::new(720.0, 5.0); 3]);
        let extreme = encode_joint(&sc, &[VideoConfig::new(360.0, 1.0); 3]);
        let mu_b = sampler.posterior_mean(&balanced);
        // True benefits for reference.
        let tb = pref.benefit(&sc.evaluate(&decode_joint(&sc, &balanced)).unwrap().outcome);
        let te = pref.benefit(&sc.evaluate(&decode_joint(&sc, &extreme)).unwrap().outcome);
        let mu_e = sampler.posterior_mean(&extreme);
        // Surrogate ordering matches the truth ordering.
        assert_eq!(mu_b > mu_e, tb > te, "b: {mu_b}/{tb}, e: {mu_e}/{te}");
    }

    #[test]
    fn infeasible_point_gets_penalty() {
        let (sc, bank, pref) = setup();
        let normalizer = OutcomeNormalizer::for_scenario(&sc);
        let sampler = CompositeSampler::new(&sc, bank, PreferenceEval::Oracle(pref), normalizer);
        // 3 maxed-out cameras on 2 servers: unschedulable.
        let x = encode_joint(&sc, &[VideoConfig::new(2160.0, 30.0); 3]);
        let s = sampler.joint_samples(std::slice::from_ref(&x), 4, 1);
        for r in 0..4 {
            assert_eq!(s[(r, 0)], INFEASIBLE_BENEFIT);
        }
        assert_eq!(sampler.posterior_mean(&x), INFEASIBLE_BENEFIT);
    }

    #[test]
    fn predicted_outcome_close_to_truth() {
        let (sc, bank, _) = setup();
        let normalizer = OutcomeNormalizer::for_scenario(&sc);
        let sampler = CompositeSampler::new(
            &sc,
            bank,
            PreferenceEval::Oracle(TruePreference::uniform(&sc)),
            normalizer,
        );
        let configs = vec![VideoConfig::new(720.0, 10.0); 3];
        let x = encode_joint(&sc, &configs);
        let predicted = sampler.predict_outcome(&x).unwrap();
        let truth = sc.evaluate(&configs).unwrap().outcome;
        assert!((predicted.accuracy - truth.accuracy).abs() < 0.05);
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-9);
        assert!(rel(predicted.network_bps, truth.network_bps) < 0.15);
        assert!(rel(predicted.power_w, truth.power_w) < 0.15);
        assert!(rel(predicted.latency_s, truth.latency_s) < 0.25);
    }
}
