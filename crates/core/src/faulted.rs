//! Failure-aware online scheduling: [`run_online`]'s sibling for a
//! world where servers crash, cameras drop out, and frames get lost.
//!
//! The deployment model matches Sec. 2.1's periodic controller, with a
//! failure detector bolted on: every server emits heartbeats while up;
//! at each epoch boundary the controller marks a server *alive* only if
//! it has heard a heartbeat recently (the server was continuously up
//! through the trailing heartbeat window — a freshly recovered server
//! is still invisible for one detection lag). The fault-aware scheduler
//! then re-runs Algorithm 1 + the BO loop restricted to survivors
//! ([`crate::pamo::Pamo::decide_surviving`]); the fault-oblivious
//! baseline keeps planning on the full server list and pays for it when
//! its placements land on dead machines. When even the survivors cannot
//! host a zero-jitter placement, the aware loop degrades to the best
//! *cheaper uniform* configuration that still fits (the fallback
//! ladder), and restores automatically once servers rejoin — recovery
//! needs no special casing because liveness is re-detected every epoch.
//!
//! Realized (as opposed to planned) benefit charges the faults: a
//! camera's accuracy contribution is scaled by the fraction of the
//! epoch its frames were actually generated, delivered (surviving
//! Bernoulli loss after bounded retries) and processed by an up server;
//! compute/energy are only spent while the processing server is up;
//! network is spent whenever the camera transmits. With the zero plan
//! every scale factor is exactly 1.0 and the whole module delegates to
//! [`run_online`] — bit-identical by construction.

use eva_fault::process::secs_to_ticks;
use eva_fault::{AvailabilityTrace, FaultPlan};
use eva_obs::{emit_warn, span, NoopRecorder, ObsEvent, Phase, Recorder};
use eva_sched::Assignment;
use eva_workload::{DriftingScenario, Outcome, Scenario, VideoConfig};
use rand::Rng;

use crate::benefit::TruePreference;
use crate::online::{run_online_recorded, EpochRecord, OnlineRun};
use crate::pamo::{Pamo, PamoConfig};

/// Knobs of the failure-aware online loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultedRunConfig {
    /// Wall-clock length of one scheduling epoch (seconds).
    pub epoch_s: f64,
    /// Heartbeat timeout: a server is detected alive at an epoch
    /// boundary only if it was continuously up over the trailing window
    /// of this length (detection lag for fresh recoveries).
    pub heartbeat_s: f64,
    /// `true` — re-plan on detected survivors (fault-aware PaMO);
    /// `false` — ignore the detector and plan on all servers (the
    /// fault-oblivious baseline). Realized benefit charges the truth
    /// either way.
    pub fault_aware: bool,
}

impl Default for FaultedRunConfig {
    fn default() -> Self {
        FaultedRunConfig {
            epoch_s: 30.0,
            heartbeat_s: 2.0,
            fault_aware: true,
        }
    }
}

/// Run PaMO online under a fault plan.
///
/// With `plan = None` or a zero plan this *is* [`run_online`] — same
/// code path, bit-identical records. Otherwise each epoch detects the
/// surviving servers, plans (restricted to survivors when
/// `cfg.fault_aware`), degrades to a feasible uniform fallback when the
/// decision pipeline fails, and records the *realized* benefit under
/// the materialized fault traces.
#[allow(clippy::too_many_arguments)]
pub fn run_online_faulted<R: Rng + ?Sized>(
    drifting: &mut DriftingScenario,
    config: &PamoConfig,
    weights: [f64; eva_workload::N_OBJECTIVES],
    n_epochs: usize,
    plan: Option<&FaultPlan>,
    cfg: &FaultedRunConfig,
    rng: &mut R,
) -> OnlineRun {
    run_online_faulted_recorded(
        drifting,
        config,
        weights,
        n_epochs,
        plan,
        cfg,
        rng,
        &NoopRecorder,
    )
}

/// [`run_online_faulted`] with telemetry: epochs run under `epoch`
/// spans, fallback-ladder scans under `fallback` spans, liveness
/// transitions become structured info events, and degradations become
/// warn events (mirrored to stderr). With a [`NoopRecorder`] this is
/// exactly the plain path — same RNG stream, bit-identical records.
#[allow(clippy::too_many_arguments)]
pub fn run_online_faulted_recorded<R: Rng + ?Sized>(
    drifting: &mut DriftingScenario,
    config: &PamoConfig,
    weights: [f64; eva_workload::N_OBJECTIVES],
    n_epochs: usize,
    plan: Option<&FaultPlan>,
    cfg: &FaultedRunConfig,
    rng: &mut R,
    rec: &dyn Recorder,
) -> OnlineRun {
    assert!(n_epochs > 0, "run_online_faulted: zero epochs");
    assert!(cfg.epoch_s > 0.0, "run_online_faulted: non-positive epoch");
    assert!(
        cfg.heartbeat_s >= 0.0,
        "run_online_faulted: negative heartbeat"
    );
    let Some(plan) = plan.filter(|p| !p.is_zero()) else {
        // The observational identity: nothing can fail, so the
        // fault-free engine runs — bit-identical by delegation.
        return run_online_recorded(drifting, config, weights, n_epochs, rng, rec);
    };

    let initial = drifting.snapshot();
    assert_eq!(
        plan.servers.len(),
        initial.n_servers(),
        "run_online_faulted: plan/server count mismatch"
    );
    assert_eq!(
        plan.cameras.len(),
        initial.n_videos(),
        "run_online_faulted: plan/camera count mismatch"
    );
    let pamo = Pamo::new(config.clone());

    let epoch_len = secs_to_ticks(cfg.epoch_s).max(1);
    let heartbeat = secs_to_ticks(cfg.heartbeat_s);
    let horizon = epoch_len * n_epochs as u64 + 1;
    let server_up = plan.server_availability(horizon);
    let camera_up = plan.camera_availability(horizon);
    // Residual per-frame loss after the retry budget: a frame survives
    // unless every one of the 1 + max_retries transmissions is lost.
    let survive: Vec<f64> = plan
        .cameras
        .iter()
        .map(|c| 1.0 - c.loss.p.powi(plan.retry.max_retries as i32 + 1))
        .collect();

    let mut static_configs: Option<Vec<VideoConfig>> = None;
    let mut epochs = Vec::with_capacity(n_epochs);
    let mut any_degraded = false;
    let mut prev_alive: Option<Vec<bool>> = None;

    for epoch in 0..n_epochs {
        let _epoch_span = span(rec, Phase::Epoch);
        if rec.enabled() {
            rec.add("online.epochs", 1);
        }
        let scenario = drifting.snapshot();
        let pref = TruePreference::new(&scenario, weights);
        let t = epoch as u64 * epoch_len;
        let window = (t, t + epoch_len);

        // Heartbeat-timeout failure detection at the epoch boundary.
        let alive: Vec<bool> = server_up
            .iter()
            .map(|up| up.is_up_throughout(t.saturating_sub(heartbeat), t))
            .collect();
        let n_alive = alive.iter().filter(|&&a| a).count();

        // Liveness transitions as structured info events (telemetry
        // only — the detector itself is silent in production logs).
        if rec.enabled() {
            let prev = prev_alive.as_deref().unwrap_or(&[]);
            for (server, &is_up) in alive.iter().enumerate() {
                let was_up = prev.get(server).copied().unwrap_or(true);
                if was_up && !is_up {
                    rec.add("fault.detections", 1);
                    rec.event(
                        ObsEvent::info(
                            "server_down_detected",
                            format!("epoch {epoch}: server {server} detected down"),
                        )
                        .with("epoch", epoch)
                        .with("server", server),
                    );
                } else if !was_up && is_up {
                    rec.add("fault.restores", 1);
                    rec.event(
                        ObsEvent::info(
                            "server_restored",
                            format!("epoch {epoch}: server {server} detected back up"),
                        )
                        .with("epoch", epoch)
                        .with("server", server),
                    );
                }
            }
        }
        prev_alive = Some(alive.clone());

        let mask: Option<&[bool]> = if cfg.fault_aware && n_alive < alive.len() {
            Some(&alive)
        } else {
            None
        };
        if cfg.fault_aware && n_alive == 0 {
            // Whole-cluster outage: nothing to schedule on. Serve
            // nothing this epoch and retry at the next boundary.
            emit_warn(
                rec,
                ObsEvent::warn(
                    "cluster_outage",
                    format!("run_online_faulted: epoch {epoch}: no servers alive — skipping"),
                )
                .with("epoch", epoch),
            );
            any_degraded = true;
            drifting.advance(rng);
            continue;
        }

        // Plan the epoch; degrade through the fallback ladder rather
        // than dying when the full pipeline cannot run.
        let (configs, assignment, fell_back) =
            match pamo.decide_surviving_recorded(&scenario, &pref, mask, rng, rec) {
                Ok(d) => match scenario.schedule_surviving_recorded(&d.configs, mask, rec) {
                    Ok(a) => (d.configs, a, false),
                    Err(_) => match fallback_uniform(&scenario, &pref, mask, rec) {
                        Some((c, a)) => (c, a, true),
                        None => {
                            emit_warn(
                                rec,
                                ObsEvent::warn(
                                    "no_fallback",
                                    format!(
                                        "run_online_faulted: epoch {epoch}: \
                                         no feasible fallback — skipping"
                                    ),
                                )
                                .with("epoch", epoch),
                            );
                            any_degraded = true;
                            drifting.advance(rng);
                            continue;
                        }
                    },
                },
                Err(e) => {
                    emit_warn(
                        rec,
                        ObsEvent::warn(
                            "decision_failed",
                            format!("run_online_faulted: epoch {epoch}: decision failed ({e})"),
                        )
                        .with("epoch", epoch),
                    );
                    match fallback_uniform(&scenario, &pref, mask, rec) {
                        Some((c, a)) => (c, a, true),
                        None => {
                            emit_warn(
                                rec,
                                ObsEvent::warn(
                                    "no_fallback",
                                    format!(
                                        "run_online_faulted: epoch {epoch}: \
                                         no feasible fallback — skipping"
                                    ),
                                )
                                .with("epoch", epoch),
                            );
                            any_degraded = true;
                            drifting.advance(rng);
                            continue;
                        }
                    }
                }
            };
        if fell_back && rec.enabled() {
            rec.add("fault.fallbacks", 1);
        }

        let online_benefit = realized_epoch_benefit(
            &scenario,
            &configs,
            &assignment,
            &pref,
            &server_up,
            &camera_up,
            &survive,
            window,
        );
        if !online_benefit.is_finite() {
            emit_warn(
                rec,
                ObsEvent::warn(
                    "non_finite_benefit",
                    format!(
                        "run_online_faulted: epoch {epoch}: \
                         non-finite realized benefit — skipping"
                    ),
                )
                .with("epoch", epoch),
            );
            any_degraded = true;
            drifting.advance(rng);
            continue;
        }

        if static_configs.is_none() {
            static_configs = Some(configs.clone());
        }
        // The frozen epoch-0 policy, charged under the same faults.
        let static_benefit = static_configs.as_ref().and_then(|sc| {
            scenario.schedule(sc).ok().map(|a| {
                realized_epoch_benefit(
                    &scenario, sc, &a, &pref, &server_up, &camera_up, &survive, window,
                )
            })
        });

        let degraded = fell_back || n_alive < alive.len();
        any_degraded |= degraded;
        epochs.push(EpochRecord {
            epoch,
            divergence: drifting.divergence_from(&initial),
            online_benefit,
            static_benefit,
            configs,
            planning_bps: None,
            alive,
            degraded,
            rung: eva_obs::DecisionRung::Full,
        });
        drifting.advance(rng);
    }
    OnlineRun {
        epochs,
        degraded: any_degraded,
    }
}

/// The fallback ladder: scan the (resolution-, fps-ordered) config grid
/// for uniform joint configurations that still admit a zero-jitter
/// placement on the surviving servers, and keep the best one by planned
/// benefit. Cheap by construction — the grid is small and scheduling a
/// uniform config is a single Algorithm-1 run.
pub(crate) fn fallback_uniform(
    scenario: &Scenario,
    pref: &TruePreference,
    alive: Option<&[bool]>,
    rec: &dyn Recorder,
) -> Option<(Vec<VideoConfig>, Assignment)> {
    let _fallback_span = span(rec, Phase::Fallback);
    let m = scenario.n_videos();
    let mut best: Option<(f64, Vec<VideoConfig>, Assignment)> = None;
    for c in scenario.config_space().iter() {
        let configs = vec![c; m];
        let Ok(out) = scenario.evaluate_surviving(&configs, alive) else {
            continue;
        };
        let b = pref.benefit(&out.outcome);
        if !b.is_finite() {
            continue;
        }
        if best.as_ref().is_none_or(|(bb, _, _)| b > *bb) {
            best = Some((b, configs, out.assignment));
        }
    }
    best.map(|(_, c, a)| (c, a))
}

/// Score a placed configuration against the *materialized* fault traces
/// over one epoch window: per-camera accuracy scales with the fraction
/// of frames generated (camera up), delivered (residual loss after
/// retries) and processed (assigned server up); compute/energy scale
/// with processing, network with transmission. Latency keeps its
/// fault-free value — delivered frames still ride the provisioned
/// uplink, and undelivered ones are charged through accuracy.
#[allow(clippy::too_many_arguments)]
fn realized_epoch_benefit(
    scenario: &Scenario,
    configs: &[VideoConfig],
    assignment: &Assignment,
    pref: &TruePreference,
    server_up: &[AvailabilityTrace],
    camera_up: &[AvailabilityTrace],
    survive: &[f64],
    (a, b): (u64, u64),
) -> f64 {
    let m = scenario.n_videos();
    // A source may split across servers: use the mean up-fraction of
    // its parts' servers as its processing availability.
    let mut proc_frac = vec![0.0; m];
    let mut parts = vec![0usize; m];
    for (i, st) in assignment.streams.iter().enumerate() {
        proc_frac[st.id.source] += server_up[assignment.server_of[i]].up_fraction(a, b);
        parts[st.id.source] += 1;
    }
    for (f, p) in proc_frac.iter_mut().zip(&parts) {
        *f /= (*p).max(1) as f64;
    }

    let mut acc = 0.0;
    let mut net = 0.0;
    let mut com = 0.0;
    let mut eng = 0.0;
    for (cam, c) in configs.iter().enumerate() {
        let s = scenario.surfaces(cam);
        let gen = camera_up[cam].up_fraction(a, b);
        let delivered = gen * survive[cam] * proc_frac[cam];
        acc += s.accuracy(c) * delivered;
        net += s.bandwidth_bps(c) * gen;
        com += s.compute_tflops(c) * gen * proc_frac[cam];
        eng += s.power_w(c) * gen * proc_frac[cam];
    }
    let mut lat_sum = 0.0;
    for (idx, st) in assignment.streams.iter().enumerate() {
        let src = st.id.source;
        let uplink = scenario.uplinks()[assignment.server_of[idx]];
        lat_sum += scenario
            .surfaces(src)
            .e2e_latency_secs(&configs[src], uplink);
    }
    let outcome = Outcome {
        latency_s: lat_sum / assignment.streams.len().max(1) as f64,
        accuracy: acc / m as f64,
        network_bps: net,
        compute_tflops: com,
        power_w: eng,
    };
    pref.benefit(&outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::run_online;
    use crate::pamo::PreferenceSource;
    use eva_bo::{AcqKind, BoConfig};
    use eva_stats::rng::seeded;

    fn tiny_config() -> PamoConfig {
        PamoConfig {
            bo: BoConfig {
                n_init: 4,
                batch: 2,
                mc_samples: 16,
                max_iters: 3,
                delta: 0.02,
                kind: AcqKind::QNei,
            },
            pool_size: 20,
            profiling_per_camera: 20,
            profile_noise: 0.02,
            n_comparisons: 6,
            elicit_candidates: 15,
            preference: PreferenceSource::Oracle,
        }
    }

    fn base() -> Scenario {
        Scenario::uniform(3, 2, 20e6, 61)
    }

    #[test]
    fn zero_fault_run_is_bit_identical_to_run_online() {
        let sc = base();
        let plain = {
            let mut d = DriftingScenario::new(&sc, 0.08);
            run_online(&mut d, &tiny_config(), [1.0; 5], 4, &mut seeded(9))
        };
        for plan in [None, Some(FaultPlan::none(2, 3))] {
            let mut d = DriftingScenario::new(&sc, 0.08);
            let faulted = run_online_faulted(
                &mut d,
                &tiny_config(),
                [1.0; 5],
                4,
                plan.as_ref(),
                &FaultedRunConfig::default(),
                &mut seeded(9),
            );
            assert_eq!(faulted.epochs.len(), plain.epochs.len());
            assert!(!faulted.degraded);
            for (f, p) in faulted.epochs.iter().zip(&plain.epochs) {
                assert_eq!(
                    f.online_benefit.to_bits(),
                    p.online_benefit.to_bits(),
                    "epoch {} diverged",
                    f.epoch
                );
                assert_eq!(f.configs, p.configs);
                assert_eq!(
                    f.static_benefit.map(f64::to_bits),
                    p.static_benefit.map(f64::to_bits)
                );
            }
        }
    }

    #[test]
    fn crashes_mark_epochs_degraded_and_mask_dead_servers() {
        let sc = base();
        // MTTF 20 s, MTTR 40 s on a 30 s epoch: servers are down most
        // of the time, so some epoch must detect a dead server.
        let plan = FaultPlan::none(2, 3).with_server_crashes(20.0, 40.0, 11);
        let mut d = DriftingScenario::new(&sc, 0.05);
        let run = run_online_faulted(
            &mut d,
            &tiny_config(),
            [1.0; 5],
            5,
            Some(&plan),
            &FaultedRunConfig::default(),
            &mut seeded(3),
        );
        assert!(run.degraded, "heavy crashes must degrade the run");
        let saw_dead = run
            .epochs
            .iter()
            .any(|e| e.alive.iter().any(|&a| !a) && e.degraded);
        assert!(
            saw_dead || run.epochs.len() < 5,
            "no epoch ever detected a dead server"
        );
        for e in &run.epochs {
            assert!(e.online_benefit.is_finite());
            assert_eq!(e.alive.len(), 2);
        }
    }

    #[test]
    fn fault_aware_beats_fault_oblivious_under_crashes() {
        let sc = base();
        let plan = FaultPlan::none(2, 3).with_server_crashes(25.0, 60.0, 5);
        let run = |aware: bool| {
            let mut d = DriftingScenario::new(&sc, 0.05);
            run_online_faulted(
                &mut d,
                &tiny_config(),
                [1.0; 5],
                4,
                Some(&plan),
                &FaultedRunConfig {
                    fault_aware: aware,
                    ..FaultedRunConfig::default()
                },
                &mut seeded(7),
            )
        };
        let aware = run(true).mean_online_benefit();
        let oblivious = run(false).mean_online_benefit();
        assert!(
            aware >= oblivious - 1e-9,
            "fault-aware {aware} worse than oblivious {oblivious}"
        );
    }

    #[test]
    fn camera_dropout_lowers_realized_benefit() {
        let sc = base();
        let drop = FaultPlan::none(2, 3).with_camera_dropout(10.0, 50.0, 13);
        let run = |plan: Option<&FaultPlan>| {
            let mut d = DriftingScenario::new(&sc, 0.0);
            run_online_faulted(
                &mut d,
                &tiny_config(),
                [1.0; 5],
                3,
                plan,
                &FaultedRunConfig::default(),
                &mut seeded(21),
            )
            .mean_online_benefit()
        };
        let clean = run(None);
        let dropped = run(Some(&drop));
        assert!(
            dropped < clean,
            "camera dropout did not hurt: {dropped} vs {clean}"
        );
    }
}
