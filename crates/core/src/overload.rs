//! The overload-resilient control plane: budgeted serving with load
//! shedding, coalesced repairs, and checkpoint/restore.
//!
//! [`run_serving_recorded`](crate::serving::run_serving_recorded)
//! assumes the controller always has time to think: every epoch runs
//! the full PaMO pipeline and every event gets an immediate replan.
//! Under a composed overload storm (churn burst × crash burst × link
//! collapse × control-plane stragglers) that assumption breaks — the
//! decision loop itself becomes the bottleneck, and a scheduler that
//! insists on full decisions stops *serving* while it keeps
//! *optimizing*. This module adds the missing feedback loop:
//!
//! * **Decision deadline budgets.** Each epoch window grants a
//!   [`DecisionBudget`] of work units (divided by the active
//!   straggler factor of the [`ChaosSpec`]). All control work charges
//!   the budget *before* running — a refused charge degrades the
//!   action instead of overrunning, so `spent ≤ limit` holds by
//!   construction and `budget_overruns` stays 0 unless a mandatory
//!   floor (the bootstrap decision) is forced.
//! * **An escalation ladder.** The affordable rung
//!   ([`DecisionRung::Full`] → `Repair` → `Stale`) decides how much of
//!   the pipeline runs: a full budgeted PaMO decision, a re-placement
//!   of the deployed configurations, or serving the stale plan.
//!   Every degradation is emitted as a structured warn event carrying
//!   its rung, and every epoch records the rung it ran at.
//! * **Backpressure and shedding.** Blocked arrivals wait in a
//!   [`RetryQueue`]; waiters past the age bound are shed oldest-first,
//!   and above the high-water mark the loop stops probing arrivals
//!   (straight to the queue) and coalesces structural replans into
//!   batched full solves.
//! * **Checkpoint/restore.** A [`ServingSession`] runs the whole loop
//!   as an explicit step machine over *modeled* time (work units ×
//!   `unit_time_s` — never the wall clock), so a
//!   [`ControlPlaneSnapshot`] taken between any two steps and restored
//!   into a fresh session finishes with a bit-identical
//!   [`ServingRun`].
//!
//! The unbudgeted serving loop in [`crate::serving`] is untouched: an
//! inert [`ChaosSpec`] with an unenforced budget reproduces its
//! epochs, decisions and value integral exactly (only reaction times
//! differ — modeled here, wall-clock there).

use std::collections::BTreeSet;

use eva_fault::process::secs_to_ticks;
use eva_fault::{AvailabilityTrace, ChaosSpec, ChaosWindow};
use eva_obs::{
    cost, emit_warn, span, BudgetPolicy, DecisionBudget, DecisionRung, NoopRecorder, ObsEvent,
    Phase, Recorder,
};
use eva_sched::{Assignment, TICKS_PER_SEC};
use eva_serve::{
    subset_outcome, AdmissionController, AdmissionDecision, ChurnAction, ChurnConfig, ChurnEvent,
    ChurnTrace, ProbeReport, ReplanTrigger, Rescheduler, RetryQueue,
};
use eva_workload::{ClipProfile, DriftingScenario, Scenario, VideoConfig, N_OBJECTIVES};
use rand::rngs::StdRng;

use crate::benefit::{normalized_benefit, TruePreference};
use crate::error::CoreError;
use crate::faulted::fallback_uniform;
use crate::online::EpochRecord;
use crate::pamo::{Pamo, PamoConfig};
use crate::serving::{churn_clip, scope_label, Happening, ServeEvent, ServingConfig, ServingRun};
use crate::snapshot::{ControlPlaneSnapshot, SnapshotCursor};

/// Overload-control knobs layered on top of a [`ServingConfig`].
///
/// The chaos spec contributes the crash-burst fault plan and the
/// link-collapse / straggler windows; its churn storm is composed by
/// the *caller* into `ServingConfig::arrivals` (set `arrivals` to the
/// storm's MMPP and `churn_seed` to [`ChaosSpec::churn_seed`]) so the
/// serving layer keeps owning arrival generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// The composed chaos injected into the run.
    pub chaos: ChaosSpec,
    /// Budget ladder + modeled-time policy.
    pub policy: BudgetPolicy,
    /// `true`: enforce the per-window budget (degrade through the
    /// ladder). `false`: unlimited budget — the *blind* baseline that
    /// spends whatever the full pipeline costs; work is still metered
    /// so deadline misses are still counted against `policy`.
    pub enforce_budget: bool,
}

impl OverloadConfig {
    /// The budget-enforcing configuration.
    pub fn budgeted(chaos: ChaosSpec, policy: BudgetPolicy) -> Self {
        OverloadConfig {
            chaos,
            policy,
            enforce_budget: true,
        }
    }

    /// The unbudgeted baseline under the same chaos and the same
    /// deadline accounting.
    pub fn unbudgeted(chaos: ChaosSpec, policy: BudgetPolicy) -> Self {
        OverloadConfig {
            chaos,
            policy,
            enforce_budget: false,
        }
    }
}

/// Mutable loop state of the budgeted serving session — the overload
/// analogue of the plain serving loop, with a shedding retry queue, a
/// coalescing counter, and modeled (never wall-clock) reactions.
struct OverloadLoop {
    weights: [f64; N_OBJECTIVES],
    serving: ServingConfig,
    policy: BudgetPolicy,
    enforce: bool,
    controller: AdmissionController,
    rescheduler: Rescheduler,
    base: Scenario,
    base_n: usize,
    extras: Vec<(u64, ClipProfile)>,
    configs: Vec<VideoConfig>,
    scenario: Scenario,
    assignment: Option<Assignment>,
    truly_up: Vec<bool>,
    belief: Vec<bool>,
    queue: RetryQueue,
    /// Departed-but-unprocessed tenants (deferred or budget-starved).
    /// Ordered set: snapshots must serialize deterministically.
    zombies: BTreeSet<u64>,
    events: Vec<ServeEvent>,
    accepted: u64,
    rejected: u64,
    min_floor_margin: f64,
    value_integral: f64,
    seg_start: f64,
    rate: f64,
    degraded: bool,
    /// Arrival probes skipped while above the high-water mark; the
    /// next structural replan coalesces them into one batched solve.
    pending_batch: u64,
}

impl OverloadLoop {
    /// The ladder rung affordable right now.
    fn rung(&self, budget: &DecisionBudget) -> DecisionRung {
        if self.enforce {
            self.policy.rung_for(budget.remaining())
        } else {
            DecisionRung::Full
        }
    }

    /// Modeled reaction latency: already-elapsed wait plus `units` of
    /// control work at the current straggler-scaled unit time.
    fn reaction(&self, wait: f64, units: u64, divisor: f64) -> f64 {
        wait + self.policy.modeled_time_s(units) * divisor
    }

    /// Work units to probe one admission against the current system.
    fn probe_cost(&self) -> u64 {
        cost::ADMISSION_CANDIDATE * (self.scenario.n_videos() as u64 + 1)
    }

    fn advance_value(&mut self, t: f64) {
        if t > self.seg_start {
            self.value_integral += self.rate * (t - self.seg_start);
            self.seg_start = t;
        }
    }

    fn recompute_rate(&mut self) {
        let Some(a) = &self.assignment else {
            self.rate = 0.0;
            return;
        };
        let n = self.scenario.n_videos();
        let pref = TruePreference::new(&self.scenario, self.weights);
        let out = subset_outcome(&self.scenario, &self.configs, a, n);
        let quality = normalized_benefit(pref.benefit(&out), 0.0, pref.min_reference());
        let mut down = vec![false; n];
        for (i, st) in a.streams.iter().enumerate() {
            if !self.truly_up[a.server_of[i]] {
                down[st.id.source] = true;
            }
        }
        let served = (0..n)
            .filter(|&c| !down[c] && !self.is_zombie_camera(c))
            .count();
        self.rate = served as f64 * quality;
    }

    fn is_zombie_camera(&self, camera: usize) -> bool {
        camera >= self.base_n
            && self
                .extras
                .get(camera - self.base_n)
                .is_some_and(|(id, _)| self.zombies.contains(id))
    }

    fn mask_vec(&self) -> Option<Vec<bool>> {
        if self.belief.iter().all(|&b| b) {
            None
        } else {
            Some(self.belief.clone())
        }
    }

    fn rebuild_scenario(&mut self) {
        let mut clips: Vec<ClipProfile> = (0..self.base_n)
            .map(|i| self.base.clip(i).clone())
            .collect();
        clips.extend(self.extras.iter().map(|(_, c)| c.clone()));
        self.scenario = Scenario::new(
            clips,
            self.base.uplinks().to_vec(),
            self.base.config_space().clone(),
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn push_event(
        &mut self,
        rec: &dyn Recorder,
        time_s: f64,
        kind: &'static str,
        tenant: Option<u64>,
        outcome: &'static str,
        scope: Option<&'static str>,
        reaction_s: f64,
        rung: DecisionRung,
    ) {
        if rec.enabled() {
            rec.observe("serve.reaction_s", reaction_s);
        }
        self.events.push(ServeEvent {
            time_s,
            kind,
            tenant,
            outcome,
            scope,
            reaction_s,
            live_tenants: self.extras.len(),
            rung: rung.as_str(),
        });
    }

    /// Shed over-age waiters (and, above the mark, excess depth) and
    /// record one `"shed"` event per dropped tenant.
    fn shed(&mut self, rec: &dyn Recorder, now_s: f64, high_water_too: bool) {
        let mut dropped = self.queue.expire(now_s);
        if high_water_too {
            dropped.extend(self.queue.shed_to_high_water());
        }
        if dropped.is_empty() {
            return;
        }
        let _shed_span = span(rec, Phase::Shed);
        if rec.enabled() {
            rec.add("serve.shed", dropped.len() as u64);
        }
        for entry in dropped {
            emit_warn(
                rec,
                ObsEvent::warn("tenant_shed", "retry queue shed a waiting tenant")
                    .with("tenant", entry.tenant)
                    .with("waited_s", now_s - entry.enqueued_at_s),
            );
            self.push_event(
                rec,
                now_s,
                "arrival",
                Some(entry.tenant),
                "shed",
                None,
                now_s - entry.enqueued_at_s,
                DecisionRung::Stale,
            );
        }
    }

    /// Probe admission of `tenant`; `queue_len` counts the *other*
    /// waiting tenants.
    fn admit_probe(&self, rec: &dyn Recorder, tenant: u64, queue_len: usize) -> AdmissionDecision {
        if self.assignment.is_none() || self.configs.len() != self.scenario.n_videos() {
            return if queue_len < self.controller.config().queue_capacity {
                AdmissionDecision::Queue {
                    reason: "system degraded",
                }
            } else {
                AdmissionDecision::Reject {
                    reason: "system degraded",
                }
            };
        }
        let clip = churn_clip(
            self.serving.churn_seed,
            tenant,
            self.base_n + tenant as usize,
        );
        let mut clips: Vec<ClipProfile> = (0..self.scenario.n_videos())
            .map(|i| self.scenario.clip(i).clone())
            .collect();
        clips.push(clip);
        let trial = Scenario::new(
            clips,
            self.scenario.uplinks().to_vec(),
            self.scenario.config_space().clone(),
        );
        let pref = TruePreference::new(&trial, self.weights);
        let incumbent_before = match &self.assignment {
            Some(a) => pref.benefit(&subset_outcome(
                &trial,
                &self.configs,
                a,
                self.scenario.n_videos(),
            )),
            None => f64::NEG_INFINITY,
        };
        let mask = self.mask_vec();
        self.controller.admit(
            &trial,
            &self.configs,
            mask.as_deref(),
            incumbent_before,
            &|o| pref.benefit(o),
            self.extras.len(),
            queue_len,
            rec,
        )
    }

    /// Install an accepted tenant within budget: charge a repair,
    /// escalate to a charged full solve on the full rung, and roll the
    /// admit back (returning `None` → re-queue) when neither is
    /// affordable or feasible.
    fn budgeted_accept(
        &mut self,
        rec: &dyn Recorder,
        tenant: u64,
        report: &ProbeReport,
        budget: &DecisionBudget,
        rung: DecisionRung,
    ) -> Option<&'static str> {
        if !budget.try_charge(cost::REPAIR_EVENT) {
            return None;
        }
        let clip = churn_clip(
            self.serving.churn_seed,
            tenant,
            self.base_n + tenant as usize,
        );
        self.extras.push((tenant, clip));
        self.configs.push(report.newcomer_config);
        self.rebuild_scenario();
        let camera = self.configs.len() - 1;
        let mask = self.mask_vec();
        let planned = self
            .rescheduler
            .replan_limited(
                &self.scenario,
                &self.configs,
                mask.as_deref(),
                ReplanTrigger::Arrival { camera },
                rec,
            )
            .map(|(a, scope)| (a, scope_label(scope)))
            .or_else(|| {
                // Row repair could not place the newcomer: a full
                // re-solve is the last resort, affordable only on the
                // full rung.
                if rung == DecisionRung::Full && budget.try_charge(cost::FULL_SOLVE) {
                    self.rescheduler
                        .replan(
                            &self.scenario,
                            &self.configs,
                            mask.as_deref(),
                            ReplanTrigger::Arrival { camera },
                            rec,
                        )
                        .ok()
                        .map(|(a, scope)| (a, scope_label(scope)))
                } else {
                    None
                }
            });
        match planned {
            Some((a, scope)) => {
                let floor = report.incumbent_before - self.controller.config().max_benefit_drop;
                self.min_floor_margin = self.min_floor_margin.min(report.incumbent_after - floor);
                self.assignment = Some(a);
                Some(scope)
            }
            None => {
                self.extras.pop();
                self.configs.pop();
                self.rebuild_scenario();
                None
            }
        }
    }

    /// Handle one arrival under the ladder. `wait` is the
    /// already-elapsed deferral (0 when handled at event time).
    fn handle_arrival(
        &mut self,
        rec: &dyn Recorder,
        ev: ChurnEvent,
        now: f64,
        wait: f64,
        budget: &DecisionBudget,
        divisor: f64,
    ) {
        let mut rung = self.rung(budget);
        let before = budget.spent();
        let pressured = self.enforce && self.queue.under_pressure();
        // Stale rung or backpressure: no probe, straight to the queue.
        let skip_probe =
            rung == DecisionRung::Stale || pressured || !budget.try_charge(self.probe_cost());
        if skip_probe {
            if rung != DecisionRung::Stale {
                rung = DecisionRung::Stale;
                emit_warn(
                    rec,
                    ObsEvent::warn("probe_skipped", "arrival queued without an admission probe")
                        .with("tenant", ev.tenant)
                        .with("rung", rung.as_str())
                        .with("pressured", pressured),
                );
            }
            if pressured {
                self.pending_batch += 1;
            }
            let outcome = if self.queue.try_push(ev.tenant, ev.time_s) {
                "queued"
            } else {
                self.rejected += 1;
                "rejected"
            };
            let reaction = self.reaction(wait, budget.spent() - before, divisor);
            self.push_event(
                rec,
                now,
                "arrival",
                Some(ev.tenant),
                outcome,
                None,
                reaction,
                rung,
            );
            return;
        }
        let decision = self.admit_probe(rec, ev.tenant, self.queue.len());
        let (outcome, scope) = match decision {
            AdmissionDecision::Accept(report) => {
                match self.budgeted_accept(rec, ev.tenant, &report, budget, rung) {
                    Some(scope) => {
                        self.accepted += 1;
                        ("accepted", Some(scope))
                    }
                    None => {
                        // Feasible but unaffordable: wait for a richer
                        // window instead of overrunning.
                        let outcome = if self.queue.try_push(ev.tenant, ev.time_s) {
                            "queued"
                        } else {
                            self.rejected += 1;
                            "rejected"
                        };
                        (outcome, None)
                    }
                }
            }
            AdmissionDecision::Queue { .. } => {
                let outcome = if self.queue.try_push(ev.tenant, ev.time_s) {
                    "queued"
                } else {
                    self.rejected += 1;
                    "rejected"
                };
                (outcome, None)
            }
            AdmissionDecision::Reject { .. } => {
                self.rejected += 1;
                ("rejected", None)
            }
        };
        let reaction = self.reaction(wait, budget.spent() - before, divisor);
        self.push_event(
            rec,
            now,
            "arrival",
            Some(ev.tenant),
            outcome,
            scope,
            reaction,
            rung,
        );
    }

    /// Handle one departure. Returns `false` when the ladder could not
    /// afford a consistent replan — the caller re-defers the event and
    /// marks the tenant a zombie (served-value stops counting it).
    fn handle_departure(
        &mut self,
        rec: &dyn Recorder,
        ev: ChurnEvent,
        now: f64,
        wait: f64,
        budget: &DecisionBudget,
        divisor: f64,
    ) -> bool {
        let rung = self.rung(budget);
        let before = budget.spent();
        let Some(pos) = self.extras.iter().position(|(id, _)| *id == ev.tenant) else {
            // Not admitted: silently drop it from the wait queue.
            self.queue.remove(ev.tenant);
            let reaction = self.reaction(wait, 0, divisor);
            self.push_event(
                rec,
                now,
                "departure",
                Some(ev.tenant),
                "ignored",
                None,
                reaction,
                rung,
            );
            return true;
        };
        if rung == DecisionRung::Stale {
            return false;
        }
        let pressured = self.enforce && self.queue.under_pressure();
        let charge = if pressured {
            cost::FULL_SOLVE
        } else {
            cost::REPAIR_EVENT
        };
        if !budget.try_charge(charge) {
            return false;
        }
        let camera = self.base_n + pos;
        self.extras.remove(pos);
        self.configs.remove(camera);
        self.zombies.remove(&ev.tenant);
        self.rebuild_scenario();
        let (outcome, scope) = if self.assignment.is_some() {
            let mask = self.mask_vec();
            let planned = if pressured {
                let batched = self.pending_batch + 1;
                self.pending_batch = 0;
                self.rescheduler
                    .replan_coalesced(&self.scenario, &self.configs, mask.as_deref(), batched, rec)
                    .ok()
                    .map(|a| (a, "coalesced"))
            } else {
                self.rescheduler
                    .replan_limited(
                        &self.scenario,
                        &self.configs,
                        mask.as_deref(),
                        ReplanTrigger::Departure { camera },
                        rec,
                    )
                    .map(|(a, scope)| (a, scope_label(scope)))
                    .or_else(|| {
                        if rung == DecisionRung::Full && budget.try_charge(cost::FULL_SOLVE) {
                            self.rescheduler
                                .replan(
                                    &self.scenario,
                                    &self.configs,
                                    mask.as_deref(),
                                    ReplanTrigger::Departure { camera },
                                    rec,
                                )
                                .ok()
                                .map(|(a, scope)| (a, scope_label(scope)))
                        } else {
                            None
                        }
                    })
            };
            match planned {
                Some((a, scope)) => {
                    self.assignment = Some(a);
                    ("replanned", Some(scope))
                }
                None => {
                    // The departed camera is gone from the scenario;
                    // the old placement no longer describes it. Dark
                    // until the next affordable decision.
                    self.assignment = None;
                    self.degraded = true;
                    ("degraded", None)
                }
            }
        } else {
            ("ignored", None)
        };
        let reaction = self.reaction(wait, budget.spent() - before, divisor);
        self.push_event(
            rec,
            now,
            "departure",
            Some(ev.tenant),
            outcome,
            scope,
            reaction,
            rung,
        );
        if outcome == "replanned" {
            self.drain_queue(rec, now, budget, divisor);
        }
        true
    }

    /// Handle a server toggle at event time (event-driven discipline).
    fn handle_toggle(
        &mut self,
        rec: &dyn Recorder,
        server: usize,
        up: bool,
        now: f64,
        budget: &DecisionBudget,
        divisor: f64,
    ) {
        let rung = self.rung(budget);
        let before = budget.spent();
        self.belief[server] = up;
        let kind = if up { "restore" } else { "failure" };
        let trigger = if up {
            ReplanTrigger::ServerRestore { server }
        } else {
            ReplanTrigger::ServerFailure { server }
        };
        let consistent = self.configs.len() == self.scenario.n_videos() && !self.configs.is_empty();
        let (outcome, scope) = if !consistent {
            ("ignored", None)
        } else if rung == DecisionRung::Stale {
            // Belief is updated but the plan stays stale; the next
            // boundary (or a richer window) re-places.
            emit_warn(
                rec,
                ObsEvent::warn("replan_deferred", "server toggle left the plan stale")
                    .with("server", server as u64)
                    .with("up", up)
                    .with("rung", rung.as_str()),
            );
            ("deferred", None)
        } else {
            let pressured = self.enforce && self.queue.under_pressure();
            let mask = self.mask_vec();
            let planned = if pressured {
                if budget.try_charge(cost::FULL_SOLVE) {
                    let batched = self.pending_batch + 1;
                    self.pending_batch = 0;
                    self.rescheduler
                        .replan_coalesced(
                            &self.scenario,
                            &self.configs,
                            mask.as_deref(),
                            batched,
                            rec,
                        )
                        .ok()
                        .map(|a| (a, "coalesced"))
                } else {
                    None
                }
            } else if budget.try_charge(cost::REPAIR_EVENT) {
                self.rescheduler
                    .replan_limited(&self.scenario, &self.configs, mask.as_deref(), trigger, rec)
                    .map(|(a, scope)| (a, scope_label(scope)))
                    .or_else(|| {
                        if rung == DecisionRung::Full && budget.try_charge(cost::FULL_SOLVE) {
                            self.rescheduler
                                .replan(
                                    &self.scenario,
                                    &self.configs,
                                    mask.as_deref(),
                                    trigger,
                                    rec,
                                )
                                .ok()
                                .map(|(a, scope)| (a, scope_label(scope)))
                        } else {
                            None
                        }
                    })
            } else {
                None
            };
            match planned {
                Some((a, scope)) => {
                    self.assignment = Some(a);
                    ("replanned", Some(scope))
                }
                None => {
                    // A toggle leaves the camera set intact, so the
                    // deployed plan stays *consistent* — just stale
                    // with respect to the new liveness.
                    emit_warn(
                        rec,
                        ObsEvent::warn("replan_deferred", "server toggle left the plan stale")
                            .with("server", server as u64)
                            .with("up", up)
                            .with("rung", rung.as_str()),
                    );
                    ("deferred", None)
                }
            }
        };
        let reaction = self.reaction(0.0, budget.spent() - before, divisor);
        self.push_event(rec, now, kind, None, outcome, scope, reaction, rung);
        if up && outcome == "replanned" {
            self.drain_queue(rec, now, budget, divisor);
        }
    }

    /// Retry waiting tenants FIFO while the budget affords probes;
    /// stops at the first re-queue, refusal, or the stale rung.
    fn drain_queue(&mut self, rec: &dyn Recorder, now: f64, budget: &DecisionBudget, divisor: f64) {
        loop {
            if self.rung(budget) == DecisionRung::Stale {
                break;
            }
            let Some(entry) = self.queue.pop_front() else {
                break;
            };
            let before = budget.spent();
            if !budget.try_charge(self.probe_cost()) {
                self.queue.push_front(entry);
                break;
            }
            let rung = self.rung(budget);
            let decision = self.admit_probe(rec, entry.tenant, self.queue.len());
            match decision {
                AdmissionDecision::Accept(report) => {
                    match self.budgeted_accept(rec, entry.tenant, &report, budget, rung) {
                        Some(scope) => {
                            self.accepted += 1;
                            let reaction = self.reaction(0.0, budget.spent() - before, divisor);
                            self.push_event(
                                rec,
                                now,
                                "arrival",
                                Some(entry.tenant),
                                "accepted",
                                Some(scope),
                                reaction,
                                rung,
                            );
                        }
                        None => {
                            self.queue.push_front(entry);
                            break;
                        }
                    }
                }
                AdmissionDecision::Queue { .. } => {
                    self.queue.push_front(entry);
                    break;
                }
                AdmissionDecision::Reject { .. } => {
                    self.rejected += 1;
                    let reaction = self.reaction(0.0, budget.spent() - before, divisor);
                    self.push_event(
                        rec,
                        now,
                        "arrival",
                        Some(entry.tenant),
                        "rejected",
                        None,
                        reaction,
                        rung,
                    );
                }
            }
        }
    }
}

/// A resumable budgeted serving run: an explicit step machine over the
/// serving timeline whose entire mutable state can be checkpointed
/// ([`ServingSession::snapshot`]) between any two steps and restored
/// ([`ServingSession::restore`]) bit-identically.
pub struct ServingSession {
    weights: [f64; N_OBJECTIVES],
    serving: ServingConfig,
    overload: OverloadConfig,
    initial: Scenario,
    horizon_s: f64,
    n_servers: usize,
    timeline: Vec<(f64, Happening)>,
    server_up: Option<Vec<AvailabilityTrace>>,
    link_windows: Vec<ChaosWindow>,
    straggler_windows: Vec<ChaosWindow>,
    pamo: Pamo,
    drifting: DriftingScenario,
    rng: StdRng,
    state: OverloadLoop,
    epochs: Vec<EpochRecord>,
    deferred: Vec<ChurnEvent>,
    idx: usize,
    cursor: SnapshotCursor,
    budget: DecisionBudget,
    budget_spent_total: u64,
    budget_overruns_total: u64,
    deadline_hits: u64,
    deadline_misses: u64,
    rung_counts: [u64; 3],
}

fn window_factor_at(windows: &[ChaosWindow], t: f64) -> f64 {
    windows
        .iter()
        .find(|w| w.t0_s <= t && t < w.t1_s)
        .map(|w| w.factor)
        .unwrap_or(1.0)
}

impl ServingSession {
    /// Build a session over `initial` with content drift `drift_step`,
    /// seeding the run RNG from `seed`. The churn trace comes from
    /// `serving` (compose the chaos spec's storm into it); the fault
    /// plan and chaos windows come from `overload.chaos`.
    pub fn new(
        initial: &Scenario,
        drift_step: f64,
        config: &PamoConfig,
        weights: [f64; N_OBJECTIVES],
        serving: &ServingConfig,
        overload: &OverloadConfig,
        seed: u64,
    ) -> Self {
        let n_servers = initial.n_servers();
        let horizon_s = serving.horizon_s();
        let trace = ChurnTrace::generate(&ChurnConfig {
            model: serving.arrivals,
            mean_hold_s: serving.mean_hold_s,
            horizon_s,
            seed: serving.churn_seed,
        });
        let plan = overload.chaos.fault_plan(n_servers, initial.n_videos());
        let horizon_ticks = secs_to_ticks(horizon_s).max(1) + 1;
        let server_up = if plan.is_zero() {
            None
        } else {
            Some(plan.server_availability(horizon_ticks))
        };
        let mut timeline: Vec<(f64, Happening)> = trace
            .events()
            .iter()
            .map(|&e| (e.time_s, Happening::Churn(e)))
            .collect();
        if let Some(traces) = &server_up {
            for (server, tr) in traces.iter().enumerate() {
                for (i, &tick) in tr.toggles().iter().enumerate() {
                    let t = tick as f64 / TICKS_PER_SEC as f64;
                    if t < horizon_s {
                        timeline.push((
                            t,
                            Happening::Server {
                                server,
                                up: i % 2 == 1,
                            },
                        ));
                    }
                }
            }
        }
        timeline.sort_by(|a, b| a.0.total_cmp(&b.0));
        let state = OverloadLoop {
            weights,
            serving: *serving,
            policy: overload.policy,
            enforce: overload.enforce_budget,
            controller: AdmissionController::new(serving.admission),
            rescheduler: Rescheduler::new(),
            base: initial.clone(),
            base_n: initial.n_videos(),
            extras: Vec::new(),
            configs: Vec::new(),
            scenario: initial.clone(),
            assignment: None,
            truly_up: vec![true; n_servers],
            belief: vec![true; n_servers],
            queue: RetryQueue::new(&serving.admission),
            zombies: BTreeSet::new(),
            events: Vec::new(),
            accepted: 0,
            rejected: 0,
            min_floor_margin: f64::INFINITY,
            value_integral: 0.0,
            seg_start: 0.0,
            rate: 0.0,
            degraded: false,
            pending_batch: 0,
        };
        ServingSession {
            weights,
            serving: *serving,
            overload: *overload,
            initial: initial.clone(),
            horizon_s,
            n_servers,
            timeline,
            server_up,
            link_windows: overload.chaos.link_windows(horizon_s),
            straggler_windows: overload.chaos.straggler_windows(horizon_s),
            pamo: Pamo::new(config.clone()),
            drifting: DriftingScenario::new(initial, drift_step),
            rng: eva_stats::rng::seeded(seed),
            state,
            epochs: Vec::with_capacity(serving.n_epochs),
            deferred: Vec::new(),
            idx: 0,
            cursor: if serving.n_epochs == 0 {
                SnapshotCursor::Flush
            } else {
                SnapshotCursor::Boundary(0)
            },
            budget: DecisionBudget::unlimited(),
            budget_spent_total: 0,
            budget_overruns_total: 0,
            deadline_hits: 0,
            deadline_misses: 0,
            rung_counts: [0; 3],
        }
    }

    /// Whether the run has completed.
    pub fn is_done(&self) -> bool {
        self.cursor == SnapshotCursor::Done
    }

    /// The straggler budget divisor active in epoch `e`'s window.
    fn divisor_for_epoch(&self, e: usize) -> f64 {
        window_factor_at(&self.straggler_windows, e as f64 * self.serving.epoch_s).max(1.0)
    }

    /// Advance one step: an epoch-boundary decision, one timeline
    /// event, one window close, or the end-of-horizon flush. Returns
    /// `false` once the run is complete.
    pub fn step(&mut self, rec: &dyn Recorder) -> bool {
        match self.cursor {
            SnapshotCursor::Boundary(e) => {
                self.step_boundary(e, rec);
                true
            }
            SnapshotCursor::Window(e) => {
                self.step_window(e, rec);
                true
            }
            SnapshotCursor::Flush => {
                self.step_flush(rec);
                true
            }
            SnapshotCursor::Done => false,
        }
    }

    /// Run to completion and return the result.
    pub fn run(&mut self, rec: &dyn Recorder) -> ServingRun {
        while self.step(rec) {}
        self.finish()
    }

    fn step_boundary(&mut self, e: usize, rec: &dyn Recorder) {
        let t0 = e as f64 * self.serving.epoch_s;
        self.state.advance_value(t0);
        let _epoch_span = span(rec, Phase::Epoch);

        // Fresh decision-budget window, shrunk by an active control
        // straggler. The bootstrap window (epoch 0) is mandatory work
        // and runs unlimited — there is no previous plan to serve.
        let divisor = self.divisor_for_epoch(e);
        self.budget = if self.overload.enforce_budget && e > 0 {
            DecisionBudget::limited(
                (self.overload.policy.window_units as f64 / divisor).floor() as u64
            )
        } else {
            DecisionBudget::unlimited()
        };

        // Epoch base: the drifted content, uplinks scaled by an active
        // link collapse (sampled at boundaries).
        let link = window_factor_at(&self.link_windows, t0);
        let snap = self.drifting.snapshot();
        self.state.base = if link != 1.0 {
            let clips: Vec<ClipProfile> =
                (0..snap.n_videos()).map(|i| snap.clip(i).clone()).collect();
            let ups: Vec<f64> = snap.uplinks().iter().map(|u| u * link).collect();
            Scenario::new(clips, ups, snap.config_space().clone())
        } else {
            snap
        };
        self.state.rebuild_scenario();

        // Failure detection.
        if self.serving.event_driven {
            let truly = self.state.truly_up.clone();
            self.state.belief.copy_from_slice(&truly);
        } else if let Some(traces) = &self.server_up {
            let heartbeat = secs_to_ticks(self.serving.heartbeat_s);
            let now_ticks = secs_to_ticks(t0);
            for (s, tr) in traces.iter().enumerate() {
                self.state.belief[s] =
                    tr.is_up_throughout(now_ticks.saturating_sub(heartbeat), now_ticks);
            }
        }

        // Boundary load shedding: expire over-age waiters and trim
        // above the high-water mark before spending any budget.
        self.state.shed(rec, t0, true);

        // Deferred churn lands here when the ladder can afford it;
        // under the stale rung it stays deferred (zombies persist).
        if self.state.rung(&self.budget) != DecisionRung::Stale {
            let mut redeferred: Vec<ChurnEvent> = Vec::new();
            for ev in std::mem::take(&mut self.deferred) {
                let wait = t0 - ev.time_s;
                match ev.action {
                    ChurnAction::Arrive => {
                        self.state
                            .handle_arrival(rec, ev, t0, wait, &self.budget, divisor)
                    }
                    ChurnAction::Depart => {
                        if !self
                            .state
                            .handle_departure(rec, ev, t0, wait, &self.budget, divisor)
                        {
                            redeferred.push(ev);
                        }
                    }
                }
            }
            self.state.zombies.clear();
            for ev in redeferred {
                self.state.zombies.insert(ev.tenant);
                self.deferred.push(ev);
            }
        }

        // The epoch decision, on the affordable ladder rung.
        let pref = TruePreference::new(&self.state.scenario, self.weights);
        let mask = self.state.mask_vec();
        let mut rung = self.state.rung(&self.budget);
        let epoch_degraded;
        if rung == DecisionRung::Repair
            && (self.state.configs.len() != self.state.scenario.n_videos()
                || self.state.configs.is_empty()
                || !self.budget.try_charge(cost::FULL_SOLVE))
        {
            // Repair needs a consistent deployed plan and one full
            // placement solve; otherwise it degrades to stale.
            rung = DecisionRung::Stale;
        }
        match rung {
            DecisionRung::Full => {
                let planned = match self.pamo.decide_surviving_budgeted_recorded(
                    &self.state.scenario,
                    &pref,
                    mask.as_deref(),
                    &self.budget,
                    &mut self.rng,
                    rec,
                ) {
                    Ok(d) => match self.state.scenario.schedule_surviving_recorded(
                        &d.configs,
                        mask.as_deref(),
                        rec,
                    ) {
                        Ok(a) => Some((d.configs, a, false)),
                        Err(_) => {
                            fallback_uniform(&self.state.scenario, &pref, mask.as_deref(), rec)
                                .map(|(c, a)| (c, a, true))
                        }
                    },
                    Err(_) => fallback_uniform(&self.state.scenario, &pref, mask.as_deref(), rec)
                        .map(|(c, a)| (c, a, true)),
                };
                epoch_degraded = match planned {
                    Some((c, a, fell_back)) => {
                        self.state.configs = c;
                        self.state.rescheduler.install(&a);
                        self.state.assignment = Some(a);
                        fell_back
                    }
                    None => {
                        self.state.assignment = None;
                        self.state.degraded = true;
                        true
                    }
                };
            }
            DecisionRung::Repair => {
                // Re-place the deployed configurations on the drifted
                // scenario — Algorithm 1 without the BO/GP pipeline.
                match self.state.scenario.schedule_surviving_recorded(
                    &self.state.configs,
                    mask.as_deref(),
                    rec,
                ) {
                    Ok(a) => {
                        self.state.rescheduler.install(&a);
                        self.state.assignment = Some(a);
                    }
                    Err(_) => {
                        rung = DecisionRung::Stale;
                    }
                }
                emit_warn(
                    rec,
                    ObsEvent::warn(
                        "decision_degraded",
                        "budget window afforded no full decision",
                    )
                    .with("epoch", e)
                    .with("rung", rung.as_str()),
                );
                epoch_degraded = true;
            }
            DecisionRung::Stale => {
                emit_warn(
                    rec,
                    ObsEvent::warn(
                        "decision_degraded",
                        "budget window afforded no full decision",
                    )
                    .with("epoch", e)
                    .with("rung", rung.as_str()),
                );
                epoch_degraded = true;
            }
        }
        if rung == DecisionRung::Stale && self.state.configs.len() != self.state.scenario.n_videos()
        {
            // A stale plan over a changed camera set cannot be
            // evaluated; serve dark until a richer window.
            self.state.assignment = None;
            self.state.degraded = true;
        }
        self.rung_counts[rung.index()] += 1;
        self.state.degraded |= epoch_degraded || self.state.belief.iter().any(|&b| !b);
        let online_benefit = match &self.state.assignment {
            Some(a) => pref.benefit(&subset_outcome(
                &self.state.scenario,
                &self.state.configs,
                a,
                self.state.scenario.n_videos(),
            )),
            None => pref.min_reference() - 1.0,
        };
        self.epochs.push(EpochRecord {
            epoch: e,
            divergence: self.drifting.divergence_from(&self.initial),
            online_benefit,
            static_benefit: None,
            configs: self.state.configs.clone(),
            planning_bps: None,
            alive: self.state.belief.clone(),
            degraded: epoch_degraded,
            rung,
        });
        if rec.enabled() {
            rec.add("serve.epochs", 1);
        }
        let divisor = self.divisor_for_epoch(e);
        self.state.drain_queue(rec, t0, &self.budget, divisor);
        self.state.recompute_rate();
        self.cursor = SnapshotCursor::Window(e);
    }

    fn step_window(&mut self, e: usize, rec: &dyn Recorder) {
        let t0 = e as f64 * self.serving.epoch_s;
        let t1 = t0 + self.serving.epoch_s;
        if self.idx < self.timeline.len() && self.timeline[self.idx].0 < t1 {
            let (t, what) = self.timeline[self.idx];
            self.idx += 1;
            let divisor = self.divisor_for_epoch(e);
            self.state.advance_value(t.max(t0));
            match what {
                Happening::Server { server, up } => {
                    self.state.truly_up[server] = up;
                    if !up {
                        self.state.degraded = true;
                    }
                    if self.serving.event_driven {
                        self.state
                            .handle_toggle(rec, server, up, t, &self.budget, divisor);
                    }
                }
                Happening::Churn(ev) => {
                    if self.serving.event_driven {
                        match ev.action {
                            ChurnAction::Arrive => {
                                self.state
                                    .handle_arrival(rec, ev, t, 0.0, &self.budget, divisor)
                            }
                            ChurnAction::Depart => {
                                if !self.state.handle_departure(
                                    rec,
                                    ev,
                                    t,
                                    0.0,
                                    &self.budget,
                                    divisor,
                                ) {
                                    self.state.zombies.insert(ev.tenant);
                                    self.deferred.push(ev);
                                }
                            }
                        }
                    } else {
                        if ev.action == ChurnAction::Depart
                            && self.state.extras.iter().any(|(id, _)| *id == ev.tenant)
                        {
                            self.state.zombies.insert(ev.tenant);
                        }
                        self.deferred.push(ev);
                    }
                }
            }
            self.state.recompute_rate();
        } else {
            // Window close: settle the window's deadline verdict and
            // advance the content drift.
            let units = self.budget.spent();
            let divisor = self.divisor_for_epoch(e);
            let modeled = self.overload.policy.modeled_time_s(units) * divisor;
            if modeled <= self.overload.policy.deadline_s {
                self.deadline_hits += 1;
            } else {
                self.deadline_misses += 1;
                emit_warn(
                    rec,
                    ObsEvent::warn("deadline_missed", "decision window exceeded its deadline")
                        .with("epoch", e)
                        .with("modeled_s", modeled)
                        .with("deadline_s", self.overload.policy.deadline_s),
                );
            }
            self.budget_spent_total += units;
            self.budget_overruns_total += self.budget.overruns();
            self.drifting.advance(&mut self.rng);
            self.cursor = if e + 1 < self.serving.n_epochs {
                SnapshotCursor::Boundary(e + 1)
            } else {
                SnapshotCursor::Flush
            };
        }
    }

    fn step_flush(&mut self, rec: &dyn Recorder) {
        self.state.advance_value(self.horizon_s);
        self.state.shed(rec, self.horizon_s, false);
        let divisor = self
            .divisor_for_epoch(self.serving.n_epochs.saturating_sub(1))
            .max(1.0);
        for ev in std::mem::take(&mut self.deferred) {
            let wait = self.horizon_s - ev.time_s;
            match ev.action {
                ChurnAction::Arrive => {
                    self.state
                        .handle_arrival(rec, ev, self.horizon_s, wait, &self.budget, divisor)
                }
                ChurnAction::Depart => {
                    if !self.state.handle_departure(
                        rec,
                        ev,
                        self.horizon_s,
                        wait,
                        &self.budget,
                        divisor,
                    ) {
                        // End of run: record the never-handled event.
                        let rung = self.state.rung(&self.budget);
                        self.state.push_event(
                            rec,
                            self.horizon_s,
                            "departure",
                            Some(ev.tenant),
                            "deferred",
                            None,
                            wait,
                            rung,
                        );
                    }
                }
            }
        }
        self.cursor = SnapshotCursor::Done;
    }

    /// Assemble the result from the current state. Meaningful once
    /// [`is_done`](Self::is_done); callable earlier for inspection.
    pub fn finish(&self) -> ServingRun {
        let stats = self.state.rescheduler.stats();
        ServingRun {
            epochs: self.epochs.clone(),
            events: self.state.events.clone(),
            accepted: self.state.accepted,
            rejected: self.state.rejected,
            queued_peak: self.state.queue.peak(),
            replan_incremental: stats.incremental,
            replan_full: stats.full,
            value_integral: self.state.value_integral,
            horizon_s: self.horizon_s,
            n_servers: self.n_servers,
            min_floor_margin: self.state.min_floor_margin,
            degraded: self.state.degraded,
            shed: self.state.queue.shed_count(),
            replan_coalesced: stats.coalesced,
            budget_spent: self.budget_spent_total,
            budget_overruns: self.budget_overruns_total,
            deadline_hits: self.deadline_hits,
            deadline_misses: self.deadline_misses,
            rung_counts: self.rung_counts,
        }
    }

    /// Checkpoint every piece of mutable state between steps.
    pub fn snapshot(&self) -> ControlPlaneSnapshot {
        let (warm, design) = self.pamo.warm_state();
        let (groups, group_server, prices, stats) = self.state.rescheduler.parts();
        ControlPlaneSnapshot {
            cursor: self.cursor,
            idx: self.idx,
            deferred: self.deferred.clone(),
            rng_state: self.rng.state(),
            drift_clips: self.drifting.clips().to_vec(),
            base_clips: (0..self.state.base.n_videos())
                .map(|i| self.state.base.clip(i).clone())
                .collect(),
            base_uplinks: self.state.base.uplinks().to_vec(),
            warm,
            design,
            extras: self.state.extras.clone(),
            configs: self.state.configs.clone(),
            assignment: self.state.assignment.clone(),
            resch_groups: groups.to_vec(),
            resch_group_server: group_server.to_vec(),
            resch_prices: prices.to_vec(),
            resch_stats: stats,
            truly_up: self.state.truly_up.clone(),
            belief: self.state.belief.clone(),
            queue_entries: self.state.queue.entries().copied().collect(),
            queue_peak: self.state.queue.peak(),
            queue_shed: self.state.queue.shed_count(),
            zombies: self.state.zombies.iter().copied().collect(),
            events: self.state.events.clone(),
            epochs: self.epochs.clone(),
            accepted: self.state.accepted,
            rejected: self.state.rejected,
            min_floor_margin: self.state.min_floor_margin,
            value_integral: self.state.value_integral,
            seg_start: self.state.seg_start,
            rate: self.state.rate,
            degraded: self.state.degraded,
            pending_batch: self.state.pending_batch,
            budget_limit: self.budget.limit(),
            budget_spent: self.budget.spent(),
            budget_overruns: self.budget.overruns(),
            budget_spent_total: self.budget_spent_total,
            budget_overruns_total: self.budget_overruns_total,
            deadline_hits: self.deadline_hits,
            deadline_misses: self.deadline_misses,
            rung_counts: self.rung_counts,
        }
    }

    /// Rebuild a session from a snapshot plus the original run
    /// parameters (which are deliberately not serialized — a restore
    /// is "restart with the same flags, then load state").
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        initial: &Scenario,
        drift_step: f64,
        config: &PamoConfig,
        weights: [f64; N_OBJECTIVES],
        serving: &ServingConfig,
        overload: &OverloadConfig,
        snap: ControlPlaneSnapshot,
    ) -> Result<Self, CoreError> {
        // The seed is irrelevant — the RNG state is overwritten below.
        let mut session =
            ServingSession::new(initial, drift_step, config, weights, serving, overload, 0);
        let base_n = initial.n_videos();
        if snap.drift_clips.len() != base_n || snap.base_clips.len() != base_n {
            return Err(CoreError::Snapshot {
                context: "camera count",
            });
        }
        if snap.truly_up.len() != session.n_servers
            || snap.belief.len() != session.n_servers
            || snap.base_uplinks.len() != session.n_servers
        {
            return Err(CoreError::Snapshot {
                context: "server count",
            });
        }
        if snap.idx > session.timeline.len() {
            return Err(CoreError::Snapshot {
                context: "timeline cursor",
            });
        }
        // Pre-bootstrap snapshots carry no deployed configs at all.
        if !snap.configs.is_empty() && snap.configs.len() != base_n + snap.extras.len() {
            return Err(CoreError::Snapshot {
                context: "config count",
            });
        }
        session.rng = StdRng::from_state(snap.rng_state);
        session.drifting.set_clips(snap.drift_clips);
        session.pamo.restore_warm_state(snap.warm, snap.design);
        session.cursor = snap.cursor;
        session.idx = snap.idx;
        session.deferred = snap.deferred;
        session.epochs = snap.epochs;
        session.budget =
            DecisionBudget::from_parts(snap.budget_limit, snap.budget_spent, snap.budget_overruns);
        session.budget_spent_total = snap.budget_spent_total;
        session.budget_overruns_total = snap.budget_overruns_total;
        session.deadline_hits = snap.deadline_hits;
        session.deadline_misses = snap.deadline_misses;
        session.rung_counts = snap.rung_counts;
        let state = &mut session.state;
        state.base = Scenario::new(
            snap.base_clips,
            snap.base_uplinks,
            initial.config_space().clone(),
        );
        state.extras = snap.extras;
        state.configs = snap.configs;
        state.assignment = snap.assignment;
        state.rescheduler = Rescheduler::from_parts(
            snap.resch_groups,
            snap.resch_group_server,
            snap.resch_prices,
            snap.resch_stats,
        );
        state.truly_up = snap.truly_up;
        state.belief = snap.belief;
        state.queue = RetryQueue::from_parts(
            &serving.admission,
            snap.queue_entries,
            snap.queue_peak,
            snap.queue_shed,
        );
        state.zombies = snap.zombies.into_iter().collect();
        state.events = snap.events;
        state.accepted = snap.accepted;
        state.rejected = snap.rejected;
        state.min_floor_margin = snap.min_floor_margin;
        state.value_integral = snap.value_integral;
        state.seg_start = snap.seg_start;
        state.rate = snap.rate;
        state.degraded = snap.degraded;
        state.pending_batch = snap.pending_batch;
        state.rebuild_scenario();
        Ok(session)
    }
}

/// [`run_serving_overloaded_recorded`] without telemetry.
#[allow(clippy::too_many_arguments)]
pub fn run_serving_overloaded(
    initial: &Scenario,
    drift_step: f64,
    config: &PamoConfig,
    weights: [f64; N_OBJECTIVES],
    serving: &ServingConfig,
    overload: &OverloadConfig,
    seed: u64,
) -> ServingRun {
    run_serving_overloaded_recorded(
        initial,
        drift_step,
        config,
        weights,
        serving,
        overload,
        seed,
        &NoopRecorder,
    )
}

/// Drive a budgeted overload serving run end to end: build a
/// [`ServingSession`] and run it to completion.
#[allow(clippy::too_many_arguments)]
pub fn run_serving_overloaded_recorded(
    initial: &Scenario,
    drift_step: f64,
    config: &PamoConfig,
    weights: [f64; N_OBJECTIVES],
    serving: &ServingConfig,
    overload: &OverloadConfig,
    seed: u64,
    rec: &dyn Recorder,
) -> ServingRun {
    ServingSession::new(
        initial, drift_step, config, weights, serving, overload, seed,
    )
    .run(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pamo::PreferenceSource;
    use crate::serving::run_serving;
    use eva_bo::{AcqKind, BoConfig};
    use eva_fault::{ControlStragglers, CrashBursts, LinkCollapse};
    use eva_serve::{AdmissionConfig, ArrivalModel};
    use eva_stats::rng::seeded;

    fn tiny_config() -> PamoConfig {
        PamoConfig {
            bo: BoConfig {
                n_init: 4,
                batch: 2,
                mc_samples: 16,
                max_iters: 3,
                delta: 0.02,
                kind: AcqKind::QNei,
            },
            pool_size: 20,
            profiling_per_camera: 20,
            profile_noise: 0.02,
            n_comparisons: 6,
            elicit_candidates: 15,
            preference: PreferenceSource::Oracle,
        }
    }

    fn base() -> Scenario {
        Scenario::uniform(3, 3, 20e6, 61)
    }

    fn policy() -> BudgetPolicy {
        BudgetPolicy {
            window_units: 400,
            full_floor: 120,
            repair_floor: 40,
            unit_time_s: 0.01,
            deadline_s: 5.0,
        }
    }

    fn storm(event_driven: bool) -> ServingConfig {
        ServingConfig {
            epoch_s: 20.0,
            n_epochs: 3,
            event_driven,
            arrivals: ArrivalModel::Poisson { rate_hz: 0.15 },
            mean_hold_s: 25.0,
            churn_seed: 5,
            ..ServingConfig::default()
        }
    }

    fn assert_runs_bit_identical(a: &ServingRun, b: &ServingRun) {
        assert_eq!(a.epochs.len(), b.epochs.len(), "epoch count");
        for (x, y) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(x.epoch, y.epoch);
            assert_eq!(x.online_benefit.to_bits(), y.online_benefit.to_bits());
            assert_eq!(x.divergence.to_bits(), y.divergence.to_bits());
            assert_eq!(x.configs, y.configs);
            assert_eq!(x.alive, y.alive);
            assert_eq!(x.degraded, y.degraded);
            assert_eq!(x.rung, y.rung);
        }
        assert_eq!(a.events.len(), b.events.len(), "event count");
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.time_s.to_bits(), y.time_s.to_bits());
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.scope, y.scope);
            assert_eq!(x.reaction_s.to_bits(), y.reaction_s.to_bits());
            assert_eq!(x.live_tenants, y.live_tenants);
            assert_eq!(x.rung, y.rung);
        }
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.queued_peak, b.queued_peak);
        assert_eq!(a.replan_incremental, b.replan_incremental);
        assert_eq!(a.replan_full, b.replan_full);
        assert_eq!(a.replan_coalesced, b.replan_coalesced);
        assert_eq!(a.value_integral.to_bits(), b.value_integral.to_bits());
        assert_eq!(a.min_floor_margin.to_bits(), b.min_floor_margin.to_bits());
        assert_eq!(a.degraded, b.degraded);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.budget_spent, b.budget_spent);
        assert_eq!(a.budget_overruns, b.budget_overruns);
        assert_eq!(a.deadline_hits, b.deadline_hits);
        assert_eq!(a.deadline_misses, b.deadline_misses);
        assert_eq!(a.rung_counts, b.rung_counts);
    }

    #[test]
    fn inert_unbudgeted_session_reproduces_the_serving_loop() {
        let sc = base();
        let serving = storm(true);
        let mut d = DriftingScenario::new(&sc, 0.05);
        let plain = run_serving(
            &mut d,
            &tiny_config(),
            [1.0; 5],
            None,
            &serving,
            &mut seeded(2),
        );
        let overload = OverloadConfig::unbudgeted(ChaosSpec::none(0), policy());
        let session_run =
            run_serving_overloaded(&sc, 0.05, &tiny_config(), [1.0; 5], &serving, &overload, 2);
        // Decisions, events and the value integral are bit-identical;
        // only reaction times differ (modeled vs wall clock).
        assert_eq!(session_run.epochs.len(), plain.epochs.len());
        for (s, p) in session_run.epochs.iter().zip(&plain.epochs) {
            assert_eq!(s.online_benefit.to_bits(), p.online_benefit.to_bits());
            assert_eq!(s.configs, p.configs);
        }
        assert_eq!(session_run.events.len(), plain.events.len());
        for (s, p) in session_run.events.iter().zip(&plain.events) {
            assert_eq!(
                (s.kind, s.tenant, s.outcome, s.scope),
                (p.kind, p.tenant, p.outcome, p.scope)
            );
        }
        assert_eq!(session_run.accepted, plain.accepted);
        assert_eq!(session_run.rejected, plain.rejected);
        assert_eq!(
            session_run.value_integral.to_bits(),
            plain.value_integral.to_bits()
        );
        assert_eq!(session_run.budget_overruns, 0);
        assert_eq!(session_run.rung_counts, [serving.n_epochs as u64, 0, 0]);
    }

    fn chaotic() -> (ServingConfig, OverloadConfig) {
        let chaos = ChaosSpec {
            seed: 11,
            churn_storm: None,
            crash_bursts: Some(CrashBursts {
                mttf_s: 35.0,
                mttr_s: 12.0,
            }),
            link_collapse: Some(LinkCollapse {
                factor: 0.6,
                mean_normal_s: 25.0,
                mean_collapsed_s: 10.0,
            }),
            stragglers: Some(ControlStragglers {
                factor: 3.0,
                mean_normal_s: 20.0,
                mean_slow_s: 15.0,
            }),
        };
        let serving = ServingConfig {
            epoch_s: 20.0,
            n_epochs: 2,
            event_driven: true,
            arrivals: ArrivalModel::Poisson { rate_hz: 0.12 },
            mean_hold_s: 18.0,
            churn_seed: chaos.churn_seed(),
            admission: AdmissionConfig {
                max_queue_age_s: 30.0,
                high_water: 2,
                ..AdmissionConfig::default()
            },
            ..ServingConfig::default()
        };
        (serving, OverloadConfig::budgeted(chaos, policy()))
    }

    #[test]
    fn budgeted_chaos_run_never_overruns_and_records_rungs() {
        let sc = base();
        let (serving, overload) = chaotic();
        let run =
            run_serving_overloaded(&sc, 0.05, &tiny_config(), [1.0; 5], &serving, &overload, 3);
        assert_eq!(run.budget_overruns, 0, "budget overran");
        assert_eq!(
            run.rung_counts.iter().sum::<u64>(),
            serving.n_epochs as u64,
            "every epoch records exactly one rung"
        );
        assert_eq!(
            run.deadline_hits + run.deadline_misses,
            serving.n_epochs as u64
        );
        assert!(run.budget_spent > 0);
        assert!(run.epochs.iter().all(|e| !e.rung.as_str().is_empty()));
    }

    #[test]
    fn crash_at_any_step_then_restore_is_bit_identical() {
        let sc = base();
        let (serving, overload) = chaotic();
        let cfg = tiny_config();
        let reference = {
            let mut s = ServingSession::new(&sc, 0.05, &cfg, [1.0; 5], &serving, &overload, 3);
            s.run(&NoopRecorder)
        };
        // Count the steps of the uninterrupted run.
        let total_steps = {
            let mut s = ServingSession::new(&sc, 0.05, &cfg, [1.0; 5], &serving, &overload, 3);
            let mut n = 0;
            while s.step(&NoopRecorder) {
                n += 1;
            }
            n
        };
        assert!(total_steps > 4, "chaos run too short to exercise restore");
        // Crash after k steps, snapshot through JSON, restore, finish.
        for k in 0..=total_steps {
            let mut s = ServingSession::new(&sc, 0.05, &cfg, [1.0; 5], &serving, &overload, 3);
            for _ in 0..k {
                s.step(&NoopRecorder);
            }
            let text = s.snapshot().to_json();
            drop(s); // the "crash"
            let snap = ControlPlaneSnapshot::from_json(&text).expect("snapshot decode");
            let mut restored =
                ServingSession::restore(&sc, 0.05, &cfg, [1.0; 5], &serving, &overload, snap)
                    .expect("restore");
            let run = restored.run(&NoopRecorder);
            assert_runs_bit_identical(&reference, &run);
        }
    }

    #[test]
    fn crash_restore_holds_under_the_composed_storm_config() {
        // Mirrors the `ext_overload` restore probe: a heterogeneous
        // standard scenario, an MMPP churn storm, and every chaos axis.
        let sc = Scenario::standard(8, 3, &mut seeded(990));
        let chaos = ChaosSpec {
            seed: 23,
            churn_storm: Some(eva_fault::ChurnStorm {
                calm_rate_hz: 0.02,
                storm_rate_hz: 0.3,
                mean_dwell_s: [30.0, 20.0],
                mean_hold_s: 40.0,
            }),
            crash_bursts: Some(CrashBursts {
                mttf_s: 60.0,
                mttr_s: 15.0,
            }),
            link_collapse: Some(LinkCollapse {
                factor: 0.6,
                mean_normal_s: 50.0,
                mean_collapsed_s: 15.0,
            }),
            stragglers: Some(ControlStragglers {
                factor: 3.0,
                mean_normal_s: 30.0,
                mean_slow_s: 25.0,
            }),
        };
        let storm = chaos.churn_storm.unwrap();
        let serving = ServingConfig {
            epoch_s: 20.0,
            n_epochs: 2,
            event_driven: true,
            arrivals: ArrivalModel::Mmpp {
                rate_hz: [storm.calm_rate_hz, storm.storm_rate_hz],
                mean_dwell_s: storm.mean_dwell_s,
            },
            mean_hold_s: storm.mean_hold_s,
            churn_seed: chaos.churn_seed(),
            admission: AdmissionConfig {
                max_queue_age_s: 30.0,
                high_water: 4,
                ..AdmissionConfig::default()
            },
            ..ServingConfig::default()
        };
        let overload = OverloadConfig::budgeted(
            chaos,
            BudgetPolicy {
                window_units: 324,
                full_floor: 216,
                repair_floor: 100,
                unit_time_s: 0.125,
                deadline_s: 40.5,
            },
        );
        let cfg = tiny_config();
        let reference = {
            let mut s = ServingSession::new(&sc, 0.05, &cfg, [1.0; 5], &serving, &overload, 6);
            s.run(&NoopRecorder)
        };
        let total_steps = {
            let mut s = ServingSession::new(&sc, 0.05, &cfg, [1.0; 5], &serving, &overload, 6);
            let mut n = 0;
            while s.step(&NoopRecorder) {
                n += 1;
            }
            n
        };
        for k in 0..=total_steps {
            let mut s = ServingSession::new(&sc, 0.05, &cfg, [1.0; 5], &serving, &overload, 6);
            for _ in 0..k {
                s.step(&NoopRecorder);
            }
            let text = s.snapshot().to_json();
            drop(s);
            let snap = ControlPlaneSnapshot::from_json(&text).expect("snapshot decode");
            let mut restored =
                ServingSession::restore(&sc, 0.05, &cfg, [1.0; 5], &serving, &overload, snap)
                    .expect("restore");
            let run = restored.run(&NoopRecorder);
            assert_runs_bit_identical(&reference, &run);
        }
    }

    #[test]
    fn restore_rejects_mismatched_parameters() {
        let sc = base();
        let (serving, overload) = chaotic();
        let cfg = tiny_config();
        let mut s = ServingSession::new(&sc, 0.05, &cfg, [1.0; 5], &serving, &overload, 3);
        s.step(&NoopRecorder);
        let snap = s.snapshot();
        // A bigger deployment cannot adopt this snapshot.
        let other = Scenario::uniform(5, 3, 20e6, 61);
        let err = ServingSession::restore(&other, 0.05, &cfg, [1.0; 5], &serving, &overload, snap)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, CoreError::Snapshot { .. }), "{err}");
    }

    #[test]
    fn starved_budget_degrades_to_stale_without_overruns() {
        let sc = base();
        let serving = storm(true);
        let starved = OverloadConfig::budgeted(
            ChaosSpec::none(0),
            BudgetPolicy {
                window_units: 10,
                full_floor: 120,
                repair_floor: 40,
                unit_time_s: 0.01,
                deadline_s: 5.0,
            },
        );
        let run =
            run_serving_overloaded(&sc, 0.05, &tiny_config(), [1.0; 5], &serving, &starved, 2);
        // Epoch 0 bootstraps at full; every later window is starved.
        assert_eq!(run.rung_counts[DecisionRung::Full.index()], 1);
        assert_eq!(
            run.rung_counts[DecisionRung::Stale.index()],
            serving.n_epochs as u64 - 1
        );
        assert_eq!(run.budget_overruns, 0);
        assert!(
            run.epochs[1..]
                .iter()
                .all(|e| e.rung == DecisionRung::Stale),
            "starved epochs must be stale"
        );
        // Stale windows still serve: the epoch-0 plan keeps earning.
        assert!(run.value_integral > 0.0);
    }

    #[test]
    fn overload_storm_sheds_and_backpressures() {
        let sc = base();
        let serving = ServingConfig {
            epoch_s: 20.0,
            n_epochs: 3,
            event_driven: true,
            arrivals: ArrivalModel::Poisson { rate_hz: 0.8 },
            mean_hold_s: 60.0,
            churn_seed: 9,
            admission: AdmissionConfig {
                max_live: 2,
                queue_capacity: 6,
                max_queue_age_s: 15.0,
                high_water: 2,
                ..AdmissionConfig::default()
            },
            ..ServingConfig::default()
        };
        let overload = OverloadConfig::budgeted(ChaosSpec::none(0), policy());
        let run =
            run_serving_overloaded(&sc, 0.05, &tiny_config(), [1.0; 5], &serving, &overload, 4);
        assert!(run.shed > 0, "an arrival flood past a tiny cap must shed");
        assert!(
            run.events.iter().any(|e| e.outcome == "shed"),
            "shed tenants must be recorded as events"
        );
        assert!(run.queued_peak >= 2);
        assert_eq!(run.budget_overruns, 0);
    }
}
