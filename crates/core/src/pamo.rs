//! PaMO end to end: Algorithm 2.
//!
//! 1. **Outcome function fitting** — profile every camera, fit the GP
//!    bank (lines 1-4),
//! 2. **System preference modeling** — EUBO-driven pairwise queries to
//!    the decision maker, preference GP by Laplace (lines 5-11),
//! 3. **Best configuration solving** — qNEI Bayesian optimization over
//!    the feasible joint-configuration pool with Algorithm-1 placement
//!    inside the loop (lines 12-26).

use eva_bo::{bo_maximize_budgeted, AcqKind, BoConfig, BoResult};
use eva_obs::{cost, span, DecisionBudget, NoopRecorder, Phase, Recorder};
use eva_prefgp::{elicit_preferences, ElicitConfig, PreferenceModel};
use eva_workload::{Outcome, Profiler, Scenario, VideoConfig};
use parking_lot::Mutex;
use rand::Rng;

use crate::benefit::{OutcomeNormalizer, TruePreference, TruePreferenceOracle};
use crate::composite::{CompositeSampler, PreferenceEval, INFEASIBLE_BENEFIT};
use crate::error::CoreError;
use crate::models::{OutcomeModelBank, ProfilingDesign};
use crate::pool::{build_pool, decode_joint};

/// Where the preference layer comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreferenceSource {
    /// Learn from pairwise comparisons (PaMO proper).
    Learned,
    /// Use the true preference function (the PaMO+ upper bound).
    Oracle,
}

/// All of PaMO's tuning knobs.
#[derive(Debug, Clone)]
pub struct PamoConfig {
    /// BO loop settings (acquisition, batch `b`, `δ`, `MaxIterNum`).
    pub bo: BoConfig,
    /// Joint-configuration candidate pool size.
    pub pool_size: usize,
    /// Initial profiling samples per camera.
    pub profiling_per_camera: usize,
    /// Relative measurement noise of profiling/observations.
    pub profile_noise: f64,
    /// Pairwise comparisons to collect (`V`).
    pub n_comparisons: usize,
    /// Outcome-space candidates offered to the elicitation loop.
    pub elicit_candidates: usize,
    /// Preference source (PaMO vs PaMO+).
    pub preference: PreferenceSource,
}

impl Default for PamoConfig {
    fn default() -> Self {
        PamoConfig {
            bo: BoConfig {
                n_init: 6,
                batch: 3,
                mc_samples: 32,
                max_iters: 10,
                delta: 0.02,
                kind: AcqKind::QNei,
            },
            pool_size: 60,
            profiling_per_camera: 40,
            profile_noise: 0.02,
            n_comparisons: 18,
            elicit_candidates: 40,
            preference: PreferenceSource::Learned,
        }
    }
}

impl PamoConfig {
    /// The PaMO+ oracle variant of this configuration.
    pub fn plus(mut self) -> Self {
        self.preference = PreferenceSource::Oracle;
        self
    }

    /// Swap the acquisition function (the Sec. 5.1 ablations).
    pub fn with_acquisition(mut self, kind: AcqKind) -> Self {
        self.bo.kind = kind;
        self
    }

    /// Swap the convergence threshold `δ` (the Fig. 10(b) sweep).
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.bo.delta = delta;
        self
    }
}

/// The result of one PaMO scheduling decision.
#[derive(Debug, Clone)]
pub struct PamoDecision {
    /// Final per-camera configurations.
    pub configs: Vec<VideoConfig>,
    /// True (noise-free) aggregate outcome of those configurations.
    pub outcome: Outcome,
    /// True benefit `U` under the hidden preference (Eq. 13).
    pub true_benefit: f64,
    /// The BO run (trace, observations, convergence flag).
    pub bo: BoResult,
    /// Comparisons actually asked of the decision maker (0 for PaMO+).
    pub comparisons_used: usize,
}

/// The PaMO scheduler.
///
/// Carries cross-decision warm-start state: the hyperparameter vectors
/// fitted by one decision seed the next decision's outcome-model fits
/// (which then drop one random restart). The online/serving loops
/// construct one `Pamo` and reuse it across epochs, so per-epoch refits
/// warm-start automatically; a fresh `Pamo` always fits cold.
#[derive(Debug, Default)]
pub struct Pamo {
    config: PamoConfig,
    /// `[objective] -> theta` of the previous decision's shared fits.
    warm: Mutex<Option<Vec<Vec<f64>>>>,
    /// The profiling design of the previous decision, reused across
    /// epochs: the (config, uplink) grid stays fixed while each epoch
    /// re-measures it, so GP inputs stay identical bank-wide and the
    /// design-drawing RNG cost is paid once.
    design: Mutex<Option<ProfilingDesign>>,
}

impl Clone for Pamo {
    fn clone(&self) -> Self {
        Pamo {
            config: self.config.clone(),
            warm: Mutex::new(self.warm.lock().clone()),
            design: Mutex::new(self.design.lock().clone()),
        }
    }
}

impl Pamo {
    /// With explicit tuning.
    pub fn new(config: PamoConfig) -> Self {
        Pamo {
            config,
            warm: Mutex::new(None),
            design: Mutex::new(None),
        }
    }

    /// Drop the warm-start state (hyperparameters *and* the cached
    /// profiling design) so the next decision fits its outcome models
    /// cold (e.g. after a workload change that invalidates the previous
    /// hyperparameters). A reset decision redraws exactly the cold RNG
    /// stream, so it bit-reproduces a fresh scheduler's decision.
    pub fn reset_warm_start(&self) {
        *self.warm.lock() = None;
        *self.design.lock() = None;
    }

    /// The cross-decision warm-start state: the shared GP
    /// hyperparameters of the last decision and the cached profiling
    /// design (for checkpointing the scheduler).
    #[allow(clippy::type_complexity)]
    pub fn warm_state(&self) -> (Option<Vec<Vec<f64>>>, Option<ProfilingDesign>) {
        (self.warm.lock().clone(), self.design.lock().clone())
    }

    /// Overwrite the warm-start state (restoring a checkpointed
    /// scheduler). The next decision then warm-starts exactly as the
    /// checkpointed scheduler's next decision would have.
    pub fn restore_warm_state(&self, warm: Option<Vec<Vec<f64>>>, design: Option<ProfilingDesign>) {
        *self.warm.lock() = warm;
        *self.design.lock() = design;
    }

    /// Run Algorithm 2 on a scenario. `true_pref` plays the decision
    /// maker (answering comparisons for PaMO; evaluated directly for
    /// PaMO+) and scores the final decision.
    ///
    /// Every failure mode — infeasible placement, GP numerics,
    /// preference-model breakdown — comes back as a [`CoreError`]; this
    /// path never panics.
    pub fn decide<R: Rng + ?Sized>(
        &self,
        scenario: &Scenario,
        true_pref: &TruePreference,
        rng: &mut R,
    ) -> Result<PamoDecision, CoreError> {
        self.decide_surviving(scenario, true_pref, None, rng)
    }

    /// Failure-aware Algorithm 2: identical to [`Pamo::decide`] but
    /// Algorithm-1 placement (both inside the BO loop and for the final
    /// recommendation) is restricted to the servers marked `true` in
    /// `alive`. With `alive = None` (or all-true) this is exactly the
    /// unrestricted pipeline — bit-identical decisions — which keeps
    /// the zero-fault online path identical to the fault-oblivious one.
    pub fn decide_surviving<R: Rng + ?Sized>(
        &self,
        scenario: &Scenario,
        true_pref: &TruePreference,
        alive: Option<&[bool]>,
        rng: &mut R,
    ) -> Result<PamoDecision, CoreError> {
        self.decide_surviving_recorded(scenario, true_pref, alive, rng, &NoopRecorder)
    }

    /// [`Pamo::decide_surviving`] with telemetry: the decision runs
    /// under a `decide` span with per-stage sub-spans (outcome fit,
    /// preference modeling, BO search) emitted through `rec`. With a
    /// [`NoopRecorder`] this is exactly the plain path — same RNG
    /// stream, bit-identical decisions.
    pub fn decide_surviving_recorded<R: Rng + ?Sized>(
        &self,
        scenario: &Scenario,
        true_pref: &TruePreference,
        alive: Option<&[bool]>,
        rng: &mut R,
        rec: &dyn Recorder,
    ) -> Result<PamoDecision, CoreError> {
        self.decide_surviving_budgeted_recorded(
            scenario,
            true_pref,
            alive,
            &DecisionBudget::unlimited(),
            rng,
            rec,
        )
    }

    /// [`Pamo::decide_surviving_recorded`] under a decision deadline
    /// budget: deterministic work units are charged *before* each
    /// charged stage runs (the outcome-model refit as one lump, then
    /// every BO init point, GP refit, acquisition scan and batch
    /// observation individually via
    /// [`eva_bo::bo_maximize_budgeted`]), and the BO loop early-exits
    /// keeping the best decision found so far once the budget refuses a
    /// charge. Budget exhaustion therefore degrades decision *quality*,
    /// never feasibility: the recommendation is always a placed,
    /// scored configuration. With [`DecisionBudget::unlimited`] no
    /// charge is ever refused and this is bit-identical to the
    /// unbudgeted path (which delegates here).
    #[allow(clippy::too_many_arguments)]
    pub fn decide_surviving_budgeted_recorded<R: Rng + ?Sized>(
        &self,
        scenario: &Scenario,
        true_pref: &TruePreference,
        alive: Option<&[bool]>,
        budget: &DecisionBudget,
        rng: &mut R,
        rec: &dyn Recorder,
    ) -> Result<PamoDecision, CoreError> {
        let _decide_span = span(rec, Phase::Decide);
        let cfg = &self.config;
        let normalizer = OutcomeNormalizer::for_scenario(scenario);

        // (1) Outcome function fitting, warm-started from the previous
        // decision's hyperparameters when this scheduler has made one.
        // The profiling design (the shared (config, uplink) grid) is
        // cached alongside: later epochs re-measure the same points
        // instead of redrawing them.
        let warm_thetas = self.warm.lock().clone();
        let design = {
            let mut guard = self.design.lock();
            match guard.as_ref() {
                Some(d) if d.len() == cfg.profiling_per_camera => d.clone(),
                _ => {
                    let d = ProfilingDesign::draw(scenario, cfg.profiling_per_camera, rng);
                    *guard = Some(d.clone());
                    d
                }
            }
        };
        // The refit is mandatory (a decision without outcome models is
        // no decision), so a refused lump is force-charged: the overrun
        // counter then records that the budget floor was set below the
        // decision's fixed cost — the condition `ext_overload` gates on
        // staying zero.
        let fit_lump = scenario.n_videos() as u64 * cost::GP_FIT;
        if !budget.try_charge(fit_lump) {
            budget.force_charge(fit_lump);
        }
        let bank = OutcomeModelBank::fit_initial_designed_recorded(
            scenario,
            &design,
            cfg.profile_noise,
            warm_thetas.as_deref(),
            rng,
            rec,
        )?;
        *self.warm.lock() = Some(bank.shared_thetas());

        // (2) System preference modeling.
        let (pool, pref_eval, comparisons_used) = {
            let _pref_span = span(rec, Phase::PrefModel);
            let pool = build_pool(scenario, cfg.pool_size, rng);
            let (pref_eval, comparisons_used) = match cfg.preference {
                PreferenceSource::Oracle => (PreferenceEval::Oracle(true_pref.clone()), 0),
                PreferenceSource::Learned => {
                    let model = self.elicit(scenario, &bank, &normalizer, true_pref, &pool, rng)?;
                    (PreferenceEval::Learned(model), cfg.n_comparisons)
                }
            };
            (pool, pref_eval, comparisons_used)
        };
        if rec.enabled() {
            rec.observe("core.pool_size", pool.len() as f64);
            rec.observe("core.comparisons_used", comparisons_used as f64);
        }

        // (3) Best configuration solving.
        let bank = Mutex::new(bank);
        let objective = |x: &[f64]| -> f64 {
            if rec.enabled() {
                rec.add("core.objective_evals", 1);
            }
            let configs = decode_joint(scenario, x);
            let assignment = match scenario.schedule_surviving_recorded(&configs, alive, rec) {
                Ok(a) => a,
                Err(_) => return INFEASIBLE_BENEFIT,
            };
            // "Run" the configuration: measure per-camera outcomes with
            // profiling noise, feed them back into the outcome models
            // (Algorithm 2 lines 16-18), and score the aggregate with
            // the preference layer (line 17).
            let mut locked = bank.lock();
            let agg = measure_aggregate(
                scenario,
                &configs,
                &assignment,
                cfg.profile_noise,
                Some(&mut locked),
            );
            drop(locked);
            if let Some(outcome) = agg {
                let y = normalizer.normalize(&outcome);
                pref_eval.mean_and_std(&y).0
            } else {
                INFEASIBLE_BENEFIT
            }
        };
        let fit = |_observations: &[(Vec<f64>, f64)]| -> CompositeSampler<'_> {
            CompositeSampler::new(
                scenario,
                bank.lock().clone(),
                pref_eval.clone(),
                normalizer.clone(),
            )
        };
        let bo = {
            let _bo_span = span(rec, Phase::BoSearch);
            bo_maximize_budgeted(objective, fit, &pool, &cfg.bo, rng, budget)
        };
        if rec.enabled() {
            rec.add("core.decisions", 1);
            rec.observe("core.bo_observations", bo.observations.len() as f64);
        }

        // Final recommendation: best observed joint config, scored by
        // the *true* preference on the *noise-free* outcome.
        let configs = decode_joint(scenario, &bo.best_x);
        let outcome = scenario
            .evaluate_surviving_recorded(&configs, alive, rec)?
            .outcome;
        let true_benefit = true_pref.benefit(&outcome);
        if !true_benefit.is_finite() {
            return Err(CoreError::NonFinite {
                context: "PamoDecision::true_benefit",
            });
        }
        Ok(PamoDecision {
            configs,
            outcome,
            true_benefit,
            bo,
            comparisons_used,
        })
    }

    /// Preference elicitation over predicted outcome vectors of pool
    /// configurations (Algorithm 2 lines 5-11).
    fn elicit<R: Rng + ?Sized>(
        &self,
        scenario: &Scenario,
        bank: &OutcomeModelBank,
        normalizer: &OutcomeNormalizer,
        true_pref: &TruePreference,
        pool: &[Vec<f64>],
        rng: &mut R,
    ) -> Result<PreferenceModel, CoreError> {
        let sampler = CompositeSampler::new(
            scenario,
            bank.clone(),
            PreferenceEval::Oracle(true_pref.clone()), // unused: predict only
            normalizer.clone(),
        );
        let mut candidates: Vec<Vec<f64>> = Vec::new();
        for x in pool.iter() {
            if candidates.len() >= self.config.elicit_candidates {
                break;
            }
            if let Some(outcome) = sampler.predict_outcome(x) {
                candidates.push(normalizer.normalize(&outcome));
            }
        }
        if candidates.len() < 2 {
            // Not enough predictable outcomes to pose a single
            // comparison — surface it instead of asserting.
            return Err(CoreError::Preference(eva_prefgp::PrefError::Empty));
        }
        let mut oracle = TruePreferenceOracle::new(true_pref);
        let mut elicit_cfg = ElicitConfig::for_dim(eva_workload::N_OBJECTIVES);
        elicit_cfg.n_comparisons = self.config.n_comparisons;
        let (model, _) = elicit_preferences(&mut oracle, &candidates, &elicit_cfg, rng)?;
        Ok(model)
    }
}

/// Measure the aggregate outcome of a scheduled configuration with
/// profiling noise, optionally feeding per-camera samples back into the
/// outcome-model bank.
pub fn measure_aggregate(
    scenario: &Scenario,
    configs: &[VideoConfig],
    assignment: &eva_sched::Assignment,
    rel_noise: f64,
    update_bank: Option<&mut OutcomeModelBank>,
) -> Option<Outcome> {
    let m = scenario.n_videos();
    let mut rng = eva_stats::rng::seeded(hash_configs(configs));
    // First split part of each camera, found in one pass (the
    // per-camera `position()` scan this replaces was O(M²)).
    let mut first_part: Vec<Option<usize>> = vec![None; m];
    for (i, st) in assignment.streams.iter().enumerate() {
        let slot = &mut first_part[st.id.source];
        if slot.is_none() {
            *slot = Some(i);
        }
    }
    let mut acc = 0.0;
    let mut net = 0.0;
    let mut com = 0.0;
    let mut eng = 0.0;
    let mut lat = 0.0;
    // Measurements draw from one shared RNG stream, so this loop is
    // sequential; the per-camera GP conditioning below is not, so the
    // samples are collected and fed to the bank as one parallel pass.
    let mut samples = Vec::with_capacity(if update_bank.is_some() { m } else { 0 });
    #[allow(clippy::needless_range_loop)]
    for cam in 0..m {
        let uplink = first_part[cam].map(|i| scenario.uplinks()[assignment.server_of[i]])?;
        let profiler = Profiler::new(scenario.surfaces(cam).clone())
            .with_noise(rel_noise, rel_noise.min(0.02));
        let sample = profiler.measure(&configs[cam], uplink, &mut rng);
        acc += sample.outcome.accuracy;
        net += sample.outcome.network_bps;
        com += sample.outcome.compute_tflops;
        eng += sample.outcome.power_w;
        lat += sample.outcome.latency_s;
        if update_bank.is_some() {
            samples.push(sample);
        }
    }
    if let Some(bank) = update_bank {
        // Conditioning failures keep a camera's previous models (stale
        // beats poisoned); the measurements themselves still count.
        bank.update_all(&samples);
    }
    Some(Outcome {
        latency_s: lat / m as f64,
        accuracy: acc / m as f64,
        network_bps: net,
        compute_tflops: com,
        power_w: eng,
    })
}

fn hash_configs(configs: &[VideoConfig]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for c in configs {
        h = (h ^ c.resolution.to_bits()).wrapping_mul(0x0000_0100_0000_01B3);
        h = (h ^ c.fps.to_bits()).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_stats::rng::seeded;

    /// A small, fast PaMO configuration for tests.
    fn tiny_config() -> PamoConfig {
        PamoConfig {
            bo: BoConfig {
                n_init: 4,
                batch: 2,
                mc_samples: 16,
                max_iters: 4,
                delta: 0.01,
                kind: AcqKind::QNei,
            },
            pool_size: 25,
            profiling_per_camera: 25,
            profile_noise: 0.02,
            n_comparisons: 8,
            elicit_candidates: 20,
            preference: PreferenceSource::Learned,
        }
    }

    fn scenario() -> Scenario {
        Scenario::uniform(3, 2, 20e6, 47)
    }

    #[test]
    fn pamo_plus_finds_good_configurations() {
        let sc = scenario();
        let pref = TruePreference::uniform(&sc);
        let pamo = Pamo::new(tiny_config().plus());
        let d = pamo.decide(&sc, &pref, &mut seeded(1)).unwrap();
        // Compare against the floor config: PaMO+ must do better.
        let floor = sc
            .evaluate(&[VideoConfig::new(360.0, 1.0); 3])
            .unwrap()
            .outcome;
        assert!(
            d.true_benefit >= pref.benefit(&floor),
            "PaMO+ {} vs floor {}",
            d.true_benefit,
            pref.benefit(&floor)
        );
        assert_eq!(d.comparisons_used, 0);
        assert!(sc.schedule(&d.configs).is_ok());
    }

    #[test]
    fn pamo_learned_close_to_pamo_plus() {
        let sc = scenario();
        let pref = TruePreference::uniform(&sc);
        let plus = Pamo::new(tiny_config().plus())
            .decide(&sc, &pref, &mut seeded(2))
            .unwrap();
        let learned = Pamo::new(tiny_config())
            .decide(&sc, &pref, &mut seeded(2))
            .unwrap();
        assert_eq!(learned.comparisons_used, 8);
        // With tiny budgets we only ask for the right ballpark: the gap
        // to the oracle must be a fraction of the benefit scale (Σw = 5).
        let gap = plus.true_benefit - learned.true_benefit;
        assert!(
            gap < 1.5,
            "gap {gap} (plus {} learned {})",
            plus.true_benefit,
            learned.true_benefit
        );
    }

    #[test]
    fn decisions_are_always_zero_jitter_feasible() {
        let sc = scenario();
        let pref = TruePreference::new(&sc, [3.2, 1.0, 1.0, 1.0, 1.0]);
        let d = Pamo::new(tiny_config().plus())
            .decide(&sc, &pref, &mut seeded(3))
            .unwrap();
        let assignment = sc.schedule(&d.configs).unwrap();
        for server in 0..sc.n_servers() {
            let members: Vec<eva_sched::StreamTiming> = assignment
                .streams_on(server)
                .into_iter()
                .map(|i| assignment.streams[i])
                .collect();
            assert!(eva_sched::const2_zero_jitter_ok(&members));
        }
    }

    #[test]
    fn preference_weights_steer_pamo_decisions() {
        let sc = scenario();
        // Accuracy-heavy vs energy-heavy true preferences.
        let acc_pref = TruePreference::new(&sc, [0.2, 3.2, 0.2, 0.2, 0.2]);
        let eng_pref = TruePreference::new(&sc, [0.2, 0.2, 0.2, 0.2, 3.2]);
        let pamo = Pamo::new(tiny_config().plus());
        let d_acc = pamo.decide(&sc, &acc_pref, &mut seeded(4)).unwrap();
        let d_eng = pamo.decide(&sc, &eng_pref, &mut seeded(4)).unwrap();
        assert!(
            d_acc.outcome.accuracy >= d_eng.outcome.accuracy,
            "acc-pref accuracy {} < eng-pref accuracy {}",
            d_acc.outcome.accuracy,
            d_eng.outcome.accuracy
        );
        assert!(
            d_eng.outcome.power_w <= d_acc.outcome.power_w,
            "eng-pref power {} > acc-pref power {}",
            d_eng.outcome.power_w,
            d_acc.outcome.power_w
        );
    }

    #[test]
    fn warm_started_second_decision_stays_good() {
        let sc = scenario();
        let pref = TruePreference::uniform(&sc);
        let pamo = Pamo::new(tiny_config().plus());
        let first = pamo.decide(&sc, &pref, &mut seeded(7)).unwrap();
        // Second decision on the same scheduler warm-starts its GP fits;
        // quality must not regress below the trivial floor and the
        // decision must stay feasible.
        let second = pamo.decide(&sc, &pref, &mut seeded(8)).unwrap();
        let floor = sc
            .evaluate(&[VideoConfig::new(360.0, 1.0); 3])
            .unwrap()
            .outcome;
        assert!(second.true_benefit >= pref.benefit(&floor));
        assert!(sc.schedule(&second.configs).is_ok());
        // After a reset the scheduler fits cold again and reproduces the
        // first decision bit-for-bit on the same seed.
        pamo.reset_warm_start();
        let cold_again = pamo.decide(&sc, &pref, &mut seeded(7)).unwrap();
        assert_eq!(cold_again.configs, first.configs);
        assert_eq!(cold_again.true_benefit, first.true_benefit);
    }

    #[test]
    fn budgeted_decision_early_exits_but_stays_feasible() {
        let sc = scenario();
        let pref = TruePreference::uniform(&sc);
        let pamo = Pamo::new(tiny_config().plus());
        let full = pamo.decide(&sc, &pref, &mut seeded(11)).unwrap();
        pamo.reset_warm_start();
        // Affords the mandatory fit lump plus the init design only:
        // the BO loop must early-exit without overrunning, and the
        // recommendation must still be a feasible placement.
        let budget =
            DecisionBudget::limited(sc.n_videos() as u64 * cost::GP_FIT + 4 * cost::OBJ_EVAL);
        let d = pamo
            .decide_surviving_budgeted_recorded(
                &sc,
                &pref,
                None,
                &budget,
                &mut seeded(11),
                &NoopRecorder,
            )
            .unwrap();
        assert!(d.bo.budget_stopped, "starved budget must stop the BO loop");
        assert!(
            d.bo.observations.len() < full.bo.observations.len(),
            "budgeted run observed as much as the unlimited run"
        );
        assert_eq!(budget.overruns(), 0);
        assert!(budget.spent() <= budget.limit());
        assert!(sc.schedule(&d.configs).is_ok());
    }

    #[test]
    fn warm_state_round_trip_restores_the_scheduler() {
        let sc = scenario();
        let pref = TruePreference::uniform(&sc);
        let pamo = Pamo::new(tiny_config().plus());
        pamo.decide(&sc, &pref, &mut seeded(12)).unwrap();
        let (warm, design) = pamo.warm_state();
        assert!(warm.is_some() && design.is_some());
        // A fresh scheduler restored from the checkpoint makes the
        // same next decision as the original.
        let restored = Pamo::new(tiny_config().plus());
        restored.restore_warm_state(warm, design);
        let a = pamo.decide(&sc, &pref, &mut seeded(13)).unwrap();
        let b = restored.decide(&sc, &pref, &mut seeded(13)).unwrap();
        assert_eq!(a.configs, b.configs);
        assert_eq!(a.true_benefit.to_bits(), b.true_benefit.to_bits());
    }

    #[test]
    fn measure_aggregate_matches_analytic_at_zero_noise() {
        let sc = scenario();
        let configs = vec![VideoConfig::new(600.0, 5.0); 3];
        let assignment = sc.schedule(&configs).unwrap();
        let measured = measure_aggregate(&sc, &configs, &assignment, 0.0, None).unwrap();
        let analytic = sc.evaluate(&configs).unwrap().outcome;
        assert!((measured.accuracy - analytic.accuracy).abs() < 1e-9);
        assert!((measured.network_bps - analytic.network_bps).abs() < 1e-6);
        // Latency: measured averages per *camera*, analytic per split
        // part; identical when nothing splits (these configs do not).
        assert!((measured.latency_s - analytic.latency_s).abs() < 1e-9);
    }
}
