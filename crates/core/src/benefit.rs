//! The hidden true preference function and the evaluation metric.
//!
//! Sec. 5.1 defines system benefit as the negative weighted L1 distance
//! between the *normalized* outcome vector and the utopian vector
//! (Eq. 13): `U = −Σ_i w_i |ŷ_i − y*_i|`. The utopian outcome is the
//! per-objective single-objective optimum; in normalized cost space
//! that is the zero vector. The paper's footnote 2 normalizes benefits
//! to \[0,1\] with `max(U)` = PaMO+ and `min(U) = −½ Σ w_i`; the formula
//! as printed would send the best value to 0, so we use the evident
//! intent (affine map sending `min(U) → 0`, `max(U) → 1`).

use eva_prefgp::DecisionMaker;
use eva_stats::MinMaxNormalizer;
use eva_workload::{Outcome, Scenario, N_OBJECTIVES};

/// Min-max normalizer over the scenario's cost space (accuracy negated),
/// mapping raw outcome vectors into `[0,1]^5`.
#[derive(Debug, Clone)]
pub struct OutcomeNormalizer {
    inner: MinMaxNormalizer,
}

impl OutcomeNormalizer {
    /// Build from a scenario's feasible cost bounds.
    pub fn for_scenario(scenario: &Scenario) -> Self {
        let bounds = scenario.cost_bounds();
        let (mins, maxs): (Vec<f64>, Vec<f64>) = bounds.into_iter().unzip();
        OutcomeNormalizer {
            inner: MinMaxNormalizer::from_bounds(mins, maxs),
        }
    }

    /// Normalize an outcome to the unit cost cube.
    pub fn normalize(&self, outcome: &Outcome) -> Vec<f64> {
        self.inner.transform(&outcome.to_cost_vec())
    }

    /// Normalize an already-negated cost vector.
    pub fn normalize_cost(&self, cost: &[f64]) -> Vec<f64> {
        self.inner.transform(cost)
    }
}

/// The hidden true preference function (Eq. 13) — what the decision
/// maker "knows" and the schedulers must discover.
#[derive(Debug, Clone)]
pub struct TruePreference {
    weights: [f64; N_OBJECTIVES],
    normalizer: OutcomeNormalizer,
}

impl TruePreference {
    /// Build for a scenario with explicit objective weights
    /// (order: latency, accuracy, network, computation, energy).
    pub fn new(scenario: &Scenario, weights: [f64; N_OBJECTIVES]) -> Self {
        assert!(
            weights.iter().all(|&w| w >= 0.0) && weights.iter().sum::<f64>() > 0.0,
            "TruePreference: weights must be nonnegative, not all zero"
        );
        TruePreference {
            weights,
            normalizer: OutcomeNormalizer::for_scenario(scenario),
        }
    }

    /// Uniform weights (the Fig. 7 setting).
    pub fn uniform(scenario: &Scenario) -> Self {
        TruePreference::new(scenario, [1.0; N_OBJECTIVES])
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64; N_OBJECTIVES] {
        &self.weights
    }

    /// The outcome normalizer in use.
    pub fn normalizer(&self) -> &OutcomeNormalizer {
        &self.normalizer
    }

    /// System benefit of a raw outcome (Eq. 13). Utopia is the origin of
    /// normalized cost space, so `U = −Σ w_i ŷ_i ∈ [−Σw, 0]`.
    pub fn benefit(&self, outcome: &Outcome) -> f64 {
        self.benefit_of_normalized(&self.normalizer.normalize(outcome))
    }

    /// Benefit of an already-normalized cost vector.
    pub fn benefit_of_normalized(&self, y_norm: &[f64]) -> f64 {
        assert_eq!(y_norm.len(), N_OBJECTIVES, "benefit: wrong outcome dim");
        -y_norm
            .iter()
            .zip(&self.weights)
            .map(|(&y, &w)| w * y.abs())
            .sum::<f64>()
    }

    /// Per-objective contributions `w_i |ŷ_i − y*_i|` to the (negated)
    /// benefit — the colored "benefit ratio" shares of Fig. 6.
    pub fn contributions(&self, outcome: &Outcome) -> [f64; N_OBJECTIVES] {
        let y = self.normalizer.normalize(outcome);
        let mut out = [0.0; N_OBJECTIVES];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.weights[i] * y[i].abs();
        }
        out
    }

    /// The footnote-2 lower reference value `min(U) = −½ Σ w_i`.
    pub fn min_reference(&self) -> f64 {
        -0.5 * self.weights.iter().sum::<f64>()
    }
}

/// A [`DecisionMaker`] view of the true preference over *normalized*
/// outcome vectors — the oracle PaMO's preference learning queries
/// (Sec. 5.1: comparisons are answered with Eq. 13).
pub struct TruePreferenceOracle<'a> {
    pref: &'a TruePreference,
}

impl<'a> TruePreferenceOracle<'a> {
    /// Borrow the hidden preference as an oracle.
    pub fn new(pref: &'a TruePreference) -> Self {
        TruePreferenceOracle { pref }
    }
}

impl DecisionMaker for TruePreferenceOracle<'_> {
    fn prefers(&mut self, a: &[f64], b: &[f64]) -> bool {
        self.pref.benefit_of_normalized(a) >= self.pref.benefit_of_normalized(b)
    }
}

/// Footnote-2 normalized benefit: affine map with `U = min_ref → 0` and
/// `U = best → 1` (values outside clamp into [0, 1.05] so "slightly
/// better than the reference best" stays visible).
pub fn normalized_benefit(u: f64, best: f64, min_ref: f64) -> f64 {
    let span = best - min_ref;
    if span <= 0.0 {
        return if u >= best { 1.0 } else { 0.0 };
    }
    ((u - min_ref) / span).clamp(0.0, 1.05)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_workload::VideoConfig;

    fn scenario() -> Scenario {
        Scenario::uniform(3, 2, 20e6, 23)
    }

    #[test]
    fn benefit_is_nonpositive_and_zero_at_utopia() {
        let sc = scenario();
        let pref = TruePreference::uniform(&sc);
        let out = sc
            .evaluate(&[VideoConfig::new(480.0, 5.0); 3])
            .unwrap()
            .outcome;
        assert!(pref.benefit(&out) <= 0.0);
        // The all-zero normalized vector is utopia.
        assert_eq!(pref.benefit_of_normalized(&[0.0; 5]), 0.0);
        assert!((pref.benefit_of_normalized(&[1.0; 5]) + 5.0).abs() < 1e-12);
    }

    #[test]
    fn weights_steer_the_preference() {
        let sc = scenario();
        // Accuracy-obsessed preference.
        let acc_pref = TruePreference::new(&sc, [0.1, 5.0, 0.1, 0.1, 0.1]);
        // Energy-obsessed preference.
        let eng_pref = TruePreference::new(&sc, [0.1, 0.1, 0.1, 0.1, 5.0]);
        let frugal = sc
            .evaluate(&[VideoConfig::new(360.0, 1.0); 3])
            .unwrap()
            .outcome;
        let lavish = sc
            .evaluate(&[VideoConfig::new(720.0, 10.0); 3])
            .unwrap()
            .outcome;
        // Accuracy preference favors the lavish config; energy the frugal.
        assert!(acc_pref.benefit(&lavish) > acc_pref.benefit(&frugal));
        assert!(eng_pref.benefit(&frugal) > eng_pref.benefit(&lavish));
    }

    #[test]
    fn contributions_sum_to_negative_benefit() {
        let sc = scenario();
        let pref = TruePreference::new(&sc, [1.0, 2.0, 0.5, 1.5, 1.0]);
        let out = sc
            .evaluate(&[VideoConfig::new(720.0, 10.0); 3])
            .unwrap()
            .outcome;
        let contrib = pref.contributions(&out);
        let total: f64 = contrib.iter().sum();
        assert!((total + pref.benefit(&out)).abs() < 1e-12);
        assert!(contrib.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn oracle_agrees_with_benefit_order() {
        let sc = scenario();
        let pref = TruePreference::uniform(&sc);
        let mut oracle = TruePreferenceOracle::new(&pref);
        let good = [0.1; 5];
        let bad = [0.9; 5];
        assert!(oracle.prefers(&good, &bad));
        assert!(!oracle.prefers(&bad, &good));
    }

    #[test]
    fn normalized_benefit_endpoints() {
        assert_eq!(normalized_benefit(-2.5, -1.0, -2.5), 0.0);
        assert_eq!(normalized_benefit(-1.0, -1.0, -2.5), 1.0);
        let mid = normalized_benefit(-1.75, -1.0, -2.5);
        assert!((mid - 0.5).abs() < 1e-12);
        // Slight exceedance allowed, clamped at 1.05.
        assert!(normalized_benefit(-0.5, -1.0, -2.5) <= 1.05);
        // Degenerate span.
        assert_eq!(normalized_benefit(-1.0, -1.0, -1.0), 1.0);
    }

    #[test]
    fn min_reference_matches_footnote() {
        let sc = scenario();
        let pref = TruePreference::new(&sc, [0.2, 1.0, 1.0, 1.0, 1.0]);
        assert!((pref.min_reference() + 0.5 * 4.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn rejects_negative_weights() {
        let sc = scenario();
        let _ = TruePreference::new(&sc, [-1.0, 1.0, 1.0, 1.0, 1.0]);
    }
}
