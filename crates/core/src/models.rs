//! The outcome-model bank: one GP per (camera, objective).
//!
//! Algorithm 2 lines 1-4: profile a few configurations, fit GP outcome
//! models; line 18: update them with the observations the BO loop
//! makes. Inputs are the normalized `[r/2160, s/30, B/100Mbps]`
//! features of `eva_workload::profiler::features_of`; objectives that
//! do not depend on a feature (e.g. bandwidth on uplink) get that
//! irrelevance discovered by the ARD lengthscales.
//!
//! Clips share one surface *family* (Fig. 2's "consistent pattern"), so
//! kernel hyperparameters are fitted once per objective on the first
//! camera's data and reused — data (not hypers) stays per-camera. This
//! cuts fitting cost by ~M× without hurting accuracy.

use eva_gp::{fit_gp_recorded, FitConfig, GpModel};
use eva_obs::{span, NoopRecorder, Phase, Recorder};
use eva_workload::profiler::features_of;
use eva_workload::{Outcome, ProfileSample, Profiler, Scenario, VideoConfig, N_OBJECTIVES};
use rand::Rng;

use crate::error::CoreError;

/// GPs for all cameras and objectives.
#[derive(Debug, Clone)]
pub struct OutcomeModelBank {
    /// `models[camera][objective]`.
    models: Vec<Vec<GpModel>>,
}

impl OutcomeModelBank {
    /// Profile every camera with `samples_per_camera` random grid
    /// configurations (uplinks drawn from the scenario's pool) and fit
    /// the 5·M GPs. `rel_noise` is the profiling measurement noise.
    ///
    /// Numerical failure (a kernel matrix that stays non-PD after the
    /// Cholesky jitter ladder) is returned as
    /// [`CoreError::OutcomeModel`], not panicked.
    pub fn fit_initial<R: Rng + ?Sized>(
        scenario: &Scenario,
        samples_per_camera: usize,
        rel_noise: f64,
        rng: &mut R,
    ) -> Result<Self, CoreError> {
        Self::fit_initial_recorded(scenario, samples_per_camera, rel_noise, rng, &NoopRecorder)
    }

    /// [`OutcomeModelBank::fit_initial`] with telemetry: the whole fit
    /// runs under an `outcome_fit` span and per-GP fit internals go
    /// through `rec` (a [`NoopRecorder`] makes this the plain path).
    pub fn fit_initial_recorded<R: Rng + ?Sized>(
        scenario: &Scenario,
        samples_per_camera: usize,
        rel_noise: f64,
        rng: &mut R,
        rec: &dyn Recorder,
    ) -> Result<Self, CoreError> {
        assert!(samples_per_camera >= 4, "need a minimal profiling budget");
        let _fit_span = span(rec, Phase::OutcomeFit);
        let space = scenario.config_space();
        let mut models: Vec<Vec<GpModel>> = Vec::with_capacity(scenario.n_videos());
        let mut shared_kernels: Option<Vec<(eva_gp::Kernel, f64)>> = None;

        for cam in 0..scenario.n_videos() {
            let profiler = Profiler::new(scenario.surfaces(cam).clone())
                .with_noise(rel_noise, rel_noise.min(0.02));
            // Vary the uplink across samples so the latency GP sees it.
            let samples: Vec<ProfileSample> = (0..samples_per_camera)
                .map(|_| {
                    let cfg = space.at(rng.gen_range(0..space.len()));
                    let uplink = scenario.uplinks()[rng.gen_range(0..scenario.n_servers())];
                    profiler.measure(&cfg, uplink, rng)
                })
                .collect();
            let xs: Vec<Vec<f64>> = samples.iter().map(|s| s.features()).collect();

            let mut cam_models = Vec::with_capacity(N_OBJECTIVES);
            for obj in 0..N_OBJECTIVES {
                let ys: Vec<f64> = samples
                    .iter()
                    .map(|s| objective_value(&s.outcome, obj))
                    .collect();
                let model = match &shared_kernels {
                    Some(kernels) => {
                        let (kernel, noise) = &kernels[obj];
                        GpModel::new(kernel.clone(), *noise, xs.clone(), ys)?
                    }
                    None => {
                        let cfg = FitConfig {
                            restarts: 2,
                            max_evals: 120,
                            ..Default::default()
                        };
                        fit_gp_recorded(&xs, &ys, &cfg, rng, rec)?
                    }
                };
                cam_models.push(model);
            }
            if shared_kernels.is_none() {
                shared_kernels = Some(
                    cam_models
                        .iter()
                        .map(|m| (m.kernel().clone(), m.noise_var()))
                        .collect(),
                );
            }
            models.push(cam_models);
        }
        if rec.enabled() {
            rec.add("core.outcome_fits", 1);
            rec.observe(
                "core.profiling_samples",
                (samples_per_camera * scenario.n_videos()) as f64,
            );
        }
        Ok(OutcomeModelBank { models })
    }

    /// Number of cameras covered.
    pub fn n_cameras(&self) -> usize {
        self.models.len()
    }

    /// The GP for one (camera, objective) pair.
    pub fn model(&self, camera: usize, objective: usize) -> &GpModel {
        &self.models[camera][objective]
    }

    /// Condition camera `camera`'s models on a new measured sample
    /// (Algorithm 2 line 18; hyperparameters are kept).
    ///
    /// A conditioning failure (non-PD updated Gram matrix, non-finite
    /// outcome) leaves the previous models of that camera in place and
    /// reports the error — the bank degrades to a stale model rather
    /// than poisoning the run.
    pub fn update(&mut self, camera: usize, sample: &ProfileSample) -> Result<(), CoreError> {
        let x = sample.features();
        if x.iter().any(|v| !v.is_finite())
            || sample.outcome.to_vec().iter().any(|v| !v.is_finite())
        {
            return Err(CoreError::NonFinite {
                context: "profile sample fed to OutcomeModelBank::update",
            });
        }
        // Stage all five updated models first so a mid-way failure
        // cannot leave the camera with a half-updated bank.
        let mut staged = Vec::with_capacity(N_OBJECTIVES);
        for obj in 0..N_OBJECTIVES {
            let y = objective_value(&sample.outcome, obj);
            staged.push(self.models[camera][obj].with_added(std::slice::from_ref(&x), &[y])?);
        }
        for (obj, updated) in staged.into_iter().enumerate() {
            self.models[camera][obj] = updated;
        }
        Ok(())
    }

    /// Predictive mean outcome of one camera under a config + uplink.
    pub fn predict(&self, camera: usize, config: &VideoConfig, uplink_bps: f64) -> Outcome {
        let x = features_of(config, uplink_bps);
        let v: Vec<f64> = (0..N_OBJECTIVES)
            .map(|obj| self.models[camera][obj].predict_mean(&x))
            .collect();
        Outcome::from_vec(&v)
    }

    /// Predictive mean and variance of one (camera, objective) at a
    /// config + uplink.
    pub fn predict_objective(
        &self,
        camera: usize,
        objective: usize,
        config: &VideoConfig,
        uplink_bps: f64,
    ) -> (f64, f64) {
        let x = features_of(config, uplink_bps);
        self.models[camera][objective].predict(&x)
    }
}

/// Extract objective `obj` (canonical order) from an outcome.
fn objective_value(outcome: &Outcome, obj: usize) -> f64 {
    outcome.to_vec()[obj]
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_stats::metrics::r_squared;
    use eva_stats::rng::seeded;
    use eva_workload::outcome::idx;

    fn bank(samples: usize) -> (Scenario, OutcomeModelBank) {
        let sc = Scenario::uniform(3, 2, 20e6, 31);
        let mut rng = seeded(1);
        let bank = OutcomeModelBank::fit_initial(&sc, samples, 0.02, &mut rng).unwrap();
        (sc, bank)
    }

    #[test]
    fn predictions_track_ground_truth() {
        let (sc, bank) = bank(60);
        // R² across a test grid, per objective, camera 0.
        let space = sc.config_space();
        let mut truth = vec![Vec::new(); N_OBJECTIVES];
        let mut pred = vec![Vec::new(); N_OBJECTIVES];
        for c in space.iter() {
            let t = sc.evaluate_stream(0, &c, 20e6).to_vec();
            let p = bank.predict(0, &c, 20e6).to_vec();
            for d in 0..N_OBJECTIVES {
                truth[d].push(t[d]);
                pred[d].push(p[d]);
            }
        }
        for d in 0..N_OBJECTIVES {
            let r2 = r_squared(&truth[d], &pred[d]);
            assert!(r2 > 0.9, "objective {d}: R² = {r2}");
        }
    }

    #[test]
    fn update_improves_local_prediction() {
        let (sc, mut bank) = bank(12); // deliberately under-profiled
        let c = VideoConfig::new(1800.0, 25.0);
        let truth = sc.evaluate_stream(1, &c, 20e6);
        let before = bank.predict(1, &c, 20e6);
        // Feed the exact point several times (noiseless).
        let profiler = Profiler::new(sc.surfaces(1).clone()).with_noise(0.0, 0.0);
        let mut rng = seeded(2);
        for _ in 0..3 {
            let s = profiler.measure(&c, 20e6, &mut rng);
            bank.update(1, &s).unwrap();
        }
        let after = bank.predict(1, &c, 20e6);
        let err = |o: &Outcome| (o.accuracy - truth.accuracy).abs();
        assert!(
            err(&after) <= err(&before) + 1e-9,
            "update made accuracy prediction worse: {} -> {}",
            err(&before),
            err(&after)
        );
        // Threshold leaves slack for the random under-profiled set the
        // hyperparameters were fit on (observed ~0.01-0.025 across RNG
        // streams).
        assert!(err(&after) < 0.03, "after err = {}", err(&after));
    }

    #[test]
    fn latency_model_sees_uplink() {
        let (_, bank) = bank(80);
        let c = VideoConfig::new(1080.0, 10.0);
        let (lat_slow, _) = bank.predict_objective(0, idx::LATENCY, &c, 5e6);
        let (lat_fast, _) = bank.predict_objective(0, idx::LATENCY, &c, 30e6);
        // 5 Mbps uplink must predict noticeably higher latency...
        // unless the training scenario only had one uplink value — the
        // bank(·) scenario is uniform, so both servers share 20 Mbps and
        // the GP cannot learn the dependence. Use the spread instead:
        // prediction should at least not be wildly different.
        assert!((lat_slow - lat_fast).abs() < 0.5);
    }

    #[test]
    fn heterogeneous_uplinks_teach_latency_dependence() {
        let sc = Scenario::new(
            eva_workload::clip::clip_set(2, 3),
            vec![5e6, 30e6],
            eva_workload::ConfigSpace::default(),
        );
        let mut rng = seeded(3);
        let bank = OutcomeModelBank::fit_initial(&sc, 80, 0.01, &mut rng).unwrap();
        let c = VideoConfig::new(1440.0, 10.0);
        let (lat_slow, _) = bank.predict_objective(0, idx::LATENCY, &c, 5e6);
        let (lat_fast, _) = bank.predict_objective(0, idx::LATENCY, &c, 30e6);
        let truth_gap =
            sc.surfaces(0).e2e_latency_secs(&c, 5e6) - sc.surfaces(0).e2e_latency_secs(&c, 30e6);
        assert!(
            lat_slow - lat_fast > 0.3 * truth_gap,
            "learned gap {} vs true gap {truth_gap}",
            lat_slow - lat_fast
        );
    }

    #[test]
    fn per_camera_models_differ_with_content() {
        let (sc, bank) = bank(60);
        // Cameras 0 and 1 have different clips; their accuracy
        // predictions at the same config should reflect that.
        let c = VideoConfig::new(1080.0, 15.0);
        let a0 = bank.predict(0, &c, 20e6).accuracy;
        let a1 = bank.predict(1, &c, 20e6).accuracy;
        let t0 = sc.evaluate_stream(0, &c, 20e6).accuracy;
        let t1 = sc.evaluate_stream(1, &c, 20e6).accuracy;
        // Predicted ordering matches the true ordering.
        assert_eq!(a0 > a1, t0 > t1, "a0={a0} a1={a1} t0={t0} t1={t1}");
    }
}
