//! The outcome-model bank: one GP per (camera, objective).
//!
//! Algorithm 2 lines 1-4: profile a few configurations, fit GP outcome
//! models; line 18: update them with the observations the BO loop
//! makes. Inputs are the normalized `[r/2160, s/30, B/100Mbps]`
//! features of `eva_workload::profiler::features_of`; objectives that
//! do not depend on a feature (e.g. bandwidth on uplink) get that
//! irrelevance discovered by the ARD lengthscales.
//!
//! Clips share one surface *family* (Fig. 2's "consistent pattern"), so
//! kernel hyperparameters are fitted once per objective on the first
//! camera's data and reused — data (not hypers) stays per-camera. This
//! cuts fitting cost by ~M× without hurting accuracy.

use std::sync::Arc;

use eva_gp::{fit_gp_recorded, theta_of, FitConfig, GpModel};
use eva_obs::{span, NoopRecorder, Phase, Recorder};
use eva_workload::profiler::features_of;
use eva_workload::{Outcome, ProfileSample, Profiler, Scenario, VideoConfig, N_OBJECTIVES};
use rand::Rng;
use rayon::prelude::*;

use crate::error::CoreError;

/// Minimum profiling samples per camera the initial GP fits need.
const MIN_PROFILING_SAMPLES: usize = 4;

/// A profiling design: the (config, uplink) grid points every camera
/// measures. Sharing one design across cameras makes the GP inputs `X`
/// identical bank-wide, so one kernel matrix / Cholesky factor per
/// objective serves all M cameras ([`GpModel::with_targets`]) — and a
/// cached design can be re-measured across epochs without re-drawing.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfilingDesign {
    /// Configurations to profile, one per sample.
    pub configs: Vec<VideoConfig>,
    /// Uplink bandwidth (bits/s) paired with each config.
    pub uplinks: Vec<f64>,
}

impl ProfilingDesign {
    /// Draw a design of `samples_per_camera` points: configs uniform
    /// over the scenario's config space, uplinks uniform over its
    /// server pool (so the latency GP sees bandwidth variation).
    pub fn draw<R: Rng + ?Sized>(
        scenario: &Scenario,
        samples_per_camera: usize,
        rng: &mut R,
    ) -> Self {
        let space = scenario.config_space();
        let mut configs = Vec::with_capacity(samples_per_camera);
        let mut uplinks = Vec::with_capacity(samples_per_camera);
        for _ in 0..samples_per_camera {
            configs.push(space.at(rng.gen_range(0..space.len())));
            uplinks.push(scenario.uplinks()[rng.gen_range(0..scenario.n_servers())]);
        }
        ProfilingDesign { configs, uplinks }
    }

    /// Number of profiling points per camera.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the design is empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }
}

/// GPs for all cameras and objectives.
///
/// Camera rows sit behind `Arc`, so cloning the bank is `M` refcount
/// bumps rather than a deep copy of 5·M GP models — the BO loop clones
/// the bank into a fresh surrogate every iteration, and at M = 2000 the
/// deep copy (~300k allocations) dominated the decision epoch.
/// [`OutcomeModelBank::update`] replaces a camera's row wholesale
/// (copy-on-write), so clones held by in-flight surrogates are
/// unaffected.
#[derive(Debug, Clone)]
pub struct OutcomeModelBank {
    /// `models[camera][objective]`.
    models: Vec<Arc<Vec<GpModel>>>,
}

impl OutcomeModelBank {
    /// Profile every camera with `samples_per_camera` random grid
    /// configurations (uplinks drawn from the scenario's pool) and fit
    /// the 5·M GPs. `rel_noise` is the profiling measurement noise.
    ///
    /// Numerical failure (a kernel matrix that stays non-PD after the
    /// Cholesky jitter ladder) is returned as
    /// [`CoreError::OutcomeModel`], not panicked.
    pub fn fit_initial<R: Rng + ?Sized>(
        scenario: &Scenario,
        samples_per_camera: usize,
        rel_noise: f64,
        rng: &mut R,
    ) -> Result<Self, CoreError> {
        Self::fit_initial_recorded(scenario, samples_per_camera, rel_noise, rng, &NoopRecorder)
    }

    /// [`OutcomeModelBank::fit_initial`] with telemetry: the whole fit
    /// runs under an `outcome_fit` span and per-GP fit internals go
    /// through `rec` (a [`NoopRecorder`] makes this the plain path).
    pub fn fit_initial_recorded<R: Rng + ?Sized>(
        scenario: &Scenario,
        samples_per_camera: usize,
        rel_noise: f64,
        rng: &mut R,
        rec: &dyn Recorder,
    ) -> Result<Self, CoreError> {
        Self::fit_initial_warm_recorded(scenario, samples_per_camera, rel_noise, None, rng, rec)
    }

    /// [`OutcomeModelBank::fit_initial_recorded`] with optional warm-start
    /// hyperparameters: `warm[obj]` is the log-parameter vector of a
    /// previous epoch's fitted model for objective `obj` (see
    /// [`OutcomeModelBank::shared_thetas`]). With `warm: None` this draws
    /// exactly the same RNG stream as the cold path.
    ///
    /// Camera 0 fits hyperparameters per objective (seeded from `warm`
    /// when given); all later cameras are hyperparameter-free rebuilds
    /// sharing camera 0's kernels, so they are built in parallel after
    /// their profiling samples are drawn sequentially (keeping the RNG
    /// stream deterministic and independent of thread scheduling).
    pub fn fit_initial_warm_recorded<R: Rng + ?Sized>(
        scenario: &Scenario,
        samples_per_camera: usize,
        rel_noise: f64,
        warm: Option<&[Vec<f64>]>,
        rng: &mut R,
        rec: &dyn Recorder,
    ) -> Result<Self, CoreError> {
        if samples_per_camera < MIN_PROFILING_SAMPLES {
            return Err(CoreError::InsufficientProfiling {
                needed: MIN_PROFILING_SAMPLES,
                got: samples_per_camera,
            });
        }
        let design = ProfilingDesign::draw(scenario, samples_per_camera, rng);
        Self::fit_initial_designed_recorded(scenario, &design, rel_noise, warm, rng, rec)
    }

    /// [`OutcomeModelBank::fit_initial_warm_recorded`] on an explicit
    /// profiling design. All cameras measure the *same* (config, uplink)
    /// points, so the GP inputs `X` are identical bank-wide: camera 0
    /// fits hyperparameters per objective (one O(n³) Cholesky each) and
    /// every later camera reuses that factor through
    /// [`GpModel::with_targets`] (O(n²) per model). Callers that cache
    /// the design across epochs also skip re-drawing it.
    pub fn fit_initial_designed_recorded<R: Rng + ?Sized>(
        scenario: &Scenario,
        design: &ProfilingDesign,
        rel_noise: f64,
        warm: Option<&[Vec<f64>]>,
        rng: &mut R,
        rec: &dyn Recorder,
    ) -> Result<Self, CoreError> {
        if design.len() < MIN_PROFILING_SAMPLES {
            return Err(CoreError::InsufficientProfiling {
                needed: MIN_PROFILING_SAMPLES,
                got: design.len(),
            });
        }
        let _fit_span = span(rec, Phase::OutcomeFit);
        if scenario.n_videos() == 0 {
            return Ok(OutcomeModelBank { models: Vec::new() });
        }

        // Measure the shared design on one camera (noise draws consume
        // the RNG; the design itself is fixed).
        let draw_samples = |cam: usize, rng: &mut R| -> Vec<ProfileSample> {
            let profiler = Profiler::new(scenario.surfaces(cam).clone())
                .with_noise(rel_noise, rel_noise.min(0.02));
            design
                .configs
                .iter()
                .zip(&design.uplinks)
                .map(|(cfg, &uplink)| profiler.measure(cfg, uplink, rng))
                .collect()
        };

        // Camera 0: the only hyperparameter fits in the bank.
        let cam0_samples = draw_samples(0, rng);
        let xs0: Vec<Vec<f64>> = cam0_samples.iter().map(|s| s.features()).collect();
        let mut cam0_models = Vec::with_capacity(N_OBJECTIVES);
        for obj in 0..N_OBJECTIVES {
            let ys: Vec<f64> = cam0_samples
                .iter()
                .map(|s| objective_value(&s.outcome, obj))
                .collect();
            // 60 evals per local search: the solver's simplex starts at
            // ~10 % of the (log-space) bound span and spends everything
            // past ~50 evals shrinking the simplex, not moving the
            // optimum — measured fit quality (R², noise recovery) is
            // unchanged from 120 while halving outcome-fit cost. One
            // random restart on top of the deterministic start (and none
            // once a warm seed exists) keeps the multi-start insurance
            // without tripling the bill.
            let cfg = FitConfig {
                restarts: 1,
                max_evals: 60,
                warm_start: warm.and_then(|w| w.get(obj)).cloned(),
                ..Default::default()
            };
            cam0_models.push(fit_gp_recorded(&xs0, &ys, &cfg, rng, rec)?);
        }

        // Remaining cameras: draw sequentially (deterministic RNG
        // stream), build in parallel. The shared design makes every
        // camera's `X` equal to camera 0's, so each build is a
        // target-swap on camera 0's cached Cholesky factor instead of a
        // fresh decomposition.
        let rest_samples: Vec<Vec<ProfileSample>> = (1..scenario.n_videos())
            .map(|cam| draw_samples(cam, rng))
            .collect();
        let rest_models: Vec<Vec<GpModel>> = rest_samples
            .par_iter()
            .map(|samples| {
                (0..N_OBJECTIVES)
                    .map(|obj| {
                        let ys: Vec<f64> = samples
                            .iter()
                            .map(|s| objective_value(&s.outcome, obj))
                            .collect();
                        cam0_models[obj].with_targets(ys)
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;

        let mut models = Vec::with_capacity(scenario.n_videos());
        models.push(Arc::new(cam0_models));
        models.extend(rest_models.into_iter().map(Arc::new));
        if rec.enabled() {
            rec.add("core.outcome_fits", 1);
            if warm.is_some() {
                rec.add("core.outcome_fit.warm", 1);
            }
            rec.observe(
                "core.profiling_samples",
                (design.len() * scenario.n_videos()) as f64,
            );
        }
        Ok(OutcomeModelBank { models })
    }

    /// The fitted log-parameter vectors `[obj] -> theta` of the shared
    /// (camera 0) kernels — the warm-start seed for the next epoch's
    /// [`OutcomeModelBank::fit_initial_warm_recorded`].
    pub fn shared_thetas(&self) -> Vec<Vec<f64>> {
        self.models
            .first()
            .map(|cam0| cam0.iter().map(theta_of).collect())
            .unwrap_or_default()
    }

    /// Number of cameras covered.
    pub fn n_cameras(&self) -> usize {
        self.models.len()
    }

    /// The GP for one (camera, objective) pair.
    pub fn model(&self, camera: usize, objective: usize) -> &GpModel {
        &self.models[camera][objective]
    }

    /// Condition camera `camera`'s models on a new measured sample
    /// (Algorithm 2 line 18; hyperparameters are kept).
    ///
    /// A conditioning failure (non-PD updated Gram matrix, non-finite
    /// outcome) leaves the previous models of that camera in place and
    /// reports the error — the bank degrades to a stale model rather
    /// than poisoning the run.
    pub fn update(&mut self, camera: usize, sample: &ProfileSample) -> Result<(), CoreError> {
        let x = sample.features();
        if x.iter().any(|v| !v.is_finite())
            || sample.outcome.to_vec().iter().any(|v| !v.is_finite())
        {
            return Err(CoreError::NonFinite {
                context: "profile sample fed to OutcomeModelBank::update",
            });
        }
        // Stage all five updated models first so a mid-way failure
        // cannot leave the camera with a half-updated bank. `condition`
        // extends the cached Cholesky factor (O(n²) per observation)
        // and falls back to a full rebuild on numerical trouble. The
        // row is swapped in as one new `Arc`: clones of this bank held
        // by in-flight surrogates keep the pre-update row.
        let mut staged = Vec::with_capacity(N_OBJECTIVES);
        for obj in 0..N_OBJECTIVES {
            let y = objective_value(&sample.outcome, obj);
            staged.push(self.models[camera][obj].condition(std::slice::from_ref(&x), &[y])?);
        }
        self.models[camera] = Arc::new(staged);
        Ok(())
    }

    /// [`Self::update`] for every camera at once, one sample per
    /// camera, conditioning the rows in parallel. Per-camera semantics
    /// are identical to a sequential `update` loop that ignores errors
    /// (a failing camera keeps its previous row); conditioning is
    /// deterministic linear algebra, so the resulting bank is
    /// bit-identical regardless of thread schedule.
    pub fn update_all(&mut self, samples: &[ProfileSample]) {
        self.models
            .par_iter_mut()
            .zip(samples.par_iter())
            .for_each(|(row, sample)| {
                let x = sample.features();
                if x.iter().any(|v| !v.is_finite())
                    || sample.outcome.to_vec().iter().any(|v| !v.is_finite())
                {
                    return;
                }
                let mut staged = Vec::with_capacity(N_OBJECTIVES);
                for obj in 0..N_OBJECTIVES {
                    let y = objective_value(&sample.outcome, obj);
                    match row[obj].condition(std::slice::from_ref(&x), &[y]) {
                        Ok(m) => staged.push(m),
                        Err(_) => return,
                    }
                }
                *row = Arc::new(staged);
            });
    }

    /// Predictive mean outcome of one camera under a config + uplink.
    pub fn predict(&self, camera: usize, config: &VideoConfig, uplink_bps: f64) -> Outcome {
        let x = features_of(config, uplink_bps);
        let v: Vec<f64> = (0..N_OBJECTIVES)
            .map(|obj| self.models[camera][obj].predict_mean(&x))
            .collect();
        Outcome::from_vec(&v)
    }

    /// Predictive mean and variance of one (camera, objective) at a
    /// config + uplink.
    pub fn predict_objective(
        &self,
        camera: usize,
        objective: usize,
        config: &VideoConfig,
        uplink_bps: f64,
    ) -> (f64, f64) {
        let x = features_of(config, uplink_bps);
        self.models[camera][objective].predict(&x)
    }

    /// Batched [`OutcomeModelBank::predict_objective`]: mean/variance at
    /// many (config, uplink) queries against one GP, sharing a single
    /// cross-kernel matrix ([`GpModel::predict_many`]). Bit-identical to
    /// the per-query path.
    pub fn predict_objective_many(
        &self,
        camera: usize,
        objective: usize,
        queries: &[(VideoConfig, f64)],
    ) -> Vec<(f64, f64)> {
        let xs: Vec<Vec<f64>> = queries
            .iter()
            .map(|(cfg, uplink)| features_of(cfg, *uplink))
            .collect();
        self.models[camera][objective].predict_many(&xs)
    }
}

/// Extract objective `obj` (canonical order) from an outcome.
fn objective_value(outcome: &Outcome, obj: usize) -> f64 {
    outcome.to_vec()[obj]
}

#[cfg(test)]
mod tests {
    use super::*;
    use eva_stats::metrics::r_squared;
    use eva_stats::rng::seeded;
    use eva_workload::outcome::idx;

    fn bank(samples: usize) -> (Scenario, OutcomeModelBank) {
        let sc = Scenario::uniform(3, 2, 20e6, 31);
        let mut rng = seeded(1);
        let bank = OutcomeModelBank::fit_initial(&sc, samples, 0.02, &mut rng).unwrap();
        (sc, bank)
    }

    #[test]
    fn predictions_track_ground_truth() {
        let (sc, bank) = bank(60);
        // R² across a test grid, per objective, camera 0.
        let space = sc.config_space();
        let mut truth = vec![Vec::new(); N_OBJECTIVES];
        let mut pred = vec![Vec::new(); N_OBJECTIVES];
        for c in space.iter() {
            let t = sc.evaluate_stream(0, &c, 20e6).to_vec();
            let p = bank.predict(0, &c, 20e6).to_vec();
            for d in 0..N_OBJECTIVES {
                truth[d].push(t[d]);
                pred[d].push(p[d]);
            }
        }
        for d in 0..N_OBJECTIVES {
            let r2 = r_squared(&truth[d], &pred[d]);
            assert!(r2 > 0.9, "objective {d}: R² = {r2}");
        }
    }

    #[test]
    fn update_improves_local_prediction() {
        let (sc, mut bank) = bank(12); // deliberately under-profiled
        let c = VideoConfig::new(1800.0, 25.0);
        let truth = sc.evaluate_stream(1, &c, 20e6);
        let before = bank.predict(1, &c, 20e6);
        // Feed the exact point several times (noiseless).
        let profiler = Profiler::new(sc.surfaces(1).clone()).with_noise(0.0, 0.0);
        let mut rng = seeded(2);
        for _ in 0..3 {
            let s = profiler.measure(&c, 20e6, &mut rng);
            bank.update(1, &s).unwrap();
        }
        let after = bank.predict(1, &c, 20e6);
        let err = |o: &Outcome| (o.accuracy - truth.accuracy).abs();
        assert!(
            err(&after) <= err(&before) + 1e-9,
            "update made accuracy prediction worse: {} -> {}",
            err(&before),
            err(&after)
        );
        // Threshold leaves slack for the random under-profiled set the
        // hyperparameters were fit on (observed ~0.01-0.025 across RNG
        // streams).
        assert!(err(&after) < 0.03, "after err = {}", err(&after));
    }

    #[test]
    fn tiny_profiling_budget_is_an_error_not_a_panic() {
        // Regression: this used to assert! despite returning Result,
        // punching through the panic-free scheduler contract.
        let sc = Scenario::uniform(2, 2, 20e6, 31);
        let mut rng = seeded(9);
        let err = OutcomeModelBank::fit_initial(&sc, 3, 0.02, &mut rng).unwrap_err();
        match err {
            CoreError::InsufficientProfiling { needed, got } => {
                assert_eq!((needed, got), (4, 3));
            }
            other => panic!("wrong error variant: {other:?}"),
        }
    }

    #[test]
    fn warm_fit_matches_cold_rng_stream_and_quality() {
        let sc = Scenario::uniform(3, 2, 20e6, 31);
        // warm: None must be byte-for-byte the cold path (same RNG
        // stream), so downstream seeded experiments are unchanged.
        let mut rng_a = seeded(5);
        let mut rng_b = seeded(5);
        let cold = OutcomeModelBank::fit_initial(&sc, 20, 0.02, &mut rng_a).unwrap();
        let cold2 = OutcomeModelBank::fit_initial_warm_recorded(
            &sc,
            20,
            0.02,
            None,
            &mut rng_b,
            &eva_obs::NoopRecorder,
        )
        .unwrap();
        let c = VideoConfig::new(1440.0, 20.0);
        for cam in 0..3 {
            let a = cold.predict(cam, &c, 20e6).to_vec();
            let b = cold2.predict(cam, &c, 20e6).to_vec();
            assert_eq!(a, b, "camera {cam}");
        }
        // Warm-started refit from the cold thetas stays predictive.
        let thetas = cold.shared_thetas();
        assert_eq!(thetas.len(), N_OBJECTIVES);
        let mut rng_c = seeded(6);
        let warm = OutcomeModelBank::fit_initial_warm_recorded(
            &sc,
            20,
            0.02,
            Some(&thetas),
            &mut rng_c,
            &eva_obs::NoopRecorder,
        )
        .unwrap();
        let truth = sc.evaluate_stream(0, &c, 20e6).accuracy;
        let pred = warm.predict(0, &c, 20e6).accuracy;
        assert!((pred - truth).abs() < 0.1, "warm pred {pred} vs {truth}");
    }

    #[test]
    fn designed_fit_matches_warm_path_and_shares_inputs() {
        let sc = Scenario::uniform(3, 2, 20e6, 31);
        // Drawing the design up front then fitting must equal the
        // public warm path exactly (it is the same RNG stream).
        let mut rng_a = seeded(5);
        let mut rng_b = seeded(5);
        let via_warm = OutcomeModelBank::fit_initial_warm_recorded(
            &sc,
            20,
            0.02,
            None,
            &mut rng_a,
            &NoopRecorder,
        )
        .unwrap();
        let design = ProfilingDesign::draw(&sc, 20, &mut rng_b);
        let via_design = OutcomeModelBank::fit_initial_designed_recorded(
            &sc,
            &design,
            0.02,
            None,
            &mut rng_b,
            &NoopRecorder,
        )
        .unwrap();
        let c = VideoConfig::new(1440.0, 20.0);
        for cam in 0..3 {
            assert_eq!(
                via_warm.predict(cam, &c, 20e6).to_vec(),
                via_design.predict(cam, &c, 20e6).to_vec(),
                "camera {cam}"
            );
        }
        // The shared design makes every camera's training inputs equal
        // to camera 0's (the with_targets fast path requires it).
        for cam in 1..3 {
            for obj in 0..N_OBJECTIVES {
                assert_eq!(
                    via_design.model(cam, obj).train_x(),
                    via_design.model(0, obj).train_x(),
                );
            }
        }
        // A too-small design is rejected like a too-small budget.
        let tiny = ProfilingDesign::draw(&sc, 3, &mut seeded(1));
        assert!(OutcomeModelBank::fit_initial_designed_recorded(
            &sc,
            &tiny,
            0.02,
            None,
            &mut seeded(1),
            &NoopRecorder,
        )
        .is_err());
    }

    #[test]
    fn predict_objective_many_is_bit_identical_to_scalar_path() {
        let (sc, bank) = bank(20);
        let space = sc.config_space();
        let queries: Vec<(VideoConfig, f64)> = (0..space.len())
            .step_by(3)
            .map(|i| (space.at(i), if i % 2 == 0 { 20e6 } else { 5e6 }))
            .collect();
        for cam in 0..2 {
            for obj in 0..N_OBJECTIVES {
                let batch = bank.predict_objective_many(cam, obj, &queries);
                assert_eq!(batch.len(), queries.len());
                for (k, (cfg, uplink)) in queries.iter().enumerate() {
                    let (mu, var) = bank.predict_objective(cam, obj, cfg, *uplink);
                    assert_eq!(batch[k].0.to_bits(), mu.to_bits());
                    assert_eq!(batch[k].1.to_bits(), var.to_bits());
                }
            }
        }
        assert!(bank.predict_objective_many(0, 0, &[]).is_empty());
    }

    #[test]
    fn latency_model_sees_uplink() {
        let (_, bank) = bank(80);
        let c = VideoConfig::new(1080.0, 10.0);
        let (lat_slow, _) = bank.predict_objective(0, idx::LATENCY, &c, 5e6);
        let (lat_fast, _) = bank.predict_objective(0, idx::LATENCY, &c, 30e6);
        // 5 Mbps uplink must predict noticeably higher latency...
        // unless the training scenario only had one uplink value — the
        // bank(·) scenario is uniform, so both servers share 20 Mbps and
        // the GP cannot learn the dependence. Use the spread instead:
        // prediction should at least not be wildly different.
        assert!((lat_slow - lat_fast).abs() < 0.5);
    }

    #[test]
    fn heterogeneous_uplinks_teach_latency_dependence() {
        let sc = Scenario::new(
            eva_workload::clip::clip_set(2, 3),
            vec![5e6, 30e6],
            eva_workload::ConfigSpace::default(),
        );
        let mut rng = seeded(3);
        let bank = OutcomeModelBank::fit_initial(&sc, 80, 0.01, &mut rng).unwrap();
        let c = VideoConfig::new(1440.0, 10.0);
        let (lat_slow, _) = bank.predict_objective(0, idx::LATENCY, &c, 5e6);
        let (lat_fast, _) = bank.predict_objective(0, idx::LATENCY, &c, 30e6);
        let truth_gap =
            sc.surfaces(0).e2e_latency_secs(&c, 5e6) - sc.surfaces(0).e2e_latency_secs(&c, 30e6);
        assert!(
            lat_slow - lat_fast > 0.3 * truth_gap,
            "learned gap {} vs true gap {truth_gap}",
            lat_slow - lat_fast
        );
    }

    #[test]
    fn per_camera_models_differ_with_content() {
        let (sc, bank) = bank(60);
        // Cameras 0 and 1 have different clips; their accuracy
        // predictions at the same config should reflect that.
        let c = VideoConfig::new(1080.0, 15.0);
        let a0 = bank.predict(0, &c, 20e6).accuracy;
        let a1 = bank.predict(1, &c, 20e6).accuracy;
        let t0 = sc.evaluate_stream(0, &c, 20e6).accuracy;
        let t1 = sc.evaluate_stream(1, &c, 20e6).accuracy;
        // Predicted ordering matches the true ordering.
        assert_eq!(a0 > a1, t0 > t1, "a0={a0} a1={a1} t0={t0} t1={t1}");
    }
}
