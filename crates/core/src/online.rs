//! Online periodic scheduling under content drift.
//!
//! The deployed scheduler of Sec. 2.1 "periodically collects performance
//! and resource information ... \[and\] adjusts configuration and
//! scheduling decisions". This module runs PaMO across scheduling
//! epochs over a [`DriftingScenario`]: each epoch re-profiles a small
//! number of samples per camera, re-runs the BO loop, and records the
//! realized benefit — against a *static* policy that keeps epoch-0's
//! decision forever (the natural no-adaptation baseline).
//!
//! The preference function does not drift (pricing rules change on
//! slower timescales than video content); the preference is elicited or
//! given once and reused across epochs.

use eva_net::LinkEstimator;
use eva_obs::{emit_warn, span, DecisionRung, NoopRecorder, ObsEvent, Phase, Recorder};
use eva_workload::{DriftingScenario, Scenario, VideoConfig};
use rand::Rng;

use crate::benefit::TruePreference;
use crate::pamo::{Pamo, PamoConfig};

/// Per-epoch record of the online run.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Content divergence from epoch 0 at decision time.
    pub divergence: f64,
    /// True benefit of the freshly re-optimized decision.
    pub online_benefit: f64,
    /// True benefit of epoch-0's decision evaluated on this epoch's
    /// content (`None` if it became unschedulable under drift).
    pub static_benefit: Option<f64>,
    /// The online decision's configurations.
    pub configs: Vec<VideoConfig>,
    /// Per-server planning bandwidths the epoch's decision used
    /// (`None` when planning on the true uplinks — the oracle-B path).
    pub planning_bps: Option<Vec<f64>>,
    /// Which servers the decision was planned against (all `true` in
    /// fault-free runs; failure-aware runs mask out down servers).
    pub alive: Vec<bool>,
    /// Whether this epoch served a degraded decision — a fallback
    /// configuration or a placement on a strict subset of the servers.
    pub degraded: bool,
    /// The escalation-ladder rung the epoch's decision ran at. Plain
    /// online runs always run the full pipeline
    /// ([`DecisionRung::Full`]); budgeted serving runs degrade to
    /// [`DecisionRung::Repair`] (re-place existing configurations) or
    /// [`DecisionRung::Stale`] (reuse the deployed plan) when the
    /// decision budget runs short.
    pub rung: DecisionRung,
}

/// Result of an online run.
#[derive(Debug, Clone)]
pub struct OnlineRun {
    /// One record per epoch.
    pub epochs: Vec<EpochRecord>,
    /// Whether the run ever degraded: an epoch was skipped after a
    /// decision failure, or served under failures. An all-failed run
    /// has `epochs.is_empty()` and `degraded == true`; its
    /// `mean_*_benefit` are 0.0 by construction, and this flag is what
    /// distinguishes them from a genuine zero-benefit run.
    pub degraded: bool,
}

impl OnlineRun {
    /// Mean online benefit across epochs (0 for an empty run — never
    /// NaN).
    pub fn mean_online_benefit(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| e.online_benefit).sum::<f64>() / self.epochs.len() as f64
    }

    /// Mean static-policy benefit over the epochs where it stayed
    /// feasible (infeasible epochs are charged the worst benefit
    /// observed minus one scale unit — going dark is worse than any
    /// feasible outcome). 0 for an empty run — never NaN.
    pub fn mean_static_benefit(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        let worst_online = self
            .epochs
            .iter()
            .map(|e| e.online_benefit)
            .fold(f64::INFINITY, f64::min);
        self.epochs
            .iter()
            .map(|e| e.static_benefit.unwrap_or(worst_online - 1.0))
            .sum::<f64>()
            / self.epochs.len() as f64
    }
}

/// Run PaMO online for `n_epochs` over a drifting deployment.
///
/// `preference_weights` defines the hidden preference, which is
/// re-anchored to the *initial* scenario's normalization and reused
/// across epochs (pricing rules do not drift here). The per-epoch
/// scheduler uses `config` as-is; pass small budgets for fast epochs.
pub fn run_online<R: Rng + ?Sized>(
    drifting: &mut DriftingScenario,
    config: &PamoConfig,
    weights: [f64; eva_workload::N_OBJECTIVES],
    n_epochs: usize,
    rng: &mut R,
) -> OnlineRun {
    run_online_recorded(drifting, config, weights, n_epochs, rng, &NoopRecorder)
}

/// [`run_online`] with telemetry: each epoch runs under an `epoch` span,
/// skip decisions become structured warn events (still mirrored to
/// stderr), and per-epoch counters accumulate in `rec`. With a
/// [`NoopRecorder`] this is exactly the plain path — same RNG stream,
/// bit-identical records.
pub fn run_online_recorded<R: Rng + ?Sized>(
    drifting: &mut DriftingScenario,
    config: &PamoConfig,
    weights: [f64; eva_workload::N_OBJECTIVES],
    n_epochs: usize,
    rng: &mut R,
    rec: &dyn Recorder,
) -> OnlineRun {
    assert!(n_epochs > 0, "run_online: zero epochs");
    let initial = drifting.snapshot();
    // One scheduler for the whole run: per-epoch refits warm-start from
    // the previous epoch's fitted GP hyperparameters (see `Pamo`).
    let pamo = Pamo::new(config.clone());

    let mut static_configs: Option<Vec<VideoConfig>> = None;
    let mut epochs = Vec::with_capacity(n_epochs);
    let mut skipped = false;

    for epoch in 0..n_epochs {
        let _epoch_span = span(rec, Phase::Epoch);
        if rec.enabled() {
            rec.add("online.epochs", 1);
        }
        let scenario = drifting.snapshot();
        // Preference anchored per-epoch scenario so benefit scales stay
        // comparable (the weights, i.e. the pricing, are constant).
        let pref = TruePreference::new(&scenario, weights);

        // A failed or non-finite decision degrades to a skipped epoch
        // (the deployment keeps serving its previous configuration);
        // it must never abort the run.
        let decision = match pamo.decide_surviving_recorded(&scenario, &pref, None, rng, rec) {
            Ok(d) if d.true_benefit.is_finite() => d,
            Ok(d) => {
                emit_warn(
                    rec,
                    ObsEvent::warn(
                        "epoch_skipped",
                        format!(
                            "run_online: epoch {epoch}: non-finite benefit {} — skipping",
                            d.true_benefit
                        ),
                    )
                    .with("epoch", epoch)
                    .with("rung", DecisionRung::Stale.as_str()),
                );
                if rec.enabled() {
                    rec.add("online.epochs_skipped", 1);
                }
                skipped = true;
                drifting.advance(rng);
                continue;
            }
            Err(e) => {
                emit_warn(
                    rec,
                    ObsEvent::warn(
                        "epoch_skipped",
                        format!("run_online: epoch {epoch}: decision failed ({e}) — skipping"),
                    )
                    .with("epoch", epoch)
                    .with("rung", DecisionRung::Stale.as_str()),
                );
                if rec.enabled() {
                    rec.add("online.epochs_skipped", 1);
                }
                skipped = true;
                drifting.advance(rng);
                continue;
            }
        };
        if static_configs.is_none() {
            static_configs = Some(decision.configs.clone());
        }
        let static_benefit = static_configs
            .as_ref()
            .and_then(|configs| {
                scenario
                    .evaluate(configs)
                    .ok()
                    .map(|so| pref.benefit(&so.outcome))
            })
            .filter(|b| b.is_finite());

        epochs.push(EpochRecord {
            epoch,
            divergence: drifting.divergence_from(&initial),
            online_benefit: decision.true_benefit,
            static_benefit,
            configs: decision.configs,
            planning_bps: None,
            alive: vec![true; scenario.n_servers()],
            degraded: false,
            rung: DecisionRung::Full,
        });
        drifting.advance(rng);
    }
    OnlineRun {
        epochs,
        degraded: skipped,
    }
}

/// Noise-free delivery samples fed per stream each epoch. Enough for an
/// EWMA with TCP-style `α = 1/8` to close most of the gap in one epoch
/// while still exercising multi-epoch convergence.
const DELIVERY_SAMPLES_PER_STREAM: usize = 8;

/// Like [`run_online`], but the scheduler plans against *estimated*
/// bandwidths: one [`LinkEstimator`] per server, re-fed each epoch with
/// the realized per-frame deliveries of the streams placed on it. The
/// next epoch's decision then uses `B̂ / headroom` as its planning
/// bandwidth ([`Scenario::with_planning_uplinks`]); realized outcomes
/// keep being charged at the true uplink rates. Epoch 0 — before any
/// observation exists — plans on the provisioned uplinks, as does any
/// server that has not yet carried a stream.
#[allow(clippy::too_many_arguments)]
pub fn run_online_estimated<R: Rng + ?Sized>(
    drifting: &mut DriftingScenario,
    config: &PamoConfig,
    weights: [f64; eva_workload::N_OBJECTIVES],
    n_epochs: usize,
    estimators: &mut [Box<dyn LinkEstimator>],
    headroom: f64,
    rng: &mut R,
) -> OnlineRun {
    run_online_estimated_recorded(
        drifting,
        config,
        weights,
        n_epochs,
        estimators,
        headroom,
        rng,
        &NoopRecorder,
    )
}

/// [`run_online_estimated`] with telemetry — the estimated-bandwidth
/// analogue of [`run_online_recorded`].
#[allow(clippy::too_many_arguments)]
pub fn run_online_estimated_recorded<R: Rng + ?Sized>(
    drifting: &mut DriftingScenario,
    config: &PamoConfig,
    weights: [f64; eva_workload::N_OBJECTIVES],
    n_epochs: usize,
    estimators: &mut [Box<dyn LinkEstimator>],
    headroom: f64,
    rng: &mut R,
    rec: &dyn Recorder,
) -> OnlineRun {
    assert!(n_epochs > 0, "run_online_estimated: zero epochs");
    let initial = drifting.snapshot();
    assert_eq!(
        estimators.len(),
        initial.n_servers(),
        "run_online_estimated: one estimator per server"
    );
    let pamo = Pamo::new(config.clone());

    let mut static_configs: Option<Vec<VideoConfig>> = None;
    let mut epochs = Vec::with_capacity(n_epochs);
    let mut skipped = false;

    for epoch in 0..n_epochs {
        let _epoch_span = span(rec, Phase::Epoch);
        if rec.enabled() {
            rec.add("online.epochs", 1);
        }
        let base: Scenario = drifting.snapshot();
        // A server that has never carried a stream has no observations;
        // it keeps planning at its provisioned rate (encoded as
        // `provisioned * headroom` so the division below lands back on
        // the provisioned value). The override only activates once at
        // least one estimator has been fed.
        let warmed = estimators.iter().any(|e| e.estimate_bps().is_some());
        let estimates: Option<Vec<f64>> = warmed.then(|| {
            estimators
                .iter()
                .zip(base.uplinks())
                .map(|(e, &b)| e.estimate_bps().unwrap_or(b * headroom))
                .collect()
        });
        let scenario = match &estimates {
            Some(est) => base.clone().with_planning_uplinks(est.clone(), headroom),
            None => base.clone(),
        };
        let pref = TruePreference::new(&scenario, weights);

        // Same skip-and-log degradation policy as `run_online`.
        let decision = match pamo.decide_surviving_recorded(&scenario, &pref, None, rng, rec) {
            Ok(d) if d.true_benefit.is_finite() => d,
            Ok(d) => {
                emit_warn(
                    rec,
                    ObsEvent::warn(
                        "epoch_skipped",
                        format!(
                            "run_online_estimated: epoch {epoch}: non-finite benefit {} — skipping",
                            d.true_benefit
                        ),
                    )
                    .with("epoch", epoch)
                    .with("rung", DecisionRung::Stale.as_str()),
                );
                if rec.enabled() {
                    rec.add("online.epochs_skipped", 1);
                }
                skipped = true;
                drifting.advance(rng);
                continue;
            }
            Err(e) => {
                emit_warn(
                    rec,
                    ObsEvent::warn(
                        "epoch_skipped",
                        format!(
                            "run_online_estimated: epoch {epoch}: decision failed ({e}) — skipping"
                        ),
                    )
                    .with("epoch", epoch)
                    .with("rung", DecisionRung::Stale.as_str()),
                );
                if rec.enabled() {
                    rec.add("online.epochs_skipped", 1);
                }
                skipped = true;
                drifting.advance(rng);
                continue;
            }
        };
        if static_configs.is_none() {
            static_configs = Some(decision.configs.clone());
        }
        let static_benefit = static_configs
            .as_ref()
            .and_then(|configs| {
                scenario
                    .evaluate(configs)
                    .ok()
                    .map(|so| pref.benefit(&so.outcome))
            })
            .filter(|b| b.is_finite());

        // Re-feed the estimators with this epoch's realized deliveries:
        // each placed stream part transmitted frames of `bits` at the
        // *true* uplink rate of its server.
        if let Ok(assignment) = scenario.schedule(&decision.configs) {
            for (i, st) in assignment.streams.iter().enumerate() {
                let src = st.id.source;
                let server = assignment.server_of[i];
                let bits = scenario
                    .surfaces(src)
                    .bits_per_frame(decision.configs[src].resolution);
                let duration_s = bits / base.uplinks()[server];
                for _ in 0..DELIVERY_SAMPLES_PER_STREAM {
                    estimators[server].observe(bits / 8.0, duration_s);
                }
            }
        }

        epochs.push(EpochRecord {
            epoch,
            divergence: drifting.divergence_from(&initial),
            online_benefit: decision.true_benefit,
            static_benefit,
            configs: decision.configs,
            planning_bps: estimates.map(|est| est.iter().map(|b| b / headroom).collect()),
            alive: vec![true; scenario.n_servers()],
            degraded: false,
            rung: DecisionRung::Full,
        });
        drifting.advance(rng);
    }
    OnlineRun {
        epochs,
        degraded: skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pamo::PreferenceSource;
    use eva_bo::{AcqKind, BoConfig};
    use eva_stats::rng::seeded;
    use eva_workload::Scenario;

    fn tiny_config() -> PamoConfig {
        PamoConfig {
            bo: BoConfig {
                n_init: 4,
                batch: 2,
                mc_samples: 16,
                max_iters: 3,
                delta: 0.02,
                kind: AcqKind::QNei,
            },
            pool_size: 20,
            profiling_per_camera: 20,
            profile_noise: 0.02,
            n_comparisons: 6,
            elicit_candidates: 15,
            preference: PreferenceSource::Oracle,
        }
    }

    #[test]
    fn online_runs_all_epochs_and_tracks_divergence() {
        let base = Scenario::uniform(3, 2, 20e6, 61);
        let mut drifting = DriftingScenario::new(&base, 0.08);
        let run = run_online(&mut drifting, &tiny_config(), [1.0; 5], 5, &mut seeded(1));
        assert_eq!(run.epochs.len(), 5);
        assert_eq!(run.epochs[0].divergence, 0.0);
        assert!(run.epochs[4].divergence > 0.0);
        assert!(!run.degraded, "fault-free run must not flag degraded");
        for e in &run.epochs {
            assert!(e.online_benefit <= 0.0);
            assert_eq!(e.configs.len(), 3);
            assert!(e.alive.iter().all(|&a| a));
            assert!(!e.degraded);
        }
    }

    #[test]
    fn online_adaptation_not_worse_than_static() {
        // Averaged over epochs, re-optimizing must match or beat the
        // frozen epoch-0 decision (it can always re-pick it).
        let base = Scenario::uniform(3, 2, 20e6, 62);
        let mut drifting = DriftingScenario::new(&base, 0.10);
        let run = run_online(&mut drifting, &tiny_config(), [1.0; 5], 6, &mut seeded(2));
        let online = run.mean_online_benefit();
        let fixed = run.mean_static_benefit();
        // Tolerance for observation noise in tiny-budget BO runs.
        assert!(
            online >= fixed - 0.10,
            "online {online} much worse than static {fixed}"
        );
    }

    #[test]
    fn empty_run_benefits_are_zero_not_nan() {
        // An all-failed run: no epochs survived, degraded is raised.
        let run = OnlineRun {
            epochs: vec![],
            degraded: true,
        };
        assert_eq!(run.mean_online_benefit(), 0.0);
        assert_eq!(run.mean_static_benefit(), 0.0);
        assert!(run.mean_online_benefit().is_finite());
        assert!(run.mean_static_benefit().is_finite());
        assert!(run.degraded, "all-failed run must be flagged degraded");
    }

    #[test]
    fn estimated_run_converges_to_true_uplinks() {
        use eva_net::EwmaEstimator;

        let base = Scenario::uniform(3, 2, 20e6, 64);
        let mut drifting = DriftingScenario::new(&base, 0.05);
        let mut estimators: Vec<Box<dyn LinkEstimator>> = (0..2)
            .map(|_| Box::new(EwmaEstimator::default()) as Box<dyn LinkEstimator>)
            .collect();
        let run = run_online_estimated(
            &mut drifting,
            &tiny_config(),
            [1.0; 5],
            4,
            &mut estimators,
            1.1,
            &mut seeded(4),
        );
        assert_eq!(run.epochs.len(), 4);
        // Epoch 0 has no observations — the oracle-B path.
        assert!(run.epochs[0].planning_bps.is_none());
        // Later epochs plan on estimates; deliveries are noise-free at
        // the true 20 Mb/s, so estimates converge there and planning
        // sits at estimate/headroom.
        let last = run.epochs.last().unwrap();
        let planning = last.planning_bps.as_ref().expect("estimates warmed up");
        assert_eq!(planning.len(), 2);
        assert!(
            estimators.iter().any(|e| e.estimate_bps().is_some()),
            "no estimator ever fed"
        );
        for (est, &b) in estimators.iter().zip(planning.iter()) {
            match est.estimate_bps() {
                // Fed server: noise-free deliveries at the true 20 Mb/s
                // converge exactly; planning = estimate / headroom.
                Some(e) => {
                    assert!(
                        (e - 20e6).abs() / 20e6 < 0.05,
                        "estimate {e} far from true 20e6"
                    );
                    assert!((b - e / 1.1).abs() < 1e-6);
                }
                // Never-fed server: plans at its provisioned rate.
                None => assert!((b - 20e6).abs() < 1e-6),
            }
        }
        for e in &run.epochs {
            assert!(e.online_benefit.is_finite());
        }
    }

    #[test]
    fn first_epoch_static_equals_online() {
        let base = Scenario::uniform(3, 2, 20e6, 63);
        let mut drifting = DriftingScenario::new(&base, 0.05);
        let run = run_online(&mut drifting, &tiny_config(), [1.0; 5], 3, &mut seeded(3));
        let e0 = &run.epochs[0];
        let sb = e0.static_benefit.expect("epoch 0 is feasible");
        assert!((sb - e0.online_benefit).abs() < 1e-9);
    }
}
