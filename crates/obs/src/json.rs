//! Minimal JSON emission — just enough for JSONL events and snapshot
//! export, keeping the crate dependency-free.

use std::fmt::Write as _;

/// Escape a string for embedding in a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON value: shortest round-trip decimal for
/// finite values, `null` for NaN/±inf (JSON has no non-finite numbers).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on f64 never prints an exponent for integral values, but
        // guard against bare integral forms being fine JSON anyway.
        s
    } else {
        "null".to_string()
    }
}

/// Push `"key":` onto `out`.
pub fn key(out: &mut String, k: &str) {
    out.push('"');
    out.push_str(&escape(k));
    out.push_str("\":");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\t"), "a\\nb\\t");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain — text"), "plain — text");
    }

    #[test]
    fn numbers_round_trip_and_non_finite_is_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(-0.25), "-0.25");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
