//! eva-obs: zero-overhead telemetry for the PaMO scheduler stack.
//!
//! Three layers (DESIGN.md §9):
//!
//! * [`hist`] / [`registry`] — a metrics registry of counters, gauges
//!   and mergeable log-linear histograms with bounded-relative-error
//!   quantile queries,
//! * [`recorder`] — the [`Recorder`] trait and the [`Phase`] span
//!   taxonomy. Instrumented hot paths take `&dyn Recorder`; the default
//!   [`NoopRecorder`] compiles to empty bodies and never reads the
//!   clock, so telemetry-off runs are bit-identical to uninstrumented
//!   ones (telemetry never touches RNG state or numeric inputs),
//! * [`flight`] — the [`FlightRecorder`]: an in-memory sink exporting
//!   JSONL events, a machine-readable JSON snapshot, and a
//!   human-readable summary table. `perf_baseline` builds
//!   `BENCH_perf.json` from its snapshots.
//!
//! The crate is intentionally dependency-free (std only) so every
//! workspace crate can accept a recorder without pulling anything in.

pub mod budget;
pub mod flight;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod registry;

pub use budget::{cost, BudgetPolicy, DecisionBudget, DecisionRung};
pub use flight::{FlightRecorder, ObsSnapshot, PhaseStats};
pub use hist::LogLinearHistogram;
pub use recorder::{
    emit_warn, span, Field, NoopRecorder, ObsEvent, Phase, Recorder, Severity, Span,
};
pub use registry::MetricsRegistry;
