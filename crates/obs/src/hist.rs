//! Mergeable log-linear histograms with quantile queries.
//!
//! The bucket layout is fixed and shared by every instance: each power
//! of two (octave) is subdivided into [`SUBBUCKETS`] linear buckets, so
//! relative resolution is bounded by `1/SUBBUCKETS` (≈ 6.25%) across
//! the whole dynamic range `[2^MIN_EXP, 2^MAX_EXP)` — wide enough for
//! nanosecond spans and multi-hour totals alike. A fixed layout makes
//! [`LogLinearHistogram::merge`] a plain element-wise count addition:
//! merging is associative and order-independent on everything except
//! the floating-point `sum`, which is order-independent only up to
//! rounding (documented below).

/// Linear subdivisions per octave. Relative bucket width ≤ 1/16.
pub const SUBBUCKETS: usize = 16;
/// Smallest representable exponent: `2^-40 ≈ 9.1e-13`.
pub const MIN_EXP: i32 = -40;
/// Largest representable exponent: `2^40 ≈ 1.1e12`.
pub const MAX_EXP: i32 = 40;
/// Total bucket count of the fixed layout.
pub const N_BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) * SUBBUCKETS;

/// Bucket index of a strictly positive finite value (values outside the
/// dynamic range clamp to the first/last bucket).
fn bucket_index(v: f64) -> usize {
    debug_assert!(v > 0.0 && v.is_finite());
    // Exact floor(log2(v)) for normal doubles via the exponent bits;
    // subnormals land below MIN_EXP and clamp to bucket 0 anyway.
    let e = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
    if e < MIN_EXP {
        return 0;
    }
    if e >= MAX_EXP {
        return N_BUCKETS - 1;
    }
    // v / 2^e ∈ [1, 2): linear position within the octave.
    let frac = v / pow2(e);
    let sub = (((frac - 1.0) * SUBBUCKETS as f64) as usize).min(SUBBUCKETS - 1);
    ((e - MIN_EXP) as usize) * SUBBUCKETS + sub
}

/// `2^e` for the layout's exponent range (exact for |e| ≤ 1023).
fn pow2(e: i32) -> f64 {
    f64::from_bits((((e + 1023) as u64) & 0x7ff) << 52)
}

/// Lower bound of bucket `i`.
pub fn bucket_lo(i: usize) -> f64 {
    let e = MIN_EXP + (i / SUBBUCKETS) as i32;
    let sub = i % SUBBUCKETS;
    pow2(e) * (1.0 + sub as f64 / SUBBUCKETS as f64)
}

/// Upper bound (exclusive) of bucket `i`.
pub fn bucket_hi(i: usize) -> f64 {
    let e = MIN_EXP + (i / SUBBUCKETS) as i32;
    let sub = i % SUBBUCKETS;
    pow2(e) * (1.0 + (sub + 1) as f64 / SUBBUCKETS as f64)
}

/// A fixed-layout log-linear histogram.
///
/// Records arbitrary finite `f64`s: strictly positive values go to
/// log-linear buckets; zeros and negatives are counted in a dedicated
/// under-bucket (durations and counts never go there, but the type does
/// not assume its inputs are durations). Non-finite values are dropped
/// and tallied separately. The backing bucket vector is allocated
/// lazily on the first positive record, so empty histograms are cheap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LogLinearHistogram {
    counts: Vec<u64>,
    zero_or_less: u64,
    non_finite: u64,
    count: u64,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl LogLinearHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value. Non-finite values are dropped (and counted in
    /// [`LogLinearHistogram::non_finite`]).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite += 1;
            return;
        }
        if v > 0.0 {
            if self.counts.is_empty() {
                self.counts = vec![0; N_BUCKETS];
            }
            self.counts[bucket_index(v)] += 1;
        } else {
            self.zero_or_less += 1;
        }
        self.count += 1;
        self.sum += v;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Number of recorded (finite) values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Values recorded at or below zero.
    pub fn zero_or_less(&self) -> u64 {
        self.zero_or_less
    }

    /// Non-finite values that were dropped.
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Sum of recorded values. Merge order perturbs the last few bits
    /// (floating-point addition is not associative); counts, min/max
    /// and quantiles are exactly merge-order-independent.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest recorded value (exact, not bucketed).
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Estimate the `q`-quantile (`q ∈ [0, 1]`, clamped). Returns the
    /// geometric midpoint of the bucket holding the order statistic of
    /// rank `⌈q·n⌉`, clamped to the exact `[min, max]`; the estimate is
    /// therefore always within one bucket width (relative error ≤
    /// `1/SUBBUCKETS`) of the exact quantile. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let (min, max) = match (self.min, self.max) {
            (Some(lo), Some(hi)) => (lo, hi),
            _ => return None, // unreachable: count > 0 implies both set
        };
        let mut seen = self.zero_or_less;
        if rank <= seen {
            // The order statistic is one of the zero-or-less values;
            // min is exact for the smallest and bounds the rest below 0.
            return Some(min.min(0.0));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                let est = (bucket_lo(i) * bucket_hi(i)).sqrt();
                return Some(est.clamp(min.max(bucket_lo(i)), max.min(bucket_hi(i))));
            }
        }
        Some(max)
    }

    /// Merge another histogram into this one. Counts add element-wise
    /// (the layout is fixed), min/max take the extremes, sums add.
    pub fn merge(&mut self, other: &LogLinearHistogram) {
        if other.count == 0 && other.non_finite == 0 {
            return;
        }
        if !other.counts.is_empty() {
            if self.counts.is_empty() {
                self.counts = other.counts.clone();
            } else {
                for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                    *a += b;
                }
            }
        }
        self.zero_or_less += other.zero_or_less;
        self.non_finite += other.non_finite;
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Occupied `(bucket_lo, bucket_hi, count)` triples, low to high —
    /// the machine-readable export of the distribution shape.
    pub fn occupied_buckets(&self) -> Vec<(f64, f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), bucket_hi(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = LogLinearHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = LogLinearHistogram::new();
        h.record(0.125);
        for q in [0.0, 0.5, 1.0] {
            let e = h.quantile(q).unwrap();
            assert!((e - 0.125).abs() < 1e-12, "q={q}: {e}");
        }
        assert_eq!(h.min(), Some(0.125));
        assert_eq!(h.max(), Some(0.125));
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = LogLinearHistogram::new();
        let vals: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        for &v in &vals {
            h.record(v);
        }
        for q in [0.01f64, 0.25, 0.5, 0.9, 0.99] {
            let exact = vals[((q * 1000.0).ceil() as usize).clamp(1, 1000) - 1];
            let est = h.quantile(q).unwrap();
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= 1.0 / SUBBUCKETS as f64,
                "q={q}: est {est} vs {exact}"
            );
        }
    }

    #[test]
    fn zero_and_negative_values_are_tracked() {
        let mut h = LogLinearHistogram::new();
        h.record(0.0);
        h.record(-2.0);
        h.record(5.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.zero_or_less(), 2);
        assert_eq!(h.min(), Some(-2.0));
        // The 1/3-quantile sits in the zero-or-less mass.
        assert_eq!(h.quantile(0.3), Some(-2.0));
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let mut h = LogLinearHistogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(1.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.non_finite(), 2);
        assert_eq!(h.sum(), 1.0);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LogLinearHistogram::new();
        let mut b = LogLinearHistogram::new();
        a.record(1.0);
        a.record(2.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(100.0));
        assert!((a.sum() - 103.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_bounds_bracket_their_members() {
        for v in [1e-9, 3.7e-6, 0.015, 1.0, 42.0, 9.9e9] {
            let i = bucket_index(v);
            assert!(bucket_lo(i) <= v && v < bucket_hi(i), "v={v} bucket {i}");
        }
    }

    #[test]
    fn out_of_range_values_clamp() {
        let mut h = LogLinearHistogram::new();
        h.record(1e-20); // below 2^-40
        h.record(1e15); // above 2^40
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(1e-20));
        assert_eq!(h.max(), Some(1e15));
    }
}
