//! The metrics registry: named counters, gauges and histograms.
//!
//! A plain (unsynchronized) container — [`crate::FlightRecorder`] wraps
//! one in a mutex for concurrent recording, and aggregation jobs merge
//! per-run registries after the fact. `BTreeMap` keys keep every
//! export deterministically ordered.

use std::collections::BTreeMap;

use crate::hist::LogLinearHistogram;

/// Counters, gauges and histograms by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogLinearHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment counter `name` by `delta`.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set gauge `name` to its latest value.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record `value` into histogram `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Latest value of a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&LogLinearHistogram> {
        self.histograms.get(name)
    }

    /// All counters, name-ordered.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, name-ordered.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, name-ordered.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LogLinearHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge another registry into this one: counters add, histograms
    /// merge bucket-wise, gauges take `other`'s value (latest wins).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(k.clone(), v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.counter("x"), 0);
        r.add("x", 2);
        r.add("x", 3);
        assert_eq!(r.counter("x"), 5);
    }

    #[test]
    fn gauges_keep_latest_value() {
        let mut r = MetricsRegistry::new();
        r.gauge("g", 1.0);
        r.gauge("g", 7.5);
        assert_eq!(r.gauge_value("g"), Some(7.5));
    }

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add("c", 1);
        b.add("c", 2);
        a.observe("h", 1.0);
        b.observe("h", 4.0);
        b.gauge("g", 9.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histogram("h").map(|h| h.count()), Some(2));
        assert_eq!(a.histogram("h").and_then(|h| h.max()), Some(4.0));
        assert_eq!(a.gauge_value("g"), Some(9.0));
    }
}
