//! The [`Recorder`] trait: the single seam every instrumented crate
//! talks to.
//!
//! Hot paths take a `&dyn Recorder` and call [`span`] / counters /
//! [`emit_warn`] unconditionally; the default [`NoopRecorder`] has
//! empty method bodies and reports `enabled() == false`, so spans never
//! read the clock and event payloads are never built when telemetry is
//! off — the instrumented code path performs the same arithmetic in
//! the same order and stays bit-identical to an uninstrumented run
//! (telemetry never touches RNG state or any numeric input).

use std::time::Instant;

/// The phase taxonomy of the scheduler pipeline. One span per phase
/// execution; a [`crate::FlightRecorder`] keeps a duration histogram
/// per phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// One full online scheduling epoch.
    Epoch,
    /// One full PaMO decision (Algorithm 2 end to end).
    Decide,
    /// Outcome-GP bank fitting (Algorithm 2 lines 1-4).
    OutcomeFit,
    /// Preference elicitation + preference-GP update (lines 5-11).
    PrefModel,
    /// The qNEI/BO search loop (lines 12-26).
    BoSearch,
    /// One GP hyperparameter fit (inside `OutcomeFit`).
    GpFit,
    /// Algorithm-1 splitting + Theorem-3 grouping.
    Grouping,
    /// Hungarian group→server assignment.
    Assignment,
    /// A discrete-event simulation run.
    Des,
    /// The degraded-mode uniform-fallback ladder scan.
    Fallback,
    /// One admission-control feasibility probe (continuous serving).
    Admission,
    /// One event-driven replan (incremental row repair or full
    /// Algorithm 1 re-solve) triggered by arrival/departure/failure/
    /// restore.
    Replan,
    /// Retry-queue load shedding (age expiry or high-water eviction)
    /// under overload.
    Shed,
    /// Bonded-uplink packet striping: per-frame multipath scheduling
    /// plus the receiver reorder-buffer model (inside `Des` seeding).
    BondStripe,
}

impl Phase {
    /// All phases, in pipeline order (the order summaries print in).
    pub const ALL: [Phase; 14] = [
        Phase::Epoch,
        Phase::Decide,
        Phase::OutcomeFit,
        Phase::PrefModel,
        Phase::BoSearch,
        Phase::GpFit,
        Phase::Grouping,
        Phase::Assignment,
        Phase::Des,
        Phase::Fallback,
        Phase::Admission,
        Phase::Replan,
        Phase::Shed,
        Phase::BondStripe,
    ];

    /// Stable machine-readable name (used in exports and schemas).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Epoch => "epoch",
            Phase::Decide => "decide",
            Phase::OutcomeFit => "outcome_fit",
            Phase::PrefModel => "pref_model",
            Phase::BoSearch => "bo_search",
            Phase::GpFit => "gp_fit",
            Phase::Grouping => "grouping",
            Phase::Assignment => "assignment",
            Phase::Des => "des",
            Phase::Fallback => "fallback",
            Phase::Admission => "admission",
            Phase::Replan => "replan",
            Phase::Shed => "shed",
            Phase::BondStripe => "bond_stripe",
        }
    }

    /// Index into [`Phase::ALL`]-ordered storage.
    pub fn index(self) -> usize {
        match self {
            Phase::Epoch => 0,
            Phase::Decide => 1,
            Phase::OutcomeFit => 2,
            Phase::PrefModel => 3,
            Phase::BoSearch => 4,
            Phase::GpFit => 5,
            Phase::Grouping => 6,
            Phase::Assignment => 7,
            Phase::Des => 8,
            Phase::Fallback => 9,
            Phase::Admission => 10,
            Phase::Replan => 11,
            Phase::Shed => 12,
            Phase::BondStripe => 13,
        }
    }
}

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Operational breadcrumb (fault detection, restore, fallback).
    Info,
    /// Degraded operation — these mirror to stderr via [`emit_warn`].
    Warn,
}

impl Severity {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
        }
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U64(v)
    }
}
impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U64(v as u64)
    }
}
impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F64(v)
    }
}
impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::Bool(v)
    }
}
impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_string())
    }
}
impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::Str(v)
    }
}

/// A structured telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable kind (e.g. `"epoch_skipped"`).
    pub kind: &'static str,
    /// Human-readable message — for warnings this is exactly the line
    /// mirrored to stderr.
    pub message: String,
    /// Typed key/value payload.
    pub fields: Vec<(&'static str, Field)>,
}

impl ObsEvent {
    /// A warning event (mirrored to stderr by [`emit_warn`]).
    pub fn warn(kind: &'static str, message: impl Into<String>) -> Self {
        ObsEvent {
            severity: Severity::Warn,
            kind,
            message: message.into(),
            fields: Vec::new(),
        }
    }

    /// An informational event.
    pub fn info(kind: &'static str, message: impl Into<String>) -> Self {
        ObsEvent {
            severity: Severity::Info,
            kind,
            message: message.into(),
            fields: Vec::new(),
        }
    }

    /// Attach a typed field.
    pub fn with(mut self, key: &'static str, value: impl Into<Field>) -> Self {
        self.fields.push((key, value.into()));
        self
    }
}

/// The telemetry sink. All methods default to no-ops so recorders
/// implement only what they store; `Sync` lets a single recorder be
/// shared across rayon workers inside the BO loop.
pub trait Recorder: Sync {
    /// Whether this recorder stores anything. `false` lets call sites
    /// skip clock reads and event construction entirely.
    fn enabled(&self) -> bool {
        false
    }

    /// A completed phase span of `nanos` wall-clock nanoseconds.
    fn record_span(&self, phase: Phase, nanos: u64) {
        let _ = (phase, nanos);
    }

    /// Increment a named counter.
    fn add(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Set a named gauge to its latest value.
    fn gauge(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Record a value into a named histogram.
    fn observe(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Record a structured event.
    fn event(&self, event: ObsEvent) {
        let _ = event;
    }
}

/// The default recorder: stores nothing, `enabled() == false`, every
/// method compiles to an empty body.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// An RAII phase span: reads the clock only when the recorder is
/// enabled, and reports the elapsed wall-clock time on drop.
#[must_use = "a span measures the scope it is bound to; bind it to a named guard"]
pub struct Span<'a> {
    rec: &'a dyn Recorder,
    phase: Phase,
    start: Option<Instant>,
}

/// Open a phase span on `rec`. Under a [`NoopRecorder`] this never
/// touches the clock.
pub fn span<'a>(rec: &'a dyn Recorder, phase: Phase) -> Span<'a> {
    Span {
        rec,
        phase,
        start: rec.enabled().then(Instant::now),
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.rec.record_span(self.phase, nanos);
        }
    }
}

/// Record a warning event *and* mirror its message to stderr.
///
/// The stderr line is printed for every recorder — including the
/// no-op one — so replacing an ad-hoc `eprintln!` with `emit_warn`
/// preserves the exact observable behaviour of uninstrumented runs.
pub fn emit_warn(rec: &dyn Recorder, event: ObsEvent) {
    eprintln!("{}", event.message);
    if rec.enabled() {
        rec.event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_index_matches_all_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "{p:?}");
        }
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::ALL.len(), "duplicate phase name");
    }

    #[test]
    fn noop_recorder_is_disabled_and_spans_skip_the_clock() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        let s = span(&rec, Phase::BoSearch);
        assert!(s.start.is_none(), "noop span must not read the clock");
        drop(s);
    }

    #[test]
    fn event_builder_collects_fields() {
        let e = ObsEvent::warn("epoch_skipped", "skipping")
            .with("epoch", 3u64)
            .with("reason", "decision_failed")
            .with("benefit", f64::NAN);
        assert_eq!(e.severity, Severity::Warn);
        assert_eq!(e.fields.len(), 3);
        assert_eq!(e.fields[0], ("epoch", Field::U64(3)));
    }
}
