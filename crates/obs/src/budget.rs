//! Deterministic decision-work budgets for the overload-resilient
//! control plane.
//!
//! A [`DecisionBudget`] meters scheduler work in abstract *work units*
//! instead of wall-clock time, so budgeted runs stay bit-identically
//! seeded-reproducible: two runs with the same seed and the same
//! budget degrade at exactly the same points. The control plane
//! converts units to modeled seconds (`units × unit_time_s`) when it
//! needs a deadline-hit verdict, never the other way around.
//!
//! The charging discipline is *check-before-work*: every charged stage
//! calls [`DecisionBudget::try_charge`] with its (deterministic) cost
//! before doing the work and degrades down the escalation ladder when
//! the charge is refused. Under that discipline `spent() <= limit()`
//! holds by construction and [`DecisionBudget::overruns`] stays 0; the
//! escape hatch [`DecisionBudget::force_charge`] exists for mandatory
//! floors (e.g. a decision pipeline that must observe at least one
//! point) and is the only way an overrun can be recorded.
//!
//! [`DecisionRung`] names the ladder rung a decision actually ran at:
//! `Full` (complete Algorithm 1/2), `Repair` (incremental row repair
//! only), `Stale` (reuse the previous plan untouched). Degradations
//! are emitted as structured [`crate::ObsEvent`]s carrying the rung so
//! experiments can attribute benefit loss per degradation mode.

use std::sync::atomic::{AtomicU64, Ordering};

/// The escalation ladder rung a decision ran at when its budget was
/// consulted. Ordering is by decreasing fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionRung {
    /// Full Algorithm-1/Algorithm-2 decision (possibly with an
    /// anytime-truncated BO search).
    Full,
    /// Incremental row repair only: existing configs kept, placement
    /// repaired without a full re-solve.
    Repair,
    /// Previous plan reused untouched.
    Stale,
}

impl DecisionRung {
    /// All rungs, most capable first.
    pub const ALL: [DecisionRung; 3] = [
        DecisionRung::Full,
        DecisionRung::Repair,
        DecisionRung::Stale,
    ];

    /// Stable machine-readable name ("full" / "repair" / "stale").
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionRung::Full => "full",
            DecisionRung::Repair => "repair",
            DecisionRung::Stale => "stale",
        }
    }

    /// Index into [`DecisionRung::ALL`]-ordered storage.
    pub fn index(self) -> usize {
        match self {
            DecisionRung::Full => 0,
            DecisionRung::Repair => 1,
            DecisionRung::Stale => 2,
        }
    }

    /// Inverse of [`as_str`](DecisionRung::as_str).
    pub fn parse(s: &str) -> Option<DecisionRung> {
        match s {
            "full" => Some(DecisionRung::Full),
            "repair" => Some(DecisionRung::Repair),
            "stale" => Some(DecisionRung::Stale),
            _ => None,
        }
    }
}

/// Deterministic work-unit costs charged against a [`DecisionBudget`].
///
/// The absolute scale is arbitrary; only ratios and the budget's
/// `unit_time_s` conversion matter. Costs are constants (not measured)
/// so charging never depends on wall clock or thread scheduling.
pub mod cost {
    /// One objective evaluation in the BO loop (decode + placement +
    /// aggregate measurement).
    pub const OBJ_EVAL: u64 = 4;
    /// Scoring one acquisition candidate in a BO batch slot.
    pub const ACQ_CANDIDATE: u64 = 1;
    /// One GP hyperparameter fit (per camera, per objective).
    pub const GP_FIT: u64 = 2;
    /// One admission-probe candidate (evaluate one grid config for a
    /// newcomer).
    pub const ADMISSION_CANDIDATE: u64 = 1;
    /// One incremental row-repair replan (repair + verify + reprice).
    pub const REPAIR_EVENT: u64 = 8;
    /// One full Algorithm-1 re-solve (grouping + assignment from
    /// scratch).
    pub const FULL_SOLVE: u64 = 40;
}

/// A deterministic work-unit budget shared by the stages of one
/// decision window.
///
/// Interior-mutable (atomic) so one budget can be threaded by shared
/// reference through `decide` → BO → placement; all charges happen at
/// sequential points of the pipeline so the accounting is
/// deterministic despite the atomics.
#[derive(Debug)]
pub struct DecisionBudget {
    limit: u64,
    spent: AtomicU64,
    overruns: AtomicU64,
}

impl DecisionBudget {
    /// A budget that never refuses a charge (`limit == u64::MAX`).
    /// Threading an unlimited budget through a pipeline is
    /// behavior-identical to not budgeting at all.
    pub fn unlimited() -> Self {
        DecisionBudget {
            limit: u64::MAX,
            spent: AtomicU64::new(0),
            overruns: AtomicU64::new(0),
        }
    }

    /// A budget of `units` work units.
    pub fn limited(units: u64) -> Self {
        DecisionBudget {
            limit: units,
            spent: AtomicU64::new(0),
            overruns: AtomicU64::new(0),
        }
    }

    /// Rebuild a budget from checkpointed accounting state.
    pub fn from_parts(limit: u64, spent: u64, overruns: u64) -> Self {
        DecisionBudget {
            limit,
            spent: AtomicU64::new(spent),
            overruns: AtomicU64::new(overruns),
        }
    }

    /// The budget's limit in work units.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Whether this budget can never refuse a charge.
    pub fn is_unlimited(&self) -> bool {
        self.limit == u64::MAX
    }

    /// Work units spent so far.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// Work units still available (0 when exhausted).
    pub fn remaining(&self) -> u64 {
        self.limit.saturating_sub(self.spent())
    }

    /// Whether the budget is fully spent.
    pub fn exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Number of times a [`force_charge`](DecisionBudget::force_charge)
    /// pushed `spent` past `limit`. Stays 0 under the
    /// check-before-work discipline.
    pub fn overruns(&self) -> u64 {
        self.overruns.load(Ordering::Relaxed)
    }

    /// Charge `units` if and only if they fit in the remaining budget.
    /// Returns `false` (and spends nothing) otherwise — the caller
    /// must then degrade instead of doing the work.
    pub fn try_charge(&self, units: u64) -> bool {
        if units <= self.remaining() {
            self.spent.fetch_add(units, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Charge `units` unconditionally, recording an overrun if this
    /// crosses (or was already past) the limit. Reserved for mandatory
    /// floors; a control plane that sizes its floors correctly never
    /// triggers the overrun path.
    pub fn force_charge(&self, units: u64) {
        let after = self.spent.fetch_add(units, Ordering::Relaxed) + units;
        if after > self.limit {
            self.overruns.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Policy knobs converting a per-window unit budget into an
/// escalation-ladder schedule and a modeled deadline verdict.
///
/// `Copy` on purpose: it travels inside serving configs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetPolicy {
    /// Work units granted per decision window (one serving epoch).
    pub window_units: u64,
    /// Minimum remaining units to attempt a *full* decision
    /// (Algorithm 2 / admission probe + repair with full fallback).
    pub full_floor: u64,
    /// Minimum remaining units to attempt an *incremental repair*;
    /// below this the plan goes stale.
    pub repair_floor: u64,
    /// Modeled seconds per work unit (converts spent units into a
    /// deterministic reaction time).
    pub unit_time_s: f64,
    /// Per-decision reaction deadline in modeled seconds; a decision
    /// whose modeled reaction exceeds this counts as a deadline miss.
    pub deadline_s: f64,
}

impl BudgetPolicy {
    /// Pick the ladder rung affordable with `remaining` units.
    pub fn rung_for(&self, remaining: u64) -> DecisionRung {
        if remaining >= self.full_floor {
            DecisionRung::Full
        } else if remaining >= self.repair_floor {
            DecisionRung::Repair
        } else {
            DecisionRung::Stale
        }
    }

    /// Modeled seconds for `units` of work.
    pub fn modeled_time_s(&self, units: u64) -> f64 {
        units as f64 * self.unit_time_s
    }

    /// Whether a decision that spent `units` met the deadline.
    pub fn deadline_hit(&self, units: u64) -> bool {
        self.modeled_time_s(units) <= self.deadline_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_charge_refuses_at_the_limit_without_spending() {
        let b = DecisionBudget::limited(10);
        assert!(b.try_charge(6));
        assert!(!b.try_charge(5), "6 + 5 > 10 must refuse");
        assert_eq!(b.spent(), 6, "refused charge must not spend");
        assert!(b.try_charge(4));
        assert!(b.exhausted());
        assert_eq!(b.overruns(), 0);
    }

    #[test]
    fn force_charge_records_an_overrun_past_the_limit() {
        let b = DecisionBudget::limited(3);
        b.force_charge(2);
        assert_eq!(b.overruns(), 0);
        b.force_charge(2);
        assert_eq!(b.overruns(), 1);
        assert_eq!(b.spent(), 4);
    }

    #[test]
    fn unlimited_budget_never_refuses() {
        let b = DecisionBudget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..1000 {
            assert!(b.try_charge(u32::MAX as u64));
        }
        assert_eq!(b.overruns(), 0);
        assert!(!b.exhausted());
    }

    #[test]
    fn from_parts_round_trips_accounting() {
        let b = DecisionBudget::limited(100);
        assert!(b.try_charge(37));
        let r = DecisionBudget::from_parts(b.limit(), b.spent(), b.overruns());
        assert_eq!(r.limit(), 100);
        assert_eq!(r.spent(), 37);
        assert_eq!(r.remaining(), 63);
    }

    #[test]
    fn policy_ladder_degrades_with_remaining_budget() {
        let p = BudgetPolicy {
            window_units: 100,
            full_floor: 50,
            repair_floor: 10,
            unit_time_s: 0.001,
            deadline_s: 0.05,
        };
        assert_eq!(p.rung_for(100), DecisionRung::Full);
        assert_eq!(p.rung_for(50), DecisionRung::Full);
        assert_eq!(p.rung_for(49), DecisionRung::Repair);
        assert_eq!(p.rung_for(10), DecisionRung::Repair);
        assert_eq!(p.rung_for(9), DecisionRung::Stale);
        assert!(p.deadline_hit(50));
        assert!(!p.deadline_hit(51));
    }

    #[test]
    fn rung_names_round_trip() {
        for r in DecisionRung::ALL {
            assert_eq!(DecisionRung::parse(r.as_str()), Some(r));
            assert_eq!(DecisionRung::ALL[r.index()], r);
        }
        assert_eq!(DecisionRung::parse("bogus"), None);
    }
}
