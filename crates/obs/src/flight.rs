//! The flight recorder: an in-memory [`Recorder`] that keeps per-phase
//! duration histograms, a metrics registry and a bounded event log,
//! and exports them as JSONL, a machine-readable JSON snapshot, or a
//! human-readable summary table.

use std::fmt::Write as _;
use std::sync::Mutex;

use crate::hist::LogLinearHistogram;
use crate::json;
use crate::recorder::{Field, ObsEvent, Phase, Recorder};
use crate::registry::MetricsRegistry;

/// Default cap on retained events; past it, new events are dropped and
/// counted in the `obs.events_dropped` counter.
pub const DEFAULT_MAX_EVENTS: usize = 65_536;

struct Inner {
    phases: Vec<LogLinearHistogram>,
    metrics: MetricsRegistry,
    events: Vec<ObsEvent>,
    events_dropped: u64,
}

/// An enabled, thread-safe recorder backing the perf baseline and any
/// diagnostic run.
pub struct FlightRecorder {
    inner: Mutex<Inner>,
    max_events: usize,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// A fresh recorder with the default event cap.
    pub fn new() -> Self {
        FlightRecorder {
            inner: Mutex::new(Inner {
                phases: (0..Phase::ALL.len())
                    .map(|_| LogLinearHistogram::new())
                    .collect(),
                metrics: MetricsRegistry::new(),
                events: Vec::new(),
                events_dropped: 0,
            }),
            max_events: DEFAULT_MAX_EVENTS,
        }
    }

    /// Override the retained-event cap.
    pub fn with_max_events(mut self, max_events: usize) -> Self {
        self.max_events = max_events;
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicked recording thread cannot corrupt count/histogram
        // state in a way worth dying for; recover the poisoned lock.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Immutable copy of everything recorded so far.
    pub fn snapshot(&self) -> ObsSnapshot {
        let inner = self.lock();
        ObsSnapshot {
            phases: Phase::ALL
                .iter()
                .map(|&p| (p, inner.phases[p.index()].clone()))
                .filter(|(_, h)| h.count() > 0)
                .collect(),
            metrics: inner.metrics.clone(),
            events: inner.events.clone(),
            events_dropped: inner.events_dropped,
        }
    }
}

impl Recorder for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record_span(&self, phase: Phase, nanos: u64) {
        self.lock().phases[phase.index()].record(nanos as f64 * 1e-9);
    }

    fn add(&self, name: &'static str, delta: u64) {
        self.lock().metrics.add(name, delta);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.lock().metrics.gauge(name, value);
    }

    fn observe(&self, name: &'static str, value: f64) {
        self.lock().metrics.observe(name, value);
    }

    fn event(&self, event: ObsEvent) {
        let mut inner = self.lock();
        if inner.events.len() >= self.max_events {
            inner.events_dropped += 1;
        } else {
            inner.events.push(event);
        }
    }
}

/// Summary statistics of one phase histogram (all durations seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStats {
    /// Completed spans.
    pub count: u64,
    /// Total wall-clock time.
    pub total_s: f64,
    /// Mean span duration.
    pub mean_s: f64,
    /// Median span duration (bucket resolution).
    pub p50_s: f64,
    /// 95th-percentile span duration (bucket resolution).
    pub p95_s: f64,
    /// Longest span (exact).
    pub max_s: f64,
}

impl PhaseStats {
    fn of(h: &LogLinearHistogram) -> PhaseStats {
        PhaseStats {
            count: h.count(),
            total_s: h.sum(),
            mean_s: h.mean().unwrap_or(0.0),
            p50_s: h.quantile(0.5).unwrap_or(0.0),
            p95_s: h.quantile(0.95).unwrap_or(0.0),
            max_s: h.max().unwrap_or(0.0),
        }
    }
}

/// A point-in-time copy of a [`FlightRecorder`]'s contents.
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// Occupied phase histograms, pipeline-ordered (durations seconds).
    pub phases: Vec<(Phase, LogLinearHistogram)>,
    /// Counters, gauges, named histograms.
    pub metrics: MetricsRegistry,
    /// Retained events, in record order.
    pub events: Vec<ObsEvent>,
    /// Events dropped past the retention cap.
    pub events_dropped: u64,
}

impl ObsSnapshot {
    /// Per-phase summary stats, pipeline-ordered.
    pub fn phase_stats(&self) -> Vec<(Phase, PhaseStats)> {
        self.phases
            .iter()
            .map(|(p, h)| (*p, PhaseStats::of(h)))
            .collect()
    }

    /// The events as JSON Lines — one self-contained object per line.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, e) in self.events.iter().enumerate() {
            out.push('{');
            json::key(&mut out, "seq");
            let _ = write!(out, "{seq}");
            out.push(',');
            json::key(&mut out, "severity");
            let _ = write!(out, "\"{}\"", e.severity.as_str());
            out.push(',');
            json::key(&mut out, "kind");
            let _ = write!(out, "\"{}\"", json::escape(e.kind));
            out.push(',');
            json::key(&mut out, "message");
            let _ = write!(out, "\"{}\"", json::escape(&e.message));
            out.push(',');
            json::key(&mut out, "fields");
            out.push('{');
            for (i, (k, v)) in e.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::key(&mut out, k);
                match v {
                    Field::U64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    Field::F64(x) => out.push_str(&json::number(*x)),
                    Field::Bool(b) => {
                        let _ = write!(out, "{b}");
                    }
                    Field::Str(s) => {
                        let _ = write!(out, "\"{}\"", json::escape(s));
                    }
                }
            }
            out.push_str("}}\n");
        }
        out
    }

    /// Machine-readable JSON of phases, counters, gauges and histogram
    /// summaries (durations in milliseconds for phases, raw units for
    /// named histograms).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        json::key(&mut out, "phases");
        out.push('{');
        for (i, (p, h)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::key(&mut out, p.as_str());
            let s = PhaseStats::of(h);
            out.push('{');
            let _ = write!(out, "\"count\":{},", s.count);
            let _ = write!(out, "\"total_ms\":{},", json::number(s.total_s * 1e3));
            let _ = write!(out, "\"mean_ms\":{},", json::number(s.mean_s * 1e3));
            let _ = write!(out, "\"p50_ms\":{},", json::number(s.p50_s * 1e3));
            let _ = write!(out, "\"p95_ms\":{},", json::number(s.p95_s * 1e3));
            let _ = write!(out, "\"max_ms\":{}", json::number(s.max_s * 1e3));
            out.push('}');
        }
        out.push_str("},");
        json::key(&mut out, "counters");
        out.push('{');
        for (i, (k, v)) in self.metrics.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::key(&mut out, k);
            let _ = write!(out, "{v}");
        }
        out.push_str("},");
        json::key(&mut out, "gauges");
        out.push('{');
        for (i, (k, v)) in self.metrics.gauges().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::key(&mut out, k);
            out.push_str(&json::number(v));
        }
        out.push_str("},");
        json::key(&mut out, "histograms");
        out.push('{');
        for (i, (k, h)) in self.metrics.histograms().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::key(&mut out, k);
            out.push('{');
            let _ = write!(out, "\"count\":{},", h.count());
            let _ = write!(out, "\"sum\":{},", json::number(h.sum()));
            let _ = write!(
                out,
                "\"min\":{},",
                json::number(h.min().unwrap_or(f64::NAN))
            );
            let _ = write!(
                out,
                "\"max\":{},",
                json::number(h.max().unwrap_or(f64::NAN))
            );
            let _ = write!(
                out,
                "\"p50\":{},",
                json::number(h.quantile(0.5).unwrap_or(f64::NAN))
            );
            let _ = write!(
                out,
                "\"p95\":{}",
                json::number(h.quantile(0.95).unwrap_or(f64::NAN))
            );
            out.push('}');
        }
        out.push_str("},");
        json::key(&mut out, "events_recorded");
        let _ = write!(out, "{}", self.events.len());
        out.push(',');
        json::key(&mut out, "events_dropped");
        let _ = write!(out, "{}", self.events_dropped);
        out.push('}');
        out
    }

    /// Human-readable summary: a per-phase timing table followed by
    /// counters and gauges.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "phase", "count", "total ms", "mean ms", "p50 ms", "p95 ms", "max ms"
        );
        for (p, s) in self.phase_stats() {
            let _ = writeln!(
                out,
                "{:<12} {:>8} {:>12.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                p.as_str(),
                s.count,
                s.total_s * 1e3,
                s.mean_s * 1e3,
                s.p50_s * 1e3,
                s.p95_s * 1e3,
                s.max_s * 1e3,
            );
        }
        let counters: Vec<(&str, u64)> = self.metrics.counters().collect();
        if !counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (k, v) in counters {
                let _ = writeln!(out, "  {k:<32} {v}");
            }
        }
        let gauges: Vec<(&str, f64)> = self.metrics.gauges().collect();
        if !gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (k, v) in gauges {
                let _ = writeln!(out, "  {k:<32} {v}");
            }
        }
        if self.events_dropped > 0 {
            let _ = writeln!(out, "events dropped: {}", self.events_dropped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{span, Severity};

    #[test]
    fn spans_land_in_phase_histograms() {
        let rec = FlightRecorder::new();
        {
            let _g = span(&rec, Phase::BoSearch);
            std::hint::black_box(1 + 1);
        }
        rec.record_span(Phase::Grouping, 1_500); // 1.5 µs, injected
        let snap = rec.snapshot();
        let stats = snap.phase_stats();
        assert!(stats
            .iter()
            .any(|(p, s)| *p == Phase::BoSearch && s.count == 1));
        let g = stats
            .iter()
            .find(|(p, _)| *p == Phase::Grouping)
            .map(|(_, s)| *s)
            .unwrap();
        assert!((g.total_s - 1.5e-6).abs() < 1e-12);
    }

    #[test]
    fn jsonl_escapes_and_orders_events() {
        let rec = FlightRecorder::new();
        rec.event(
            ObsEvent::warn("skip", "line \"one\"\nline two")
                .with("epoch", 7u64)
                .with("why", "nan"),
        );
        rec.event(ObsEvent::info("ok", "fine").with("x", 0.5));
        let jsonl = rec.snapshot().events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[0].contains("\\\"one\\\""));
        assert!(lines[0].contains("\\n"));
        assert!(lines[1].contains("\"x\":0.5"));
        // Every line is a complete JSON object.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn event_cap_drops_and_counts() {
        let rec = FlightRecorder::new().with_max_events(2);
        for i in 0..5u64 {
            rec.event(ObsEvent::info("e", "x").with("i", i));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events_dropped, 3);
        assert_eq!(snap.events[0].severity, Severity::Info);
    }

    #[test]
    fn snapshot_json_is_well_formed_enough() {
        let rec = FlightRecorder::new();
        rec.add("des.events", 10);
        rec.gauge("bo.converged", 1.0);
        rec.observe("gp.cholesky.dim", 25.0);
        rec.record_span(Phase::Des, 2_000_000);
        let js = rec.snapshot().to_json();
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains("\"des\":{\"count\":1"));
        assert!(js.contains("\"des.events\":10"));
        assert!(js.contains("\"gp.cholesky.dim\":{\"count\":1"));
        assert_eq!(js.matches('{').count(), js.matches('}').count());
    }

    #[test]
    fn summary_table_lists_phases_and_counters() {
        let rec = FlightRecorder::new();
        rec.record_span(Phase::OutcomeFit, 5_000_000);
        rec.add("online.epochs", 4);
        let table = rec.snapshot().summary_table();
        assert!(table.contains("outcome_fit"));
        assert!(table.contains("online.epochs"));
        assert!(table.contains("total ms"));
    }
}
