//! Hand-rolled property tests for the log-linear histogram: merge
//! algebra and quantile bracketing over randomized inputs.
//!
//! `eva-obs` is intentionally dependency-free, so instead of a
//! property-testing crate these tests drive a seeded SplitMix64
//! generator through many randomized cases; every case prints its seed
//! in the assertion message, so a failure is reproducible directly.

use eva_obs::hist::SUBBUCKETS;
use eva_obs::LogLinearHistogram;

/// SplitMix64: tiny, seedable, statistically fine for test-case
/// generation.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A value spanning the histogram's dynamic range (log-uniform over
    /// ~18 decades), with occasional zero / negative / subnormal-ish
    /// outliers to exercise the under-bucket and clamping.
    fn next_value(&mut self) -> f64 {
        match self.next_u64() % 16 {
            0 => 0.0,
            1 => -self.next_f64() * 10.0,
            2 => 1e-15 * (1.0 + self.next_f64()),
            3 => 1e14 * (1.0 + self.next_f64()),
            _ => {
                let exp = self.next_f64() * 24.0 - 12.0; // 1e-12 ..= 1e12
                10f64.powf(exp) * (1.0 + self.next_f64())
            }
        }
    }

    fn values(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_value()).collect()
    }

    /// A value strictly inside the histogram's dynamic range (where the
    /// bounded-relative-error quantile guarantee applies), with
    /// occasional zero / negative outliers for the under-bucket.
    fn next_in_range_value(&mut self) -> f64 {
        match self.next_u64() % 8 {
            0 => 0.0,
            1 => -self.next_f64() * 10.0,
            _ => {
                let exp = self.next_f64() * 22.0 - 11.0; // 1e-11 ..= ~2e11
                10f64.powf(exp) * (1.0 + self.next_f64())
            }
        }
    }

    fn in_range_values(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_in_range_value()).collect()
    }
}

fn hist_of(values: &[f64]) -> LogLinearHistogram {
    let mut h = LogLinearHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// The merge-order-independent fingerprint of a histogram: everything
/// except `sum`, which floating-point addition perturbs in the last
/// bits.
fn fingerprint(h: &LogLinearHistogram) -> (u64, u64, u64, Option<u64>, Option<u64>, Vec<u64>) {
    (
        h.count(),
        h.zero_or_less(),
        h.non_finite(),
        h.min().map(f64::to_bits),
        h.max().map(f64::to_bits),
        h.occupied_buckets().iter().map(|&(_, _, c)| c).collect(),
    )
}

#[test]
fn merge_is_associative_and_order_independent() {
    for seed in 0..50u64 {
        let mut rng = SplitMix64(0xA11CE ^ seed);
        let parts: Vec<Vec<f64>> = (0..4)
            .map(|_| {
                let n = 1 + (rng.next_u64() % 40) as usize;
                rng.values(n)
            })
            .collect();

        // (a ∪ b) ∪ (c ∪ d)
        let mut ab = hist_of(&parts[0]);
        ab.merge(&hist_of(&parts[1]));
        let mut cd = hist_of(&parts[2]);
        cd.merge(&hist_of(&parts[3]));
        let mut tree = ab;
        tree.merge(&cd);

        // ((d ∪ c) ∪ b) ∪ a — opposite association AND opposite order.
        let mut rev = hist_of(&parts[3]);
        for p in [&parts[2], &parts[1], &parts[0]] {
            rev.merge(&hist_of(p));
        }

        // One histogram fed everything directly, no merging at all.
        let all: Vec<f64> = parts.iter().flatten().copied().collect();
        let direct = hist_of(&all);

        assert_eq!(
            fingerprint(&tree),
            fingerprint(&rev),
            "seed {seed}: merge association/order changed the histogram"
        );
        assert_eq!(
            fingerprint(&tree),
            fingerprint(&direct),
            "seed {seed}: merged histogram differs from direct recording"
        );
        // Quantiles are a function of the fingerprint, but check the
        // public surface too.
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                tree.quantile(q).map(f64::to_bits),
                direct.quantile(q).map(f64::to_bits),
                "seed {seed}: q={q} differs between merged and direct"
            );
        }
        // Sums agree up to floating-point reassociation.
        let scale = all.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        assert!(
            (tree.sum() - direct.sum()).abs() <= 1e-9 * scale,
            "seed {seed}: merged sum {} far from direct {}",
            tree.sum(),
            direct.sum()
        );
    }
}

#[test]
fn merge_with_empty_is_identity() {
    for seed in 0..20u64 {
        let mut rng = SplitMix64(0xB0B ^ seed);
        let values = {
            let n = 1 + (rng.next_u64() % 30) as usize;
            rng.values(n)
        };
        let direct = hist_of(&values);

        let mut left = LogLinearHistogram::new();
        left.merge(&direct);
        let mut right = direct.clone();
        right.merge(&LogLinearHistogram::new());

        assert_eq!(fingerprint(&left), fingerprint(&direct), "seed {seed}");
        assert_eq!(fingerprint(&right), fingerprint(&direct), "seed {seed}");
        assert_eq!(left.sum().to_bits(), direct.sum().to_bits());
        assert_eq!(right.sum().to_bits(), direct.sum().to_bits());
    }
}

/// Exact `q`-quantile by the same rank convention the histogram
/// documents: the order statistic of rank `⌈q·n⌉` (1-based, clamped).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

#[test]
fn quantile_estimates_bracket_exact_quantiles() {
    // One bucket spans a relative width of 1/SUBBUCKETS; the geometric
    // midpoint estimate is therefore within that relative distance of
    // the exact order statistic (for positive values — at or below
    // zero the estimate equals min exactly).
    let rel_tol = 1.0 / SUBBUCKETS as f64;
    for seed in 0..50u64 {
        let mut rng = SplitMix64(0xC0FFEE ^ seed);
        let values = {
            let n = 1 + (rng.next_u64() % 200) as usize;
            rng.in_range_values(n)
        };
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);

        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q).unwrap();
            if exact > 0.0 {
                let rel = (est - exact).abs() / exact;
                assert!(
                    rel <= rel_tol + 1e-12,
                    "seed {seed}: q={q} estimate {est} off exact {exact} by {rel:.4} rel \
                     (> {rel_tol})"
                );
            } else {
                // Zero-or-less order statistic: the histogram reports
                // `min(min, 0)`, which bounds every such value below.
                assert!(
                    est <= 0.0 && est <= exact,
                    "seed {seed}: q={q} estimate {est} not a lower bound of {exact}"
                );
            }
            // Always inside the exact observed range.
            assert!(
                est >= h.min().unwrap() && est <= h.max().unwrap(),
                "seed {seed}: q={q} estimate {est} outside [min, max]"
            );
        }
    }
}

#[test]
fn quantiles_are_monotone_in_q() {
    for seed in 0..30u64 {
        let mut rng = SplitMix64(0xD1CE ^ seed);
        let h = hist_of(&{
            let n = 1 + (rng.next_u64() % 120) as usize;
            rng.values(n)
        });
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let est = h.quantile(q).unwrap();
            assert!(
                est >= prev,
                "seed {seed}: quantile not monotone at q={q}: {est} < {prev}"
            );
            prev = est;
        }
    }
}
