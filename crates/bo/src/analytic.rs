//! Closed-form single-point acquisition values.
//!
//! For `q = 1` and a Gaussian posterior the Monte-Carlo acquisitions
//! have exact analytic counterparts. They serve two roles: fast scoring
//! when no batch is needed, and ground truth for validating the MC
//! estimators (see the cross-checking tests below — this is how we know
//! Eq. 12's sampler is implemented correctly).

use eva_stats::{norm_cdf, norm_pdf};

/// Analytic Expected Improvement for maximization:
/// `EI(μ, σ; z*) = (μ − z*) Φ(u) + σ φ(u)` with `u = (μ − z*)/σ`.
///
/// ```
/// use eva_bo::expected_improvement;
/// // At the incumbent with unit uncertainty, EI = φ(0) ≈ 0.3989.
/// let ei = expected_improvement(0.0, 1.0, 0.0);
/// assert!((ei - 0.39894).abs() < 1e-4);
/// ```
pub fn expected_improvement(mean: f64, std_dev: f64, incumbent: f64) -> f64 {
    assert!(std_dev >= 0.0, "expected_improvement: negative std dev");
    if std_dev < 1e-15 {
        return (mean - incumbent).max(0.0);
    }
    let u = (mean - incumbent) / std_dev;
    (mean - incumbent) * norm_cdf(u) + std_dev * norm_pdf(u)
}

/// Analytic UCB: `μ + √β σ`.
pub fn upper_confidence_bound(mean: f64, std_dev: f64, beta: f64) -> f64 {
    assert!(std_dev >= 0.0 && beta >= 0.0, "ucb: negative input");
    mean + beta.sqrt() * std_dev
}

/// Analytic probability of improvement: `Φ((μ − z*)/σ)`.
pub fn probability_of_improvement(mean: f64, std_dev: f64, incumbent: f64) -> f64 {
    assert!(std_dev >= 0.0, "poi: negative std dev");
    if std_dev < 1e-15 {
        return if mean > incumbent { 1.0 } else { 0.0 };
    }
    norm_cdf((mean - incumbent) / std_dev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acquisition::AcqKind;
    use eva_linalg::Mat;
    use eva_stats::rng::{seeded, standard_normal};

    #[test]
    fn ei_known_values() {
        // μ = z*, σ = 1: EI = φ(0) = 1/√(2π).
        let want = 1.0 / (2.0 * std::f64::consts::PI).sqrt();
        assert!((expected_improvement(0.0, 1.0, 0.0) - want).abs() < 1e-12);
        // Degenerate σ: positive part of the gap.
        assert_eq!(expected_improvement(2.0, 0.0, 1.0), 1.0);
        assert_eq!(expected_improvement(0.5, 0.0, 1.0), 0.0);
    }

    #[test]
    fn ei_monotone_in_mean_and_sigma() {
        assert!(expected_improvement(1.0, 1.0, 0.0) > expected_improvement(0.5, 1.0, 0.0));
        assert!(expected_improvement(0.0, 2.0, 0.0) > expected_improvement(0.0, 1.0, 0.0));
        // EI is always nonnegative.
        assert!(expected_improvement(-5.0, 0.3, 0.0) >= 0.0);
    }

    /// The MC qEI estimator must converge to the analytic EI for q = 1.
    #[test]
    fn mc_qei_matches_analytic_ei() {
        let (mean, sd, incumbent) = (0.3, 0.8, 0.5);
        let n_mc = 200_000;
        let mut rng = seeded(11);
        let samples = Mat::from_fn(n_mc, 1, |_, _| mean + sd * standard_normal(&mut rng));
        let mc = AcqKind::QEi.score(&samples, None, Some(incumbent));
        let analytic = expected_improvement(mean, sd, incumbent);
        assert!(
            (mc - analytic).abs() < 5e-3,
            "MC {mc} vs analytic {analytic}"
        );
    }

    /// The MC qUCB estimator's E|z−μ| correction is calibrated so that
    /// for q = 1 it converges to μ + √β σ.
    #[test]
    fn mc_qucb_matches_analytic_ucb() {
        let (mean, sd, beta) = (-0.2, 1.3, 2.0);
        let n_mc = 200_000;
        let mut rng = seeded(12);
        let samples = Mat::from_fn(n_mc, 1, |_, _| mean + sd * standard_normal(&mut rng));
        let mc = AcqKind::QUcb { beta }.score(&samples, None, None);
        let analytic = upper_confidence_bound(mean, sd, beta);
        assert!(
            (mc - analytic).abs() < 2e-2,
            "MC {mc} vs analytic {analytic}"
        );
    }

    /// qSR for q = 1 is just the posterior mean.
    #[test]
    fn mc_qsr_matches_mean() {
        let (mean, sd) = (0.7, 0.5);
        let n_mc = 100_000;
        let mut rng = seeded(13);
        let samples = Mat::from_fn(n_mc, 1, |_, _| mean + sd * standard_normal(&mut rng));
        let mc = AcqKind::QSr.score(&samples, None, None);
        assert!((mc - mean).abs() < 5e-3);
    }

    /// qNEI with a deterministic baseline reduces to qEI with that
    /// incumbent.
    #[test]
    fn mc_qnei_reduces_to_qei_with_fixed_baseline() {
        let (mean, sd, incumbent) = (0.1, 0.9, 0.4);
        let n_mc = 100_000;
        let mut rng = seeded(14);
        let cand = Mat::from_fn(n_mc, 1, |_, _| mean + sd * standard_normal(&mut rng));
        let base = Mat::from_fn(n_mc, 1, |_, _| incumbent);
        let qnei = AcqKind::QNei.score(&cand, Some(&base), None);
        let analytic = expected_improvement(mean, sd, incumbent);
        assert!(
            (qnei - analytic).abs() < 5e-3,
            "qNEI {qnei} vs EI {analytic}"
        );
    }

    #[test]
    fn poi_bounds_and_center() {
        // erfc's Chebyshev fit limits Φ(0) to ~1e-8 accuracy.
        assert!((probability_of_improvement(1.0, 1.0, 1.0) - 0.5).abs() < 1e-7);
        assert_eq!(probability_of_improvement(2.0, 0.0, 1.0), 1.0);
        assert_eq!(probability_of_improvement(0.0, 0.0, 1.0), 0.0);
        let p = probability_of_improvement(0.3, 0.7, 0.6);
        assert!((0.0..=1.0).contains(&p));
    }
}
