//! Monte-Carlo batch acquisition functions.
//!
//! All four variants score a candidate batch from joint posterior
//! samples. Columns `0..q` of the sample matrix are the candidates;
//! an optional second matrix carries samples at the *baseline*
//! (already-observed) points, which `qNEI` needs to integrate out the
//! noise on the incumbent (paper Eq. 12: "maximize the expected
//! improvement with respect to the best value observed so far", where
//! that best value is itself uncertain).

use eva_linalg::Mat;

/// Which acquisition function to use (Sec. 5.1: `PaMO` uses `qNEI`;
/// `PaMO_{qUCB/qSR/qEI}` are the ablation variants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AcqKind {
    /// Batch Noisy Expected Improvement (Letham et al. 2019):
    /// `E[max(0, max_j z_j − max_b z_b)]` with the incumbent re-drawn
    /// from the posterior at the baseline points in every MC sample.
    QNei,
    /// Batch Expected Improvement with a fixed incumbent:
    /// `E[max(0, max_j z_j − z*)]`.
    QEi,
    /// Batch Upper Confidence Bound (MC form, BoTorch):
    /// `E[max_j (μ_j + sqrt(β π/2) |z_j − μ_j|)]`.
    QUcb {
        /// Exploration weight β.
        beta: f64,
    },
    /// Batch Simple Regret: `E[max_j z_j]`.
    QSr,
}

impl AcqKind {
    /// Score a candidate batch.
    ///
    /// * `cand_samples` — `n_mc x q` joint posterior samples at the
    ///   candidates,
    /// * `baseline_samples` — `n_mc x n_b` samples at the observed
    ///   points, drawn *jointly* with the candidates (same rows);
    ///   required for [`AcqKind::QNei`],
    /// * `incumbent` — best observed objective value; required for
    ///   [`AcqKind::QEi`].
    ///
    /// Higher is better.
    pub fn score(
        &self,
        cand_samples: &Mat,
        baseline_samples: Option<&Mat>,
        incumbent: Option<f64>,
    ) -> f64 {
        let n_mc = cand_samples.rows();
        assert!(n_mc > 0 && cand_samples.cols() > 0, "empty sample matrix");
        match self {
            AcqKind::QNei => {
                // Misuse (qNEI without baselines): score the batch as
                // unattractive rather than panic mid-optimization.
                let Some(base) = baseline_samples else {
                    return f64::NEG_INFINITY;
                };
                assert_eq!(
                    base.rows(),
                    n_mc,
                    "baseline samples must share MC rows with candidates"
                );
                let mut total = 0.0;
                for s in 0..n_mc {
                    let best_cand = row_max(cand_samples, s);
                    let best_base = row_max(base, s);
                    total += (best_cand - best_base).max(0.0);
                }
                total / n_mc as f64
            }
            AcqKind::QEi => {
                let Some(z_star) = incumbent else {
                    return f64::NEG_INFINITY;
                };
                let mut total = 0.0;
                for s in 0..n_mc {
                    total += (row_max(cand_samples, s) - z_star).max(0.0);
                }
                total / n_mc as f64
            }
            AcqKind::QUcb { beta } => {
                assert!(*beta >= 0.0, "qUCB: negative beta");
                // Column means (MC estimate of posterior means).
                let q = cand_samples.cols();
                let mut means = vec![0.0; q];
                for s in 0..n_mc {
                    for (j, m) in means.iter_mut().enumerate() {
                        *m += cand_samples[(s, j)];
                    }
                }
                for m in &mut means {
                    *m /= n_mc as f64;
                }
                let scale = (beta * std::f64::consts::PI / 2.0).sqrt();
                let mut total = 0.0;
                for s in 0..n_mc {
                    let mut best = f64::NEG_INFINITY;
                    for j in 0..q {
                        let v = means[j] + scale * (cand_samples[(s, j)] - means[j]).abs();
                        best = best.max(v);
                    }
                    total += best;
                }
                total / n_mc as f64
            }
            AcqKind::QSr => {
                let mut total = 0.0;
                for s in 0..n_mc {
                    total += row_max(cand_samples, s);
                }
                total / n_mc as f64
            }
        }
    }

    /// [`AcqKind::score`] on a single joint sample matrix whose first
    /// `q` columns are the candidates and whose remaining columns (if
    /// any) are the baselines — the layout [`crate::bo_maximize`]'s
    /// candidate scan produces. Avoids materializing the two slices as
    /// separate matrices: row maxima are taken over column ranges in
    /// place, which removes two `n_mc × cols` allocations per candidate
    /// per batch slot.
    pub fn score_split(&self, samples: &Mat, q: usize, incumbent: Option<f64>) -> f64 {
        let n_mc = samples.rows();
        assert!(n_mc > 0 && q > 0 && q <= samples.cols(), "bad split shape");
        match self {
            AcqKind::QNei => {
                if samples.cols() == q {
                    return f64::NEG_INFINITY; // no baseline columns
                }
                let mut total = 0.0;
                for s in 0..n_mc {
                    let row = samples.row(s);
                    let best_cand = range_max(row, 0, q);
                    let best_base = range_max(row, q, samples.cols());
                    total += (best_cand - best_base).max(0.0);
                }
                total / n_mc as f64
            }
            AcqKind::QEi => {
                let Some(z_star) = incumbent else {
                    return f64::NEG_INFINITY;
                };
                let mut total = 0.0;
                for s in 0..n_mc {
                    total += (range_max(samples.row(s), 0, q) - z_star).max(0.0);
                }
                total / n_mc as f64
            }
            AcqKind::QUcb { beta } => {
                assert!(*beta >= 0.0, "qUCB: negative beta");
                let mut means = vec![0.0; q];
                for s in 0..n_mc {
                    let row = samples.row(s);
                    for (j, m) in means.iter_mut().enumerate() {
                        *m += row[j];
                    }
                }
                for m in &mut means {
                    *m /= n_mc as f64;
                }
                let scale = (beta * std::f64::consts::PI / 2.0).sqrt();
                let mut total = 0.0;
                for s in 0..n_mc {
                    let row = samples.row(s);
                    let mut best = f64::NEG_INFINITY;
                    for j in 0..q {
                        let v = means[j] + scale * (row[j] - means[j]).abs();
                        best = best.max(v);
                    }
                    total += best;
                }
                total / n_mc as f64
            }
            AcqKind::QSr => {
                let mut total = 0.0;
                for s in 0..n_mc {
                    total += range_max(samples.row(s), 0, q);
                }
                total / n_mc as f64
            }
        }
    }

    /// Whether this acquisition needs baseline samples.
    pub fn needs_baseline(&self) -> bool {
        matches!(self, AcqKind::QNei)
    }

    /// Whether this acquisition needs a fixed incumbent.
    pub fn needs_incumbent(&self) -> bool {
        matches!(self, AcqKind::QEi)
    }
}

#[inline]
fn row_max(m: &Mat, row: usize) -> f64 {
    m.row(row).iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

#[inline]
fn range_max(row: &[f64], from: usize, to: usize) -> f64 {
    row[from..to]
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic "samples": candidate always 1.0, baseline always 0.5.
    fn constant_mat(rows: usize, cols: usize, v: f64) -> Mat {
        Mat::from_fn(rows, cols, |_, _| v)
    }

    #[test]
    fn qnei_positive_when_candidate_beats_baseline() {
        let cand = constant_mat(100, 1, 1.0);
        let base = constant_mat(100, 3, 0.5);
        let v = AcqKind::QNei.score(&cand, Some(&base), None);
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn qnei_zero_when_dominated() {
        let cand = constant_mat(50, 2, 0.1);
        let base = constant_mat(50, 2, 0.9);
        assert_eq!(AcqKind::QNei.score(&cand, Some(&base), None), 0.0);
    }

    #[test]
    fn qei_improvement_over_incumbent() {
        let cand = constant_mat(10, 1, 2.0);
        assert!((AcqKind::QEi.score(&cand, None, Some(1.5)) - 0.5).abs() < 1e-12);
        assert_eq!(AcqKind::QEi.score(&cand, None, Some(3.0)), 0.0);
    }

    #[test]
    fn qsr_is_mean_of_row_maxima() {
        let m = Mat::from_rows(&[&[1.0, 3.0], &[2.0, 0.0]]);
        assert!((AcqKind::QSr.score(&m, None, None) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn qucb_reduces_to_mean_at_beta_zero() {
        let m = Mat::from_rows(&[&[1.0], &[3.0]]);
        // β = 0: score = E[max_j μ_j] = μ = 2.
        let v = AcqKind::QUcb { beta: 0.0 }.score(&m, None, None);
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn qucb_grows_with_beta_under_uncertainty() {
        // Spread samples: deviation term kicks in.
        let m = Mat::from_rows(&[&[0.0], &[2.0], &[0.0], &[2.0]]);
        let v0 = AcqKind::QUcb { beta: 0.1 }.score(&m, None, None);
        let v1 = AcqKind::QUcb { beta: 4.0 }.score(&m, None, None);
        assert!(v1 > v0);
    }

    #[test]
    fn batch_beats_singleton_for_qnei() {
        // A 2-candidate batch where each candidate wins in different MC
        // rows scores at least as high as either alone.
        let cand_both = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let cand_a = Mat::from_rows(&[&[1.0], &[0.0]]);
        let base = constant_mat(2, 1, 0.2);
        let both = AcqKind::QNei.score(&cand_both, Some(&base), None);
        let single = AcqKind::QNei.score(&cand_a, Some(&base), None);
        assert!(both >= single);
        assert!((both - 0.8).abs() < 1e-12);
    }

    #[test]
    fn jensen_qei_upper_bounds_deterministic_ei() {
        // EI of the mean <= mean of EI (convexity of max(0, ·)).
        let m = Mat::from_rows(&[&[0.0], &[2.0]]);
        let mc = AcqKind::QEi.score(&m, None, Some(1.0));
        // mean sample value is 1.0 -> deterministic EI = 0.
        assert!(mc >= 0.0);
        assert!((mc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn score_split_matches_score_on_all_kinds() {
        // A concatenated matrix: 2 candidate columns + 3 baseline
        // columns, with varied values across 4 MC rows.
        let joint = Mat::from_fn(4, 5, |r, c| ((r * 5 + c) as f64 * 0.73).sin() * 2.0);
        let q = 2;
        let cand = Mat::from_fn(4, q, |r, c| joint[(r, c)]);
        let base = Mat::from_fn(4, 3, |r, c| joint[(r, q + c)]);
        for kind in [
            AcqKind::QNei,
            AcqKind::QEi,
            AcqKind::QUcb { beta: 2.0 },
            AcqKind::QSr,
        ] {
            let split = kind.score_split(&joint, q, Some(0.3));
            let two = kind.score(&cand, Some(&base), Some(0.3));
            assert_eq!(split.to_bits(), two.to_bits(), "{kind:?}");
        }
        // qNEI without baseline columns is an unattractive batch.
        let only_cands = Mat::from_fn(4, q, |r, c| joint[(r, c)]);
        assert_eq!(
            AcqKind::QNei.score_split(&only_cands, q, None),
            f64::NEG_INFINITY
        );
    }

    // Misuse (missing baseline/incumbent) scores as NEG_INFINITY — an
    // unattractive batch, never a panic in the optimization loop.
    #[test]
    fn qnei_without_baseline_scores_neg_infinity() {
        let cand = constant_mat(2, 1, 1.0);
        assert_eq!(AcqKind::QNei.score(&cand, None, None), f64::NEG_INFINITY);
    }

    #[test]
    fn qei_without_incumbent_scores_neg_infinity() {
        let cand = constant_mat(2, 1, 1.0);
        assert_eq!(AcqKind::QEi.score(&cand, None, None), f64::NEG_INFINITY);
    }
}
