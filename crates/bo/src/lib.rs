//! Bayesian-optimization machinery: Monte-Carlo batch acquisition
//! functions and a pool-based BO driver.
//!
//! Implements Sec. 4.3 of the PaMO paper:
//!
//! * [`acquisition`] — the `qNEI` acquisition of Eq. 12 plus the
//!   ablation variants `qEI`, `qUCB`, `qSR` (Sec. 5.1 baselines), all
//!   evaluated on joint Monte-Carlo samples with common random numbers,
//! * [`surrogate`] — the joint-sampling abstraction that lets the same
//!   acquisitions run on a direct GP surrogate (tests, ablations) or on
//!   PaMO's composite `g(f(x))` model (outcome GPs composed with the
//!   preference GP; implemented in `pamo-core`),
//! * [`driver`] — Algorithm 2's optimization loop: initial design,
//!   greedy sequential batch selection over a discrete candidate pool,
//!   convergence on the `δ` threshold.

pub mod acquisition;
pub mod analytic;
pub mod driver;
pub mod surrogate;

pub use acquisition::AcqKind;
pub use analytic::{expected_improvement, probability_of_improvement, upper_confidence_bound};
pub use driver::{bo_maximize, bo_maximize_budgeted, BoConfig, BoResult};
pub use surrogate::{GpSurrogate, SurrogateSampler};
